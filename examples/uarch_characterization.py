#!/usr/bin/env python3
"""Section 2 microarchitectural characterization (Figure 2).

Runs the synthetic WordPress CPU trace through the TAGE predictor, the
BTB, and the cache hierarchy, then sweeps core models — the paper's
finding that nothing here offers an obvious optimization target is
what motivates the accelerators.

Run:  python examples/uarch_characterization.py  (takes ~1 minute)
"""

from __future__ import annotations

from repro.common import DeterministicRng
from repro.core.experiment import uarch_characterization
from repro.uarch import CoreConfig, sweep_cores
from repro.workloads import wordpress

INSTRUCTIONS = 200_000


def main() -> None:
    app = wordpress()
    print(f"Characterizing {app.name} ({INSTRUCTIONS:,} instructions, "
          "2 warmup passes)...")
    r = uarch_characterization(app, instructions=INSTRUCTIONS)

    print()
    print(f"branch MPKI (32 KB TAGE) : {r.branch_mpki:6.2f}   "
          "(paper: 17.26; SPEC CPU2006 ≈ 2.9)")
    print(f"BTB hit rate,  4K entries: {100 * r.btb_hit_rate_4k:6.2f}%")
    print(f"BTB hit rate, 64K entries: {100 * r.btb_hit_rate_64k:6.2f}%  "
          "(paper: 'modest' 95.85%)")
    print(f"L1I MPKI                 : {r.l1i_mpki:6.2f}   "
          "('compact enough to cache in L1')")
    print(f"L1D MPKI                 : {r.l1d_mpki:6.2f}")
    print(f"L2 MPKI                  : {r.l2_mpki:6.2f}   "
          "('very low — L1 filters most references')")

    print()
    print("Figure 2(c) core sweep (normalized execution time):")
    import dataclasses
    profile = dataclasses.replace(app.trace_profile,
                                  instructions=INSTRUCTIONS)
    sweep = sweep_cores(profile, DeterministicRng(), [
        CoreConfig.inorder_2(), CoreConfig.ooo(2),
        CoreConfig.ooo(4), CoreConfig.ooo(8),
    ])
    base = sweep["inorder-2"]
    for name, cycles in sweep.items():
        bar = "#" * int(40 * cycles / base)
        print(f"  {name:10} {cycles / base:6.3f}  {bar}")
    gain = (sweep["ooo-4"] - sweep["ooo-8"]) / sweep["ooo-4"]
    print(f"\n4-wide -> 8-wide gain: {100 * gain:.1f}%  (paper: '<3%')")


if __name__ == "__main__":
    main()
