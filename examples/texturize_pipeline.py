#!/usr/bin/env python3
"""A WordPress-style texturize pipeline through the regexp accelerator.

Walks the paper's Section 4.5 story end to end on a generated blog
post:

1. the *sieve* regexp scans the content while the string accelerator
   emits a hint vector (one bit per 32-byte segment),
2. the *shadow* regexps (double quotes, newlines, opening tags) skip
   every clean segment,
3. a replacement pass shows whitespace padding keeping the hint vector
   aligned,
4. an author-URL stream exercises the content-reuse table
   (install → learn → jump).

Run:  python examples/texturize_pipeline.py
"""

from __future__ import annotations

from repro.accel import ContentSifter, ContentReuseTable, ReuseAcceleratedMatcher
from repro.accel.string_accel import StringAccelerator
from repro.common import DeterministicRng
from repro.regex import CompiledRegex
from repro.workloads.regexops import AUTHOR_URL_PATTERN, WPTEXTURIZE_SET
from repro.workloads.text import ContentSpec, TextCorpus


def run_sifting(content: str) -> None:
    print(f"content: {len(content)} characters")
    accel = StringAccelerator()
    sifter = ContentSifter(accel)

    hv, hv_cycles = sifter.build_hint_vector(content)
    marked = sum(hv.bits)
    print(
        f"hint vector: {len(hv.bits)} segments, {marked} marked "
        f"({100 * marked / len(hv.bits):.0f}%), built in {hv_cycles} "
        f"accelerator cycles"
    )

    sieve_pattern, *shadow_patterns = WPTEXTURIZE_SET.patterns
    sieve = CompiledRegex(sieve_pattern)
    matches, sieve_chars = sieve.findall(content)
    print(f"\nsieve   {sieve_pattern!r:16} {len(matches):3} matches, "
          f"{sieve_chars:5} chars examined (full scan)")

    total_saved = 0
    for pattern in shadow_patterns:
        shadow = CompiledRegex(pattern)
        result = sifter.shadow_findall(shadow, content, hv)
        full_chars = CompiledRegex(pattern).findall(content)[1]
        total_saved += full_chars - result.chars_examined
        print(
            f"shadow  {pattern!r:16} {len(result.matches):3} matches, "
            f"{result.chars_examined:5} chars examined "
            f"(vs {full_chars} unsifted, "
            f"{result.chars_skipped} skipped)"
        )
    print(f"\ncharacters saved across shadows: {total_saved}")

    # Mutation with whitespace padding: curly-quote the apostrophes.
    if matches:
        new_content, new_hv, pad = sifter.replace_with_padding(
            content, matches, "’" + content[matches[0].start + 1], hv
        )
        print(
            f"after texturize replacement: {len(new_content)} chars, "
            f"{pad} padding spaces inserted, hint vector still valid "
            f"({len(new_hv.bits)} segments)"
        )


def run_reuse() -> None:
    print("\n--- content reuse: author archive links ---")
    table = ContentReuseTable()
    matcher = ReuseAcceleratedMatcher(table)
    regex = CompiledRegex(AUTHOR_URL_PATTERN)
    urls = [
        "https://localhost/?author=gope",
        "https://localhost/?author=schlais",
        "https://localhost/?author=gope",
        "https://localhost/?author=lipasti",
        "https://localhost/?author=schlais",
    ]
    for url in urls:
        out = matcher.match(regex, url, pc=0x77_4010)
        print(
            f"{url:38} {out.scenario:8} examined {out.chars_examined:2} "
            f"skipped {out.chars_skipped:2} -> match end {out.match_end}"
        )
    print(
        f"reuse table: {table.stats.get('reuse.jumps')} jumps / "
        f"{table.stats.get('reuse.lookups')} lookups"
    )


def main() -> None:
    corpus = TextCorpus(DeterministicRng(2017))
    content = corpus.post(ContentSpec(special_segment_fraction=0.3))
    run_sifting(content)
    run_reuse()


if __name__ == "__main__":
    main()
