#!/usr/bin/env python3
"""Render a real MiniPHP blog template on both execution paths.

The template uses the constructs the paper's workloads hammer:
``extract`` into the scope (dynamic-key hash SETs), insertion-ordered
``foreach`` over posts, HTML escaping and case conversion (string
accelerator), and a texturize-style ``preg_replace`` (content sifting).

Both backends must produce byte-identical HTML; the accelerated one
does so with most of its work off the core.

Run:  python examples/blog_render.py
"""

from __future__ import annotations

from repro.runtime import (
    AcceleratedBackend,
    MiniPhpInterpreter,
    SoftwareBackend,
)

TEMPLATE = """<!doctype html>
<html><head><title><?= htmlspecialchars($site_name) ?></title></head>
<body>
<h1><?= strtoupper($site_name) ?></h1>
<?php $meta = array('generator' => 'minute-php', 'charset' => 'utf-8'); ?>
<?php extract($meta); ?>
<meta charset="<?= $charset ?>" generator="<?= $generator ?>">
<main>
<?php foreach ($posts as $slug => $post): ?>
  <article id="post-<?= $slug ?>">
    <h2><?= htmlspecialchars($post['title']) ?></h2>
    <div class="body"><?= preg_replace("'[A-Za-z]+", "&rsquo;s", htmlspecialchars($post['body'])) ?></div>
    <p class="words"><?= strlen($post['body']) ?> characters</p>
  </article>
<?php endforeach; ?>
</main>
<?php if (count($posts) > 2): ?>
<nav><a href="/page/2">older posts</a></nav>
<?php else: ?>
<nav>that's all</nav>
<?php endif; ?>
<footer><?= trim($footer) ?></footer>
</body></html>"""

POSTS = {
    "isca-camera-ready": {
        "title": "Camera-ready 'done' at last",
        "body": "The reviewers' comments are in & the paper's shipping. "
                "More <soon>.",
    },
    "hhvm-profiling": {
        "title": "Profiling HHVM leaf functions",
        "body": "Nothing's hotter than 12% — the profile's flat as 'Kansas.",
    },
    "accelerator-rtl": {
        "title": "String accelerator RTL",
        "body": "64 bytes in 3 cycles; the matching matrix's diagonal "
                "AND is the trick.",
    },
}


def build_vars(interp: MiniPhpInterpreter) -> dict:
    posts = interp.new_array()
    for slug, fields in POSTS.items():
        post = interp.new_array()
        for key, value in fields.items():
            interp.array_set(post, key, value)
        interp.array_set(posts, slug, post)
    return {
        "site_name": "Lipasti Lab notebook",
        "posts": posts,
        "footer": "   powered by a 0.22 mm2 accelerator complex   ",
    }


def main() -> None:
    software = MiniPhpInterpreter(SoftwareBackend())
    html_sw = software.render(TEMPLATE, build_vars(software))

    accelerated = MiniPhpInterpreter(AcceleratedBackend())
    html_hw = accelerated.render(TEMPLATE, build_vars(accelerated))

    print(html_hw)
    print("-" * 64)
    identical = html_sw == html_hw
    print(f"software and accelerated outputs identical: {identical}")
    assert identical

    complex_ = accelerated.backend.complex
    print(f"page size: {len(html_hw)} bytes")
    print(f"software backend cycles  : {software.backend.cost_cycles():8.0f}")
    print(f"accelerated backend cycles: {accelerated.backend.cost_cycles():8.0f}")
    print(
        "hardware activity: "
        f"{complex_.string.stats.get('hwstring.ops')} string ops, "
        f"{complex_.hash_table.stats.get('hwhash.sets')} hash SETs, "
        f"{complex_.hash_table.stats.get('hwhash.gets')} hash GETs, "
        f"{complex_.hash_table.stats.get('hwhash.foreach_syncs')} foreach syncs"
    )


if __name__ == "__main__":
    main()
