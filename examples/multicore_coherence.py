#!/usr/bin/env python3
"""Multicore coherence: the Section 4.2 story, visible.

Two request-serving cores with their own accelerator complexes:

1. requests pin to a core; their short-lived symbol tables live and
   die inside that core's hash table — zero coherence traffic (the
   paper: "virtually no coherence activity"),
2. a genuinely shared map (a cross-request cache) ping-pongs between
   cores — each hop is an RTT-routed flush,
3. a process migration exercises the context-switch choreography
   (hmflush, strwriteconfig/strreadconfig, lazy hash-map flush, and
   the stale-bucket rebuild on the destination core).

Run:  python examples/multicore_coherence.py
"""

from __future__ import annotations

from repro.common import DeterministicRng
from repro.isa import MulticoreSystem


def serve_private_requests(system: MulticoreSystem) -> None:
    print("--- phase 1: per-core request traffic (private maps) ---")
    rng = DeterministicRng(99)
    for request in range(12):
        core = request % 2
        table = system.new_shared_map()
        keys = [rng.ascii_word() for _ in range(6)]
        for key in keys:
            system.hash_set(core, table, key, key.upper())
        for key in keys:
            assert system.hash_get(core, table, key) == key.upper()
        system.free_map(core, table)
    print(f"12 requests served on 2 cores; coherence flushes: "
          f"{system.coherence_traffic()}")


def share_a_map(system: MulticoreSystem) -> None:
    print("\n--- phase 2: a shared cross-request cache ---")
    cache = system.new_shared_map()
    before = system.coherence_traffic()
    system.hash_set(0, cache, "homepage_html", "<html>v1</html>")
    print("core 0 cached homepage_html")
    value = system.hash_get(1, cache, "homepage_html")
    print(f"core 1 read it: {value!r}")
    system.hash_set(1, cache, "homepage_html", "<html>v2</html>")
    value = system.hash_get(0, cache, "homepage_html")
    print(f"core 0 read the update: {value!r}")
    print(f"coherence flushes this phase: "
          f"{system.coherence_traffic() - before}")
    for event in system.events:
        if event.kind == "forward_flush":
            print(f"  flush: map 0x{event.base_address:x} "
                  f"core {event.from_core} -> core {event.to_core} "
                  f"({event.flushed_entries} entries)")


def migrate(system: MulticoreSystem) -> None:
    print("\n--- phase 3: process migration core 0 -> core 1 ---")
    scratch = system.new_shared_map()
    out = system.cores[0].heap_manager.hmmalloc(64)
    system.cores[0].heap_manager.hmfree(out.address, 64)
    system.cores[0].string.to_upper("warm the matrix")
    system.hash_set(0, scratch, "session", "abc123")

    report = system.migrate_process(0, 1)
    print(f"hmflush wrote back {report['heap_blocks_flushed']} heap blocks")
    print(f"strreadconfig restored the matrix in "
          f"{report['string_restore_cycles']} cycles")
    print(f"{report['hash_maps_pending_lazy_flush']} hash map(s) await "
          "lazy flush on first remote touch")

    value = system.hash_get(1, scratch, "session")
    rebuilds = scratch.stats.get("walk.stale_rebuilds")
    print(f"core 1 reads session={value!r}; stale bucket rebuilds: "
          f"{rebuilds} (the §4.2 'only on process migration' path)")


def main() -> None:
    system = MulticoreSystem(cores=2)
    serve_private_requests(system)
    share_a_map(system)
    migrate(system)


if __name__ == "__main__":
    main()
