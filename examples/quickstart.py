#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result in one run.

Simulates the three PHP applications (WordPress, Drupal, MediaWiki)
on the software baseline and on the accelerated core, then prints the
paper's Figure 14 / Figure 15 tables and the Section 5.2 energy
summary.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    energy_report,
    figure14_report,
    figure15_report,
    full_evaluation,
)


def main() -> None:
    print("Simulating WordPress, Drupal, and MediaWiki workloads")
    print("(software baseline vs the four Section-4 accelerators)...")
    print()

    results = full_evaluation(requests=5)

    print(figure14_report(results))
    print()
    print(figure15_report(results))
    print()
    print(energy_report(results))
    print()

    for r in results:
        print(
            f"{r.app:10}  hash-table hit rate {100 * r.hash_hit_rate:5.1f}%   "
            f"heap hit rate {100 * r.heap_hit_rate:5.1f}%   "
            f"regexp content skipped {100 * r.regex_skip_fraction:5.1f}%"
        )
    walk = sum(r.average_walk_uops for r in results) / len(results)
    print(f"\nsoftware hash walk: {walk:.2f} µops/op (paper: 90.66)")


if __name__ == "__main__":
    main()
