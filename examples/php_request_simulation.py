#!/usr/bin/env python3
"""Simulate one PHP request on the accelerated core, step by step.

Shows the accelerators working as a system on a hand-written request:
a template renders a post by extracting variables into a symbol table
(hardware hash table + RTT), allocating string buffers (hardware heap
manager), assembling and escaping HTML (string accelerator), and
iterating the symbol table with PHP's insertion-order ``foreach``.

This is the repo's *simulated* request notion: one operation trace
evaluated in deterministic event-driven time, no sockets, no
wall-clock.  The *live* request notion — a real asyncio HTTP/1.1
server rendering the same templates under concurrent connections and
wall-clock deadlines — is ``python -m repro serve``
(``src/repro/serve/``, "Live serving path" in DESIGN.md).  The two
share the renderer but not a clock; don't conflate their latencies.

Run:  python examples/php_request_simulation.py
"""

from __future__ import annotations

from repro.isa import AcceleratorComplex
from repro.runtime import PhpArray


def main() -> None:
    complex_ = AcceleratorComplex()
    ht = complex_.hash_table
    hm = complex_.heap_manager
    sa = complex_.string

    # -- the controller builds a view-model hash map --------------------------
    post = PhpArray(base_address=0x6800_0000)
    complex_.register_map(post)
    fields = {
        "title": "Architectural Support for Server-Side PHP",
        "author": "gope",
        "category": "isca-2017",
        "excerpt": "hash tables, heaps, strings & regexps in hardware",
    }
    for key, value in fields.items():
        outcome = ht.set(key, post.base_address, value)
        print(f"hashtableset  {key:10} -> hw ({outcome.cycles} cycles, "
              f"dirty, no memory traffic)")

    # -- the template reads them back (hardware GETs) ---------------------------
    print()
    for key in ("title", "author", "title", "category"):
        outcome = ht.get(key, post.base_address)
        print(f"hashtableget  {key:10} -> "
              f"{'hit' if outcome.hit else 'MISS'} "
              f"({outcome.cycles} cycles): {outcome.value_ptr!r}")

    # -- string buffers come from the hardware heap manager ---------------------
    print()
    buffers = []
    for i, size in enumerate((24, 64, 96, 48)):
        out = hm.hmmalloc(size)
        path = "software refill" if out.software_fallback else "hw free list"
        print(f"hmmalloc({size:3}) -> 0x{out.address:x}  [{path}]")
        buffers.append((out.address, size))

    # -- assemble and escape the HTML -------------------------------------------
    print()
    title = ht.get("title", post.base_address).value_ptr
    tag = sa.copy(f'<h1 class="entry-title">{title}</h1>')
    print(f"string copy   : {tag.value}")
    from repro.runtime.strings import HTML_ESCAPES
    escaped = sa.html_escape('excerpt with <markup> & "quotes"', HTML_ESCAPES)
    print(f"html escape   : {escaped.value}")
    upper = sa.to_upper(ht.get("category", post.base_address).value_ptr)
    print(f"to_upper      : {upper.value} "
          f"(matrix configured via strreadconfig)")

    # -- foreach over the view-model keeps insertion order ----------------------
    print()
    order, synced = ht.foreach_sync(post.base_address)
    print(f"foreach_sync  : {synced} dirty entries written back; order:")
    for key in order:
        print(f"   {key:10} = {post.get(key)!r}")

    # -- request teardown: buffers free, the map dies in hardware ---------------
    print()
    for addr, size in buffers:
        hm.hmfree(addr, size)
    invalidated = ht.free_map(post.base_address)
    print(f"request end   : {invalidated} hash-table entries invalidated "
          f"via the RTT (never written back — short-lived map)")
    print(f"heap manager  : {hm.cached_blocks()} blocks cached for the "
          f"next request (hit rate {100 * hm.hit_rate():.0f}%)")
    print(f"coherence     : "
          f"{complex_.stats.get('complex.dirty_writebacks')} dirty "
          f"writebacks during the whole request")


if __name__ == "__main__":
    main()
