"""Integration tests: the ablation harness and its design claims."""

from __future__ import annotations

import pytest

from repro.accel.hash_table import HardwareHashTable, HashTableConfig
from repro.accel.heap_manager import HardwareHeapManager, HeapManagerConfig
from repro.core.ablation import AblationResult, run_ablations
from repro.runtime.slab import SlabAllocator


@pytest.fixture(scope="module")
def ablations():
    return {r.name: r for r in run_ablations(requests=2)}


class TestGetOnlyHashTable:
    def test_sets_bypass_to_software(self):
        ht = HardwareHashTable(HashTableConfig(support_sets=False))
        out = ht.set("k", 0x9000, "v")
        assert out.software_fallback
        assert ht.stats.get("hwhash.set_bypass") == 1

    def test_get_still_works_via_fill(self):
        ht = HardwareHashTable(HashTableConfig(support_sets=False))
        ht.set("k", 0x9000, "v")           # bypassed
        assert not ht.get("k", 0x9000).hit  # miss: value is software-side
        ht.insert_clean("k", 0x9000, "v")
        assert ht.get("k", 0x9000).hit

    def test_set_invalidates_stale_cached_value(self):
        """A software SET must not leave a stale pointer in hardware."""
        ht = HardwareHashTable(HashTableConfig(support_sets=False))
        ht.insert_clean("k", 0x9000, "old")
        ht.set("k", 0x9000, "new")          # bypassed, invalidates
        assert not ht.get("k", 0x9000).hit  # forces refetch of "new"

    def test_loses_most_of_the_benefit(self, ablations):
        full = ablations["hash: full design"]
        getonly = ablations["hash: GET-only (memcached-style [55])"]
        assert getonly.efficiency < full.efficiency * 0.7
        assert getonly.detail["hit_rate"] < full.detail["hit_rate"]


class TestHeapAblations:
    def test_no_prefetcher_misses_more(self):
        def hit_rate(prefetch: bool) -> float:
            hm = HardwareHeapManager(
                SlabAllocator(),
                HeapManagerConfig(prefetch_enabled=prefetch),
            )
            for _ in range(20):
                addrs = [hm.hmmalloc(40).address for _ in range(40)]
                for a in addrs:
                    hm.hmfree(a, 40)
            return hm.hit_rate()
        assert hit_rate(False) <= hit_rate(True)

    def test_ablation_ordering(self, ablations):
        assert ablations["heap: no prefetcher"].efficiency <= \
            ablations["heap: full design"].efficiency


class TestStringAblation:
    def test_single_byte_datapath_loses_to_sse(self, ablations):
        """The §4.4 argument against the prior 1 B/cycle design [68]."""
        assert ablations["string: 1 B/cycle (prior work [68])"].efficiency \
            < 0.15
        assert ablations["string: 64 B / 3 cycles"].efficiency > 0.5


class TestRegexAblations:
    def test_sifting_dominates(self, ablations):
        sift_loss = ablations["regex: no content sifting"].efficiency_loss
        reuse_loss = ablations["regex: no content reuse"].efficiency_loss
        assert sift_loss > reuse_loss >= 0.0

    def test_neither_technique_means_no_benefit(self, ablations):
        neither = ablations["regex: neither technique"]
        assert neither.efficiency < 0.05
        assert neither.detail["skip_fraction"] == 0.0

    def test_full_design_skips_content(self, ablations):
        full = ablations["regex: sifting + reuse"]
        assert full.detail["skip_fraction"] > 0.25


class TestAblationResult:
    def test_loss_arithmetic(self):
        r = AblationResult("x", "hash", efficiency=0.4,
                           baseline_efficiency=0.7)
        assert r.efficiency_loss == pytest.approx(0.3)
