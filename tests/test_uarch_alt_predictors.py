"""Unit tests: bimodal/gshare baselines and the predictor comparison."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.uarch.predictors import Bimodal, GShare, compare_predictors
from repro.uarch.trace import TraceProfile


class TestBimodal:
    def test_learns_bias(self):
        p = Bimodal()
        correct = [p.train(0x100, True) for _ in range(100)]
        assert all(correct[2:])

    def test_mpki(self):
        p = Bimodal()
        for _ in range(10):
            p.train(0x100, True)
        assert p.mpki(10_000) == pytest.approx(
            0.1 * p.stats.get("pred.mispredicts"), rel=1e-6
        )

    def test_storage(self):
        assert Bimodal(index_bits=14).storage_bits() == 32768


class TestGShare:
    def test_learns_alternation_via_history(self):
        """gshare separates contexts bimodal aliases together."""
        g = GShare(index_bits=12, history_bits=8)
        b = Bimodal(index_bits=12)
        g_correct = 0
        b_correct = 0
        for i in range(2000):
            taken = (i % 2) == 0
            g_correct += g.train(0x200, taken)
            b_correct += b.train(0x200, taken)
        assert g_correct > b_correct

    def test_history_window_bounded(self):
        g = GShare(index_bits=10, history_bits=20)
        assert g.history_bits == 10


class TestComparison:
    @pytest.fixture(scope="class")
    def mpkis(self):
        profile = TraceProfile(instructions=120_000)
        return compare_predictors(profile, DeterministicRng(3))

    def test_all_predictors_reported(self, mpkis):
        assert set(mpkis) == {"bimodal-4KB", "gshare-16KB", "tage-32KB"}

    def test_php_branches_hard_for_everyone(self, mpkis):
        """The paper's §2 point: data-dependent branches defeat
        history-based prediction — even TAGE stays in the tens of
        MPKI, and simple bimodal is competitive."""
        for name, mpki in mpkis.items():
            assert 5.0 <= mpki <= 80.0, name
        assert mpkis["tage-32KB"] < mpkis["bimodal-4KB"] * 2.0

    def test_correlated_workload_separates_predictors(self):
        """With history-correlated branches (and no data-dependent
        coin flips), long-history TAGE pulls clearly ahead of the
        history-less bimodal — the regime TAGE is built for."""
        profile = TraceProfile(
            instructions=120_000,
            data_dependent_fraction=0.0,
            cold_branch_fraction=0.0,
            hot_branch_sites=2_000,
            correlated_fraction=0.25,
            structured_bias=0.99,
        )
        mpkis = compare_predictors(profile, DeterministicRng(3))
        assert mpkis["tage-32KB"] < 0.75 * mpkis["bimodal-4KB"]
        assert mpkis["tage-32KB"] < mpkis["gshare-16KB"]
