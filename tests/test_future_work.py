"""Tests: the paper's future-work extensions (SLB predictor [35]) and
the datacenter throughput framing from the introduction."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.core.experiment import AppResult, CategoryComparison
from repro.core.throughput import (
    BASELINE_CYCLES_PER_REQUEST,
    CLOCK_HZ,
    ThroughputResult,
    fleet_summary,
    throughput_analysis,
)
from repro.uarch.slb import SlbAssistedPredictor, SlbConfig, measure_slb_headroom
from repro.uarch.trace import TraceProfile


class TestSlbPredictor:
    def test_chain_marking_is_stable_per_site(self):
        p = SlbAssistedPredictor(rng=DeterministicRng(1))
        first = p._is_chain(0x1234)
        assert all(p._is_chain(0x1234) == first for _ in range(10))

    def test_covered_branches_hit_the_queue(self):
        p = SlbAssistedPredictor(
            SlbConfig(chain_coverage=1.0, lead_time_hit=1.0),
            rng=DeterministicRng(1),
        )
        rng = DeterministicRng(2)
        correct = [
            p.train(0x100, rng.random() < 0.5, data_dependent=True)
            for _ in range(500)
        ]
        assert all(correct)  # exact outcomes from the queue
        assert p.stats.get("slb.queue_hits") == 500

    def test_uncovered_branches_use_tage(self):
        p = SlbAssistedPredictor(
            SlbConfig(chain_coverage=0.0), rng=DeterministicRng(1)
        )
        rng = DeterministicRng(2)
        correct = [
            p.train(0x100, rng.random() < 0.5, data_dependent=True)
            for _ in range(1000)
        ]
        assert 0.3 < sum(correct[-500:]) / 500 < 0.7  # coin flips
        assert p.stats.get("slb.queue_hits") == 0

    def test_non_data_dependent_branches_unaffected(self):
        p = SlbAssistedPredictor(
            SlbConfig(chain_coverage=1.0), rng=DeterministicRng(1)
        )
        correct = [
            p.train(0x200, True, data_dependent=False) for _ in range(100)
        ]
        assert sum(correct[5:]) == 95
        assert p.stats.get("slb.queue_hits") == 0

    def test_headroom_on_php_mix(self):
        """§2's remark: [35] improves the PHP MPKI — measurably."""
        result = measure_slb_headroom(TraceProfile(instructions=100_000))
        assert result["slb_mpki"] < result["tage_mpki"]
        assert 0.05 <= result["improvement"] <= 0.6
        assert result["queue_hit_rate"] > 0.0


class TestThroughput:
    def _result(self, priors: float, accel: float) -> AppResult:
        return AppResult(
            app="x", time_with_priors=priors,
            time_with_accelerators=accel,
            category_fractions={}, comparisons={}, benefits={},
            energy_saving=0.0, regex_skip_fraction=0.0,
            refcount_saving=0.0, hash_specialized_fraction=0.0,
            hash_hit_rate=0.0, heap_hit_rate=0.0, average_walk_uops=0.0,
        )

    def test_rps_scales_inverse_to_time(self):
        analysis = throughput_analysis(
            results=[self._result(0.9, 0.72)]
        )
        t = analysis[0]
        base = CLOCK_HZ / BASELINE_CYCLES_PER_REQUEST
        assert t.baseline_rps == pytest.approx(base)
        assert t.accelerated_rps == pytest.approx(base / 0.72)
        assert t.capacity_gain == pytest.approx(1 / 0.72 - 1)

    def test_cores_for_target(self):
        t = ThroughputResult("x", baseline_rps=100.0,
                             optimized_rps=120.0, accelerated_rps=150.0)
        assert t.cores_for(1000, "baseline") == 10
        assert t.cores_for(1000, "accelerated") == 7
        assert t.cores_for(1, "accelerated") == 1

    def test_fleet_summary_saves_cores(self):
        analysis = [
            ThroughputResult("a", 100.0, 115.0, 140.0),
            ThroughputResult("b", 100.0, 110.0, 130.0),
        ]
        summary = fleet_summary(analysis, fleet_rps=20_000.0)
        assert summary["accelerated_cores"] < summary["baseline_cores"]
        assert 0.0 < summary["fleet_reduction"] < 0.5

    def test_end_to_end_matches_paper_scale(self):
        """≈30 % of execution time back ⇒ ≈30 % fewer cores."""
        analysis = throughput_analysis(requests=2)
        summary = fleet_summary(analysis)
        assert 0.2 <= summary["fleet_reduction"] <= 0.4
