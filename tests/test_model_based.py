"""Model-based property tests: accelerators vs reference oracles.

Hypothesis drives random operation scripts against a hardware
component and a trivially-correct Python model side by side; any
observable divergence is a bug.  This is the strongest correctness
net over the accelerators' replacement/eviction/fallback machinery.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.accel.hash_table import HardwareHashTable, HashTableConfig
from repro.accel.heap_manager import HardwareHeapManager, HeapManagerConfig
from repro.accel.regex_accel import (
    ContentReuseTable,
    ReuseAcceleratedMatcher,
    ReuseTableConfig,
)
from repro.regex.engine import CompiledRegex
from repro.runtime.phparray import PhpArray
from repro.runtime.slab import SlabAllocator

BASE = 0x6800_0000

hash_ops = st.lists(
    st.tuples(
        st.sampled_from(["get", "set", "free", "foreach"]),
        st.sampled_from([f"k{i}" for i in range(12)]),
        st.sampled_from([BASE, BASE + 0x200, BASE + 0x400]),
        st.integers(min_value=0, max_value=99),
    ),
    max_size=120,
)


class TestHashTableVsDictOracle:
    """The hardware table + software map must equal a plain dict."""

    @given(hash_ops)
    @settings(max_examples=60, deadline=None)
    def test_observable_values_match_oracle(self, script):
        config = HashTableConfig(entries=8, probe_width=4)
        ht = HardwareHashTable(config)
        arrays = {b: PhpArray(base_address=b) for b in
                  (BASE, BASE + 0x200, BASE + 0x400)}
        ht.writeback_handler = (
            lambda b, k, v: arrays[b].hardware_writeback(k, v)
        )
        oracle: dict[tuple[int, str], int] = {}

        for kind, key, base, value in script:
            if kind == "set":
                outcome = ht.set(key, base, value)
                if outcome.software_fallback:
                    arrays[base].set(key, value)
                oracle[(base, key)] = value
            elif kind == "get":
                outcome = ht.get(key, base)
                expected = oracle.get((base, key))
                if outcome.hit:
                    assert outcome.value_ptr == expected, (key, base)
                else:
                    got = arrays[base].get_default(key)
                    assert got == expected, (key, base)
                    if expected is not None:
                        ht.insert_clean(key, base, expected)
            elif kind == "free":
                ht.free_map(base)
                arrays[base] = PhpArray(base_address=base)
                oracle = {
                    (b, k): v for (b, k), v in oracle.items() if b != base
                }
            else:  # foreach
                ht.foreach_sync(base)
                view = dict(arrays[base].items())
                for (b, k), v in oracle.items():
                    if b == base:
                        assert view.get(k) == v, (k, base)

        # Final settlement: flush everything and compare exactly.
        for base, array in arrays.items():
            ht.flush_map(base)
            expected = {
                k: v for (b, k), v in oracle.items() if b == base
            }
            got = dict(array.items())
            assert got == expected, base


class TestHeapManagerVsOracle:
    """hmmalloc/hmfree must behave like a correct allocator."""

    @given(st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(1, 128)),
            st.tuples(st.just("free"), st.integers(0, 10 ** 6)),
            st.tuples(st.just("flush"), st.just(0)),
        ),
        max_size=150,
    ))
    @settings(max_examples=60, deadline=None)
    def test_no_aliasing_no_loss(self, script):
        hm = HardwareHeapManager(
            SlabAllocator(), HeapManagerConfig(entries_per_class=8)
        )
        live: dict[int, int] = {}  # address -> size
        order: list[int] = []
        for kind, arg in script:
            if kind == "malloc":
                out = hm.hmmalloc(arg)
                assert out.address is not None
                assert out.address not in live, "address handed out twice"
                live[out.address] = arg
                order.append(out.address)
            elif kind == "free" and order:
                addr = order.pop(arg % len(order))
                size = live.pop(addr)
                hm.hmfree(addr, size)
            elif kind == "flush":
                hm.hmflush()
                assert hm.cached_blocks() == 0


URL = r"https://[a-z]+/\?author=[a-z]+"


class TestReuseTableVsDirectMatch:
    """Reuse-accelerated matching must equal direct matching, always."""

    @given(st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),   # call site (pc)
            st.sampled_from([
                "https://localhost/?author=abc",
                "https://localhost/?author=xyz",
                "https://localhost/?author=abcdef",
                "https://example/?author=q",
                "not a url",
                "https://localhost/",
            ]),
        ),
        max_size=80,
    ))
    @settings(max_examples=60, deadline=None)
    def test_match_end_always_correct(self, script):
        table = ContentReuseTable(ReuseTableConfig(entries=3))
        matcher = ReuseAcceleratedMatcher(table)
        regex = CompiledRegex(URL)
        oracle = CompiledRegex(URL)
        for pc, content in script:
            got = matcher.match(regex, content, pc=pc)
            want = oracle.match_prefix(content).match
            want_end = want.end if want else None
            assert got.match_end == want_end, (pc, content, got.scenario)

    @given(st.lists(st.sampled_from(["abc", "abd", "ab", "xyz"]), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_single_site_stream(self, authors):
        table = ContentReuseTable()
        matcher = ReuseAcceleratedMatcher(table)
        regex = CompiledRegex(URL)
        for author in authors:
            url = f"https://localhost/?author={author}"
            got = matcher.match(regex, url, pc=1)
            want = CompiledRegex(URL).match_prefix(url).match
            assert got.match_end == (want.end if want else None)
