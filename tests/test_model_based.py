"""Model-based property tests: accelerators vs reference oracles.

Hypothesis drives random operation scripts through the differential
oracles in :mod:`repro.conformance.oracles` — the same drivers the
``python -m repro conform`` fuzzer replays with its own generated
scripts.  Hypothesis explores the op space adversarially (shrinking
included); the conformance fuzzer covers it deterministically in CI.
Any observable divergence from the dict/allocator/``re`` shadows is a
bug.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.accel.hash_table import HashTableConfig
from repro.conformance.oracles import (
    HASH_BASES,
    run_hash_oracle,
    run_heap_oracle,
    run_reuse_oracle,
)

hash_ops = st.lists(
    st.tuples(
        st.sampled_from(["get", "set", "free", "foreach"]),
        st.sampled_from([f"k{i}" for i in range(12)]),
        st.integers(min_value=0, max_value=len(HASH_BASES) - 1),
        st.integers(min_value=0, max_value=99),
    ),
    max_size=120,
)


def _hash_script(raw: list) -> list:
    """Hypothesis tuples -> the oracle's JSON op shape."""
    ops = []
    for kind, key, base_idx, value in raw:
        if kind == "set":
            ops.append(["set", key, base_idx, value])
        elif kind == "get":
            ops.append(["get", key, base_idx])
        elif kind == "free":
            ops.append(["free", base_idx])
        else:
            ops.append(["foreach", base_idx])
    return ops


class TestHashTableVsDictOracle:
    """The hardware table + software map must equal a plain dict."""

    @given(hash_ops)
    @settings(max_examples=60, deadline=None)
    def test_observable_values_match_oracle(self, raw):
        run_hash_oracle(
            _hash_script(raw), HashTableConfig(entries=8, probe_width=4)
        )


class TestHeapManagerVsOracle:
    """hmmalloc/hmfree must behave like a correct allocator."""

    @given(st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(1, 128)),
            st.tuples(st.just("free"), st.integers(0, 10 ** 6)),
            st.tuples(st.just("flush"), st.just(0)),
        ),
        max_size=150,
    ))
    @settings(max_examples=60, deadline=None)
    def test_no_aliasing_no_loss(self, raw):
        script = [
            ["malloc", arg] if kind == "malloc"
            else ["free", arg] if kind == "free"
            else ["flush"]
            for kind, arg in raw
        ]
        run_heap_oracle(script)


URL = r"https://[a-z]+/\?author=[a-z]+"


class TestReuseTableVsDirectMatch:
    """Reuse-accelerated matching must equal direct matching, always."""

    @given(st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),   # call site (pc)
            st.sampled_from([
                "https://localhost/?author=abc",
                "https://localhost/?author=xyz",
                "https://localhost/?author=abcdef",
                "https://example/?author=q",
                "not a url",
                "https://localhost/",
            ]),
        ),
        max_size=80,
    ))
    @settings(max_examples=60, deadline=None)
    def test_match_end_always_correct(self, script):
        run_reuse_oracle(script, URL, entries=3)

    @given(st.lists(st.sampled_from(["abc", "abd", "ab", "xyz"]), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_single_site_stream(self, authors):
        script = [
            [1, f"https://localhost/?author={author}"]
            for author in authors
        ]
        run_reuse_oracle(script, URL, entries=32)
