"""Integration tests: the per-application MiniPHP templates."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.runtime.interp import (
    AcceleratedBackend,
    MiniPhpInterpreter,
    SoftwareBackend,
)
from repro.workloads.templates import (
    APP_TEMPLATES,
    build_variables,
    render_app_page,
)

APPS = sorted(APP_TEMPLATES)


class TestRendering:
    @pytest.mark.parametrize("app", APPS)
    def test_renders_nonempty_html(self, app):
        interp = MiniPhpInterpreter(SoftwareBackend())
        page = render_app_page(app, interp, DeterministicRng(5))
        assert page.startswith("<!doctype html>")
        assert "</html>" in page
        assert len(page) > 400

    @pytest.mark.parametrize("app", APPS)
    def test_deterministic(self, app):
        a = render_app_page(
            app, MiniPhpInterpreter(SoftwareBackend()), DeterministicRng(5)
        )
        b = render_app_page(
            app, MiniPhpInterpreter(SoftwareBackend()), DeterministicRng(5)
        )
        assert a == b

    @pytest.mark.parametrize("app", APPS)
    def test_different_seeds_differ(self, app):
        a = render_app_page(
            app, MiniPhpInterpreter(SoftwareBackend()), DeterministicRng(5)
        )
        b = render_app_page(
            app, MiniPhpInterpreter(SoftwareBackend()), DeterministicRng(6)
        )
        assert a != b

    @pytest.mark.parametrize("app", APPS)
    def test_backends_render_identically(self, app):
        """The headline end-to-end property: same page bytes."""
        sw = MiniPhpInterpreter(SoftwareBackend())
        hw = MiniPhpInterpreter(AcceleratedBackend())
        page_sw = render_app_page(app, sw, DeterministicRng(7))
        page_hw = render_app_page(app, hw, DeterministicRng(7))
        assert page_sw == page_hw

    @pytest.mark.parametrize("app", APPS)
    def test_accelerated_backend_is_cheaper(self, app):
        sw = MiniPhpInterpreter(SoftwareBackend())
        hw = MiniPhpInterpreter(AcceleratedBackend())
        render_app_page(app, sw, DeterministicRng(7))
        render_app_page(app, hw, DeterministicRng(7))
        assert hw.backend.cost_cycles() < sw.backend.cost_cycles()

    def test_escaping_really_happened(self):
        interp = MiniPhpInterpreter(SoftwareBackend())
        page = render_app_page("wordpress", interp, DeterministicRng(5))
        body = page.split("<main", 1)[1].rsplit("</main>", 1)[0]
        # Raw angle brackets from user content never reach the body
        # except through template markup.
        for fragment in body.split(">"):
            assert "<script" not in fragment.lower()


class TestVariables:
    def test_unknown_app_rejected(self):
        interp = MiniPhpInterpreter(SoftwareBackend())
        with pytest.raises(ValueError):
            build_variables("joomla", interp, DeterministicRng(5))

    def test_wordpress_posts_structured(self):
        interp = MiniPhpInterpreter(SoftwareBackend())
        variables = build_variables(
            "wordpress", interp, DeterministicRng(5)
        )
        posts = variables["posts"]
        assert len(posts) >= 2
        for _, post in posts.items():
            assert "title" in post
            assert "content" in post
