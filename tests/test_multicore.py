"""Integration tests: multicore coherence for the hash accelerator."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.isa.multicore import MulticoreSystem


class TestSharedMapCoherence:
    def test_cross_core_read_sees_remote_write(self):
        sys = MulticoreSystem(cores=2)
        shared = sys.new_shared_map()
        sys.hash_set(0, shared, "config", "v1")
        assert sys.hash_get(1, shared, "config") == "v1"
        assert sys.coherence_traffic() == 1

    def test_ping_pong_flushes_each_hop(self):
        sys = MulticoreSystem(cores=2)
        shared = sys.new_shared_map()
        sys.hash_set(0, shared, "k", "a")
        sys.hash_set(1, shared, "k", "b")
        sys.hash_set(0, shared, "k", "c")
        assert sys.hash_get(1, shared, "k") == "c"
        assert sys.coherence_traffic() == 3

    def test_same_core_traffic_is_free(self):
        sys = MulticoreSystem(cores=2)
        private = sys.new_shared_map()
        for i in range(50):
            sys.hash_set(0, private, f"k{i}", i)
        for i in range(50):
            assert sys.hash_get(0, private, f"k{i}") == i
        assert sys.coherence_traffic() == 0

    def test_dirty_values_survive_the_flush(self):
        """The remote flush writes dirty entries into the software
        map before invalidating — nothing is lost."""
        sys = MulticoreSystem(cores=2)
        shared = sys.new_shared_map()
        for i in range(10):
            sys.hash_set(0, shared, f"k{i}", f"v{i}")
        for i in range(10):
            assert sys.hash_get(1, shared, f"k{i}") == f"v{i}"


class TestCommonCaseIsQuiet:
    def test_short_lived_private_maps_cause_no_traffic(self):
        """§4.2: request-local symbol tables never leave their core."""
        sys = MulticoreSystem(cores=4)
        rng = DeterministicRng(5)
        for request in range(20):
            core = request % 4
            table = sys.new_shared_map()
            keys = [rng.ascii_word() for _ in range(8)]
            for k in keys:
                sys.hash_set(core, table, k, k.upper())
            for k in keys:
                assert sys.hash_get(core, table, k) == k.upper()
            sys.free_map(core, table)
        assert sys.coherence_traffic() == 0

    def test_freed_map_releases_ownership(self):
        sys = MulticoreSystem(cores=2)
        shared = sys.new_shared_map()
        sys.hash_set(0, shared, "k", "v")
        sys.free_map(0, shared)
        # Next core's access is a fresh acquire, not a forward flush.
        before = sys.coherence_traffic()
        sys.hash_set(1, shared, "k2", "v2")
        assert sys.coherence_traffic() == before


class TestProcessMigration:
    def test_migration_choreography(self):
        sys = MulticoreSystem(cores=2)
        complex0 = sys.cores[0]
        # Warm core 0: heap blocks cached, string matrix configured.
        out = complex0.heap_manager.hmmalloc(48)
        complex0.heap_manager.hmfree(out.address, 48)
        complex0.string.to_upper("warm")
        shared = sys.new_shared_map()
        sys.hash_set(0, shared, "k", "v")

        report = sys.migrate_process(0, 1)
        assert report["heap_blocks_flushed"] > 0
        assert report["string_restore_cycles"] >= 1
        assert report["hash_maps_pending_lazy_flush"] == 1

        # The destination core's first touch triggers the lazy flush
        # and still sees the right value.
        assert sys.hash_get(1, shared, "k") == "v"
        assert sys.coherence_traffic() == 1

    def test_stale_bucket_rebuild_after_migration(self):
        """§4.2: the stale-flag reconstruction path is 'triggered only
        by process migration' — exercise exactly that."""
        sys = MulticoreSystem(cores=2)
        shared = sys.new_shared_map()
        sys.hash_set(0, shared, "fresh_key", "v")   # dirty, hw-only
        sys.migrate_process(0, 1)
        sys.hash_get(1, shared, "fresh_key")        # forces the flush
        # The flush appended a key the bucket array had never seen;
        # software access rebuilt it.
        assert shared.stats.get("walk.stale_rebuilds") >= 1

    def test_bad_core_count_rejected(self):
        with pytest.raises(ValueError):
            MulticoreSystem(cores=0)
