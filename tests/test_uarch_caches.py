"""Unit tests: caches, prefetchers, and the hierarchy walker."""

from __future__ import annotations

import pytest

from repro.uarch.caches import (
    Cache,
    CacheConfig,
    CacheHierarchy,
    HierarchyConfig,
    LINE_BYTES,
    StreamPrefetcher,
)


def small_cache(size_kb: int = 4, ways: int = 2, prefetch: bool = False) -> Cache:
    return Cache(CacheConfig("test", size_kb * 1024, ways, latency=2,
                             prefetch=prefetch))


class TestCache:
    def test_miss_then_hit(self):
        c = small_cache()
        assert not c.access(0x1000)
        assert c.access(0x1000)

    def test_same_line_hits(self):
        c = small_cache()
        c.access(0x1000)
        assert c.access(0x1000 + LINE_BYTES - 1)

    def test_adjacent_line_misses(self):
        c = small_cache()
        c.access(0x1000)
        assert not c.access(0x1000 + LINE_BYTES)

    def test_lru_within_set(self):
        c = small_cache(size_kb=1, ways=2)  # 8 sets
        sets = c.config.sets
        conflicting = [i * sets * LINE_BYTES for i in range(3)]
        for addr in conflicting:
            c.access(addr)
        assert not c.access(conflicting[0])  # evicted as LRU
        assert c.stats.get("cache.evictions") >= 1

    def test_mpki(self):
        c = small_cache()
        c.access(0x0)
        c.access(0x1000000)
        assert c.mpki(1000) == pytest.approx(2.0)

    def test_prefetch_accesses_not_counted(self):
        c = small_cache()
        c.access(0x0, is_prefetch=True)
        assert c.stats.get("cache.accesses") == 0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheConfig("bad", 3000, 2, 1))


class TestReplacementPolicies:
    def _hit_rate(self, policy: str) -> float:
        from repro.common.rng import DeterministicRng
        cache = Cache(CacheConfig("t", 4 * 1024, ways=4, latency=1,
                                  prefetch=False, replacement=policy))
        rng = DeterministicRng(9)
        for _ in range(6000):
            line = rng.zipf(600, 1.0)
            cache.access(0x1000 + line * LINE_BYTES)
        return cache.stats.ratio("cache.hits", "cache.accesses")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheConfig("t", 1024, 2, 1, replacement="plru"))

    def test_all_policies_functional(self):
        for policy in ("lru", "fifo", "random"):
            assert 0.0 < self._hit_rate(policy) < 1.0

    def test_lru_beats_fifo_on_skewed_reuse(self):
        """Hot lines re-referenced constantly: LRU protects them,
        FIFO ages them out regardless."""
        assert self._hit_rate("lru") >= self._hit_rate("fifo")

    def test_fifo_does_not_refresh_on_hit(self):
        cache = Cache(CacheConfig("t", 128, ways=2, latency=1,
                                  prefetch=False, replacement="fifo"))
        # One set (128 B / 64 B / 2 ways = 1 set).
        cache.access(0 * LINE_BYTES)
        cache.access(1 * LINE_BYTES)
        cache.access(0 * LINE_BYTES)      # hit; FIFO ignores recency
        cache.access(2 * LINE_BYTES)      # evicts line 0 (oldest insert)
        assert not cache.access(0 * LINE_BYTES)


class TestStreamPrefetcher:
    def test_two_sequential_misses_arm_stream(self):
        p = StreamPrefetcher(degree=2)
        assert p.observe_miss(100) == []
        assert p.observe_miss(101) == [102, 103]

    def test_non_sequential_does_not_arm(self):
        p = StreamPrefetcher(degree=2)
        p.observe_miss(100)
        assert p.observe_miss(200) == []

    def test_stream_continues(self):
        p = StreamPrefetcher(degree=1)
        p.observe_miss(10)
        p.observe_miss(11)
        assert p.observe_miss(12) == [13]

    def test_table_capacity_bounded(self):
        p = StreamPrefetcher(degree=1)
        for i in range(100):
            p.observe_miss(i * 10)
        assert len(p._streams) <= StreamPrefetcher.TABLE_SIZE


class TestHierarchy:
    def test_latencies_escalate(self):
        h = CacheHierarchy(HierarchyConfig.xeon_like())
        cold = h.load_store(0x5000, False)
        warm = h.load_store(0x5000, False)
        assert cold > warm
        assert warm == h.l1d.config.latency

    def test_l2_catches_l1_evictions(self):
        h = CacheHierarchy(HierarchyConfig.xeon_like(l1d_kb=32))
        h.load_store(0x7000, False)
        # Evict from tiny L1 by touching many conflicting lines...
        # (32KB/8-way = 64 sets; same set = stride 64*64B)
        stride = 64 * LINE_BYTES
        for i in range(1, 10):
            h.load_store(0x7000 + i * stride, False)
        latency = h.load_store(0x7000, False)
        assert latency == h.l1d.config.latency + h.l2.config.latency

    def test_sequential_stream_prefetched(self):
        h = CacheHierarchy(HierarchyConfig.xeon_like())
        misses_without = 0
        for i in range(64):
            if h.fetch(0x9000 + i * LINE_BYTES) > h.l1i.config.latency:
                misses_without += 1
        # Stream prefetcher should cover most of the sequential walk.
        assert misses_without < 32

    def test_write_counted(self):
        h = CacheHierarchy(HierarchyConfig.xeon_like())
        h.load_store(0x1000, True)
        assert h.stats.get("hierarchy.writes") == 1

    def test_memory_access_counted_on_l2_miss(self):
        h = CacheHierarchy(HierarchyConfig.xeon_like())
        h.load_store(0xABC000, False)
        assert h.stats.get("hierarchy.memory_accesses") == 1
