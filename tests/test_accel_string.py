"""Unit + property tests: the matching-matrix string accelerator.

Every operation's *value* must agree exactly with Python string
semantics (and with the software StringLibrary); cycle costs must
follow the block model (64 bytes per 3 cycles).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.string_accel import (
    MatrixConfigState,
    StringAccelConfig,
    StringAccelerator,
)
from repro.regex.charset import SPECIAL_CHARS
from repro.runtime.strings import HTML_ESCAPES

text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=300
)
pattern = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=12,
)


@pytest.fixture
def accel() -> StringAccelerator:
    return StringAccelerator()


class TestFind:
    def test_simple_find(self, accel):
        assert accel.find("hello world", "world").value == 6

    def test_missing(self, accel):
        assert accel.find("hello", "zzz").value == -1

    def test_match_at_start(self, accel):
        assert accel.find("abc", "abc").value == 0

    def test_overlapping_candidates(self, accel):
        assert accel.find("aaab", "aab").value == 1

    def test_repeated_prefix(self, accel):
        assert accel.find("ababac", "abac").value == 2

    def test_cross_block_match(self, accel):
        """Wrap-around: a match spanning the 64-byte block boundary."""
        subject = "x" * 60 + "needle" + "y" * 20
        assert accel.find(subject, "needle").value == 60

    def test_match_exactly_at_block_boundary(self, accel):
        subject = "x" * 64 + "needle"
        assert accel.find(subject, "needle").value == 64

    def test_start_offset(self, accel):
        assert accel.find("abcabc", "abc", start=1).value == 3

    def test_pattern_longer_than_block_rejected(self, accel):
        with pytest.raises(ValueError):
            accel.find("x", "y" * 17)

    def test_empty_pattern_rejected(self, accel):
        with pytest.raises(ValueError):
            accel.find("x", "")

    @given(text, pattern)
    @settings(max_examples=100)
    def test_find_matches_python(self, subject, needle):
        accel = StringAccelerator()
        assert accel.find(subject, needle).value == subject.find(needle)

    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=50)
    def test_find_across_any_boundary(self, prefix_len, pat_len):
        accel = StringAccelerator()
        subject = "a" * prefix_len + "b" * pat_len + "a" * 30
        assert accel.find(subject, "b" * pat_len).value == prefix_len


class TestFindUnicode:
    """Section 4.4's multi-byte note: grouped single-byte comparisons."""

    def test_multibyte_pattern_found(self):
        accel = StringAccelerator()
        subject = "smart quotes: “hello” and —dashes—"
        assert accel.find_unicode(subject, "“hello”").value == \
            subject.find("“hello”")

    def test_ascii_subject_matches_plain_find(self):
        accel = StringAccelerator()
        assert accel.find_unicode("hello world", "world").value == 6

    def test_character_index_not_byte_index(self):
        accel = StringAccelerator()
        subject = "ééé needle"  # 2-byte chars before the match
        assert accel.find_unicode(subject, "needle").value == \
            subject.find("needle")

    def test_missing_pattern(self):
        accel = StringAccelerator()
        assert accel.find_unicode("héllo", "wörld").value == -1

    @given(st.text(alphabet="aé“”—né ", max_size=60),
           st.text(alphabet="é“n", min_size=1, max_size=4))
    @settings(max_examples=60)
    def test_matches_python_on_unicode(self, subject, pattern):
        accel = StringAccelerator()
        assert accel.find_unicode(subject, pattern).value == \
            subject.find(pattern)


class TestTransforms:
    def test_compare(self, accel):
        assert accel.compare("abc", "abd").value == -1
        assert accel.compare("abc", "abc").value == 0

    def test_translate(self, accel):
        out = accel.translate("a'b\"c", {"'": "X", '"': "Y"})
        assert out.value == "aXbYc"

    def test_case_conversion(self, accel):
        assert accel.to_upper("Hello!").value == "HELLO!"
        assert accel.to_lower("Hello!").value == "hello!"

    def test_trim(self, accel):
        assert accel.trim("  x\t ").value == "x"

    def test_replace(self, accel):
        assert accel.replace("a<b<c", "<", "&lt;").value == "a&lt;b&lt;c"

    def test_replace_no_match(self, accel):
        assert accel.replace("abc", "z", "_").value == "abc"

    def test_copy(self, accel):
        assert accel.copy("hello").value == "hello"

    def test_html_escape(self, accel):
        out = accel.html_escape("<b>&", HTML_ESCAPES)
        assert out.value == "&lt;b&gt;&amp;"

    @given(text)
    @settings(max_examples=60)
    def test_case_matches_python(self, s):
        accel = StringAccelerator()
        assert accel.to_upper(s).value == s.upper()
        assert accel.to_lower(s).value == s.lower()

    @given(text, st.sampled_from(["<", ">", "&", "'"]))
    @settings(max_examples=60)
    def test_replace_matches_python(self, s, needle):
        accel = StringAccelerator()
        assert accel.replace(s, needle, "__").value == s.replace(needle, "__")


class TestHintVectorGeneration:
    def test_char_class_bitmap_matches_ground_truth(self, accel):
        from repro.workloads.text import special_char_segments
        content = "clean words here " * 5 + "'x'" + " more clean " * 5
        out = accel.char_class_bitmap(content, SPECIAL_CHARS, 32)
        assert out.value == special_char_segments(content, 32)

    def test_all_clean(self, accel):
        out = accel.char_class_bitmap("abc def, ghi. " * 10, SPECIAL_CHARS, 32)
        assert not any(out.value)

    def test_all_special(self, accel):
        out = accel.char_class_bitmap("<<<>>>" * 20, SPECIAL_CHARS, 32)
        assert all(out.value)


class TestCycleModel:
    def test_blocks_scale_with_length(self, accel):
        cfg = accel.config
        short = accel.to_lower("x" * 10)
        long = accel.to_lower("x" * (cfg.block_bytes * 4))
        assert short.blocks == 1
        assert long.blocks == 4
        assert long.cycles > short.cycles

    def test_three_cycles_per_block(self):
        cfg = StringAccelConfig()
        accel = StringAccelerator(cfg)
        out = accel.translate("x" * cfg.block_bytes, {"a": "b"})
        assert out.cycles == cfg.setup_cycles + cfg.cycles_per_block

    def test_stats_accumulate(self, accel):
        accel.find("hello", "l")
        accel.trim(" x ")
        assert accel.stats.get("hwstring.ops") == 2
        assert accel.stats.get("hwstring.cycles") > 0


class TestConfigInstructions:
    def test_strreadconfig_loads_and_reuses(self, accel):
        state = MatrixConfigState.exact("abc", label="find")
        first = accel.strreadconfig(state)
        again = accel.strreadconfig(state)
        assert first > again == 1
        assert accel.stats.get("hwstring.config_reuse") == 1

    def test_strwriteconfig_roundtrip(self, accel):
        state = MatrixConfigState.exact("abc")
        accel.strreadconfig(state)
        saved = accel.strwriteconfig()
        assert saved == state

    def test_too_many_rows_rejected(self, accel):
        with pytest.raises(ValueError):
            accel.strreadconfig(MatrixConfigState.exact("x" * 17))

    def test_too_many_inequality_rows_rejected(self, accel):
        bounds = [(0, 10)] * 7  # only 6 inequality rows exist
        with pytest.raises(ValueError):
            accel.strreadconfig(MatrixConfigState.ranges(bounds))

    def test_case_conversion_uses_config(self, accel):
        accel.to_upper("abc")
        assert accel.stats.get("hwstring.config_loads") == 1
        accel.to_upper("def")  # same config, no reload
        assert accel.stats.get("hwstring.config_loads") == 1
        accel.to_lower("ghi")  # different range, reload
        assert accel.stats.get("hwstring.config_loads") == 2
