"""Unit + property tests: the insertion-ordered software hash map."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.phparray import PhpArray, php_array_hash

keys = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=24
)


class TestBasicOperations:
    def test_set_get(self):
        a = PhpArray()
        a.set("k", 1)
        assert a.get("k") == 1

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            PhpArray().get("nope")

    def test_get_default(self):
        a = PhpArray()
        assert a.get_default("nope", 7) == 7

    def test_update_keeps_one_entry(self):
        a = PhpArray()
        a.set("k", 1)
        a.set("k", 2)
        assert a.get("k") == 2
        assert len(a) == 1

    def test_contains(self):
        a = PhpArray()
        a.set("k", 1)
        assert "k" in a
        assert "x" not in a

    def test_unset(self):
        a = PhpArray()
        a.set("k", 1)
        assert a.unset("k") is True
        assert "k" not in a
        assert a.unset("k") is False

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PhpArray(capacity=0)


class TestInsertionOrder:
    def test_foreach_order(self):
        a = PhpArray()
        for i, k in enumerate("zyxw"):
            a.set(k, i)
        assert a.keys() == list("zyxw")

    def test_update_does_not_reorder(self):
        a = PhpArray()
        a.set("a", 1)
        a.set("b", 2)
        a.set("a", 3)
        assert a.keys() == ["a", "b"]

    def test_unset_then_reinsert_moves_to_end(self):
        a = PhpArray()
        a.set("a", 1)
        a.set("b", 2)
        a.unset("a")
        a.set("a", 3)
        assert a.keys() == ["b", "a"]

    def test_order_survives_growth(self):
        a = PhpArray(capacity=4)
        names = [f"key{i}" for i in range(100)]
        for i, k in enumerate(names):
            a.set(k, i)
        assert a.keys() == names


class TestGrowthAndCosts:
    def test_grows_past_initial_capacity(self):
        a = PhpArray(capacity=4)
        for i in range(50):
            a.set(f"k{i}", i)
        assert len(a) == 50
        assert all(a.get(f"k{i}") == i for i in range(50))

    def test_probe_accounting(self):
        a = PhpArray()
        a.set("k", 1)
        before = a.stats.get("walk.probes")
        a.get("k")
        assert a.stats.get("walk.probes") > before
        assert a.stats.get("walk.ops") >= 2

    def test_key_bytes_counted_on_match(self):
        a = PhpArray()
        a.set("abcdef", 1)
        before = a.stats.get("walk.key_bytes")
        a.get("abcdef")
        assert a.stats.get("walk.key_bytes") - before >= 6


class TestHardwareWriteback:
    def test_existing_key_updated_in_place(self):
        a = PhpArray()
        a.set("k", 1)
        a.hardware_writeback("k", 9)
        assert a.get("k") == 9
        assert not a.stale_hash_flag

    def test_new_key_appends_and_marks_stale(self):
        a = PhpArray()
        a.set("a", 1)
        a.hardware_writeback("b", 2)
        assert a.stale_hash_flag
        assert a.keys() == ["a", "b"]

    def test_stale_rebuild_restores_lookup(self):
        a = PhpArray()
        a.hardware_writeback("x", 1)
        assert a.get("x") == 1  # triggers rebuild
        assert a.stats.get("walk.stale_rebuilds") == 1
        assert not a.stale_hash_flag

    def test_rebuild_grows_when_needed(self):
        a = PhpArray(capacity=4)
        for i in range(40):
            a.hardware_writeback(f"k{i}", i)
        assert a.get("k39") == 39
        assert len(a) == 40


class TestPropertyBased:
    @given(st.lists(st.tuples(keys, st.integers()), max_size=60))
    @settings(max_examples=60)
    def test_behaves_like_dict(self, pairs):
        a = PhpArray()
        model: dict[str, int] = {}
        for k, v in pairs:
            a.set(k, v)
            model[k] = v
        assert len(a) == len(model)
        for k, v in model.items():
            assert a.get(k) == v
        assert a.keys() == list(model.keys())  # dict preserves insertion

    @given(st.lists(st.tuples(st.sampled_from("abcdef"), st.booleans()),
                    max_size=80))
    @settings(max_examples=60)
    def test_set_unset_interleaving(self, script):
        a = PhpArray()
        model: dict[str, int] = {}
        for i, (k, is_set) in enumerate(script):
            if is_set:
                a.set(k, i)
                model[k] = i
            else:
                assert a.unset(k) == (k in model)
                model.pop(k, None)
        assert a.keys() == list(model.keys())

    @given(st.lists(keys, unique=True, min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_hash_function_stable(self, ks):
        assert [php_array_hash(k) for k in ks] == [php_array_hash(k) for k in ks]
