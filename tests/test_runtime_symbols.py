"""Unit tests: symbol tables, extract/compact, scope stack."""

from __future__ import annotations

import pytest

from repro.runtime.phparray import PhpArray
from repro.runtime.symbols import ScopeStack, SymbolTable


class TestSymbolTable:
    def test_define_lookup(self):
        t = SymbolTable("local")
        t.define("x", 1)
        assert t.lookup("x") == 1

    def test_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            SymbolTable("local").lookup("nope")

    def test_extract_imports_all_pairs(self):
        source = PhpArray()
        source.set("title", "Hello")
        source.set("author", "gope")
        t = SymbolTable("local")
        assert t.extract(source) == 2
        assert t.lookup("title") == "Hello"
        assert t.lookup("author") == "gope"

    def test_extract_prefix(self):
        source = PhpArray()
        source.set("x", 1)
        t = SymbolTable("local")
        t.extract(source, prefix="wp_")
        assert t.lookup("wp_x") == 1

    def test_compact_exports_known_names(self):
        t = SymbolTable("local")
        t.define("a", 1)
        t.define("b", 2)
        out = t.compact(["a", "b", "missing"])
        assert out.keys() == ["a", "b"]
        assert out.get("a") == 1

    def test_contains_and_len(self):
        t = SymbolTable("local")
        t.define("a", 1)
        assert "a" in t
        assert len(t) == 1


class TestScopeStack:
    def test_resolution_prefers_local(self):
        s = ScopeStack()
        s.globals.define("x", "global")
        local = s.push("fn")
        local.define("x", "local")
        assert s.resolve("x") == "local"

    def test_falls_back_to_globals(self):
        s = ScopeStack()
        s.globals.define("x", "global")
        s.push("fn")
        assert s.resolve("x") == "global"

    def test_pop_restores_outer_scope(self):
        s = ScopeStack()
        s.push("outer").define("x", 1)
        s.push("inner").define("x", 2)
        s.pop()
        assert s.resolve("x") == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            ScopeStack().pop()

    def test_scopes_get_distinct_base_addresses(self):
        s = ScopeStack()
        a = s.push("f1")
        b = s.push("f2")
        assert a.array.base_address != b.array.base_address

    def test_current_defaults_to_globals(self):
        s = ScopeStack()
        assert s.current is s.globals
