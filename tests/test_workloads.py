"""Unit tests: workload generators reproduce the paper's anchors."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.workloads import (
    ACCELERATED,
    Activity,
    AllocOpGenerator,
    AllocWorkloadSpec,
    ContentSpec,
    HashOpGenerator,
    HashWorkloadSpec,
    LoadGenerator,
    RegexOpGenerator,
    RegexWorkloadSpec,
    StrOpGenerator,
    StringWorkloadSpec,
    TextCorpus,
    apply_mitigations,
    drupal,
    flat_php_profile,
    hotspot_profile,
    mediawiki,
    php_applications,
    size_fraction_at_or_below,
    special_char_segments,
    trace_statistics,
    wordpress,
)


class TestTextCorpus:
    def test_deterministic(self):
        a = TextCorpus(DeterministicRng(3))
        b = TextCorpus(DeterministicRng(3))
        spec = ContentSpec()
        assert a.post(spec) == b.post(spec)

    def test_special_density_controllable(self):
        low = TextCorpus(DeterministicRng(3)).post(
            ContentSpec(special_segment_fraction=0.1)
        )
        high = TextCorpus(DeterministicRng(3)).post(
            ContentSpec(special_segment_fraction=0.8)
        )
        def density(text):
            flags = special_char_segments(text)
            return sum(flags) / len(flags)
        assert density(low) < density(high)

    def test_clean_text_has_no_specials(self):
        text = TextCorpus(DeterministicRng(3)).clean_text()
        assert not any(special_char_segments(text))

    def test_author_url_shape(self):
        corpus = TextCorpus(DeterministicRng(3))
        assert corpus.author_url("abc") == "https://localhost/?author=abc"


class TestHashOps:
    def test_paper_anchors(self):
        gen = HashOpGenerator(HashWorkloadSpec(), DeterministicRng(4))
        ops = []
        for _ in range(5):
            ops.extend(gen.request_ops())
        stats = trace_statistics(ops)
        assert 0.15 <= stats["set_share"] <= 0.27
        assert stats["short_key_fraction"] >= 0.90

    def test_short_lived_maps_are_freed(self):
        gen = HashOpGenerator(HashWorkloadSpec(), DeterministicRng(4))
        ops = list(gen.request_ops())
        allocs = {op.map_id for op in ops if op.kind == "alloc"}
        frees = {op.map_id for op in ops if op.kind == "free"}
        assert allocs == frees

    def test_sets_precede_gets_per_map(self):
        gen = HashOpGenerator(HashWorkloadSpec(), DeterministicRng(4))
        first_op: dict[int, str] = {}
        for op in gen.request_ops():
            if op.map_id > 0 and op.kind in ("get", "set"):
                first_op.setdefault(op.map_id, op.kind)
        assert all(kind == "set" for kind in first_op.values())

    def test_base_addresses_stable(self):
        gen = HashOpGenerator(HashWorkloadSpec(), DeterministicRng(4))
        assert gen.map_base_address(5) == gen.map_base_address(5)
        assert gen.map_base_address(5) != gen.map_base_address(6)
        assert gen.map_base_address(-1) != gen.map_base_address(1)

    def test_literal_config_reads_repeat_identically(self):
        """Template reads use the same literal keys in the same order
        every request — the HMI mitigation's target."""
        gen = HashOpGenerator(HashWorkloadSpec(), DeterministicRng(4))
        def config_keys():
            return [op.key for op in gen.request_ops()
                    if op.map_id == HashOpGenerator.CONFIG_MAP_ID]
        first, second = config_keys(), config_keys()
        assert first == second
        assert len(first) == HashWorkloadSpec().literal_config_reads

    def test_literal_reads_specialize_under_hmi(self):
        from repro.optim import HashMapInliner
        gen = HashOpGenerator(HashWorkloadSpec(), DeterministicRng(4))
        inliner = HashMapInliner()
        for _ in range(8):
            inliner.filter(list(gen.request_ops()))
        config_residual = sum(
            1 for op in inliner.filter(list(gen.request_ops()))
            if op.map_id == HashOpGenerator.CONFIG_MAP_ID
        )
        assert config_residual == 0  # fully specialized after warmup


class TestAllocOps:
    def test_size_distribution_small_dominated(self):
        gen = AllocOpGenerator(AllocWorkloadSpec(), DeterministicRng(4))
        ops = []
        for _ in range(3):
            ops.extend(gen.request_ops())
        assert size_fraction_at_or_below(ops, 128) >= 0.75

    def test_balanced_mallocs_and_frees(self):
        gen = AllocOpGenerator(AllocWorkloadSpec(), DeterministicRng(4))
        ops = list(gen.request_ops())
        mallocs = [op.tag for op in ops if op.kind == "malloc"]
        frees = [op.tag for op in ops if op.kind == "free"]
        assert sorted(mallocs) == sorted(frees)

    def test_free_never_precedes_malloc(self):
        gen = AllocOpGenerator(AllocWorkloadSpec(), DeterministicRng(4))
        seen = set()
        for op in gen.request_ops():
            if op.kind == "malloc":
                seen.add(op.tag)
            else:
                assert op.tag in seen

    def test_bounded_live_set(self):
        """Strong reuse: the live small-object population stays small."""
        gen = AllocOpGenerator(AllocWorkloadSpec(churn_events=800),
                               DeterministicRng(4))
        live = 0
        peak = 0
        for op in gen.request_ops():
            live += 1 if op.kind == "malloc" else -1
            peak = max(peak, live)
        assert peak < 200


class TestStrOps:
    def test_mix_families_present(self):
        gen = StrOpGenerator(StringWorkloadSpec(ops_per_request=300),
                             DeterministicRng(4))
        funcs = {op.func for op in gen.request_ops()}
        assert {"concat", "strpos", "htmlspecialchars", "trim"} <= funcs

    def test_ops_count(self):
        spec = StringWorkloadSpec(ops_per_request=50)
        gen = StrOpGenerator(spec, DeterministicRng(4))
        assert len(list(gen.request_ops())) == 50


class TestRegexOps:
    def test_sift_tasks_have_sieve_and_shadows(self):
        gen = RegexOpGenerator(RegexWorkloadSpec(), DeterministicRng(4))
        tasks = list(gen.sift_tasks())
        assert tasks
        assert all(len(t.function_set.patterns) >= 2 for t in tasks)

    def test_reuse_streams_share_prefixes(self):
        gen = RegexOpGenerator(RegexWorkloadSpec(), DeterministicRng(4))
        for task in gen.reuse_tasks():
            prefixes = {c.rsplit("=", 1)[0] for c in task.contents}
            assert len(prefixes) == 1  # same URL up to the author name


class TestProfiles:
    def test_flat_profile_shape(self):
        """Figure 1: hottest ≈10–12%, ~100 functions ≈65%."""
        profile = wordpress().profile(DeterministicRng(4))
        assert 0.10 <= profile.hottest_share() <= 0.12
        assert 0.55 <= profile.top_n_share(100) <= 0.72

    def test_hotspot_profile_shape(self):
        """Figure 1: SPECWeb ≈90% in a handful of functions."""
        profile = hotspot_profile("specweb")
        assert profile.top_n_share(5) >= 0.88

    def test_weights_sum_to_one(self):
        for app in php_applications():
            profile = app.profile(DeterministicRng(4))
            assert sum(f.weight for f in profile.functions) == pytest.approx(1.0)

    def test_category_mix_honoured(self):
        app = wordpress()
        profile = app.profile(DeterministicRng(4))
        for activity, want in app.baseline_mix.items():
            got = profile.category_share(activity)
            assert got == pytest.approx(want, abs=0.02), activity

    def test_mitigation_shrinks_overheads(self):
        """Figure 3: mitigated categories shrink, others grow."""
        profile = wordpress().profile(DeterministicRng(4))
        optimized, remaining = apply_mitigations(profile)
        assert 0.85 <= remaining <= 0.92
        assert optimized.category_share(Activity.REFCOUNT) < \
            profile.category_share(Activity.REFCOUNT)
        assert optimized.four_category_share() > profile.four_category_share()

    def test_apps_have_distinct_personalities(self):
        """Drupal has the least string+regex time (Section 5.3)."""
        shares = {}
        for app in php_applications():
            profile = app.profile(DeterministicRng(4))
            optimized, _ = apply_mitigations(profile)
            shares[app.name] = (
                optimized.category_share(Activity.STRING)
                + optimized.category_share(Activity.REGEX)
            )
        assert shares["drupal"] < shares["mediawiki"]
        assert shares["drupal"] < shares["wordpress"]


class TestLoadGenerator:
    def test_warmup_flagging(self):
        lg = LoadGenerator(drupal(), DeterministicRng(4), warmup_requests=2)
        traces = lg.run(measured_requests=3)
        assert [t.is_warmup for t in traces] == [True, True, False, False, False]

    def test_requests_are_distinct(self):
        lg = LoadGenerator(mediawiki(), DeterministicRng(4))
        a = lg.next_request()
        b = lg.next_request()
        assert a.hash_ops != b.hash_ops

    def test_deterministic_across_instances(self):
        a = LoadGenerator(wordpress(), DeterministicRng(4)).next_request()
        b = LoadGenerator(wordpress(), DeterministicRng(4)).next_request()
        assert a.hash_ops == b.hash_ops
        assert a.str_ops == b.str_ops
        assert a.sift_tasks == b.sift_tasks
