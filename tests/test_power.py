"""Unit tests: CACTI-like SRAM model, area budget, energy ledger."""

from __future__ import annotations

import pytest

from repro.power import (
    EnergyLedger,
    NEHALEM_CORE_MM2,
    PAPER_ACCEL_MM2,
    accelerator_area_report,
    energy_savings,
    estimate_sram,
)


class TestSramModel:
    def test_area_scales_with_bits(self):
        small = estimate_sram("s", 64, 64)
        large = estimate_sram("l", 4096, 64)
        assert large.area_mm2 > small.area_mm2

    def test_energy_scales_sublinearly(self):
        small = estimate_sram("s", 64, 64)
        large = estimate_sram("l", 4096, 64)
        ratio = large.read_energy_pj / small.read_energy_pj
        assert 1.0 < ratio < 64.0

    def test_write_costs_more_than_read(self):
        est = estimate_sram("x", 512, 128)
        assert est.write_energy_pj > est.read_energy_pj

    def test_multiporting_costs_area(self):
        single = estimate_sram("s", 512, 128, ports=1)
        dual = estimate_sram("d", 512, 128, ports=2)
        assert dual.area_mm2 > single.area_mm2

    def test_small_arrays_single_cycle(self):
        assert estimate_sram("s", 512, 128).latency_cycles == 1

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            estimate_sram("bad", 0, 64)


class TestAreaBudget:
    def test_total_near_paper(self):
        """§5.1: combined accelerators ≈ 0.22 mm², ≈ 0.89% of a core."""
        report = accelerator_area_report()
        assert report.total_mm2 == pytest.approx(PAPER_ACCEL_MM2, rel=0.15)
        assert report.core_fraction == pytest.approx(0.0089, rel=0.20)

    def test_all_structures_itemized(self):
        names = {name for name, _ in accelerator_area_report().rows()}
        assert {"hash-table", "rtt", "heap-free-lists", "reuse-table"} <= names

    def test_hash_table_dominates(self):
        """512 × ~45 B entries is by far the largest structure."""
        rows = dict(accelerator_area_report().rows())
        assert rows["hash-table"] == max(rows.values())

    def test_core_fraction_is_tiny(self):
        assert accelerator_area_report().core_fraction < 0.02


class TestEnergyLedger:
    def test_core_energy_dominates(self):
        base = EnergyLedger(core_uops=1_000_000)
        accel = EnergyLedger(core_uops=1_000_000, hash_accesses=10_000)
        # Accelerator events are ~5 orders cheaper than core µops.
        assert accel.total_nj() < base.total_nj() * 1.01

    def test_savings_track_uop_reduction(self):
        base = EnergyLedger(core_uops=1_000_000)
        accel = EnergyLedger(core_uops=750_000)
        assert energy_savings(base, accel) == pytest.approx(0.25, abs=0.01)

    def test_zero_baseline_guarded(self):
        assert energy_savings(EnergyLedger(), EnergyLedger()) == 0.0

    def test_accelerator_events_cost_something(self):
        quiet = EnergyLedger(core_uops=1000)
        busy = EnergyLedger(core_uops=1000, hash_accesses=500,
                            heap_accesses=500, string_blocks=500,
                            reuse_accesses=500)
        assert busy.total_nj() > quiet.total_nj()
