"""Unit tests: TAGE, folded histories, and the BTB."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.uarch.btb import Btb
from repro.uarch.tage import FoldedHistory, Tage, TageConfig
from repro.uarch.trace import BranchRecord


class TestFoldedHistory:
    def test_fits_compressed_length(self):
        fh = FoldedHistory(64, 10)
        for i in range(200):
            fh.update(i & 1, (i >> 1) & 1)
            assert 0 <= fh.compressed < (1 << 10)

    def test_deterministic(self):
        a = FoldedHistory(32, 8)
        b = FoldedHistory(32, 8)
        for i in range(100):
            a.update(i % 3 == 0, 0)
            b.update(i % 3 == 0, 0)
        assert a.compressed == b.compressed


class TestTageConfig:
    def test_history_lengths_geometric(self):
        lengths = TageConfig().history_lengths()
        assert lengths[0] == 5
        assert lengths[-1] == 130
        assert lengths == sorted(lengths)

    def test_default_budget_near_32kb(self):
        bits = TageConfig().storage_bits()
        assert 28 * 1024 * 8 <= bits <= 36 * 1024 * 8


class TestTageLearning:
    def test_learns_always_taken(self):
        t = Tage(rng=DeterministicRng(1))
        correct = [t.train(0x400100, True) for _ in range(200)]
        assert sum(correct[-100:]) >= 99

    def test_learns_biased_not_taken(self):
        t = Tage(rng=DeterministicRng(1))
        correct = [t.train(0x400200, False) for _ in range(200)]
        assert sum(correct[-100:]) >= 99

    def test_learns_alternating_pattern(self):
        """Global history lets TAGE learn short periodic patterns."""
        t = Tage(rng=DeterministicRng(1))
        correct = []
        for i in range(600):
            correct.append(t.train(0x400300, i % 2 == 0))
        assert sum(correct[-200:]) / 200 > 0.95

    def test_random_branches_near_chance(self):
        t = Tage(rng=DeterministicRng(1))
        rng = DeterministicRng(2)
        correct = [t.train(0x400400, rng.random() < 0.5) for _ in range(2000)]
        accuracy = sum(correct[-1000:]) / 1000
        assert 0.35 < accuracy < 0.65

    def test_mpki_accounting(self):
        t = Tage(rng=DeterministicRng(1))
        rng = DeterministicRng(3)
        for _ in range(1000):
            t.train(0x400500, rng.random() < 0.5)
        assert t.mpki(100_000) == pytest.approx(
            10.0 * t.stats.get("tage.mispredicts") / 1000, rel=1e-6
        )

    def test_predict_does_not_update(self):
        t = Tage(rng=DeterministicRng(1))
        for _ in range(50):
            t.train(0x400600, True)
        snap = t.stats.snapshot()
        t.predict(0x400600)
        assert t.stats.get("tage.lookups") == snap.get("tage.lookups", 0)


def _branch(pc: int, taken: bool = True, target: int = 0x500000) -> BranchRecord:
    return BranchRecord(pc, taken, target)


class TestBtb:
    def test_first_taken_misses_then_hits(self):
        btb = Btb(entries=64, ways=2)
        assert not btb.lookup(_branch(0x100))
        assert btb.lookup(_branch(0x100))

    def test_not_taken_never_misses(self):
        btb = Btb(entries=64, ways=2)
        assert btb.lookup(_branch(0x100, taken=False))
        assert btb.stats.get("btb.misses") == 0

    def test_target_change_counts_as_mispredict(self):
        btb = Btb(entries=64, ways=2)
        btb.lookup(_branch(0x100, target=0x1))
        assert not btb.lookup(_branch(0x100, target=0x2))
        assert btb.stats.get("btb.target_mispredicts") == 1
        # Updated in place: next lookup with the new target hits.
        assert btb.lookup(_branch(0x100, target=0x2))

    def test_lru_eviction_within_set(self):
        btb = Btb(entries=4, ways=2)  # 2 sets
        # Three branches mapping to the same set (pc >> 2 mod 2).
        pcs = [0x100, 0x110, 0x120]
        for pc in pcs:
            btb.lookup(_branch(pc))
        assert btb.stats.get("btb.evictions") == 1
        assert not btb.lookup(_branch(pcs[0]))  # LRU victim was pc[0]

    def test_capacity_scaling_improves_hit_rate(self):
        rng = DeterministicRng(1)
        streams = [
            [_branch(0x1000 + 16 * rng.zipf(4000, 0.9)) for _ in range(8000)]
            for _ in range(2)
        ]
        rates = []
        for entries in (256, 4096):
            btb = Btb(entries=entries, ways=2)
            for b in streams[0]:
                btb.lookup(b)
            btb.stats.reset()
            for b in streams[1]:
                btb.lookup(b)
            rates.append(btb.hit_rate())
        assert rates[1] > rates[0]

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Btb(entries=10, ways=3)
        with pytest.raises(ValueError):
            Btb(entries=24, ways=2)  # 12 sets: not a power of two
