"""Unit + differential tests: parser, DFA construction, matching engine.

The engine's semantics are validated differentially against Python's
``re`` module on the pattern subset this reproduction uses (where
leftmost-greedy and leftmost-longest coincide).
"""

from __future__ import annotations

import re as pyre

import pytest
from hypothesis import given, settings, strategies as st

from repro.regex.dfa import DEAD, build_dfa, partition_alphabet
from repro.regex.charset import CharSet
from repro.regex.engine import CompiledRegex, RegexManager
from repro.regex.nfa import build_nfa
from repro.regex.parser import RegexSyntaxError, parse


class TestParserErrors:
    @pytest.mark.parametrize("pattern", [
        "(", ")", "a)", "[", "[]", "*a", "+", "a{3,1}", "(?<x)", "a\\",
        "(?P<n>a)",
    ])
    def test_rejects_bad_patterns(self, pattern):
        with pytest.raises(RegexSyntaxError):
            CompiledRegex(pattern)

    def test_counted_repeat_cap(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{100}")

    def test_anchor_mid_pattern_rejected(self):
        with pytest.raises(RegexSyntaxError):
            CompiledRegex("a^b")


class TestDfaConstruction:
    def test_partition_groups_equivalent_bytes(self):
        class_of, count = partition_alphabet([CharSet.of("abc")])
        assert count == 2
        assert class_of[ord("a")] == class_of[ord("b")] == class_of[ord("c")]
        assert class_of[ord("z")] != class_of[ord("a")]

    def test_small_dfa_for_literal(self):
        fsm = build_dfa(build_nfa(parse("abc")))
        assert fsm.state_count <= 5
        s = fsm.start
        for ch in "abc":
            s = fsm.step(s, ch)
        assert fsm.is_accepting(s)

    def test_dead_state_on_mismatch(self):
        fsm = build_dfa(build_nfa(parse("abc")))
        assert fsm.step(fsm.start, "z") == DEAD

    def test_liveness_marks_dead_ends(self):
        fsm = build_dfa(build_nfa(parse("ab")))
        assert fsm.is_live(fsm.start)

    def test_table_bytes_positive(self):
        fsm = build_dfa(build_nfa(parse("[a-z]+")))
        assert fsm.table_bytes() > 0


DIFFERENTIAL_CASES = [
    (r"abc", ["abc", "xxabcx", "ab", "", "abcabc"]),
    (r"a+b*", ["aaabbb", "b", "a", "xa", ""]),
    (r"[a-c]+", ["abcd", "dddd", "cab"]),
    (r"[^a-c]+", ["abcd", "dddd", "xyz"]),
    (r"(?:ab|cd)+", ["ababcd", "cdx", "x"]),
    (r"\d{2,4}", ["12345", "1", "a99b"]),
    (r"<[a-z]+>", ["<em>hi</em>", "< >", "no"]),
    (r"'[A-Za-z]", ["it's fine", "'", "x'Y"]),
    (r"\[\[[A-Za-z ]+\]\]", ["see [[Main Page]] now", "[[x", "[]"]),
    (r"&[a-z]+;", ["a&amp;b", "&&;", "& amp ;"]),
    (r"https?://[a-z.]+", ["go to http://foo.bar now", "https://x", "ftp://"]),
    (r"a.c", ["abc", "a\nc", "axc"]),
    (r"x?y", ["xy", "y", "x"]),
    (r"==+", ["== heading ==", "=", "==="]),
]


class TestDifferentialAgainstRe:
    @pytest.mark.parametrize("pattern,texts", DIFFERENTIAL_CASES)
    def test_search_spans_match(self, pattern, texts):
        ours = CompiledRegex(pattern)
        ref = pyre.compile(pattern)
        for text in texts:
            mine = ours.search(text).match
            theirs = ref.search(text)
            my_span = (mine.start, mine.end) if mine else None
            ref_span = theirs.span() if theirs else None
            assert my_span == ref_span, (pattern, text)

    @pytest.mark.parametrize("pattern,texts", DIFFERENTIAL_CASES)
    def test_findall_counts_match(self, pattern, texts):
        ours = CompiledRegex(pattern)
        ref = pyre.compile(pattern)
        for text in texts:
            matches, _ = ours.findall(text)
            assert len(matches) == len(ref.findall(text)), (pattern, text)

    def test_sub_matches_re(self):
        ours = CompiledRegex(r"[<>&]")
        out, n, _ = ours.sub("_", "a<b>&c")
        assert out == pyre.sub(r"[<>&]", "_", "a<b>&c")
        assert n == 3

    def test_sub_with_callable(self):
        ours = CompiledRegex(r"[a-z]+")
        out, n, _ = ours.sub(lambda s: s.upper(), "ab 12 cd")
        assert out == "AB 12 CD"
        assert n == 2

    @given(st.text(alphabet="ab'<> \n", max_size=60))
    @settings(max_examples=80)
    def test_texturize_pattern_property(self, text):
        """The Figure 11 apostrophe pattern agrees with re everywhere."""
        ours = CompiledRegex(r"'[A-Za-z]")
        ref = pyre.compile(r"'[A-Za-z]")
        mine = ours.search(text).match
        theirs = ref.search(text)
        assert (mine is None) == (theirs is None)
        if mine:
            assert (mine.start, mine.end) == theirs.span()


class TestIgnoreCase:
    def test_flag_detected(self):
        assert CompiledRegex(r"(?i)abc").ignore_case
        assert not CompiledRegex(r"abc").ignore_case

    @pytest.mark.parametrize("text", ["ABC", "abc", "AbC", "xxaBcyy", "ab"])
    def test_matches_re(self, text):
        ours = CompiledRegex(r"(?i)abc").search(text).match
        theirs = pyre.compile(r"(?i)abc").search(text)
        assert (ours is None) == (theirs is None)
        if ours:
            assert (ours.start, ours.end) == theirs.span()

    def test_class_folding(self):
        rx = CompiledRegex(r"(?i)[a-c]+")
        m = rx.search("xxBCAzz").match
        assert (m.start, m.end) == (2, 5)

    def test_non_letters_unaffected(self):
        rx = CompiledRegex(r"(?i)a1!")
        assert rx.search("A1!").match is not None
        assert rx.search("A2!").match is None

    @given(st.text(alphabet="aAbB'<", max_size=40))
    @settings(max_examples=60)
    def test_fold_property(self, text):
        ours = CompiledRegex(r"(?i)'[ab]")
        ref = pyre.compile(r"(?i)'[ab]")
        mine = ours.search(text).match
        theirs = ref.search(text)
        assert (mine is None) == (theirs is None)
        if mine:
            assert (mine.start, mine.end) == theirs.span()


class TestAnchors:
    def test_start_anchor(self):
        rx = CompiledRegex(r"^abc")
        assert rx.search("abcdef").match is not None
        assert rx.search("xabc").match is None

    def test_end_anchor(self):
        rx = CompiledRegex(r"abc$")
        assert rx.search("xxabc").match is not None
        assert rx.search("abcx").match is None

    def test_both_anchors(self):
        rx = CompiledRegex(r"^a+$")
        assert rx.search("aaa").match is not None
        assert rx.search("aab").match is None


class TestStateResume:
    """The state_after/resume pair that content reuse depends on."""

    def test_resume_equals_full_match(self):
        rx = CompiledRegex(r"https://[a-z]+/\?author=[a-z]+")
        content = "https://localhost/?author=gope"
        for split in (0, 5, 26, len(content)):
            state, last = rx.state_after(content, 0, split)
            assert state != DEAD
            end, _ = rx.resume(state, last, content, split)
            full = rx.match_prefix(content).match
            assert end == (full.end if full else None), split

    def test_state_after_dead_on_mismatch(self):
        rx = CompiledRegex(r"abc")
        state, _ = rx.state_after("zzz", 0, 3)
        assert state == DEAD

    def test_chars_examined_counted(self):
        rx = CompiledRegex(r"z")
        rx.search("aaaa")
        assert rx.stats.get("regex.chars_examined") >= 4


class TestSearchStartLimit:
    def test_limit_excludes_later_starts(self):
        rx = CompiledRegex(r"b+")
        outcome = rx.search("aaaabbb", start=0, start_limit=2)
        assert outcome.match is None

    def test_match_may_extend_past_limit(self):
        rx = CompiledRegex(r"ab+")
        outcome = rx.search("abbbb", start=0, start_limit=1)
        assert outcome.match is not None
        assert outcome.match.end == 5


class TestRegexManager:
    def test_compile_caches(self):
        mgr = RegexManager()
        a = mgr.compile("abc")
        b = mgr.compile("abc")
        assert a is b
        assert mgr.stats.get("regexmgr.compiles") == 1
        assert mgr.stats.get("regexmgr.cache_hits") == 1

    def test_publishes_fsm_via_symbol_table(self):
        from repro.runtime.symbols import SymbolTable
        table = SymbolTable("patterns")
        mgr = RegexManager(pattern_table=table)
        compiled = mgr.compile("abc")
        assert table.lookup("abc") is compiled.fsm
