"""Schema validation for the checked-in perf artifacts.

``python -m repro perf`` writes ``BENCH_perf.json`` at the repo root
and ``benchmarks/out/perf.txt`` next to the other benchmark outputs;
both are committed so the numbers travel with the code.  These tests
validate the committed files without regenerating them (regeneration
is the perf harness's job): required fields present, every ratio
finite and non-negative, and the rendered table consistent with the
JSON it was derived from.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.core.perf import (
    JSON_PATH,
    PERF_SCHEMA,
    format_perf_report,
    validate_perf_payload,
)

PERF_TXT = Path(__file__).resolve().parents[1] / "benchmarks" / "out" / "perf.txt"

pytestmark = pytest.mark.skipif(
    not JSON_PATH.exists(),
    reason="BENCH_perf.json not generated in this checkout",
)


@pytest.fixture(scope="module")
def payload() -> dict:
    return json.loads(JSON_PATH.read_text())


def _numbers(node, path=""):
    """Yield (dotted_path, value) for every number in the payload."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _numbers(value, f"{path}.{key}" if path else key)
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        yield path, node


class TestBenchPerfJson:
    def test_passes_the_harness_validator(self, payload):
        validate_perf_payload(payload)

    def test_schema_and_provenance_fields(self, payload):
        assert payload["schema"] == PERF_SCHEMA
        assert isinstance(payload["seed"], int)
        assert isinstance(payload["smoke"], bool)
        assert payload["host"]["python"]
        assert payload["host"]["platform"]
        assert set(payload["floors"]) >= {
            "string_speedup_min", "e2e_speedup_min", "asserted",
        }

    def test_every_number_is_finite_and_nonnegative(self, payload):
        checked = 0
        for path, value in _numbers(payload):
            assert math.isfinite(value), f"{path} = {value!r}"
            assert value >= 0, f"{path} = {value!r}"
            checked += 1
        assert checked >= 10, "payload suspiciously empty"

    def test_speedup_ratios_are_consistent(self, payload):
        m = payload["metrics"]
        string = m["string_accel"]
        assert string["speedup"] == pytest.approx(
            string["bytes_per_sec_optimized"]
            / string["bytes_per_sec_reference"], rel=1e-6,
        )
        hash_ = m["hash_table"]
        assert hash_["speedup"] == pytest.approx(
            hash_["ops_per_sec_optimized"]
            / hash_["ops_per_sec_reference"], rel=1e-6,
        )
        e2e = m["e2e_full_evaluation"]
        assert e2e["speedup"] == pytest.approx(
            e2e["seconds_reference"] / e2e["seconds_optimized"], rel=1e-6,
        )


class TestPerfTxt:
    def test_exists_next_to_the_other_benchmark_outputs(self):
        assert PERF_TXT.exists()

    def test_has_title_and_all_kernel_rows(self):
        text = PERF_TXT.read_text()
        assert "Wall-clock performance vs pinned reference kernels" in text
        for row in ("string accel", "hash table",
                    "full evaluation", "fleet"):
            assert row in text, f"missing row: {row}"

    def test_matches_the_json_it_was_rendered_from(self, payload):
        assert PERF_TXT.read_text().strip() \
            == format_perf_report(payload).strip()
