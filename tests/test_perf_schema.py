"""Schema validation for the checked-in perf artifacts.

``python -m repro perf`` writes ``BENCH_perf.json`` at the repo root
and ``benchmarks/out/perf.txt`` next to the other benchmark outputs;
both are committed so the numbers travel with the code.  These tests
validate the committed files without regenerating them (regeneration
is the perf harness's job): required fields present, every ratio
finite and non-negative, per-backend metric rows covering every
measured backend, and the rendered table consistent with the JSON it
was derived from.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.core.perf import (
    BULK_STRING_SPEEDUP_MIN,
    HASH_SPEEDUP_MIN,
    HISTORY_PATH,
    HISTORY_SCHEMA,
    JSON_PATH,
    PERF_SCHEMA,
    append_history,
    format_perf_report,
    string_floor,
    validate_history_row,
    validate_perf_payload,
)

PERF_TXT = Path(__file__).resolve().parents[1] / "benchmarks" / "out" / "perf.txt"

pytestmark = pytest.mark.skipif(
    not JSON_PATH.exists(),
    reason="BENCH_perf.json not generated in this checkout",
)


@pytest.fixture(scope="module")
def payload() -> dict:
    return json.loads(JSON_PATH.read_text())


def _numbers(node, path=""):
    """Yield (dotted_path, value) for every number in the payload."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _numbers(value, f"{path}.{key}" if path else key)
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        yield path, node


class TestBenchPerfJson:
    def test_passes_the_harness_validator(self, payload):
        validate_perf_payload(payload)

    def test_schema_and_provenance_fields(self, payload):
        assert payload["schema"] == PERF_SCHEMA
        assert isinstance(payload["seed"], int)
        assert isinstance(payload["smoke"], bool)
        assert payload["host"]["python"]
        assert payload["host"]["platform"]
        assert set(payload["floors"]) >= {
            "string_speedup_min", "e2e_speedup_min",
            "hash_speedup_min", "bulk_string_speedup_min", "asserted",
        }
        assert payload["floors"]["hash_speedup_min"] >= 1.2
        assert payload["floors"]["bulk_string_speedup_min"] \
            == BULK_STRING_SPEEDUP_MIN

    def test_backend_availability_report(self, payload):
        rows = payload["backends"]
        assert isinstance(rows, list) and rows
        names = [row["name"] for row in rows]
        assert "reference" in names
        assert "optimized" in names
        for row in rows:
            assert isinstance(row["available"], bool)
            assert isinstance(row["kernels"], list) and row["kernels"]
            if not row["available"]:
                assert row["reason"]

    def test_per_backend_rows_cover_every_measured_backend(
        self, payload
    ):
        measured = payload["measured_backends"]
        assert isinstance(measured, list) and measured
        assert "reference" not in measured
        for section in ("string_accel", "hash_table",
                        "e2e_full_evaluation"):
            backends = payload["metrics"][section]["backends"]
            assert set(backends) >= set(measured)

    def test_floors_hold_when_asserted(self, payload):
        # The committed artifact must come from a run that asserted the
        # floors — and every measured backend must actually clear its
        # floors (this is the regression the floors exist to catch,
        # including the 2.5x bar the bulk backend committed to).
        if not payload["floors"]["asserted"]:
            pytest.skip("committed payload is an unasserted smoke run")
        m = payload["metrics"]
        for name in payload["measured_backends"]:
            assert m["string_accel"]["backends"][name]["speedup"] \
                >= string_floor(name)
            assert m["hash_table"]["backends"][name]["speedup"] \
                >= HASH_SPEEDUP_MIN

    def test_every_number_is_finite_and_nonnegative(self, payload):
        checked = 0
        for path, value in _numbers(payload):
            assert math.isfinite(value), f"{path} = {value!r}"
            assert value >= 0, f"{path} = {value!r}"
            checked += 1
        assert checked >= 10, "payload suspiciously empty"

    def test_speedup_ratios_are_consistent(self, payload):
        m = payload["metrics"]
        string = m["string_accel"]
        for name, row in string["backends"].items():
            assert row["speedup"] == pytest.approx(
                row["bytes_per_sec"]
                / string["bytes_per_sec_reference"], rel=1e-6,
            ), f"string_accel[{name}]"
        hash_ = m["hash_table"]
        for name, row in hash_["backends"].items():
            assert row["speedup"] == pytest.approx(
                row["ops_per_sec"]
                / hash_["ops_per_sec_reference"], rel=1e-6,
            ), f"hash_table[{name}]"
        e2e = m["e2e_full_evaluation"]
        for name, row in e2e["backends"].items():
            assert row["speedup"] == pytest.approx(
                e2e["seconds_reference"] / row["seconds"], rel=1e-6,
            ), f"e2e[{name}]"

    def test_legacy_mirror_fields_track_the_default_backend(
        self, payload
    ):
        # The /1 top-level fields stay as mirrors of the `optimized`
        # rows so pre-registry tooling keeps parsing the artifact.
        m = payload["metrics"]
        opt = m["string_accel"]["backends"].get("optimized")
        if opt is None:
            pytest.skip("optimized backend not measured in this run")
        assert m["string_accel"]["bytes_per_sec_optimized"] \
            == pytest.approx(opt["bytes_per_sec"])
        assert m["string_accel"]["speedup"] \
            == pytest.approx(opt["speedup"])
        assert m["hash_table"]["ops_per_sec_optimized"] == pytest.approx(
            m["hash_table"]["backends"]["optimized"]["ops_per_sec"]
        )
        assert m["e2e_full_evaluation"]["seconds_optimized"] \
            == pytest.approx(
                m["e2e_full_evaluation"]["backends"]["optimized"]["seconds"]
            )

    def test_validator_rejects_corrupt_payloads(self, payload):
        for corrupt in (
            {**payload, "schema": "repro-perf/1"},
            {**payload, "measured_backends": []},
            {**payload, "metrics": {
                **payload["metrics"],
                "string_accel": {
                    **payload["metrics"]["string_accel"],
                    "backends": {},
                },
            }},
        ):
            with pytest.raises(ValueError):
                validate_perf_payload(corrupt)


class TestPerfTxt:
    def test_exists_next_to_the_other_benchmark_outputs(self):
        assert PERF_TXT.exists()

    def test_has_title_and_all_kernel_rows(self):
        text = PERF_TXT.read_text()
        assert "Wall-clock performance vs pinned reference kernels" in text
        for row in ("string accel", "hash table",
                    "full evaluation", "fleet"):
            assert row in text, f"missing row: {row}"

    def test_one_row_per_backend_per_kernel(self, payload):
        text = PERF_TXT.read_text()
        for name in payload["measured_backends"]:
            assert f"[{name}]" in text, f"missing backend rows: {name}"

    def test_matches_the_json_it_was_rendered_from(self, payload):
        assert PERF_TXT.read_text().strip() \
            == format_perf_report(payload).strip()


class TestBenchHistory:
    """The append-only perf trajectory (``BENCH_history.jsonl``)."""

    def test_committed_rows_pass_the_validator(self):
        # The trajectory file is shared: perf, serve, and calibrate
        # rows interleave, each dispatched to its own schema's
        # validator.
        from repro.calibrate.report import (
            CALIBRATE_HISTORY_SCHEMA,
            validate_calibrate_history_row,
        )
        from repro.serve.report import (
            SERVE_HISTORY_SCHEMA,
            validate_serve_history_row,
        )

        assert HISTORY_PATH.exists(), (
            "BENCH_history.jsonl missing: run `python -m repro perf`"
        )
        rows = [
            json.loads(line)
            for line in HISTORY_PATH.read_text().splitlines()
            if line.strip()
        ]
        assert rows, "history file exists but holds no rows"
        validators = {
            HISTORY_SCHEMA: validate_history_row,
            SERVE_HISTORY_SCHEMA: validate_serve_history_row,
            CALIBRATE_HISTORY_SCHEMA: validate_calibrate_history_row,
        }
        seen = set()
        for row in rows:
            schema = row.get("schema")
            assert schema in validators, (
                f"unknown history row schema {schema!r}"
            )
            validators[schema](row)
            seen.add(schema)
        assert HISTORY_SCHEMA in seen, "no perf rows in the trajectory"
        assert CALIBRATE_HISTORY_SCHEMA in seen, (
            "no calibrate rows in the trajectory: run "
            "`python -m repro calibrate --smoke`"
        )

    def test_append_writes_one_row_per_measured_backend(
        self, payload, tmp_path
    ):
        path = tmp_path / "history.jsonl"
        measured = payload["measured_backends"]
        append_history(payload, path)
        append_history(payload, path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2 * len(measured)
        backends_seen = []
        for line in lines:
            row = json.loads(line)
            validate_history_row(row)
            backend = row["backend"]
            backends_seen.append(backend)
            m = payload["metrics"]
            assert row["hash_speedup"] == pytest.approx(
                m["hash_table"]["backends"][backend]["speedup"]
            )
            assert row["floors_asserted"] == payload["floors"]["asserted"]
        assert backends_seen == measured * 2

    def test_legacy_rows_without_backend_still_validate(self, payload):
        from repro.core.perf import history_row

        row = history_row(payload)
        del row["backend"]
        validate_history_row(row)

    def test_calibrate_validator_rejects_corrupt_rows(self):
        from repro.calibrate.report import (
            CALIBRATE_HISTORY_SCHEMA,
            validate_calibrate_history_row,
        )

        committed = [
            json.loads(line)
            for line in HISTORY_PATH.read_text().splitlines()
            if line.strip()
            and json.loads(line).get("schema") == CALIBRATE_HISTORY_SCHEMA
        ]
        assert committed, "no committed calibrate history row to corrupt"
        good = committed[-1]
        validate_calibrate_history_row(good)
        for corrupt in (
            {**good, "schema": "repro-serve-history/1"},
            {**good, "mape_p99": -0.1},
            {**good, "mape_overall": "small"},
            {**good, "events": 0},
            {**good, "ok": "yes"},
            {**good, "seed": "42"},
            {**good, "host": {}},
            {**good, "recorded_utc": 12345},
        ):
            with pytest.raises(ValueError):
                validate_calibrate_history_row(corrupt)

    def test_validator_rejects_corrupt_rows(self, payload):
        from repro.core.perf import history_row

        good = history_row(payload)
        validate_history_row(good)
        assert good["backend"] in payload["measured_backends"]
        for corrupt in (
            {**good, "schema": "repro-perf/1"},
            {**good, "hash_speedup": 0.0},
            {**good, "e2e_speedup": "fast"},
            {**good, "smoke": "no"},
            {**good, "seed": "42"},
            {**good, "host": {}},
            {**good, "backend": ""},
            {**good, "backend": 7},
        ):
            with pytest.raises(ValueError):
                validate_history_row(corrupt)
