"""Schema validation for the checked-in perf artifacts.

``python -m repro perf`` writes ``BENCH_perf.json`` at the repo root
and ``benchmarks/out/perf.txt`` next to the other benchmark outputs;
both are committed so the numbers travel with the code.  These tests
validate the committed files without regenerating them (regeneration
is the perf harness's job): required fields present, every ratio
finite and non-negative, and the rendered table consistent with the
JSON it was derived from.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.core.perf import (
    HASH_SPEEDUP_MIN,
    HISTORY_PATH,
    HISTORY_SCHEMA,
    JSON_PATH,
    PERF_SCHEMA,
    append_history,
    format_perf_report,
    validate_history_row,
    validate_perf_payload,
)

PERF_TXT = Path(__file__).resolve().parents[1] / "benchmarks" / "out" / "perf.txt"

pytestmark = pytest.mark.skipif(
    not JSON_PATH.exists(),
    reason="BENCH_perf.json not generated in this checkout",
)


@pytest.fixture(scope="module")
def payload() -> dict:
    return json.loads(JSON_PATH.read_text())


def _numbers(node, path=""):
    """Yield (dotted_path, value) for every number in the payload."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _numbers(value, f"{path}.{key}" if path else key)
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        yield path, node


class TestBenchPerfJson:
    def test_passes_the_harness_validator(self, payload):
        validate_perf_payload(payload)

    def test_schema_and_provenance_fields(self, payload):
        assert payload["schema"] == PERF_SCHEMA
        assert isinstance(payload["seed"], int)
        assert isinstance(payload["smoke"], bool)
        assert payload["host"]["python"]
        assert payload["host"]["platform"]
        assert set(payload["floors"]) >= {
            "string_speedup_min", "e2e_speedup_min",
            "hash_speedup_min", "asserted",
        }
        assert payload["floors"]["hash_speedup_min"] >= 1.0

    def test_hash_floor_holds_when_asserted(self, payload):
        # The committed artifact must come from a run that asserted the
        # floors — and the hash kernel must actually clear its floor
        # (this is the regression the floor exists to catch).
        if not payload["floors"]["asserted"]:
            pytest.skip("committed payload is an unasserted smoke run")
        assert (
            payload["metrics"]["hash_table"]["speedup"]
            >= HASH_SPEEDUP_MIN
        )

    def test_every_number_is_finite_and_nonnegative(self, payload):
        checked = 0
        for path, value in _numbers(payload):
            assert math.isfinite(value), f"{path} = {value!r}"
            assert value >= 0, f"{path} = {value!r}"
            checked += 1
        assert checked >= 10, "payload suspiciously empty"

    def test_speedup_ratios_are_consistent(self, payload):
        m = payload["metrics"]
        string = m["string_accel"]
        assert string["speedup"] == pytest.approx(
            string["bytes_per_sec_optimized"]
            / string["bytes_per_sec_reference"], rel=1e-6,
        )
        hash_ = m["hash_table"]
        assert hash_["speedup"] == pytest.approx(
            hash_["ops_per_sec_optimized"]
            / hash_["ops_per_sec_reference"], rel=1e-6,
        )
        e2e = m["e2e_full_evaluation"]
        assert e2e["speedup"] == pytest.approx(
            e2e["seconds_reference"] / e2e["seconds_optimized"], rel=1e-6,
        )


class TestPerfTxt:
    def test_exists_next_to_the_other_benchmark_outputs(self):
        assert PERF_TXT.exists()

    def test_has_title_and_all_kernel_rows(self):
        text = PERF_TXT.read_text()
        assert "Wall-clock performance vs pinned reference kernels" in text
        for row in ("string accel", "hash table",
                    "full evaluation", "fleet"):
            assert row in text, f"missing row: {row}"

    def test_matches_the_json_it_was_rendered_from(self, payload):
        assert PERF_TXT.read_text().strip() \
            == format_perf_report(payload).strip()


class TestBenchHistory:
    """The append-only perf trajectory (``BENCH_history.jsonl``)."""

    def test_committed_rows_pass_the_validator(self):
        # The trajectory file is shared: perf rows and serve rows
        # interleave, each validated by its own schema's validator.
        from repro.serve.report import (
            SERVE_HISTORY_SCHEMA,
            validate_serve_history_row,
        )

        assert HISTORY_PATH.exists(), (
            "BENCH_history.jsonl missing: run `python -m repro perf`"
        )
        rows = [
            json.loads(line)
            for line in HISTORY_PATH.read_text().splitlines()
            if line.strip()
        ]
        assert rows, "history file exists but holds no rows"
        validators = {
            HISTORY_SCHEMA: validate_history_row,
            SERVE_HISTORY_SCHEMA: validate_serve_history_row,
        }
        seen = set()
        for row in rows:
            schema = row.get("schema")
            assert schema in validators, (
                f"unknown history row schema {schema!r}"
            )
            validators[schema](row)
            seen.add(schema)
        assert HISTORY_SCHEMA in seen, "no perf rows in the trajectory"

    def test_append_derives_a_valid_row_and_only_appends(
        self, payload, tmp_path
    ):
        path = tmp_path / "history.jsonl"
        append_history(payload, path)
        append_history(payload, path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            row = json.loads(line)
            validate_history_row(row)
            assert row["hash_speedup"] == pytest.approx(
                payload["metrics"]["hash_table"]["speedup"]
            )
            assert row["floors_asserted"] == payload["floors"]["asserted"]

    def test_validator_rejects_corrupt_rows(self, payload):
        from repro.core.perf import history_row

        good = history_row(payload)
        validate_history_row(good)
        for corrupt in (
            {**good, "schema": "repro-perf/1"},
            {**good, "hash_speedup": 0.0},
            {**good, "e2e_speedup": "fast"},
            {**good, "smoke": "no"},
            {**good, "seed": "42"},
            {**good, "host": {}},
        ):
            with pytest.raises(ValueError):
                validate_history_row(corrupt)
