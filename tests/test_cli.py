"""Smoke tests: the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCli:
    def test_fig1(self, capsys):
        out = run_cli(capsys, "fig1", "--seed", "3")
        assert "Figure 1" in out
        assert "wordpress" in out

    def test_fig7(self, capsys):
        out = run_cli(capsys, "fig7", "--requests", "2")
        assert "Figure 7" in out
        assert "512" in out

    def test_fig14(self, capsys):
        out = run_cli(capsys, "fig14", "--requests", "2")
        assert "Figure 14" in out
        assert "average" in out

    def test_fig15(self, capsys):
        out = run_cli(capsys, "fig15", "--requests", "2")
        assert "regex accel" in out

    def test_energy(self, capsys):
        out = run_cli(capsys, "energy", "--requests", "2")
        assert "energy saving" in out

    def test_area(self, capsys):
        out = run_cli(capsys, "area")
        assert "hash-table" in out
        assert "TOTAL" in out

    def test_fig12(self, capsys):
        out = run_cli(capsys, "fig12", "--requests", "2")
        assert "Figure 12" in out

    def test_ablation(self, capsys):
        out = run_cli(capsys, "ablation", "--requests", "2")
        assert "GET-only" in out

    def test_fleet_smoke(self, capsys):
        out = run_cli(capsys, "fleet", "--smoke", "--requests", "2")
        assert "Fleet:" in out
        assert "accel-4" in out
        assert "accel-4-nocache" in out
        assert "accel-4+storm" in out
        assert "p2c" in out

    def test_fleet_smoke_is_deterministic(self, capsys):
        a = run_cli(capsys, "fleet", "--smoke", "--requests", "2",
                    "--seed", "11")
        b = run_cli(capsys, "fleet", "--smoke", "--requests", "2",
                    "--seed", "11")
        assert a == b

    def test_unknown_command_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["make-coffee"])
