"""Integration tests: the experiment harness reproduces the paper's
result *shapes* (who wins, by roughly what factor, where trends bend).

Exact paper values are recorded in EXPERIMENTS.md; these tests pin the
qualitative claims with tolerant bands so the suite stays robust to
seed changes.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import (
    categorization,
    hash_hit_rate_sweep,
    leaf_distribution,
    mitigation_effect,
    post_mitigation_breakdown,
    regex_opportunity,
    run_app_experiment,
    uarch_characterization,
)
from repro.core.report import (
    energy_report,
    figure14_report,
    figure15_report,
    format_table,
)
from repro.workloads.apps import drupal, mediawiki, php_applications, wordpress


@pytest.fixture(scope="module")
def results():
    """One full evaluation shared by all Figure 14/15 tests."""
    return {
        app.name: run_app_experiment(app, requests=4)
        for app in php_applications()
    }


class TestFigure1:
    def test_profile_shapes(self):
        dist = leaf_distribution()
        for name in ("wordpress", "drupal", "mediawiki"):
            cum = dist[name]
            assert 0.09 <= cum[0] <= 0.13          # hottest ≈ 10–12 %
            assert 0.55 <= cum[99] <= 0.72         # ~100 fns ≈ 65 %
        for name in ("specweb-banking", "specweb-ecommerce"):
            assert dist[name][4] >= 0.88           # few fns ≈ 90 %


class TestFigure2:
    @pytest.fixture(scope="class")
    def wp_uarch(self):
        # Steady-state rates need a trace long enough to train the
        # predictor across the hot-site population (≈400 k, as used by
        # the Figure 2 bench); shorter traces inflate MPKI with cold
        # noise.
        return uarch_characterization(wordpress(), instructions=400_000)

    def test_php_branch_mpki_band(self, wp_uarch):
        """§2: PHP apps sit in the 14–18 MPKI band under 32 KB TAGE."""
        assert 12.0 <= wp_uarch.branch_mpki <= 22.0

    def test_btb_pressure(self, wp_uarch):
        """Figure 2a: 64K-entry BTB hit rate is 'modest' (~96 %)."""
        assert wp_uarch.btb_hit_rate_64k < 0.985
        assert wp_uarch.btb_hit_rate_64k > wp_uarch.btb_hit_rate_4k

    def test_cache_mpkis_modest(self, wp_uarch):
        """Figure 2b: L1s behave like SPEC; L2 MPKI very low."""
        assert wp_uarch.l1i_mpki < 20.0
        assert wp_uarch.l2_mpki < wp_uarch.l1d_mpki


class TestFigure3And4:
    def test_mitigation_remaining_in_band(self):
        for app in php_applications():
            _, _, remaining = mitigation_effect(app)
            assert 0.85 <= remaining <= 0.92  # §5.2: avg ≈ 88.15 %

    def test_four_categories_dominate_post_mitigation(self):
        shares = categorization(wordpress())
        four = sum(v for k, v in shares.items() if k != "other")
        assert 0.25 <= four <= 0.45


class TestFigure5:
    def test_breakdown_per_app(self):
        breakdown = post_mitigation_breakdown()
        assert set(breakdown) == {"wordpress", "drupal", "mediawiki"}
        # Drupal's string+regex share is the smallest (Section 5.3).
        sr = {app: b["string"] + b["regex"] for app, b in breakdown.items()}
        assert sr["drupal"] == min(sr.values())
        for b in breakdown.values():
            assert abs(sum(b.values()) - 1.0) < 1e-6


class TestFigure7:
    def test_hit_rate_vs_size(self):
        sweep = hash_hit_rate_sweep(
            wordpress(), sizes=(1, 4, 32, 256, 512), requests=3
        )
        rates = [sweep[s] for s in (1, 4, 32, 256, 512)]
        assert all(a <= b + 0.02 for a, b in zip(rates, rates[1:]))
        # "Even a hash table with only 256 entries observes ... about 80%."
        assert sweep[256] >= 0.70
        # Tiny tables stay 'decent' because SETs never miss.
        assert sweep[1] >= 0.15


class TestFigure12:
    def test_opportunity_per_app(self):
        opp = regex_opportunity(requests=2)
        for app, frac in opp.items():
            assert 0.15 <= frac <= 0.85, app


class TestFigure14(object):
    def test_average_band(self, results):
        priors = sum(r.time_with_priors for r in results.values()) / 3
        final = sum(r.time_with_accelerators for r in results.values()) / 3
        assert priors == pytest.approx(0.8815, abs=0.015)
        assert final == pytest.approx(0.7022, abs=0.02)

    def test_drupal_benefits_least(self, results):
        benefits = {
            name: r.accel_benefit_total for name, r in results.items()
        }
        assert benefits["drupal"] == min(benefits.values())

    def test_monotone_improvement(self, results):
        for r in results.values():
            assert r.time_with_accelerators < r.time_with_priors < 1.0


class TestFigure15:
    def test_average_ordering(self, results):
        """§5.3: heap 7.29 > hash 6.45 > string 4.51 > regex 1.96."""
        avg = {
            k: sum(r.benefits[k] for r in results.values()) / 3
            for k in ("heap", "hash", "string", "regex")
        }
        assert avg["heap"] > avg["hash"] > avg["string"] > avg["regex"]
        assert avg["heap"] == pytest.approx(0.0729, abs=0.012)
        assert avg["hash"] == pytest.approx(0.0645, abs=0.012)
        assert avg["string"] == pytest.approx(0.0451, abs=0.012)
        assert avg["regex"] == pytest.approx(0.0196, abs=0.012)

    def test_wordpress_leads_regex_benefit(self, results):
        regex = {name: r.benefits["regex"] for name, r in results.items()}
        assert regex["wordpress"] == max(regex.values())
        assert regex["drupal"] == min(regex.values())

    def test_refcount_is_largest_mitigation(self, results):
        """§5.2: refcounting contributes ≈4.42 % of the 11.85 %."""
        avg = sum(r.refcount_saving for r in results.values()) / 3
        assert avg == pytest.approx(0.0442, abs=0.01)


class TestEnergy:
    def test_ordering_matches_paper(self, results):
        """§5.2: WordPress −26.06 % > MediaWiki −19.81 % > Drupal −16.75 %."""
        e = {name: r.energy_saving for name, r in results.items()}
        assert e["wordpress"] > e["mediawiki"] > e["drupal"]
        assert 0.10 <= e["drupal"] <= 0.25
        assert 0.20 <= e["wordpress"] <= 0.32


class TestReports:
    def test_reports_render(self, results):
        rs = list(results.values())
        for text in (figure14_report(rs), figure15_report(rs),
                     energy_report(rs)):
            assert "wordpress" in text
            assert "average" in text
            assert "%" in text

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:2])


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_app_experiment(drupal(), seed=5, requests=2)
        b = run_app_experiment(drupal(), seed=5, requests=2)
        assert a.time_with_accelerators == b.time_with_accelerators
        assert a.benefits == b.benefits
        assert a.energy_saving == b.energy_saving

    def test_different_seed_different_traces(self):
        a = run_app_experiment(mediawiki(), seed=5, requests=2)
        b = run_app_experiment(mediawiki(), seed=6, requests=2)
        # Macro results stay in band but raw cycle counts differ.
        assert a.comparisons["hash"].software.cycles != \
               b.comparisons["hash"].software.cycles
