"""Determinism-under-parallelism and experiment-cache tests.

The contract: every sweep produces byte-identical printed reports at
any job count, and the experiment cache serves repeated cells without
changing results.
"""

from __future__ import annotations

import os

import pytest

from repro.core.expcache import EXPERIMENT_CACHE, ExperimentCache, cache_key
from repro.core.parallel import PARALLEL_STATS, parallel_map, resolve_jobs
from repro.workloads.loadgen import TRACE_CACHE


def _clear_caches():
    EXPERIMENT_CACHE.clear()
    TRACE_CACHE.clear()


def _square(x):
    return x * x


class TestResolveJobs:
    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)


class TestParallelMap:
    def test_order_preserved_inline_and_pooled(self):
        items = list(range(20))
        expected = [x * x for x in items]
        assert parallel_map(_square, items, jobs=1) == expected
        assert parallel_map(_square, items, jobs=4) == expected

    def test_cache_serves_hits(self):
        cache = ExperimentCache()
        calls = []

        def fn(x):
            calls.append(x)
            return x + 1

        key_fn = lambda x: cache_key("t", x)
        first = parallel_map(fn, [1, 2, 3], jobs=1, cache=cache,
                             key_fn=key_fn)
        second = parallel_map(fn, [1, 2, 3], jobs=1, cache=cache,
                              key_fn=key_fn)
        assert first == second == [2, 3, 4]
        assert calls == [1, 2, 3]  # second pass fully cached
        assert cache.stats.get("expcache.hits") == 3

    def test_pool_task_counters(self):
        before = PARALLEL_STATS.get("parallel.pool_tasks")
        parallel_map(_square, list(range(8)), jobs=2)
        assert PARALLEL_STATS.get("parallel.pool_tasks") == before + 8


class TestExperimentCache:
    def test_env_kill_switch(self, monkeypatch):
        cache = ExperimentCache()
        monkeypatch.setenv("REPRO_EXPCACHE", "0")
        cache.store("k", 1)
        assert cache.lookup("k") == (False, None)
        monkeypatch.delenv("REPRO_EXPCACHE")
        cache.store("k", 1)
        assert cache.lookup("k") == (True, 1)

    def test_disabled_scope(self):
        cache = ExperimentCache()
        cache.store("k", 1)
        with cache.disabled_scope():
            assert cache.lookup("k") == (False, None)
        assert cache.lookup("k") == (True, 1)

    def test_cache_key_stability(self):
        assert cache_key("a", 1, (2, 3)) == cache_key("a", 1, (2, 3))
        assert cache_key("a", 1) != cache_key("a", 2)


class TestJobsByteIdentity:
    """Same seed, --jobs 1 vs --jobs 4: byte-identical printed reports."""

    def test_full_evaluation_reports(self):
        from repro.core.experiment import full_evaluation
        from repro.core.report import (
            energy_report, figure14_report, figure15_report,
        )

        _clear_caches()
        r1 = full_evaluation(requests=2, jobs=1)
        _clear_caches()
        r4 = full_evaluation(requests=2, jobs=4)
        assert figure14_report(r1) == figure14_report(r4)
        assert figure15_report(r1) == figure15_report(r4)
        assert energy_report(r1) == energy_report(r4)

    def test_fleet_matrix_report(self):
        from repro.core.report import fleet_report
        from repro.fleet.simulator import FleetConfig, run_fleet_matrix
        from repro.fleet.topology import homogeneous_fleet

        topos = [
            homogeneous_fleet("hw-3", (1.0, 1.2), 3),
            homogeneous_fleet("sw-3", (2.0, 2.4), 3, kind="software"),
        ]
        cfg = FleetConfig(requests=200)
        balancers = ["p2c", "round-robin"]
        _clear_caches()
        f1 = run_fleet_matrix(topos, balancers, cfg, jobs=1)
        _clear_caches()
        f4 = run_fleet_matrix(topos, balancers, cfg, jobs=4)
        assert fleet_report(f1) == fleet_report(f4)

    def test_sensitivity_sweeps(self):
        from repro.core.sensitivity import (
            sweep_probe_width,
            sweep_reuse_content_bytes,
            sweep_reuse_entries,
            sweep_segment_size,
        )

        _clear_caches()
        serial = (
            sweep_probe_width(jobs=1),
            sweep_segment_size(jobs=1),
            sweep_reuse_content_bytes(jobs=1),
            sweep_reuse_entries(jobs=1),
        )
        _clear_caches()
        pooled = (
            sweep_probe_width(jobs=4),
            sweep_segment_size(jobs=4),
            sweep_reuse_content_bytes(jobs=4),
            sweep_reuse_entries(jobs=4),
        )
        assert repr(serial) == repr(pooled)

    def test_repro_jobs_env_applies(self, monkeypatch):
        """REPRO_JOBS routes sweeps through the pool with no API change."""
        from repro.core.experiment import full_evaluation
        from repro.core.report import figure14_report

        _clear_caches()
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        r1 = full_evaluation(requests=2)
        _clear_caches()
        monkeypatch.setenv("REPRO_JOBS", "3")
        r3 = full_evaluation(requests=2)
        assert figure14_report(r1) == figure14_report(r3)


class TestTraceCacheSharing:
    def test_same_stream_object_per_key(self):
        from repro.workloads.apps import wordpress

        TRACE_CACHE.clear()
        a = TRACE_CACHE.stream(wordpress(), 42)
        b = TRACE_CACHE.stream(wordpress(), 42)
        assert a is b
        assert TRACE_CACHE.stream(wordpress(), 43) is not a

    def test_traces_identical_to_fresh_generator(self):
        from repro.common.rng import DeterministicRng
        from repro.workloads.apps import wordpress
        from repro.workloads.loadgen import LoadGenerator

        TRACE_CACHE.clear()
        stream = TRACE_CACHE.stream(wordpress(), 11)
        lg = LoadGenerator(wordpress(), DeterministicRng(11),
                           warmup_requests=0)
        for i in range(3):
            assert repr(stream.trace(i)) == repr(lg.next_request())
