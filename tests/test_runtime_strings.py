"""Unit + property tests: software string library (results must match
Python's native string semantics exactly; costs must be recorded)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.strings import HTML_ESCAPES, StringLibrary

text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=200
)


@pytest.fixture
def lib() -> StringLibrary:
    return StringLibrary()


class TestScanFunctions:
    def test_strlen(self, lib):
        assert lib.strlen("hello").value == 5

    def test_strpos_found(self, lib):
        assert lib.strpos("hello world", "world").value == 6

    def test_strpos_missing(self, lib):
        assert lib.strpos("hello", "zzz").value == -1

    def test_strpos_offset(self, lib):
        assert lib.strpos("abcabc", "abc", 1).value == 3

    def test_strcmp(self, lib):
        assert lib.strcmp("a", "b").value == -1
        assert lib.strcmp("b", "a").value == 1
        assert lib.strcmp("a", "a").value == 0

    def test_strspn_class(self, lib):
        assert lib.strspn_class("abc123", "abc").value == 3


class TestTransformFunctions:
    def test_str_replace(self, lib):
        assert lib.str_replace("a", "X", "banana").value == "bXnXnX"

    def test_case_functions(self, lib):
        assert lib.strtolower("HeLLo").value == "hello"
        assert lib.strtoupper("HeLLo").value == "HELLO"

    def test_trim(self, lib):
        assert lib.trim("  x  ").value == "x"
        assert lib.trim("--x--", "-").value == "x"

    def test_strtr(self, lib):
        assert lib.strtr("a'b\"c", {"'": "X", '"': "Y"}).value == "aXbYc"

    def test_substr(self, lib):
        assert lib.substr("abcdef", 2).value == "cdef"
        assert lib.substr("abcdef", 1, 3).value == "bcd"

    def test_concat(self, lib):
        assert lib.concat(["<a", ' href="x"', ">"]).value == '<a href="x">'

    def test_htmlspecialchars(self, lib):
        assert lib.htmlspecialchars("<b>&'\"").value == (
            "&lt;b&gt;&amp;&#039;&quot;"
        )


class TestCostAccounting:
    def test_every_call_counted(self, lib):
        lib.strpos("hello", "l")
        lib.trim(" a ")
        assert lib.stats.get("strlib.calls") == 2

    def test_uops_scale_with_length(self, lib):
        small = lib.strtolower("x" * 10).uops
        large = lib.strtolower("x" * 1000).uops
        assert large > small * 10

    def test_scan_cheaper_than_transform_per_byte(self, lib):
        scan = lib.strpos("x" * 512 + "y", "y").uops
        transform = lib.strtolower("x" * 512).uops
        assert scan < transform

    def test_totals_accumulate(self, lib):
        lib.strtoupper("abc")
        lib.strtolower("abc")
        assert lib.total_uops > 0
        assert lib.total_cycles > 0


class TestPropertyBased:
    @given(text, text.filter(lambda s: len(s) > 0))
    @settings(max_examples=80)
    def test_strpos_matches_python(self, haystack, needle):
        lib = StringLibrary()
        assert lib.strpos(haystack, needle).value == haystack.find(needle)

    @given(text)
    @settings(max_examples=60)
    def test_case_roundtrip_matches_python(self, s):
        lib = StringLibrary()
        assert lib.strtolower(s).value == s.lower()
        assert lib.strtoupper(s).value == s.upper()

    @given(text)
    @settings(max_examples=60)
    def test_htmlspecialchars_escapes_all(self, s):
        lib = StringLibrary()
        out = lib.htmlspecialchars(s).value
        for ch, esc in HTML_ESCAPES.items():
            # No raw metacharacter survives except inside entities.
            stripped = out
            for e in HTML_ESCAPES.values():
                stripped = stripped.replace(e, "")
            assert ch not in stripped

    @given(st.lists(text, max_size=8))
    @settings(max_examples=60)
    def test_concat_matches_join(self, parts):
        lib = StringLibrary()
        assert lib.concat(parts).value == "".join(parts)

    @given(text, st.integers(min_value=0, max_value=220))
    @settings(max_examples=60)
    def test_substr_matches_python(self, s, start):
        lib = StringLibrary()
        assert lib.substr(s, start).value == s[start:]
