"""Unit tests: the cost model and report formatting."""

from __future__ import annotations

import pytest

from repro.core.costs import DEFAULT_COSTS, CostModel
from repro.core.report import format_table, pct


class TestCostModel:
    def test_uops_to_cycles(self):
        model = CostModel(effective_ipc=2.9)
        assert model.uops_to_cycles(29.0) == pytest.approx(10.0)

    def test_hash_walk_composition(self):
        model = CostModel()
        one_walk = model.hash_walk_uops(probes=2, key_bytes=10, ops=1)
        assert one_walk == pytest.approx(
            model.hash_walk_base_uops
            + 2 * model.hash_walk_per_probe_uops
            + 10 * model.hash_walk_per_key_byte_uops
        )

    def test_hash_walk_scales_linearly(self):
        model = CostModel()
        one = model.hash_walk_uops(1, 10, 1)
        ten = model.hash_walk_uops(10, 100, 10)
        assert ten == pytest.approx(10 * one)

    def test_paper_constants(self):
        """§5.2's measured software costs are the model's constants."""
        assert DEFAULT_COSTS.malloc_uops == 69.0
        assert DEFAULT_COSTS.free_uops == 37.0

    def test_typical_walk_near_paper_average(self):
        """Typical traversal (≈1.6 probes, ≈14 key bytes) ≈ 90.66 µops."""
        model = CostModel()
        typical = model.hash_walk_uops(probes=16, key_bytes=140, ops=10) / 10
        assert typical == pytest.approx(90.66, rel=0.1)

    def test_model_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.malloc_uops = 1.0


class TestReportFormatting:
    def test_pct(self):
        assert pct(0.1234) == "12.34%"
        assert pct(0.1234, digits=1) == "12.3%"
        assert pct(1.0) == "100.00%"

    def test_format_table_pads_columns(self):
        out = format_table(["name", "v"], [["a", "1"], ["longer", "2"]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len({len(line.rstrip()) for line in lines[2:]}) <= 2

    def test_format_table_title(self):
        out = format_table(["x"], [["1"]], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out
