"""Integration tests: per-request latency distributions."""

from __future__ import annotations

import pytest

from repro.core.latency import (
    LatencyDistribution,
    percentile,
    request_latency_report,
)


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_distribution_helpers(self):
        d = LatencyDistribution(samples=[1.0, 2.0, 3.0])
        assert d.mean == pytest.approx(2.0)
        assert d.p(50) == 2.0


class TestRequestLatency:
    @pytest.fixture(scope="class", params=["wordpress", "drupal", "mediawiki"])
    def report(self, request):
        return request_latency_report(request.param, requests=8)

    def test_pages_identical(self, report):
        assert report.pages_identical

    def test_accelerated_is_faster_at_every_quantile(self, report):
        for q in (50, 95, 99):
            assert report.accelerated.p(q) < report.software.p(q), q

    def test_speedups_in_plausible_band(self, report):
        """Backend-only speedups exceed the whole-app Figure 14 ratio
        (these cycles cover just the accelerated categories)."""
        assert 1.2 <= report.mean_speedup <= 6.0
        assert 1.1 <= report.p99_speedup <= 6.0

    def test_samples_counted(self, report):
        assert len(report.software.samples) == 8
        assert len(report.accelerated.samples) == 8

    def test_requests_vary(self, report):
        assert len(set(report.software.samples)) > 1
