"""Determinism and validation tests: server model + load generator.

Companions to ``test_server.py``, focused on the properties the
resilience layer leans on: same seed → same curve, same capacity,
same fault schedule; and the input validation / early-exit behavior
of the queueing helpers.
"""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.resilience import FaultInjector, FaultScenario
from repro.workloads import LoadGenerator, TraceSummary
from repro.workloads.apps import wordpress
from repro.workloads.server import (
    ServerConfig,
    WebServerSimulator,
    latency_curve,
    slo_capacity,
)

SAMPLE = [60.0, 100.0, 140.0]


class TestSeedDeterminism:
    def test_latency_curve_reproducible(self):
        cfg = ServerConfig(workers=2, requests=600)
        a = latency_curve(SAMPLE, loads=(0.4, 0.7), config=cfg, seed=23)
        b = latency_curve(SAMPLE, loads=(0.4, 0.7), config=cfg, seed=23)
        assert [(p.mean_latency, p.p99_latency) for p in a] \
            == [(p.mean_latency, p.p99_latency) for p in b]

    def test_latency_curve_seed_sensitivity(self):
        cfg = ServerConfig(workers=2, requests=600)
        a = latency_curve(SAMPLE, loads=(0.7,), config=cfg, seed=23)
        b = latency_curve(SAMPLE, loads=(0.7,), config=cfg, seed=24)
        assert a[0].p99_latency != b[0].p99_latency

    def test_slo_capacity_reproducible(self):
        cfg = ServerConfig(workers=2, requests=500)
        caps = {slo_capacity(SAMPLE, 400.0, cfg, seed=23)
                for _ in range(3)}
        assert len(caps) == 1

    def test_fault_schedule_reproducible(self):
        scenario = FaultScenario("t", accel_fault_rate=0.1,
                                 crash_mtbf_services=200.0)
        schedules = [
            FaultInjector(
                scenario, DeterministicRng(23), mean_service_cycles=100.0
            ).schedule(1_000_000.0, workers=4)
            for _ in range(2)
        ]
        assert schedules[0].windows == schedules[1].windows
        assert schedules[0].crashes == schedules[1].crashes


class TestServerValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="worker"):
            ServerConfig(workers=0)

    def test_rejects_zero_requests(self):
        with pytest.raises(ValueError, match="request"):
            ServerConfig(requests=0)

    def test_rejects_nonfinite_load(self):
        sim = WebServerSimulator([100.0], ServerConfig(workers=1,
                                                       requests=10))
        with pytest.raises(ValueError, match="offered load"):
            sim.run(float("inf"))
        with pytest.raises(ValueError, match="offered load"):
            sim.run(float("nan"))
        with pytest.raises(ValueError, match="offered load"):
            sim.run(-0.5)


class TestSloCapacityScan:
    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError, match="resolution"):
            slo_capacity(SAMPLE, 400.0, resolution=0.0)

    def test_rejects_bad_max_load(self):
        with pytest.raises(ValueError, match="max_load"):
            slo_capacity(SAMPLE, 400.0, max_load=0.0)
        with pytest.raises(ValueError, match="max_load"):
            slo_capacity(SAMPLE, 400.0, max_load=1.5)

    def test_max_load_caps_the_answer(self):
        cfg = ServerConfig(workers=4, requests=400)
        generous_slo = 1e9   # never violated: the cap is max_load
        cap = slo_capacity(SAMPLE, generous_slo, cfg, max_load=0.30,
                           resolution=0.1)
        assert cap <= 0.30

    def test_early_exit_matches_full_scan(self):
        """Stopping after two consecutive misses returns the same
        capacity as scanning every load (monotonicity assumption)."""
        cfg = ServerConfig(workers=2, requests=500)
        slo = 250.0
        fast = slo_capacity(SAMPLE, slo, cfg, resolution=0.05)
        # Fine resolution forces many points past the knee; the answer
        # must still agree at the shared grid.
        assert fast == slo_capacity(SAMPLE, slo, cfg, resolution=0.05,
                                    max_load=1.0)

    def test_tight_slo_gives_zero_capacity(self):
        cfg = ServerConfig(workers=1, requests=300)
        assert slo_capacity(SAMPLE, 1.0, cfg) == 0.0


class TestLoadGeneratorWarmup:
    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError, match="warmup"):
            LoadGenerator(wordpress(), DeterministicRng(3),
                          warmup_requests=-1)

    def test_summary_splits_warmup_and_measured(self):
        gen = LoadGenerator(wordpress(), DeterministicRng(3),
                            warmup_requests=4)
        traces = gen.run(measured_requests=10)
        summary = gen.summarize(traces)
        assert isinstance(summary, TraceSummary)
        assert summary.warmup_requests == 4
        assert summary.measured_requests == 10
        assert summary.total_requests == 14
        assert summary.warmup_ops > 0
        assert summary.measured_ops > summary.warmup_ops

    def test_zero_warmup_summary(self):
        gen = LoadGenerator(wordpress(), DeterministicRng(3),
                            warmup_requests=0)
        summary = gen.summarize(gen.run(measured_requests=6))
        assert summary.warmup_requests == 0
        assert summary.warmup_ops == 0
        assert summary.total_requests == 6
