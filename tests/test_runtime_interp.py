"""Unit + integration tests: the MiniPHP template interpreter."""

from __future__ import annotations

import pytest

from repro.runtime.interp import (
    AcceleratedBackend,
    MiniPhpError,
    MiniPhpInterpreter,
    SoftwareBackend,
    split_template,
    tokenize_code,
)


def render(template: str, variables=None, backend=None) -> str:
    interp = MiniPhpInterpreter(backend or SoftwareBackend())
    return interp.render(template, variables or {})


class TestLexer:
    def test_token_kinds(self):
        toks = tokenize_code("$x = strtoupper('hi') . 42;")
        kinds = [t.kind for t in toks]
        assert kinds == ["var", "op", "name", "op", "string", "op", "op",
                         "number", "op"]

    def test_keywords_detected(self):
        toks = tokenize_code("foreach ($a as $v):")
        assert toks[0].kind == "kw"

    def test_double_arrow_single_token(self):
        toks = tokenize_code("'k' => 1")
        assert [t.text for t in toks] == ["'k'", "=>", "1"]

    def test_bad_character_raises(self):
        with pytest.raises(MiniPhpError):
            tokenize_code("$x = @!")


class TestSplitTemplate:
    def test_literals_and_tags(self):
        segments = split_template("a<?= $x ?>b<?php $y = 1; ?>c")
        assert [(s.kind, s.body) for s in segments] == [
            ("literal", "a"), ("echo", "$x"), ("literal", "b"),
            ("code", "$y = 1;"), ("literal", "c"),
        ]

    def test_unterminated_tag(self):
        with pytest.raises(MiniPhpError):
            split_template("<?php forever")


class TestExpressions:
    def test_echo_literal(self):
        assert render("<?= 'hi' ?>") == "hi"

    def test_echo_number_and_bool(self):
        assert render("<?= 5 ?>|<?= true ?>|<?= false ?>") == "5|1|"

    def test_variables(self):
        assert render("<?= $x ?>", {"x": "v"}) == "v"

    def test_undefined_variable_raises(self):
        with pytest.raises(MiniPhpError):
            render("<?= $nope ?>")

    def test_concatenation(self):
        assert render("<?= 'a' . 'b' . 'c' ?>") == "abc"

    def test_comparisons(self):
        assert render("<?= 2 > 1 ?>") == "1"
        assert render("<?= 'a' == 'b' ?>") == ""

    def test_string_escapes(self):
        assert render("<?= 'it\\'s' ?>") == "it's"
        assert render('<?= "a\\nb" ?>') == "a\nb"

    def test_array_literal_and_index(self):
        out = render("<?php $a = array('k' => 'v'); ?><?= $a['k'] ?>")
        assert out == "v"

    def test_array_positional_keys(self):
        out = render("<?php $a = array('x', 'y'); ?><?= $a['1'] ?>")
        assert out == "y"

    def test_parenthesized(self):
        assert render("<?= ('a' . 'b') . 'c' ?>") == "abc"


class TestFunctions:
    def test_string_functions(self):
        assert render("<?= strtoupper('ab') ?>") == "AB"
        assert render("<?= strtolower('AB') ?>") == "ab"
        assert render("<?= trim('  x ') ?>") == "x"
        assert render("<?= strlen('abcd') ?>") == "4"
        assert render("<?= strpos('hello', 'll') ?>") == "2"
        assert render("<?= str_replace('a', 'o', 'cat') ?>") == "cot"
        assert render("<?= substr('abcdef', 2, 3) ?>") == "cde"
        assert render("<?= htmlspecialchars('<b>') ?>") == "&lt;b&gt;"

    def test_preg_functions(self):
        assert render("<?= preg_match('<[a-z]+>', 'a <em> b') ?>") == "1"
        assert render("<?= preg_replace('[0-9]', '#', 'a1b2') ?>") == "a#b#"

    def test_implode(self):
        out = render(
            "<?php $a = array('x', 'y', 'z'); ?><?= implode(', ', $a) ?>"
        )
        assert out == "x, y, z"

    def test_extract(self):
        out = render(
            "<?php $vars = array('name' => 'gope'); "
            "extract($vars); ?><?= $name ?>"
        )
        assert out == "gope"

    def test_count(self):
        assert render("<?php $a = array(1, 2, 3); ?><?= count($a) ?>") == "3"

    def test_unknown_function_raises(self):
        with pytest.raises(MiniPhpError):
            render("<?= eval_danger('x') ?>")


class TestStatements:
    def test_assignment(self):
        assert render("<?php $x = 'v'; ?><?= $x ?>") == "v"

    def test_multiple_statements_in_one_island(self):
        assert render("<?php $a = 'x'; $b = $a . 'y'; ?><?= $b ?>") == "xy"

    def test_indexed_assignment(self):
        out = render(
            "<?php $a = array(); $a['k'] = 'v'; ?><?= $a['k'] ?>"
        )
        assert out == "v"

    def test_echo_statement(self):
        assert render("<?php echo 'direct'; ?>") == "direct"


class TestControlFlow:
    def test_foreach_values(self):
        out = render(
            "<?php $a = array('x', 'y'); ?>"
            "<?php foreach ($a as $v): ?>[<?= $v ?>]<?php endforeach; ?>"
        )
        assert out == "[x][y]"

    def test_foreach_key_value(self):
        out = render(
            "<?php $a = array('k1' => 'v1', 'k2' => 'v2'); ?>"
            "<?php foreach ($a as $k => $v): ?>"
            "<?= $k ?>=<?= $v ?>;"
            "<?php endforeach; ?>"
        )
        assert out == "k1=v1;k2=v2;"

    def test_foreach_preserves_insertion_order(self):
        out = render(
            "<?php $a = array('z' => 1, 'a' => 2, 'm' => 3); ?>"
            "<?php foreach ($a as $k => $v): ?><?= $k ?><?php endforeach; ?>"
        )
        assert out == "zam"

    def test_nested_foreach(self):
        out = render(
            "<?php $outer = array('a', 'b'); $inner = array('1', '2'); ?>"
            "<?php foreach ($outer as $o): ?>"
            "<?php foreach ($inner as $i): ?><?= $o ?><?= $i ?>,"
            "<?php endforeach; ?><?php endforeach; ?>"
        )
        assert out == "a1,a2,b1,b2,"

    def test_if_true_branch(self):
        assert render("<?php if (1 < 2): ?>yes<?php endif; ?>") == "yes"

    def test_if_false_branch(self):
        assert render("<?php if (2 < 1): ?>yes<?php endif; ?>") == ""

    def test_if_else(self):
        out = render(
            "<?php if ($x == 'a'): ?>A<?php else: ?>B<?php endif; ?>",
            {"x": "b"},
        )
        assert out == "B"

    def test_missing_endforeach_raises(self):
        with pytest.raises(MiniPhpError):
            render("<?php $a = array(1); ?>"
                   "<?php foreach ($a as $v): ?>x")


BLOG_TEMPLATE = """<article>
<h1><?= strtoupper($title) ?></h1>
<?php foreach ($posts as $slug => $body): ?>
<section id="<?= $slug ?>"><?= htmlspecialchars($body) ?></section>
<?php endforeach; ?>
<?php if (count($posts) > 1): ?><nav>older posts</nav><?php endif; ?>
<footer><?= preg_replace("'[A-Za-z]+", "&rsquo;", $tagline) ?></footer>
</article>"""


def _blog_vars(interp: MiniPhpInterpreter) -> dict:
    posts = interp.new_array()
    interp.array_set(posts, "hello-world", "Hello <world> & all")
    interp.array_set(posts, "second", "It's another 'post' here")
    return {"title": "my blog", "posts": posts,
            "tagline": "don't stop 'til done"}


class TestBackendEquivalence:
    def test_software_and_accelerated_render_identically(self):
        sw = MiniPhpInterpreter(SoftwareBackend())
        out_sw = sw.render(BLOG_TEMPLATE, _blog_vars(sw))
        hw = MiniPhpInterpreter(AcceleratedBackend())
        out_hw = hw.render(BLOG_TEMPLATE, _blog_vars(hw))
        assert out_sw == out_hw
        assert "MY BLOG" in out_sw
        assert "&lt;world&gt;" in out_sw

    def test_accelerated_backend_uses_hardware(self):
        hw = MiniPhpInterpreter(AcceleratedBackend())
        hw.render(BLOG_TEMPLATE, _blog_vars(hw))
        complex_ = hw.backend.complex
        assert complex_.string.stats.get("hwstring.ops") > 0
        assert complex_.hash_table.stats.get("hwhash.sets") > 0
        assert complex_.hash_table.stats.get("hwhash.foreach_syncs") > 0

    def test_costs_are_reported(self):
        sw = MiniPhpInterpreter(SoftwareBackend())
        sw.render(BLOG_TEMPLATE, _blog_vars(sw))
        assert sw.backend.cost_cycles() > 0
