"""Unit tests: the fleet subsystem (balancers, cache tier, simulator)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.rng import DeterministicRng
from repro.core.report import fleet_report
from repro.fleet import (
    CacheShard,
    CacheTierConfig,
    FleetConfig,
    LeastOutstanding,
    ObjectCacheTier,
    PowerOfTwoChoices,
    ShardRing,
    fleet_slo_capacity,
    homogeneous_fleet,
    make_balancer,
    min_nodes_for_slo,
    mixed_fleet,
    run_fleet,
    run_fleet_matrix,
)
from repro.common.stats import StatRegistry
from repro.resilience.faults import FaultScenario

#: Synthetic service-time samples: accelerated ~100 cycles/request,
#: software 3× slower — the shape of the paper's Figure 14 gap.
ACCEL = tuple(float(v) for v in range(80, 121, 2))
SOFT = tuple(3.0 * v for v in ACCEL)


def small_config(**overrides) -> FleetConfig:
    base = dict(requests=800, warmup_requests=40, offered_load=0.6)
    base.update(overrides)
    return FleetConfig(**base)


class TestShardRing:
    def test_lookup_is_stable_across_instances(self):
        a = ShardRing(8)
        b = ShardRing(8)
        keys = [f"k{i}" for i in range(500)]
        assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]

    def test_all_shards_get_keys(self):
        ring = ShardRing(4)
        owners = {ring.lookup(f"k{i}") for i in range(2000)}
        assert owners == {0, 1, 2, 3}

    def test_removal_remaps_only_the_lost_shard(self):
        m = 8
        ring = ShardRing(m)
        keys = [f"k{i}" for i in range(4000)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove_shard(3)
        moved = [k for k in keys if ring.lookup(k) != before[k]]
        # Exactly the evicted shard's keys move, nothing else.
        assert all(before[k] == 3 for k in moved)
        assert all(ring.lookup(k) != 3 for k in keys)
        # < 2/M of the key space remaps (expectation is 1/M).
        assert len(moved) / len(keys) < 2.0 / m

    def test_addition_remaps_under_a_shard_share(self):
        m = 8
        ring = ShardRing(m)
        keys = [f"k{i}" for i in range(4000)]
        before = {k: ring.lookup(k) for k in keys}
        ring.add_shard(m)
        moved = [k for k in keys if ring.lookup(k) != before[k]]
        # Every moved key lands on the new shard; < 2/M of keys move.
        assert all(ring.lookup(k) == m for k in moved)
        assert 0 < len(moved) / len(keys) < 2.0 / m

    def test_rejects_duplicate_and_unknown_shards(self):
        ring = ShardRing(2)
        with pytest.raises(ValueError):
            ring.add_shard(1)
        with pytest.raises(ValueError):
            ring.remove_shard(9)

    def test_cannot_remove_last_shard(self):
        ring = ShardRing(1)
        with pytest.raises(ValueError):
            ring.remove_shard(0)


class TestCacheShard:
    def test_lru_eviction_order(self):
        shard = CacheShard(2, StatRegistry())
        shard.put("a", 0.0, None)
        shard.put("b", 1.0, None)
        assert shard.get("a", 2.0)      # touch refreshes 'a'
        shard.put("c", 3.0, None)       # evicts LRU entry 'b'
        assert shard.get("a", 4.0)
        assert not shard.get("b", 4.0)
        assert shard.get("c", 4.0)

    def test_ttl_expiry_is_a_miss(self):
        stats = StatRegistry()
        shard = CacheShard(4, stats)
        shard.put("a", 0.0, 10.0)
        assert shard.get("a", 5.0)
        assert not shard.get("a", 10.0)
        assert stats.get("cache.expirations") == 1
        assert len(shard) == 0

    def test_flush_drops_everything(self):
        shard = CacheShard(8, StatRegistry())
        for i in range(5):
            shard.put(f"k{i}", 0.0, None)
        assert shard.flush() == 5
        assert not shard.get("k0", 1.0)


class TestObjectCacheTier:
    def tier(self) -> ObjectCacheTier:
        return ObjectCacheTier(
            CacheTierConfig(shards=4, shard_capacity=16),
            mean_service_cycles=100.0,
        )

    def test_every_lookup_is_hit_or_miss(self):
        tier = self.tier()
        for i in range(50):
            if not tier.lookup(f"k{i % 10}", float(i)):
                tier.fill(f"k{i % 10}", float(i))
        s = tier.stats
        assert s.get("cache.lookups") == 50
        assert (
            s.get("cache.hits") + s.get("cache.misses")
            == s.get("cache.lookups")
        )
        assert tier.hit_ratio == pytest.approx(
            s.get("cache.hits") / 50.0
        )

    def test_fill_then_hit_same_shard(self):
        tier = self.tier()
        assert not tier.lookup("page", 0.0)
        tier.fill("page", 0.0)
        assert tier.lookup("page", 1.0)

    def test_storm_invalidation_unshields_keys(self):
        tier = self.tier()
        tier.fill("page", 0.0)
        shard = tier.ring.lookup("page")
        assert tier.invalidate_shard(shard) >= 1
        assert not tier.lookup("page", 1.0)
        assert tier.stats.get("cache.storms") == 1


class TestStampedeProtection:
    def tier(self, **overrides) -> ObjectCacheTier:
        base = dict(shards=2, shard_capacity=64)
        base.update(overrides)
        return ObjectCacheTier(
            CacheTierConfig(**base), mean_service_cycles=100.0
        )

    def test_probe_three_states(self):
        # ttl 2 services = 200 cycles; stale window 1 service = 100.
        tier = self.tier(ttl_services=2.0, stale_services=1.0)
        assert tier.probe("page", 0.0) == "miss"
        tier.fill("page", 0.0)
        assert tier.probe("page", 100.0) == "hit"
        assert tier.probe("page", 250.0) == "stale"
        assert tier.probe("page", 350.0) == "miss"
        s = tier.stats
        assert s.get("cache.stale_hits") == 1
        # Stale serves count as hits: the client got a page without a
        # synchronous render.
        assert s.get("cache.hits") == 2
        assert s.get("cache.misses") == 2
        assert s.get("cache.lookups") == 4

    def test_no_stale_window_means_expired_is_miss(self):
        tier = self.tier(ttl_services=2.0)
        tier.fill("page", 0.0)
        assert tier.probe("page", 250.0) == "miss"

    def test_ttl_jitter_smears_same_instant_expiries(self):
        jittered = self.tier(ttl_services=2.0, ttl_jitter=0.5)
        uniform = self.tier(ttl_services=2.0)
        keys = [f"k{i}" for i in range(64)]
        assert len({uniform.effective_ttl(k) for k in keys}) == 1
        ttls = {jittered.effective_ttl(k) for k in keys}
        assert len(ttls) > 32  # spread, not synchronized
        assert all(100.0 <= t <= 200.0 for t in ttls)

    def test_ttl_jitter_is_deterministic_per_key(self):
        a = self.tier(ttl_services=2.0, ttl_jitter=0.3)
        b = self.tier(ttl_services=2.0, ttl_jitter=0.3)
        for i in range(32):
            assert a.effective_ttl(f"k{i}") == b.effective_ttl(f"k{i}")

    def test_expire_all_keeps_entries_servable_as_stale(self):
        tier = self.tier(ttl_services=10.0, stale_services=1.0)
        for i in range(8):
            tier.fill(f"k{i}", 0.0)
        assert tier.expire_all(50.0) == 8
        assert tier.probe("k0", 60.0) == "stale"
        assert tier.probe("k0", 200.0) == "miss"

    def test_expire_all_without_stale_window_is_a_full_miss_wave(self):
        tier = self.tier(ttl_services=10.0)
        for i in range(8):
            tier.fill(f"k{i}", 0.0)
        tier.expire_all(50.0)
        assert all(
            tier.probe(f"k{i}", 60.0) == "miss" for i in range(8)
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheTierConfig(ttl_jitter=1.0)
        with pytest.raises(ValueError):
            CacheTierConfig(ttl_jitter=-0.1)
        with pytest.raises(ValueError):
            CacheTierConfig(stale_services=0.0)


class TestBalancers:
    class FakeNode:
        def __init__(self, outstanding: int) -> None:
            self.outstanding = outstanding

    def test_round_robin_cycles(self):
        rr = make_balancer("round-robin")
        nodes = [self.FakeNode(0)] * 3
        rng = DeterministicRng(1)
        assert [rr.pick(nodes, rng) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_picks_min(self):
        lo = LeastOutstanding()
        nodes = [self.FakeNode(5), self.FakeNode(2), self.FakeNode(2)]
        assert lo.pick(nodes, DeterministicRng(1)) == 1  # tie → lowest

    def test_p2c_always_avoids_the_loaded_node_of_its_pair(self):
        p2c = PowerOfTwoChoices()
        nodes = [self.FakeNode(0), self.FakeNode(100)]
        rng = DeterministicRng(1)
        # With two nodes every draw compares both; the idle one wins.
        assert all(p2c.pick(nodes, rng) == 0 for _ in range(50))

    def test_unknown_balancer_rejected(self):
        with pytest.raises(ValueError):
            make_balancer("random-walk")

    def test_p2c_never_worse_than_round_robin_on_imbalance(self):
        # Heterogeneous fleet: blind rotation overloads the slow
        # (software) boxes while the fast ones idle; p2c sees
        # outstanding work and routes around them.
        topo = mixed_fleet("het", ACCEL, SOFT, 2, 2)
        cfg = small_config(offered_load=0.7)
        rr = run_fleet(topo, replace(cfg, balancer="round-robin"), seed=17)
        p2c = run_fleet(topo, replace(cfg, balancer="p2c"), seed=17)
        assert (
            p2c.utilization_imbalance <= rr.utilization_imbalance
        )


class TestFleetSimulator:
    def cached_topology(self, name="fleet"):
        return homogeneous_fleet(
            name, ACCEL, nodes=4,
            cache=CacheTierConfig(shards=4, shard_capacity=128),
        )

    def test_same_seed_identical_report(self):
        topo = self.cached_topology()
        cfg = small_config(storm_scenario=FaultScenario(
            "storms", accel_fault_rate=0.10,
            accel_fault_window_services=5.0,
        ))
        a = run_fleet(topo, cfg, seed=23)
        b = run_fleet(topo, cfg, seed=23)
        assert a == b
        assert fleet_report([a]) == fleet_report([b])

    def test_different_seeds_differ(self):
        topo = self.cached_topology()
        cfg = small_config()
        assert run_fleet(topo, cfg, seed=1) != run_fleet(topo, cfg, seed=2)

    def test_cache_hit_accounting_covers_every_measured_arrival(self):
        report = run_fleet(self.cached_topology(), small_config(), seed=5)
        assert report.offered == 800
        assert (
            report.cache_hits + report.cache_misses
            + report.cache_coalesced
            == report.offered
        )
        assert report.completed == report.offered - report.shed
        assert 0.0 < report.cache_hit_ratio < 1.0

    def test_coalesced_lookups_do_not_depress_hit_ratio(self):
        # A same-key miss while that key is already rendering is not a
        # second first-cause miss; the hit ratio must exclude it from
        # its denominator.
        report = run_fleet(self.cached_topology(), small_config(), seed=5)
        looked = report.cache_hits + report.cache_misses
        assert report.cache_hit_ratio == pytest.approx(
            report.cache_hits / looked
        )
        naive = report.cache_hits / (looked + report.cache_coalesced)
        assert report.cache_hit_ratio >= naive

    def test_cacheless_fleet_reports_no_cache_traffic(self):
        topo = self.cached_topology().without_cache()
        report = run_fleet(topo, small_config(), seed=5)
        assert report.cache_shards == 0
        assert report.cache_hits == report.cache_misses == 0
        assert report.cache_hit_ratio == 0.0

    def test_cache_cuts_backend_load_and_mean_latency(self):
        topo = self.cached_topology()
        cached = run_fleet(topo, small_config(), seed=7)
        bare = run_fleet(topo.without_cache(), small_config(), seed=7)
        assert cached.mean_utilization < bare.mean_utilization
        assert cached.latency.mean < bare.latency.mean

    def test_storms_depress_hit_ratio(self):
        topo = self.cached_topology()
        calm = run_fleet(topo, small_config(), seed=11)
        stormy = run_fleet(topo, small_config(storm_scenario=FaultScenario(
            "storms", accel_fault_rate=0.25,
            accel_fault_window_services=2.0,
        )), seed=11)
        assert stormy.storms > 0
        assert stormy.cache_hit_ratio < calm.cache_hit_ratio

    def test_admission_bound_sheds_under_overload(self):
        topo = homogeneous_fleet("tiny", ACCEL, nodes=1, workers=1)
        cfg = small_config(offered_load=3.0, max_queue=4)
        report = run_fleet(topo, cfg, seed=3)
        assert report.shed > 0
        assert report.completed == report.offered - report.shed

    def test_matrix_cells_are_independent(self):
        topo = self.cached_topology()
        cfg = small_config()
        alone = run_fleet(topo, replace(cfg, balancer="p2c"), seed=17)
        matrix = run_fleet_matrix(
            [topo, topo.without_cache()],
            ["round-robin", "p2c"], cfg, seed=17,
        )
        same_cell = [
            r for r in matrix
            if r.fleet == topo.name and r.balancer == "p2c"
        ]
        assert same_cell == [alone]

    def test_warmup_requests_are_excluded(self):
        topo = self.cached_topology()
        report = run_fleet(topo, small_config(warmup_requests=100), seed=9)
        assert report.offered == 800


class TestSloEconomics:
    def test_cache_lifts_slo_capacity(self):
        topo = homogeneous_fleet(
            "slo", ACCEL, nodes=2,
            cache=CacheTierConfig(shards=4, shard_capacity=256),
        )
        cfg = FleetConfig(requests=500, warmup_requests=50)
        slo = 8.0 * topo.mean_service
        cached = fleet_slo_capacity(
            topo, slo, cfg, seed=17, resolution=0.1, max_load=1.5
        )
        bare = fleet_slo_capacity(
            topo.without_cache(), slo, cfg, seed=17,
            resolution=0.1, max_load=1.5,
        )
        assert cached > bare > 0.0

    def test_accelerated_fleet_needs_fewer_nodes(self):
        mean_accel = sum(ACCEL) / len(ACCEL)
        slo = 8.0 * mean_accel
        # Traffic worth ~1.5 accelerated nodes at full utilization.
        rate = 1.5 * 4 / mean_accel
        cfg = FleetConfig(requests=500, warmup_requests=50)

        def accel_fleet(n):
            return homogeneous_fleet("a", ACCEL, nodes=n)

        def soft_fleet(n):
            return homogeneous_fleet("s", SOFT, nodes=n, kind="software")

        need_accel = min_nodes_for_slo(accel_fleet, rate, slo, cfg, seed=17)
        need_soft = min_nodes_for_slo(soft_fleet, rate, slo, cfg, seed=17)
        assert need_accel is not None and need_soft is not None
        assert need_accel < need_soft
