"""Unit tests: the Section 3 mitigation mechanisms."""

from __future__ import annotations

from repro.common.rng import DeterministicRng
from repro.optim import (
    CheckedLoadCache,
    HashMapInliner,
    HiddenClass,
    InlineCache,
    POLYMORPHIC_LIMIT,
    RcCoalescingBuffer,
    ShapeTree,
    TunedSlabAllocator,
    measure_alloc_tuning,
    measure_rc_mitigation,
    measure_typecheck_mitigation,
)
from repro.runtime.values import PhpType, PhpValue
from repro.workloads.hashops import HashOp
from repro.workloads.profiles import Activity, MITIGATION_FACTORS


class TestShapeTree:
    def test_same_order_same_shape(self):
        tree = ShapeTree()
        a = tree.transition(tree.transition(tree.root, "x"), "y")
        b = tree.transition(tree.transition(tree.root, "x"), "y")
        assert a is b

    def test_different_order_different_shape(self):
        tree = ShapeTree()
        a = tree.transition(tree.transition(tree.root, "x"), "y")
        b = tree.transition(tree.transition(tree.root, "y"), "x")
        assert a is not b

    def test_offsets_are_stable(self):
        tree = ShapeTree()
        shape = tree.transition(tree.transition(tree.root, "x"), "y")
        assert shape.offset_of("x") == 0
        assert shape.offset_of("y") == 1
        assert shape.offset_of("z") is None

    def test_existing_property_does_not_transition(self):
        tree = ShapeTree()
        shape = tree.transition(tree.root, "x")
        assert tree.transition(shape, "x") is shape


class TestInlineCache:
    def _shape(self, *props: str) -> HiddenClass:
        tree = ShapeTree()
        shape = tree.root
        for p in props:
            shape = tree.transition(shape, p)
        return shape

    def test_monomorphic_fast_path(self):
        ic = InlineCache(site=1)
        shape = self._shape("title", "author")
        ic.access(shape, "title")  # installs
        specialized, uops = ic.access(shape, "title")
        assert specialized
        assert ic.state == "monomorphic"
        assert uops == 3

    def test_polymorphic_dispatch(self):
        ic = InlineCache(site=1)
        shapes = [self._shape("a"), self._shape("b")]
        for s in shapes:
            ic.access(s, s.properties[0])
        assert ic.state == "polymorphic"
        hit, uops = ic.access(shapes[1], "b")
        assert hit

    def test_megamorphic_after_limit(self):
        ic = InlineCache(site=1)
        for i in range(POLYMORPHIC_LIMIT + 1):
            shape = self._shape(f"p{i}")
            ic.access(shape, f"p{i}")
        assert ic.state == "megamorphic"
        hit, uops = ic.access(self._shape("p0"), "p0")
        assert not hit and uops == 12

    def test_missing_property_not_specialized(self):
        ic = InlineCache(site=1)
        hit, _ = ic.access(self._shape("a"), "zzz")
        assert not hit


class TestHashMapInliner:
    def _ops(self, keys: list[str], map_id: int) -> list[HashOp]:
        return [HashOp("get", map_id, k) for k in keys]

    def test_stable_sequence_specializes(self):
        """A template reading fixed keys each request (HMI's target)."""
        inliner = HashMapInliner()
        sequence = ["siteurl", "blogname", "template", "charset"]
        summary = inliner.process(self._ops(sequence * 10, map_id=-1))
        assert summary["specialized_fraction"] > 0.5

    def test_dynamic_keys_never_specialize(self):
        """Section 4.2: dynamic key names defeat software methods."""
        inliner = HashMapInliner()
        rng = DeterministicRng(5)
        ops = self._ops([rng.ascii_word() for _ in range(100)], map_id=3)
        summary = inliner.process(ops)
        assert summary["specialized_fraction"] == 0.0

    def test_broken_sequence_de_specializes(self):
        inliner = HashMapInliner()
        good = ["a", "b"] * 8
        summary1 = inliner.process(self._ops(good, map_id=-2))
        assert summary1["specialized_fraction"] > 0
        # A deviating key permanently breaks the site...
        inliner.process(self._ops(["a", "DEVIATION"], map_id=-2))
        # ...so even the previously-stable sequence stays unspecialized.
        summary3 = inliner.process(self._ops(good, map_id=-2))
        assert summary3["specialized_fraction"] == 0.0

    def test_non_access_ops_ignored(self):
        inliner = HashMapInliner()
        summary = inliner.process([HashOp("alloc", 1), HashOp("free", 1)])
        assert summary["specialized"] == summary["residual"] == 0


class TestRcCoalescing:
    def test_paired_updates_annihilate(self):
        buf = RcCoalescingBuffer()
        v = PhpValue.of_string("x")
        buf.incref(v)
        buf.decref(v)
        assert buf.stats.get("rcbuf.annihilations") == 1
        assert buf.elision_rate() == 1.0

    def test_scalars_ignored(self):
        buf = RcCoalescingBuffer()
        buf.incref(PhpValue.of_int(1))
        assert buf.stats.get("rcbuf.updates") == 0

    def test_capacity_evictions_flush(self):
        buf = RcCoalescingBuffer(entries=4)
        values = [PhpValue.of_string(f"v{i}") for i in range(8)]
        for v in values:
            buf.incref(v)
        assert buf.stats.get("rcbuf.evictions") == 4
        assert buf.elision_rate() < 1.0

    def test_decref_to_zero_destroys(self):
        buf = RcCoalescingBuffer()
        v = PhpValue.of_string("x")
        assert buf.decref(v) is True
        assert buf.stats.get("rcbuf.destroys") == 1

    def test_flush_all_clears(self):
        buf = RcCoalescingBuffer()
        values = [PhpValue.of_string(f"v{i}") for i in range(5)]
        for v in values:  # hold references: id() identity must persist
            buf.incref(v)
        assert buf.flush_all() == 5
        assert buf.flush_all() == 0

    def test_measured_factor_supports_section3_constant(self):
        measured = measure_rc_mitigation()
        paper_factor = MITIGATION_FACTORS[Activity.REFCOUNT]
        assert measured["mitigation_factor"] >= paper_factor - 0.05


class TestCheckedLoad:
    def test_correct_type_is_free(self):
        cache = CheckedLoadCache()
        v = PhpValue.of_int(1)
        cache.store(v)
        ok, extra = cache.checked_load(v, PhpType.INT)
        assert ok and extra == 0

    def test_mismatch_traps(self):
        cache = CheckedLoadCache()
        v = PhpValue.of_string("x")
        cache.store(v)
        ok, extra = cache.checked_load(v, PhpType.INT)
        assert not ok and extra == CheckedLoadCache.TRAP_UOPS

    def test_elision_high_when_guards_pass(self):
        measured = measure_typecheck_mitigation()
        paper_factor = MITIGATION_FACTORS[Activity.TYPECHECK]
        assert measured["mitigation_factor"] >= paper_factor - 0.05

    def test_elision_collapses_with_constant_deopts(self):
        measured = measure_typecheck_mitigation(mistyped_fraction=0.2)
        assert measured["mitigation_factor"] < 0.5


class TestAllocTuning:
    def test_release_arenas_counts_kernel_calls(self):
        from repro.runtime.slab import SlabAllocator
        s = SlabAllocator()
        a = s.malloc(40)
        s.free(a)
        releases = s.release_arenas()
        assert releases >= 1
        assert s.stats.get("kernel.chunk_releases") == releases

    def test_tuned_allocator_reuses_chunks(self):
        t = TunedSlabAllocator()
        a = t.malloc(40)
        t.free(a)
        assert t.release_arenas() == 0  # cached, not released
        # Enough churn to force refills that can consume the cache.
        for _ in range(3):
            addrs = [t.malloc(40) for _ in range(3000)]
            for x in addrs:
                t.free(x)
            t.release_arenas()
        assert t.stats.get("kernel.chunk_reuses") >= 1

    def test_measured_reduction_supports_section3_constant(self):
        measured = measure_alloc_tuning()
        paper_factor = MITIGATION_FACTORS[Activity.KERNEL_ALLOC]
        assert measured["mitigation_factor"] >= paper_factor - 0.05
        assert measured["tuned_kernel_calls"] < \
            measured["baseline_kernel_calls"]

    def test_tuned_allocator_still_correct(self):
        t = TunedSlabAllocator()
        addrs = [t.malloc(64) for _ in range(100)]
        assert len(set(addrs)) == 100
        for a in addrs:
            t.free(a)
        assert t.live_bytes() == 0
