"""Unit + property tests: hardware hash table and RTT (Section 4.2)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.accel.hash_table import (
    HardwareHashTable,
    HashTableConfig,
    simplified_hash,
)

BASE_A = 0x6800_0000
BASE_B = 0x6800_0200

keys = st.text(alphabet="abcdefghij_0123456789", min_size=1, max_size=24)


class TestSimplifiedHash:
    def test_deterministic(self):
        assert simplified_hash("k", 0x10) == simplified_hash("k", 0x10)

    def test_base_address_matters(self):
        assert simplified_hash("k", 0x10) != simplified_hash("k", 0x12345670)

    def test_key_matters(self):
        assert simplified_hash("ka", 0x10) != simplified_hash("kb", 0x10)

    def test_fits_32_bits(self):
        assert 0 <= simplified_hash("x" * 24, 2**48) < 2**32


class TestGetSet:
    def test_get_miss_raises_zero_flag(self):
        ht = HardwareHashTable()
        out = ht.get("nope", BASE_A)
        assert not out.hit and out.software_fallback

    def test_set_then_get(self):
        ht = HardwareHashTable()
        assert ht.set("k", BASE_A, "v").hit
        out = ht.get("k", BASE_A)
        assert out.hit and out.value_ptr == "v"

    def test_set_updates_value(self):
        ht = HardwareHashTable()
        ht.set("k", BASE_A, "v1")
        ht.set("k", BASE_A, "v2")
        assert ht.get("k", BASE_A).value_ptr == "v2"
        assert ht.occupancy() == 1

    def test_maps_are_isolated_by_base_address(self):
        ht = HardwareHashTable()
        ht.set("k", BASE_A, "a")
        ht.set("k", BASE_B, "b")
        assert ht.get("k", BASE_A).value_ptr == "a"
        assert ht.get("k", BASE_B).value_ptr == "b"

    def test_long_keys_bypass_to_software(self):
        ht = HardwareHashTable()
        long_key = "x" * 25
        assert ht.set(long_key, BASE_A, "v").software_fallback
        assert ht.get(long_key, BASE_A).software_fallback
        assert ht.stats.get("hwhash.long_key_bypass") == 2

    def test_insert_clean_after_get_miss(self):
        ht = HardwareHashTable()
        ht.get("k", BASE_A)
        ht.insert_clean("k", BASE_A, "mem")
        out = ht.get("k", BASE_A)
        assert out.hit and out.value_ptr == "mem"

    def test_latency_is_constant(self):
        cfg = HashTableConfig()
        ht = HardwareHashTable(cfg)
        out = ht.set("k", BASE_A, "v")
        expected = cfg.hash_cycles + cfg.access_cycles
        assert out.cycles in (expected, expected + 1)  # +1 on insert


class TestReplacement:
    def tiny(self) -> HardwareHashTable:
        """4-entry table with a 4-wide probe: one fully shared window."""
        return HardwareHashTable(HashTableConfig(entries=4, probe_width=4))

    def test_clean_preferred_over_dirty(self):
        ht = self.tiny()
        ht.set("d1", BASE_A, "x")          # dirty
        ht.insert_clean("c1", BASE_A, "y")  # clean
        ht.insert_clean("c2", BASE_A, "y")
        ht.insert_clean("c3", BASE_A, "y")
        before = ht.stats.get("hwhash.dirty_evictions")
        ht.set("new", BASE_A, "z")         # must evict a clean entry
        assert ht.stats.get("hwhash.dirty_evictions") == before
        assert ht.stats.get("hwhash.clean_evictions") >= 1
        assert ht.get("d1", BASE_A).hit    # dirty entry survived

    def test_dirty_lru_evicted_when_all_dirty(self):
        ht = self.tiny()
        writebacks = []
        ht.writeback_handler = lambda b, k, v: writebacks.append((k, v))
        for i in range(4):
            ht.set(f"k{i}", BASE_A, i)
        ht.set("k4", BASE_A, 4)
        assert ht.stats.get("hwhash.dirty_evictions") == 1
        assert len(writebacks) == 1
        assert writebacks[0][0] == "k0"  # LRU

    def test_sets_never_miss(self):
        ht = self.tiny()
        for i in range(50):
            out = ht.set(f"key{i}", BASE_A, i)
            assert out.hit
        assert ht.hit_rate() > 0.9


class TestFreeAndForeach:
    def test_free_invalidates_whole_map(self):
        ht = HardwareHashTable()
        for i in range(8):
            ht.set(f"k{i}", BASE_A, i)
        assert ht.free_map(BASE_A) == 8
        assert ht.occupancy() == 0
        for i in range(8):
            assert not ht.get(f"k{i}", BASE_A).hit

    def test_free_does_not_write_back(self):
        """Short-lived maps die without memory traffic (§4.2)."""
        ht = HardwareHashTable()
        writebacks = []
        ht.writeback_handler = lambda b, k, v: writebacks.append(k)
        for i in range(8):
            ht.set(f"k{i}", BASE_A, i)
        ht.free_map(BASE_A)
        assert writebacks == []

    def test_free_leaves_other_maps_alone(self):
        ht = HardwareHashTable()
        ht.set("k", BASE_A, 1)
        ht.set("k", BASE_B, 2)
        ht.free_map(BASE_A)
        assert ht.get("k", BASE_B).hit

    def test_foreach_order_is_insertion_order(self):
        ht = HardwareHashTable()
        names = [f"k{i}" for i in range(10)]
        for i, k in enumerate(names):
            ht.set(k, BASE_A, i)
        order, synced = ht.foreach_sync(BASE_A)
        assert order == names
        assert synced == 10

    def test_foreach_sync_cleans_entries(self):
        ht = HardwareHashTable()
        ht.set("k", BASE_A, 1)
        ht.foreach_sync(BASE_A)
        _, synced_again = ht.foreach_sync(BASE_A)
        assert synced_again == 0

    def test_order_survives_eviction_and_reinsert(self):
        """The §4.2 invariant: RTT keeps insertion order across churn."""
        ht = HardwareHashTable(HashTableConfig(entries=4, probe_width=4))
        ht.writeback_handler = lambda b, k, v: None
        for i in range(6):  # overflows the 4-entry table
            ht.set(f"k{i}", BASE_A, i)
        ht.set("k0", BASE_A, 99)  # re-insert an evicted key
        order, _ = ht.foreach_sync(BASE_A)
        assert order == [f"k{i}" for i in range(6)]


class TestCoherence:
    def test_flush_map_writes_back_dirty(self):
        ht = HardwareHashTable()
        writebacks = []
        ht.writeback_handler = lambda b, k, v: writebacks.append((k, v))
        ht.set("k", BASE_A, "v")
        flushed = ht.flush_map(BASE_A)
        assert flushed == 1
        assert writebacks == [("k", "v")]
        assert not ht.get("k", BASE_A).hit

    def test_flush_clean_entries_no_writeback(self):
        ht = HardwareHashTable()
        writebacks = []
        ht.writeback_handler = lambda b, k, v: writebacks.append(k)
        ht.insert_clean("k", BASE_A, "v")
        ht.flush_map(BASE_A)
        assert writebacks == []


class TestHitRateProperties:
    @given(st.lists(st.tuples(keys, st.booleans()), min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_hit_rate_bounded(self, script):
        ht = HardwareHashTable(HashTableConfig(entries=16))
        ht.writeback_handler = lambda b, k, v: None
        for key, is_set in script:
            if is_set:
                ht.set(key, BASE_A, 1)
            else:
                out = ht.get(key, BASE_A)
                if not out.hit:
                    ht.insert_clean(key, BASE_A, 1)
        assert 0.0 <= ht.hit_rate() <= 1.0

    @given(st.lists(keys, min_size=1, max_size=64, unique=True))
    @settings(max_examples=40)
    def test_get_after_set_hits_in_big_table(self, key_list):
        ht = HardwareHashTable(HashTableConfig(entries=512))
        for i, k in enumerate(key_list):
            ht.set(k, BASE_A, i)
        for i, k in enumerate(key_list):
            out = ht.get(k, BASE_A)
            if out.hit:  # probe-window conflicts may evict a few
                assert out.value_ptr == i

    def test_monotone_hit_rate_with_size(self, make_rng):
        """Figure 7's shape: bigger tables never hit less (same trace)."""
        rates = []
        for entries in (4, 32, 256):
            rng = make_rng(5)
            ht = HardwareHashTable(HashTableConfig(entries=entries))
            ht.writeback_handler = lambda b, k, v: None
            universe = [f"key{i}" for i in range(300)]
            for _ in range(3000):
                key = universe[rng.zipf(len(universe), 1.0)]
                if rng.random() < 0.25:
                    ht.set(key, BASE_A, 1)
                else:
                    if not ht.get(key, BASE_A).hit:
                        ht.insert_clean(key, BASE_A, 1)
            rates.append(ht.hit_rate())
        assert rates[0] < rates[1] < rates[2]
