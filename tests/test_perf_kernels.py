"""Golden-equivalence tests: optimized kernels vs reference kernels.

The hot kernels in ``string_accel`` / ``hash_table`` / ``regex.engine``
were rewritten for wall-clock speed; :mod:`repro.accel.reference`
preserves the original implementations.  Each test drives both on
>= 1000 seeded random cases and asserts byte-identical outcomes —
including the accounting fields (cycles, µops, chars examined), since
the simulation results are built from them.
"""

from __future__ import annotations

import pytest

from repro.accel.hash_table import HardwareHashTable, simplified_hash
from repro.accel.reference import (
    ReferenceHardwareHashTable,
    ReferenceStringAccelerator,
    reference_mode,
    reference_simplified_hash,
)
from repro.accel.string_accel import StringAccelerator
from repro.common.rng import DeterministicRng
from repro.conformance.oracles import hash_ops_outcomes
from repro.regex.charset import CharSet
from repro.regex.engine import CompiledRegex


ALPHABET = "abcdefgh <>&\"'/=-.!?\n\t"
WIDE_EXTRA = "éࠀ￿"  # non-latin-1: exercises the fallback path


def _subject(rng: DeterministicRng, lo: int = 0, hi: int = 120,
             wide: bool = False) -> str:
    chars = ALPHABET + (WIDE_EXTRA if wide else "")
    return "".join(
        rng.choice(chars) for _ in range(rng.randint(lo, hi))
    )


class TestStringKernelEquivalence:
    def test_find_1000_seeded_cases(self, make_rng):
        rng = make_rng(101)
        opt, ref = StringAccelerator(), ReferenceStringAccelerator()
        for case in range(1000):
            wide = case % 5 == 4
            subject = _subject(rng, wide=wide)
            if rng.random() < 0.5 and len(subject) >= 3:
                start = rng.randint(0, len(subject) - 1)
                pattern = subject[start:start + rng.randint(1, 8)]
            else:
                pattern = _subject(rng, 1, 6, wide=wide)
            if not pattern:
                pattern = "a"
            start = rng.randint(0, max(0, len(subject) - 1))
            assert repr(opt.find(subject, pattern, start)) \
                == repr(ref.find(subject, pattern, start))

    def test_find_output_pinned_insertion_order(self):
        """The ``sorted(pending)`` fix: candidates are inserted with
        monotonically increasing start positions, so insertion order IS
        ascending order and the scan result is pinned to the original.
        This case keeps several overlapping candidates pending across
        block boundaries, where an ordering bug would change which
        candidate wins."""
        opt, ref = StringAccelerator(), ReferenceStringAccelerator()
        # 'aaaa...ab' with pattern 'aab' keeps a sliding window of
        # partially-matched candidates alive in every block.
        subject = "a" * 150 + "ab" + "a" * 150 + "aab"
        out_opt = opt.find(subject, "aab")
        out_ref = ref.find(subject, "aab")
        assert repr(out_opt) == repr(out_ref)
        assert out_opt.value == subject.index("aab")

    def test_compare_1000_seeded_cases(self, make_rng):
        rng = make_rng(202)
        opt, ref = StringAccelerator(), ReferenceStringAccelerator()
        for case in range(1000):
            a = _subject(rng, 0, 200, wide=case % 7 == 6)
            if rng.random() < 0.5:
                b = a[:rng.randint(0, len(a))] + _subject(rng, 0, 40)
            else:
                b = _subject(rng, 0, 200)
            assert repr(opt.compare(a, b)) == repr(ref.compare(a, b))

    def test_char_class_bitmap_1000_seeded_cases(self, make_rng):
        rng = make_rng(303)
        opt, ref = StringAccelerator(), ReferenceStringAccelerator()
        classes = [
            CharSet.of("<>&\"'"), CharSet.char_range("a", "f"),
            CharSet.of(" \n\t"), CharSet.full(),
        ]
        for case in range(1000):
            subject = _subject(rng, 0, 300, wide=case % 6 == 5)
            cls = rng.choice(classes)
            seg = rng.choice([8, 16, 32, 64])
            assert repr(opt.char_class_bitmap(subject, cls, seg)) \
                == repr(ref.char_class_bitmap(subject, cls, seg))

    def test_html_escape_1000_seeded_cases(self, make_rng):
        from repro.runtime.strings import HTML_ESCAPES
        rng = make_rng(404)
        opt, ref = StringAccelerator(), ReferenceStringAccelerator()
        multi = dict(HTML_ESCAPES)
        for case in range(1000):
            subject = _subject(rng, 0, 200, wide=case % 8 == 7)
            assert repr(opt.html_escape(subject, multi)) \
                == repr(ref.html_escape(subject, multi))


class TestHashKernelEquivalence:
    def test_simplified_hash_1000_seeded_cases(self, make_rng):
        rng = make_rng(505)
        for case in range(1000):
            key = _subject(rng, 0, 24, wide=case % 9 == 8)
            base = rng.randint(0, 1 << 32)
            assert simplified_hash(key, base) \
                == reference_simplified_hash(key, base)

    def test_probe_path_1000_plus_op_sequence(self, make_rng):
        """3000 mixed ops through both tables: outcome stream, stats,
        and hit rate must match exactly (the probe-window cache must be
        invisible)."""
        rng = make_rng(606)
        opt, ref = HardwareHashTable(), ReferenceHardwareHashTable()
        ops = []
        for i in range(3000):
            key = f"k{rng.randint(0, 400)}"
            base = 0x1000 + rng.randint(0, 5) * 0x200
            kind = ("insert", "get", "set")[rng.randint(0, 2)]
            ops.append([kind, key, base, i])
        assert repr(hash_ops_outcomes(opt, ops)) \
            == repr(hash_ops_outcomes(ref, ops))
        assert opt.hit_rate() == ref.hit_rate()
        assert opt.stats.snapshot() == ref.stats.snapshot()


class TestRegexKernelEquivalence:
    PATTERNS = [
        r"<[a-z]+", r"(?i)href", r"[a-h]+b", r"a.c", r"<p>|</p>",
    ]

    def test_search_state_after_resume_1000_seeded_cases(self, make_rng):
        rng = make_rng(707)
        for case in range(1000):
            pattern = rng.choice(self.PATTERNS)
            text = _subject(rng, 0, 80, wide=case % 10 == 9)
            with reference_mode():
                r_ref = CompiledRegex(pattern)
                ref_search = repr(r_ref.search(text))
                ref_state = repr(r_ref.state_after(text))
                ref_stats = r_ref.stats.snapshot()
            r_opt = CompiledRegex(pattern)
            assert repr(r_opt.search(text)) == ref_search
            assert repr(r_opt.state_after(text)) == ref_state
            assert r_opt.stats.snapshot() == ref_stats

    def test_resume_equivalence_seeded(self, make_rng):
        rng = make_rng(808)
        for case in range(1000):
            pattern = rng.choice(self.PATTERNS)
            text = _subject(rng, 1, 60)
            split = rng.randint(0, len(text))
            with reference_mode():
                r_ref = CompiledRegex(pattern)
                state, accept = r_ref.state_after(text, 0, split)
                ref_out = repr(r_ref.resume(state, accept, text, split))
            r_opt = CompiledRegex(pattern)
            state_opt, accept_opt = r_opt.state_after(text, 0, split)
            assert (state_opt, accept_opt) == (state, accept)
            assert repr(
                r_opt.resume(state_opt, accept_opt, text, split)
            ) == ref_out


class TestReferenceMode:
    def test_reference_kernels_fixture_patches_for_test_body(
        self, reference_kernels
    ):
        from repro.accel.reference import reference_find
        assert StringAccelerator.find is reference_find

    def test_restores_optimized_kernels(self):
        original_find = StringAccelerator.find
        with reference_mode():
            assert StringAccelerator.find is not original_find
        assert StringAccelerator.find is original_find

    def test_e2e_reports_identical(self):
        """The headline guarantee: the full evaluation renders the same
        reports on optimized and reference kernels."""
        from repro.core.experiment import full_evaluation
        from repro.core.expcache import EXPERIMENT_CACHE
        from repro.core.report import figure14_report, figure15_report
        from repro.workloads.loadgen import TRACE_CACHE

        EXPERIMENT_CACHE.clear()
        TRACE_CACHE.clear()
        opt = full_evaluation(requests=2)
        with reference_mode():
            ref = full_evaluation(requests=2)
        assert figure14_report(opt) == figure14_report(ref)
        assert figure15_report(opt) == figure15_report(ref)
