"""The digital-twin calibration loop, end to end.

Four layers:

* closed-form fitter checks — known means/variances/quantiles, the
  empty / single-event / all-identical edges, arrival-shape recovery
  on constructed streams;
* input hygiene — malformed and truncated telemetry JSONL rejected
  with ``path:lineno`` messages, ring-drop refusal beyond the bound,
  full-ring drops surfaced through ``ServeReport``;
* schema surface — ``repro-calibrate/1`` payloads and
  ``repro-calibrate-history/1`` rows validate, corrupt ones do not;
* the loop itself — the self-consistency gate passes its pinned MAPE
  bars, is byte-identical at jobs=1 vs jobs=4, and a real
  ``serve --smoke``-style run round-trips serve → telemetry JSONL →
  calibrate within loose bars.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.calibrate.fit import (
    QUANTILE_GRID,
    SAMPLE_POINTS,
    CalibrationError,
    exponential_sample,
    fit_arrivals,
    fit_cache,
    fit_route,
    fit_service,
    mape,
    summarize_rows,
)
from repro.calibrate.report import (
    CALIBRATE_HISTORY_SCHEMA,
    CALIBRATE_SCHEMA,
    MAPE_HIT_RATIO_BOUND,
    MAPE_P99_BOUND,
    calibrate_history_row,
    format_calibration_report,
    validate_calibrate_history_row,
    validate_calibration_payload,
)
from repro.calibrate.run import calibrate_rows, run_calibrate, self_calibrate
from repro.calibrate.twin import ground_truth_params, simulate_twin
from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.serve.telemetry import TELEMETRY_SCHEMA, TelemetryLog


def _row(t_ms, route="wordpress", cache="miss", queue=1.0, render=5.0,
         status=200):
    total = queue + render + 0.1 if cache == "miss" else 0.25
    return {
        "schema": TELEMETRY_SCHEMA, "t_ms": t_ms, "route": route,
        "status": status, "cache": cache, "queue_wait_ms": queue,
        "render_ms": render if cache == "miss" else 0.0,
        "total_ms": total, "bytes_out": 1024, "shed": "", "ops": {},
    }


class TestFitService:
    def test_known_moments(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        fit = fit_service(values)
        assert fit["mean_ms"] == pytest.approx(5.0)
        assert fit["std_ms"] == pytest.approx(2.0)
        assert fit["cv"] == pytest.approx(0.4)
        assert fit["count"] == 8

    def test_known_quantiles_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        fit = fit_service(values)
        assert fit["p50_ms"] == 50.0
        assert fit["p99_ms"] == 99.0
        assert fit["quantiles"]["99.9"] == 100.0
        assert fit["quantiles"]["1"] == 1.0

    def test_sample_is_equiprobable_and_sorted(self):
        values = [float(v) for v in range(1, 1001)]
        fit = fit_service(values)
        sample = fit["sample_ms"]
        assert len(sample) == SAMPLE_POINTS
        assert sample == sorted(sample)
        # Uniform draws from the midpoint-quantile sample reproduce
        # the source distribution's moments.
        assert sum(sample) / len(sample) == pytest.approx(
            fit["mean_ms"], rel=0.01
        )

    def test_empty_sample_raises(self):
        with pytest.raises(CalibrationError):
            fit_service([])

    def test_single_event_fits_exactly(self):
        fit = fit_service([7.25])
        assert fit["mean_ms"] == 7.25
        assert fit["std_ms"] == 0.0
        assert fit["cv"] == 0.0
        assert set(fit["sample_ms"]) == {7.25}

    def test_all_identical_fits_exactly_with_cv_zero(self):
        # Regression: the fuzzer's first find — naive summation gave
        # mean 9.678999999999998 for seventeen copies of 9.679.
        fit = fit_service([9.679] * 17)
        assert fit["mean_ms"] == 9.679
        assert fit["cv"] == 0.0
        assert set(fit["sample_ms"]) == {9.679}

    def test_exponential_sample_matches_the_grid(self):
        sample = exponential_sample(10.0)
        assert len(sample) == SAMPLE_POINTS
        assert list(sample) == sorted(sample)
        assert sum(sample) / len(sample) == pytest.approx(10.0, rel=0.05)
        with pytest.raises(CalibrationError):
            exponential_sample(0.0)

    def test_mape(self):
        assert mape(11.0, 10.0) == pytest.approx(0.1)
        assert mape(0.0, 0.0) == 0.0


class TestFitCacheAndRoute:
    def test_cache_ratios(self):
        rows = (
            [_row(i, cache="hit") for i in range(6)]
            + [_row(i, cache="stale") for i in range(2)]
            + [_row(i, cache="miss") for i in range(1)]
            + [_row(i, cache="coalesced") for i in range(1)]
        )
        mix = fit_cache(rows)
        assert mix["hit"] == 0.6
        assert mix["stale"] == 0.2
        assert mix["miss"] == 0.1
        assert mix["coalesced"] == 0.1
        assert mix["requests"] == 10

    def test_route_weight_and_fallback_service(self):
        rows = [_row(float(i), cache="hit") for i in range(10)]
        fit = fit_route(rows, total_events=40)
        assert fit["weight"] == 0.25
        assert fit["service"]["observed"] is False
        assert set(fit["service"]["sample_ms"]) == {fit["hit_ms"]}


class TestFitArrivals:
    def test_flat_path_below_min_events(self):
        t_ms = [float(i) * 100.0 for i in range(1, 11)]
        shape = fit_arrivals(t_ms)
        assert shape["base_rps"] == pytest.approx(10.0)
        assert shape["diurnal_amplitude"] == 0.0
        assert shape["flash_multiplier"] == 1.0

    def test_uniform_dense_stream_fits_no_flash(self):
        t_ms = [i * 10.0 for i in range(1, 3001)]  # 100 rps, 30 s
        shape = fit_arrivals(t_ms, duration_s=30.0)
        assert shape["base_rps"] == pytest.approx(100.0, rel=0.05)
        assert shape["diurnal_amplitude"] < 0.05
        assert shape["flash_multiplier"] == 1.0
        assert shape["curve_mape"] < 0.05

    def test_flash_window_recovery(self):
        # 100 rps for 30 s with a x3 flash in [10 s, 15 s).
        t_ms, t = [], 0.0
        while t < 30_000.0:
            rate = 0.3 if 10_000.0 <= t < 15_000.0 else 0.1
            t += 1.0 / rate
            t_ms.append(round(t, 3))
        shape = fit_arrivals(t_ms, duration_s=30.0)
        assert shape["flash_multiplier"] == pytest.approx(3.0, rel=0.15)
        assert shape["flash_start_s"] == pytest.approx(10.0, abs=1.0)
        assert shape["flash_duration_s"] == pytest.approx(5.0, abs=1.5)

    def test_empty_stream_raises(self):
        with pytest.raises(CalibrationError):
            fit_arrivals([])


class TestSummarize:
    def test_empty_and_unserved_streams_raise(self):
        with pytest.raises(CalibrationError):
            summarize_rows([])
        with pytest.raises(CalibrationError):
            summarize_rows([_row(1.0, status=503)])

    def test_hit_ratio_counts_hit_and_stale(self):
        rows = [_row(1.0, cache="hit"), _row(2.0, cache="stale"),
                _row(3.0, cache="miss"), _row(4.0, cache="coalesced")]
        assert summarize_rows(rows)["hit_ratio"] == 0.5


class TestTelemetryHygiene:
    def test_malformed_jsonl_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        good = json.dumps(_row(1.0), sort_keys=True)
        path.write_text(good + "\n" + "{not json\n")
        with pytest.raises(ValueError, match=r"telemetry\.jsonl:2:"):
            TelemetryLog.read_jsonl(path)

    def test_invalid_row_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        bad = dict(_row(1.0), cache="teleported")
        path.write_text(
            json.dumps(_row(1.0)) + "\n\n" + json.dumps(bad) + "\n"
        )
        with pytest.raises(ValueError, match=r"telemetry\.jsonl:3.*cache"):
            TelemetryLog.read_jsonl(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match=r"telemetry\.jsonl:1"):
            TelemetryLog.read_jsonl(path)

    def test_truncated_stream_refused_beyond_bound(self):
        rows = [_row(float(i + 1)) for i in range(50)]
        with pytest.raises(CalibrationError, match="dropped"):
            calibrate_rows(rows, seed=1, telemetry_dropped=10)

    def test_truncated_stream_allowed_when_overridden(self):
        truth = ground_truth_params(True)
        rows = simulate_twin(
            truth, DeterministicRng(DEFAULT_SEED).fork("calibrate/truth")
        )
        report = calibrate_rows(
            rows, seed=DEFAULT_SEED, telemetry_dropped=len(rows),
            allow_truncated=True,
            duration_s=truth.shape.duration_s,
            period_s=truth.shape.diurnal_period_s,
        )
        assert report.telemetry_dropped == len(rows)

    def test_full_ring_drops_surface_in_serve_report(self):
        # Satellite fix: the ring drops oldest events and the count
        # must reach ServeReport so calibration can refuse the stream.
        from repro.serve.report import ServeReport, validate_serve_payload
        from repro.serve.telemetry import RequestEvent

        log = TelemetryLog(max_events=4)
        for i in range(7):
            log.record(RequestEvent(
                t_ms=float(i), route="wordpress", status=200,
                cache="hit", queue_wait_ms=0.0, render_ms=0.0,
                total_ms=0.2, bytes_out=64,
            ))
        assert log.dropped == 3
        assert log.recorded == 7
        assert len(log) == 4
        # Oldest events are gone; the tail survives.
        assert [e.t_ms for e in log] == [3.0, 4.0, 5.0, 6.0]
        report = ServeReport(mode="smoke", telemetry_dropped=log.dropped)
        payload = report.to_payload()
        assert payload["telemetry_dropped"] == 3
        validate_serve_payload(payload)
        with pytest.raises(ValueError, match="telemetry_dropped"):
            validate_serve_payload(
                dict(payload, telemetry_dropped=-1)
            )


@pytest.fixture(scope="module")
def smoke_payload() -> dict:
    report = self_calibrate(seed=DEFAULT_SEED, smoke=True, jobs=1)
    return report.to_payload()


class TestPayloadSchema:
    def test_payload_validates(self, smoke_payload):
        validate_calibration_payload(smoke_payload)
        assert smoke_payload["schema"] == CALIBRATE_SCHEMA

    def test_validator_rejects_corrupt_payloads(self, smoke_payload):
        for corrupt in (
            {**smoke_payload, "schema": "repro-serve/1"},
            {**smoke_payload, "mode": "fast"},
            {**smoke_payload, "events": 0},
            {**smoke_payload, "fitted": {"routes": {}}},
            {**smoke_payload, "mape": {"overall": 0.1}},
            {**smoke_payload, "what_if": {}},
            {**smoke_payload, "ok": "yes"},
            {**smoke_payload, "host": {}},
        ):
            with pytest.raises(ValueError):
                validate_calibration_payload(corrupt)

    def test_history_row_roundtrip(self, smoke_payload):
        row = calibrate_history_row(smoke_payload)
        validate_calibrate_history_row(row)
        assert row["schema"] == CALIBRATE_HISTORY_SCHEMA
        assert row["mape_p99"] == smoke_payload["mape"]["p99"]
        with pytest.raises(ValueError):
            validate_calibrate_history_row({**row, "events": 0})

    def test_report_renders_with_verdict(self, smoke_payload):
        text = format_calibration_report(smoke_payload)
        assert "digital-twin calibration" in text
        assert "PASS" in text
        for route in ("wordpress", "drupal", "mediawiki"):
            assert f"route {route}" in text


class TestSelfConsistency:
    def test_smoke_gate_meets_the_pinned_bars(self, smoke_payload):
        assert smoke_payload["ok"] is True
        assert smoke_payload["mape"]["p99"] <= MAPE_P99_BOUND
        assert smoke_payload["mape"]["hit_ratio"] <= MAPE_HIT_RATIO_BOUND
        recovery = smoke_payload["self_test"]["recovery"]
        assert recovery["service_mean_err"] <= 0.10
        assert recovery["amplitude_abs_err"] <= 0.10

    def test_what_if_prices_both_distributions(self, smoke_payload):
        what_if = smoke_payload["what_if"]
        assert what_if["nodes_fitted"] is not None
        # The fitted distribution never needs more nodes than the
        # heavier-tailed exponential assumption at the same mean.
        if what_if["nodes_assumed"] is not None:
            assert what_if["nodes_fitted"] <= what_if["nodes_assumed"]

    def test_jobs_byte_identity(self, tmp_path):
        outs = []
        for jobs in (1, 4):
            out_dir = tmp_path / f"jobs{jobs}"
            run_calibrate(
                smoke=True, seed=DEFAULT_SEED, jobs=jobs,
                out_dir=out_dir, history_path=tmp_path / "h.jsonl",
                append_history=False,
            )
            outs.append((out_dir / "calibration.json").read_bytes())
        assert outs[0] == outs[1]

    def test_twin_rows_validate_and_are_sorted(self):
        from repro.serve.telemetry import validate_event_row

        truth = ground_truth_params(True)
        rows = simulate_twin(
            truth, DeterministicRng(99).fork("calibrate/truth")
        )
        assert len(rows) > 1000
        t = [row["t_ms"] for row in rows]
        assert t == sorted(t)
        for row in rows[:50] + rows[-50:]:
            validate_event_row(row)

    def test_run_calibrate_writes_artifacts_and_history(self, tmp_path):
        history = tmp_path / "history.jsonl"
        payload = run_calibrate(
            smoke=True, seed=DEFAULT_SEED, jobs=1,
            out_dir=tmp_path, history_path=history,
        )
        assert (tmp_path / "calibration.json").exists()
        assert (tmp_path / "calibration.txt").exists()
        rows = [json.loads(line)
                for line in history.read_text().splitlines()]
        assert len(rows) == 1
        validate_calibrate_history_row(rows[0])
        assert rows[0]["ok"] == payload["ok"] is True


class TestEndToEndServeRoundTrip:
    def test_serve_telemetry_calibrates_within_loose_bars(self, tmp_path):
        # The real loop: a live wall-clock serve run writes telemetry
        # JSONL; calibration fits it and predicts. Wall-clock noise
        # means loose bars here — the *tight* deterministic bars are
        # the twin-self smoke gate's job.
        from repro.serve.run import run_serve

        serve_payload = run_serve(
            smoke=True, seed=DEFAULT_SEED, out_dir=tmp_path,
            history_path=tmp_path / "h.jsonl",
        )
        telemetry = tmp_path / "serve_telemetry.jsonl"
        assert telemetry.exists(), "serve run must persist telemetry"
        payload = run_calibrate(
            smoke=True, seed=DEFAULT_SEED, jobs=1,
            telemetry=telemetry,
            telemetry_dropped=serve_payload.get("telemetry_dropped", 0),
            out_dir=tmp_path, history_path=tmp_path / "h.jsonl",
            append_history=False,
        )
        validate_calibration_payload(payload)
        assert payload["source"].endswith("telemetry.jsonl")
        assert payload["events"] > 50
        # Cache behaviour is deterministic even under wall clocks.
        assert payload["mape"]["hit_ratio"] <= 0.25
        assert math.isfinite(payload["mape"]["overall"])
        assert len(QUANTILE_GRID) == 13
