"""Unit tests: JSON export of evaluation results."""

from __future__ import annotations

import json

import pytest

from repro.core.export import (
    app_result_to_dict,
    evaluation_to_dict,
    save_evaluation_json,
)
from repro.core.experiment import full_evaluation


@pytest.fixture(scope="module")
def results():
    return full_evaluation(requests=2)


class TestExport:
    def test_app_dict_is_json_safe(self, results):
        payload = app_result_to_dict(results[0])
        text = json.dumps(payload)
        assert json.loads(text) == payload

    def test_all_fields_present(self, results):
        payload = app_result_to_dict(results[0])
        for key in ("app", "time_with_accelerators", "benefits",
                    "efficiencies", "energy_saving", "hash_hit_rate"):
            assert key in payload

    def test_evaluation_dict_includes_paper_reference(self, results):
        payload = evaluation_to_dict(results)
        assert payload["paper"]["doi"] == "10.1145/3079856.3080234"
        assert len(payload["apps"]) == 3
        assert 0.6 < payload["averages"]["time_with_accelerators"] < 0.8

    def test_save_roundtrip(self, results, tmp_path):
        out = save_evaluation_json(
            tmp_path / "results.json", results=results
        )
        loaded = json.loads(out.read_text())
        assert {a["app"] for a in loaded["apps"]} == {
            "wordpress", "drupal", "mediawiki"
        }

    def test_cli_export(self, tmp_path, capsys):
        from repro.__main__ import main
        out = tmp_path / "cli.json"
        assert main(["export", "--requests", "2", "--out", str(out)]) == 0
        loaded = json.loads(out.read_text())
        assert "averages" in loaded
