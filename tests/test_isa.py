"""Unit tests: ISA extensions and the accelerator complex."""

from __future__ import annotations

import pytest

from repro.isa import (
    AcceleratorComplex,
    ISA_EXTENSIONS,
    REGEX_API,
    Unit,
    instruction,
)
from repro.runtime.phparray import PhpArray


class TestInstructionSet:
    def test_paper_mnemonics_present(self):
        """Section 4.6 lists exactly these extensions."""
        expected = {
            "hashtableget", "hashtableset", "hmmalloc", "hmfree",
            "hmflush", "stringop", "strreadconfig", "strwriteconfig",
            "regexlookup", "regexset",
        }
        assert set(ISA_EXTENSIONS) == expected

    def test_zero_flag_semantics(self):
        assert instruction("hashtableget").sets_zero_flag
        assert instruction("hashtableset").sets_zero_flag
        assert instruction("hmmalloc").sets_zero_flag
        assert instruction("hmfree").sets_zero_flag
        assert instruction("regexlookup").sets_zero_flag
        assert not instruction("hmflush").sets_zero_flag
        assert not instruction("stringop").sets_zero_flag

    def test_units_assigned(self):
        assert instruction("hashtableget").unit is Unit.HASH_TABLE
        assert instruction("hmflush").unit is Unit.HEAP_MANAGER
        assert instruction("strreadconfig").unit is Unit.STRING
        assert instruction("regexset").unit is Unit.REGEX

    def test_regex_api_names(self):
        assert REGEX_API == ("regexp_sieve", "regexp_shadow")

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(KeyError):
            instruction("vmovdqa")


class TestAcceleratorComplex:
    def test_dirty_writeback_reaches_software_map(self, complex_):
        array = PhpArray(base_address=0x9000)
        complex_.register_map(array)
        # Force a dirty eviction by overflowing one probe window: use a
        # tiny table for determinism.
        from repro.accel.hash_table import HashTableConfig, HardwareHashTable
        complex_.hash_table = HardwareHashTable(
            HashTableConfig(entries=4, probe_width=4)
        )
        complex_.hash_table.writeback_handler = complex_._writeback
        for i in range(6):
            complex_.hash_table.set(f"k{i}", 0x9000, f"v{i}")
        assert complex_.stats.get("complex.dirty_writebacks") >= 1
        # Evicted values landed in the software map.
        assert any(f"k{i}" in array for i in range(6))

    def test_context_switch_roundtrip(self, complex_):
        out = complex_.heap_manager.hmmalloc(32)
        complex_.heap_manager.hmfree(out.address, 32)
        complex_.string.to_upper("abc")
        flushed, saved = complex_.context_switch_out()
        assert flushed > 0
        assert complex_.heap_manager.cached_blocks() == 0
        cycles = complex_.context_switch_in(saved)
        assert cycles >= 1
        assert complex_.string.strwriteconfig() == saved

    def test_remote_request_flushes_map(self, complex_):
        array = PhpArray(base_address=0x9100)
        complex_.register_map(array)
        complex_.hash_table.set("k", 0x9100, "v")
        flushed = complex_.remote_request(0x9100)
        assert flushed == 1
        assert array.get_default("k") == "v"
        assert not complex_.hash_table.get("k", 0x9100).hit

    def test_l2_eviction_enforces_inclusion(self, complex_):
        array = PhpArray(base_address=0x9200)
        complex_.register_map(array)
        complex_.hash_table.set("k", 0x9200, "v")
        assert complex_.l2_eviction(0x9200) == 1

    def test_local_short_lived_maps_cause_no_coherence(self, complex_):
        """§4.2: "virtually no coherence activity" in the common case."""
        array = PhpArray(base_address=0x9300)
        complex_.register_map(array)
        for i in range(10):
            complex_.hash_table.set(f"k{i}", 0x9300, i)
        complex_.hash_table.free_map(0x9300)
        assert complex_.stats.get("complex.remote_requests") == 0
        assert complex_.stats.get("complex.dirty_writebacks") == 0
