"""Unit + property tests: the software slab allocator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.slab import (
    CHUNK_BYTES,
    SLAB_CLASS_BOUNDS,
    SlabAllocator,
    slab_class_for,
)


class TestSlabClassFor:
    def test_boundaries(self):
        assert slab_class_for(1) == 0
        assert slab_class_for(32) == 0
        assert slab_class_for(33) == 1
        assert slab_class_for(128) == 3
        assert slab_class_for(129) == 4

    def test_oversize_returns_none(self):
        assert slab_class_for(SLAB_CLASS_BOUNDS[-1] + 1) is None

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            slab_class_for(0)


class TestAllocator:
    def test_malloc_returns_distinct_addresses(self):
        s = SlabAllocator()
        a = s.malloc(40)
        b = s.malloc(40)
        assert a != b

    def test_free_then_malloc_recycles(self):
        s = SlabAllocator()
        a = s.malloc(40)
        s.free(a)
        assert s.malloc(40) == a
        assert s.stats.get("malloc.recycled") == 1

    def test_free_unknown_raises(self):
        with pytest.raises(ValueError):
            SlabAllocator().free(0xDEAD)

    def test_double_free_raises(self):
        s = SlabAllocator()
        a = s.malloc(16)
        s.free(a)
        with pytest.raises(ValueError):
            s.free(a)

    def test_oversize_goes_to_kernel(self):
        s = SlabAllocator()
        a = s.malloc(100_000)
        assert s.stats.get("malloc.kernel_direct") == 1
        s.free(a)
        assert s.stats.get("free.kernel_direct") == 1

    def test_chunk_carving_counted(self):
        s = SlabAllocator()
        s.malloc(40)
        assert s.stats.get("kernel.chunk_allocs") == 1
        # Subsequent allocations of the same class reuse the chunk.
        for _ in range(10):
            s.malloc(40)
        assert s.stats.get("kernel.chunk_allocs") == 1

    def test_live_bytes_tracks_class(self):
        s = SlabAllocator()
        a = s.malloc(40)  # class 1 (<=64)
        assert s.live_bytes(1) == 64
        s.free(a)
        assert s.live_bytes(1) == 0

    def test_recycle_rate(self):
        s = SlabAllocator()
        addresses = [s.malloc(20) for _ in range(10)]
        for a in addresses:
            s.free(a)
        for _ in range(10):
            s.malloc(20)
        assert s.recycle_rate() == pytest.approx(0.5)

    def test_usage_samples(self):
        s = SlabAllocator()
        s.malloc(20)
        s.sample_usage()
        s.malloc(20)
        s.sample_usage()
        assert len(s.usage_samples) == 2
        assert s.usage_samples[1][1][0] == 2 * 32


class TestPrefetcherInterface:
    def test_pop_free_block_marks_live(self):
        s = SlabAllocator()
        addr = s.pop_free_block(0)
        assert addr is not None
        assert s.live_bytes(0) == 32

    def test_push_free_block_returns_to_list(self):
        s = SlabAllocator()
        addr = s.pop_free_block(0)
        s.push_free_block(0, addr)
        assert s.live_bytes(0) == 0
        assert s.pop_free_block(0) == addr

    def test_pop_uses_chunk_refill_when_dry(self):
        s = SlabAllocator()
        before = s.stats.get("kernel.chunk_allocs")
        s.pop_free_block(2)
        assert s.stats.get("kernel.chunk_allocs") == before + 1


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=1, max_value=4096), max_size=80))
    @settings(max_examples=50)
    def test_alloc_free_all_leaves_nothing_live(self, sizes):
        s = SlabAllocator()
        addresses = [s.malloc(size) for size in sizes]
        assert len(set(addresses)) == len(addresses)
        for a in addresses:
            s.free(a)
        assert s.live_bytes() == 0

    @given(st.lists(st.integers(min_value=1, max_value=128), min_size=1,
                    max_size=60))
    @settings(max_examples=50)
    def test_small_alloc_churn_reuses_memory(self, sizes):
        """Strong reuse: churning a bounded live set stays in one chunk."""
        s = SlabAllocator()
        for size in sizes:
            a = s.malloc(size)
            s.free(a)
        # At most one chunk per size class ever carved.
        assert s.stats.get("kernel.chunk_allocs") <= 4

    @given(st.integers(min_value=1, max_value=4096))
    def test_block_size_covers_request(self, size):
        cls = slab_class_for(size)
        assert cls is not None
        assert SLAB_CLASS_BOUNDS[cls] >= size
        if cls:
            assert SLAB_CLASS_BOUNDS[cls - 1] < size
