"""Property tests: MiniPHP expression semantics under fuzzing."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.runtime.interp import MiniPhpInterpreter, SoftwareBackend

words = st.text(alphabet="abcxyz 09", max_size=12)


def render(template: str, variables=None) -> str:
    return MiniPhpInterpreter(SoftwareBackend()).render(
        template, variables or {}
    )


class TestConcatProperties:
    @given(st.lists(words, min_size=1, max_size=6))
    @settings(max_examples=80)
    def test_concat_chain_equals_join(self, parts):
        expr = " . ".join(f"'{p}'" for p in parts)
        assert render(f"<?= {expr} ?>") == "".join(parts)

    @given(words, words)
    @settings(max_examples=60)
    def test_concat_through_variables(self, a, b):
        out = render("<?php $joined = $a . $b; ?><?= $joined ?>",
                     {"a": a, "b": b})
        assert out == a + b


class TestComparisonProperties:
    @given(st.integers(0, 999), st.integers(0, 999))
    @settings(max_examples=80)
    def test_integer_comparisons(self, x, y):
        for op, fn in (("==", x == y), ("!=", x != y),
                       ("<", x < y), (">", x > y)):
            out = render(f"<?= {x} {op} {y} ?>")
            assert out == ("1" if fn else "")

    @given(st.lists(st.integers(0, 99), min_size=1, max_size=5))
    @settings(max_examples=60)
    def test_count_matches_length(self, values):
        items = ", ".join(str(v) for v in values)
        out = render(f"<?php $a = array({items}); ?><?= count($a) ?>")
        assert out == str(len(values))


class TestArrayProperties:
    @given(st.dictionaries(
        st.text(alphabet="abcdef", min_size=1, max_size=6),
        st.integers(0, 99), min_size=1, max_size=6,
    ))
    @settings(max_examples=60)
    def test_array_roundtrip(self, mapping):
        pairs = ", ".join(f"'{k}' => {v}" for k, v in mapping.items())
        probes = "".join(
            f"[<?= $a['{k}'] ?>]" for k in mapping
        )
        out = render(f"<?php $a = array({pairs}); ?>{probes}")
        assert out == "".join(f"[{v}]" for v in mapping.values())

    @given(st.lists(
        st.tuples(st.text(alphabet="abcdef", min_size=1, max_size=5),
                  st.integers(0, 99)),
        min_size=1, max_size=8,
    ))
    @settings(max_examples=60)
    def test_foreach_order_matches_insertion(self, pairs):
        interp = MiniPhpInterpreter(SoftwareBackend())
        array = interp.new_array()
        expected: dict[str, int] = {}
        for k, v in pairs:
            interp.array_set(array, k, v)
            expected[k] = v
        out = interp.render(
            "<?php foreach ($a as $k => $v): ?>"
            "<?= $k ?>=<?= $v ?>;<?php endforeach; ?>",
            {"a": array},
        )
        assert out == "".join(f"{k}={v};" for k, v in expected.items())


class TestFunctionProperties:
    @given(words)
    @settings(max_examples=60)
    def test_strtoupper_matches_python(self, s):
        out = render("<?= strtoupper($s) ?>", {"s": s})
        assert out == s.upper()

    @given(words)
    @settings(max_examples=60)
    def test_strlen_matches_python(self, s):
        out = render("<?= strlen($s) ?>", {"s": s})
        assert out == str(len(s))

    @given(st.lists(words, max_size=5), words)
    @settings(max_examples=60)
    def test_implode_matches_join(self, parts, glue):
        interp = MiniPhpInterpreter(SoftwareBackend())
        array = interp.new_array()
        for i, p in enumerate(parts):
            interp.array_set(array, str(i), p)
        out = interp.render("<?= implode($g, $a) ?>",
                            {"g": glue, "a": array})
        assert out == glue.join(parts)
