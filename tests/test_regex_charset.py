"""Unit + property tests: CharSet bitmask algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.regex.charset import (
    ALPHABET_SIZE,
    CharSet,
    DIGIT,
    REGULAR_CHARS,
    SPACE,
    SPECIAL_CHARS,
    WORD,
)

ascii_chars = st.characters(min_codepoint=0, max_codepoint=127)


class TestConstruction:
    def test_of(self):
        cs = CharSet.of("abc")
        assert cs.contains("a") and cs.contains("c")
        assert not cs.contains("d")

    def test_char_range(self):
        cs = CharSet.char_range("a", "c")
        assert list(cs.codes()) == [97, 98, 99]

    def test_char_range_rejects_reversed(self):
        with pytest.raises(ValueError):
            CharSet.char_range("z", "a")

    def test_of_rejects_non_byte(self):
        with pytest.raises(ValueError):
            CharSet.of("ሴ")

    def test_dot_excludes_newline(self):
        dot = CharSet.dot()
        assert dot.contains("a")
        assert not dot.contains("\n")

    def test_empty_and_full(self):
        assert CharSet.empty().is_empty()
        assert len(CharSet.full()) == ALPHABET_SIZE


class TestAlgebra:
    def test_union(self):
        assert CharSet.of("ab").union(CharSet.of("bc")) == CharSet.of("abc")

    def test_intersection(self):
        assert CharSet.of("ab").intersection(CharSet.of("bc")) == CharSet.of("b")

    def test_difference(self):
        assert CharSet.of("abc").difference(CharSet.of("b")) == CharSet.of("ac")

    def test_complement_involution(self):
        cs = CharSet.of("xyz")
        assert cs.complement().complement() == cs

    def test_hashable(self):
        assert len({CharSet.of("a"), CharSet.of("a"), CharSet.of("b")}) == 2

    @given(st.sets(ascii_chars, max_size=20), st.sets(ascii_chars, max_size=20))
    @settings(max_examples=60)
    def test_union_matches_set_semantics(self, a, b):
        ca, cb = CharSet.of("".join(a)), CharSet.of("".join(b))
        u = ca.union(cb)
        for ch in map(chr, range(128)):
            assert u.contains(ch) == (ch in a or ch in b)

    @given(st.sets(ascii_chars, max_size=20))
    @settings(max_examples=60)
    def test_len_matches_cardinality(self, chars):
        assert len(CharSet.of("".join(chars))) == len(chars)


class TestNamedClasses:
    def test_digit(self):
        assert all(DIGIT.contains(c) for c in "0123456789")
        assert not DIGIT.contains("a")

    def test_word(self):
        assert all(WORD.contains(c) for c in "azAZ09_")
        assert not WORD.contains("-")

    def test_space(self):
        assert all(SPACE.contains(c) for c in " \t\n\r")

    def test_paper_special_partition(self):
        """Section 4.5: {A-Za-z0-9_.,-} regular (plus space, see note)."""
        for c in "AZaz09_.,- ":
            assert REGULAR_CHARS.contains(c), c
            assert not SPECIAL_CHARS.contains(c), c
        for c in "'\"<>&\n[]()=;:!?":
            assert SPECIAL_CHARS.contains(c), c
            assert not REGULAR_CHARS.contains(c), c

    def test_partition_covers_ascii(self):
        for code in range(128):
            ch = chr(code)
            assert REGULAR_CHARS.contains(ch) != SPECIAL_CHARS.contains(ch)

    def test_sample_char(self):
        assert CharSet.of("q").sample_char() == "q"
        with pytest.raises(ValueError):
            CharSet.empty().sample_char()
