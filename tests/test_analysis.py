"""Static-analysis suite: rule fixtures, waivers, baseline, CLI gate.

Each rule family — DET/POOL/KEY plus the interprocedural ASY
async-safety rules and the SCH schema-contract diff — gets positive
*and* negative fixtures run through
:func:`repro.analysis.analyze_sources` (in-memory modules, no disk),
the waiver directives are exercised in both directions (suppression
and the KEY002 staleness check that keeps them honest), the baseline
round-trips, the ``repro-lint/2`` JSON schema is locked (with the
consumer-side :func:`validate_lint_payload` rejecting corrupt
documents), and a meta-test asserts the shipped ``src/repro`` tree is
clean — the same gate ``scripts/check.sh`` enforces in CI.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro import analysis
from repro.__main__ import main
from repro.analysis import (
    BASELINE_SCHEMA,
    REPORT_SCHEMA,
    RULES,
    Finding,
    analyze_sources,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(source: str, modname: str = "fix.mod") -> list:
    return analyze_sources({modname: textwrap.dedent(source)})


def pool_src(body: str) -> str:
    """A module that fans out through map_cells (pre-dedented)."""
    return ("from repro.core.parallel import map_cells\n\n"
            + textwrap.dedent(body))


def keyed_src(body: str, label: bool = True) -> str:
    """A module with an expcache-keyed fan-out site (pre-dedented)."""
    label_line = '        label="sweep-fixture",\n' if label else ""
    return (
        "from repro.core.expcache import EXPERIMENT_CACHE\n"
        "from repro.core.parallel import map_cells\n\n"
        + textwrap.dedent(body)
        + "\n\ndef sweep(cells):\n"
        "    return map_cells(\n"
        "        _cell, cells,\n"
        "        cache=EXPERIMENT_CACHE,\n"
        "        key_parts=lambda cell: (cell,),\n"
        + label_line
        + "    )\n"
    )


def rules_of(findings: list) -> list[str]:
    return [f.rule for f in findings]


# -- DET0xx: determinism ----------------------------------------------------


class TestDetRules:
    def test_det001_wall_clock(self):
        findings = lint("""\
            import time

            def stamp():
                return time.time()
            """)
        assert rules_of(findings) == ["DET001"]
        assert findings[0].symbol == "stamp"
        assert "time.time" in findings[0].message

    def test_det001_datetime_now_via_from_import(self):
        findings = lint("""\
            from datetime import datetime

            def stamp():
                return datetime.now()
            """)
        assert rules_of(findings) == ["DET001"]

    def test_det001_aliased_import_resolves(self):
        findings = lint("""\
            import time as t

            def stamp():
                return t.perf_counter()
            """)
        assert rules_of(findings) == ["DET001"]

    def test_time_sleep_is_not_a_clock_read(self):
        assert lint("""\
            import time

            def pause():
                time.sleep(0.1)
            """) == []

    def test_det002_module_level_random(self):
        findings = lint("""\
            import random

            def draw():
                return random.random()
            """)
        assert rules_of(findings) == ["DET002"]

    def test_det002_unseeded_random_instance(self):
        findings = lint("""\
            import random

            def make():
                return random.Random()
            """)
        assert rules_of(findings) == ["DET002"]

    def test_seeded_random_instance_is_clean(self):
        assert lint("""\
            import random

            def make(seed):
                return random.Random(seed)
            """) == []

    def test_det003_entropy_sources(self):
        findings = lint("""\
            import os
            import uuid

            def token():
                return uuid.uuid4().hex + os.urandom(4).hex()
            """)
        assert rules_of(findings) == ["DET003", "DET003"]

    def test_det004_set_iteration_into_ordered_sink(self):
        findings = lint("""\
            def collect(items):
                seen = set(items)
                out = []
                for item in seen:
                    out.append(item)
                return out
            """)
        assert rules_of(findings) == ["DET004"]
        assert "sorted" in findings[0].message

    def test_det004_sorted_iteration_is_clean(self):
        assert lint("""\
            def collect(items):
                seen = set(items)
                out = []
                for item in sorted(seen):
                    out.append(item)
                return out
            """) == []

    def test_det004_comprehension_over_set(self):
        findings = lint("""\
            def collect(items):
                seen = set(items)
                return [item for item in seen]
            """)
        assert rules_of(findings) == ["DET004"]

    def test_det004_order_free_consumer_is_clean(self):
        assert lint("""\
            def total(items):
                seen = set(items)
                return sum(item for item in seen)
            """) == []

    def test_det005_salted_hash(self):
        findings = lint("""\
            def key(name):
                return hash(name) % 64
            """)
        assert rules_of(findings) == ["DET005"]

    def test_det005_numeric_literal_hash_is_clean(self):
        assert lint("""\
            def key():
                return hash(42) % 64
            """) == []


# -- POOL0xx: pool purity ---------------------------------------------------


class TestPoolRules:
    def test_pool001_lambda_payload(self):
        findings = lint(pool_src("""\
            def sweep(cells):
                return map_cells(lambda c: c + 1, cells)
            """))
        assert rules_of(findings) == ["POOL001"]
        assert "lambda" in findings[0].message

    def test_pool001_nested_def_payload(self):
        findings = lint(pool_src("""\
            def sweep(cells):
                def _cell(c):
                    return c + 1
                return map_cells(_cell, cells)
            """))
        assert rules_of(findings) == ["POOL001"]

    def test_pool002_payload_mutates_module_singleton(self):
        findings = lint(pool_src("""\
            REGISTRY = dict()

            def _cell(item):
                REGISTRY.update({item: 1})
                return item

            def sweep(cells):
                return map_cells(_cell, cells)
            """))
        assert rules_of(findings) == ["POOL002"]
        assert "REGISTRY" in findings[0].message

    def test_pool002_transitive_through_helper(self):
        findings = lint(pool_src("""\
            REGISTRY = dict()

            def _note(item):
                REGISTRY.update({item: 1})

            def _cell(item):
                _note(item)
                return item

            def sweep(cells):
                return map_cells(_cell, cells)
            """))
        assert rules_of(findings) == ["POOL002"]
        assert "_note" in findings[0].message

    def test_pool002_global_rebind(self):
        findings = lint(pool_src("""\
            COUNT = 0

            def _cell(item):
                global COUNT
                COUNT = COUNT + 1
                return item

            def sweep(cells):
                return map_cells(_cell, cells)
            """))
        assert rules_of(findings) == ["POOL002"]

    def test_pool003_unsanctioned_env_read(self):
        findings = lint(pool_src("""\
            import os

            def _cell(item):
                return os.getenv("HOME", "") + item

            def sweep(cells):
                return map_cells(_cell, cells)
            """))
        assert rules_of(findings) == ["POOL003"]
        assert "HOME" in findings[0].message

    def test_pool003_repro_knobs_are_sanctioned(self):
        assert lint(pool_src("""\
            import os

            def _cell(item):
                jobs = os.getenv("REPRO_JOBS", "1")
                return (item, jobs)

            def sweep(cells):
                return map_cells(_cell, cells)
            """)) == []

    def test_pure_top_level_payload_is_clean(self):
        assert lint(pool_src("""\
            def _cell(item):
                return item * 2

            def sweep(cells):
                return map_cells(_cell, cells)
            """)) == []


# -- KEY0xx: cache soundness ------------------------------------------------


class TestKeyRules:
    def test_key001_unkeyed_singleton_read(self):
        findings = lint(keyed_src("""\
            LOOKUP = dict()

            def _cell(item):
                return LOOKUP.get(item, 0) + item
            """))
        assert rules_of(findings) == ["KEY001"]
        assert "LOOKUP" in findings[0].message
        assert "cache-key-covers" in findings[0].message

    def test_key001_env_read_is_an_input(self):
        findings = lint(keyed_src("""\
            import os

            def _cell(item):
                return os.getenv("LANG", "") + str(item)
            """))
        # The env read is both impure (POOL003) and unkeyed (KEY001).
        assert sorted(rules_of(findings)) == ["KEY001", "POOL003"]

    def test_accurate_waiver_suppresses_key001(self):
        assert lint(keyed_src("""\
            LOOKUP = dict()

            # repro: cache-key-covers(LOOKUP)
            def _cell(item):
                return LOOKUP.get(item, 0) + item
            """)) == []

    def test_key002_stale_waiver_entry(self):
        findings = lint(keyed_src("""\
            LOOKUP = dict()

            # repro: cache-key-covers(LOOKUP, GONE)
            def _cell(item):
                return LOOKUP.get(item, 0) + item
            """))
        assert rules_of(findings) == ["KEY002"]
        assert "GONE" in findings[0].message

    def test_key003_missing_label(self):
        findings = lint(keyed_src("""\
            def _cell(item):
                return item * 2
            """, label=False))
        assert rules_of(findings) == ["KEY003"]

    def test_unkeyed_fanout_needs_no_label(self):
        assert lint(pool_src("""\
            def _cell(item):
                return item * 2

            def sweep(cells):
                return map_cells(_cell, cells)
            """)) == []


# -- ASY0xx: async safety ---------------------------------------------------


class TestAsyncBlockingRules:
    def test_asy001_blocking_call_in_coroutine(self):
        findings = lint("""\
            import time

            async def handler():
                time.sleep(0.1)
            """)
        assert rules_of(findings) == ["ASY001"]
        assert "time.sleep" in findings[0].message
        assert findings[0].symbol == "handler"

    def test_asy001_transitive_through_sync_helper(self):
        findings = lint("""\
            import subprocess

            def _shell(cmd):
                return subprocess.run(cmd)

            async def handler(cmd):
                return _shell(cmd)
            """)
        assert rules_of(findings) == ["ASY001"]
        assert "via `fix.mod._shell`" in findings[0].message

    def test_asy001_heavy_kernel_in_coroutine(self):
        findings = lint("""\
            from repro.workloads.templates import render_http_page

            async def handler(app, seed):
                return render_http_page(app, seed, 0)
            """)
        assert rules_of(findings) == ["ASY001"]
        assert "heavy kernel" in findings[0].message

    def test_asy001_sync_only_caller_is_clean(self):
        assert lint("""\
            import time

            def pause():
                time.sleep(0.1)

            def caller():
                pause()
            """) == []

    def test_asy001_nested_coroutine_reports_once(self):
        # The inner coroutine is its own ASY001 root; the awaiting
        # outer coroutine must not duplicate the finding.
        findings = lint("""\
            import time

            async def inner():
                time.sleep(0.1)

            async def outer():
                await inner()
            """)
        assert rules_of(findings) == ["ASY001"]
        assert "inner" in findings[0].symbol


class TestAsyncRaceRules:
    def test_asy002_check_then_act_on_self_attr(self):
        findings = lint("""\
            import asyncio

            class Conn:
                async def _dial(self):
                    await asyncio.sleep(0)
                    return object()

                async def connect(self):
                    if self._writer is None:
                        self._writer = await self._dial()
            """)
        assert rules_of(findings) == ["ASY002"]
        assert "self._writer" in findings[0].message

    def test_asy002_check_then_act_on_module_global(self):
        findings = lint("""\
            import asyncio

            CACHE = None

            async def _load():
                await asyncio.sleep(0)
                return 1

            async def fill():
                global CACHE
                if CACHE is None:
                    CACHE = await _load()
            """)
        assert rules_of(findings) == ["ASY002"]
        assert "CACHE" in findings[0].message

    def test_asy002_claim_before_await_is_clean(self):
        assert lint("""\
            class Conn:
                async def close(self):
                    writer, self._writer = self._writer, None
                    writer.close()
                    await writer.wait_closed()
            """) == []

    def test_asy002_fresh_reread_is_clean(self):
        assert lint("""\
            import asyncio

            class Conn:
                async def _dial(self):
                    await asyncio.sleep(0)
                    return object()

                async def connect(self):
                    if self._writer is None:
                        writer = await self._dial()
                        if self._writer is None:
                            self._writer = writer
            """) == []

    def test_asy002_shared_async_with_lock_is_clean(self):
        assert lint("""\
            import asyncio

            class Conn:
                async def _dial(self):
                    await asyncio.sleep(0)
                    return object()

                async def connect(self):
                    async with self._lock:
                        if self._writer is None:
                            self._writer = await self._dial()
            """) == []

    def test_asy002_augassign_rmw_is_clean(self):
        assert lint("""\
            import asyncio

            class Counter:
                async def bump(self):
                    await asyncio.sleep(0)
                    self.count += 1
            """) == []


class TestAsyncDroppedRules:
    def test_asy003_unawaited_coroutine_call(self):
        findings = lint("""\
            import asyncio

            async def job():
                await asyncio.sleep(0)

            async def main():
                job()
            """)
        assert rules_of(findings) == ["ASY003"]
        assert "never awaited" in findings[0].message

    def test_asy003_dropped_task_spawn(self):
        findings = lint("""\
            import asyncio

            async def job():
                await asyncio.sleep(0)

            async def main():
                asyncio.create_task(job())
            """)
        assert rules_of(findings) == ["ASY003"]
        assert "task result dropped" in findings[0].message

    def test_asy003_task_bound_but_never_used(self):
        findings = lint("""\
            import asyncio

            async def job():
                await asyncio.sleep(0)

            async def main():
                t = asyncio.create_task(job())
            """)
        assert rules_of(findings) == ["ASY003"]
        assert "`t`" in findings[0].message

    def test_asy003_awaited_task_is_clean(self):
        assert lint("""\
            import asyncio

            async def job():
                await asyncio.sleep(0)

            async def main():
                t = asyncio.create_task(job())
                await t
            """) == []


class TestAsyncDeadlineRules:
    def test_asy004_bare_external_await(self):
        findings = lint("""\
            async def fetch(reader):
                return await reader.readline()
            """)
        assert rules_of(findings) == ["ASY004"]
        assert "wait_for" in findings[0].message

    def test_asy004_wait_for_wrapped_await_is_clean(self):
        assert lint("""\
            import asyncio

            async def fetch(reader):
                return await asyncio.wait_for(reader.readline(), 1.0)
            """) == []

    def test_asy004_caller_guard_covers_callee(self):
        # The interprocedural fixpoint: the only await site of
        # ``_fetch`` carries a wait_for deadline, so its external
        # reads inherit the coverage.
        assert lint("""\
            import asyncio

            async def _fetch(reader):
                return await reader.readline()

            async def fetch(reader):
                return await asyncio.wait_for(_fetch(reader), 1.0)
            """) == []

    def test_asy004_spawned_task_root_is_uncovered(self):
        # Spawning the same coroutine as a task root escapes the
        # caller's deadline: coverage must demote to False even
        # though a guarded site exists too.
        findings = lint("""\
            import asyncio

            async def _fetch(reader):
                return await reader.readline()

            async def fetch(reader):
                return await asyncio.wait_for(_fetch(reader), 1.0)

            def kickoff(reader):
                asyncio.ensure_future(_fetch(reader))
            """)
        assert sorted(rules_of(findings)) == ["ASY003", "ASY004"]

    def test_asy004_open_connection_needs_deadline(self):
        findings = lint("""\
            import asyncio

            async def dial(host, port):
                return await asyncio.open_connection(host, port)
            """)
        assert rules_of(findings) == ["ASY004"]
        assert "asyncio.open_connection" in findings[0].message


# -- SCH0xx: schema contracts -----------------------------------------------

_SCH_PAIR = """\
    SCHEMA = "repro-demo/1"

    def produce():
        return {{"schema": SCHEMA, {producer_keys}}}

    def validate(payload):
        if payload.get("schema") != SCHEMA:
            raise ValueError("bad schema")
        {validator_body}
    """


def sch_pair(producer_keys: str, validator_body: str) -> str:
    return _SCH_PAIR.format(producer_keys=producer_keys,
                            validator_body=validator_body)


class TestSchemaRules:
    def test_sch001_producer_omits_required_key(self):
        findings = lint(sch_pair(
            '"count": 1',
            'if payload["count"] < 0 or payload.get("mode") is None:\n'
            '            raise ValueError("bad")',
        ))
        assert rules_of(findings) == ["SCH001"]
        assert "'mode'" in findings[0].message

    def test_sch002_producer_emits_unchecked_key(self):
        findings = lint(sch_pair(
            '"count": 1, "debug": True',
            'if payload["count"] < 0:\n'
            '            raise ValueError("bad")',
        ))
        assert rules_of(findings) == ["SCH002"]
        assert "'debug'" in findings[0].message

    def test_sch003_schema_version_drift(self):
        findings = lint("""\
            def produce():
                return {"schema": "repro-demo/2", "count": 1}

            def validate(payload):
                if payload.get("schema") != "repro-demo/1":
                    raise ValueError("bad schema")
                if payload["count"] < 0:
                    raise ValueError("bad")
            """)
        assert rules_of(findings) == ["SCH003"]
        assert "repro-demo/2" in findings[0].message

    def test_matching_pair_is_clean(self):
        assert lint(sch_pair(
            '"count": 1, "mode": "smoke"',
            'if payload["count"] < 0 or payload.get("mode") is None:\n'
            '            raise ValueError("bad")',
        )) == []

    def test_for_loop_key_tuples_are_expanded(self):
        findings = lint(sch_pair(
            '"a": 1',
            'for name in ("a", "b"):\n'
            '            if payload.get(name) is None:\n'
            '                raise ValueError(name)',
        ))
        assert rules_of(findings) == ["SCH001"]
        assert "'b'" in findings[0].message

    def test_get_with_default_is_optional(self):
        # ``.get(k, default)`` and ``"k" in payload`` are optional:
        # the producer may emit or omit them freely.
        body = ('if payload["count"] < 0:\n'
                '            raise ValueError("bad")\n'
                '        extra = payload.get("extra", 0)\n'
                '        present = "flag" in payload')
        assert lint(sch_pair('"count": 1, "extra": 2', body)) == []
        assert lint(sch_pair('"count": 1', body)) == []

    def test_unresolvable_producer_key_is_skipped(self):
        assert lint("""\
            SCHEMA = "repro-demo/1"

            def produce(key):
                return {"schema": SCHEMA, key: 1}

            def validate(payload):
                if payload.get("schema") != SCHEMA:
                    raise ValueError("bad schema")
                if payload["count"] < 0:
                    raise ValueError("bad")
            """) == []

    def test_producer_without_any_validator_is_silent(self):
        assert lint("""\
            def produce():
                return {"schema": "repro-lonely/1", "count": 1}
            """) == []

    def test_followup_mutations_extend_the_key_set(self):
        assert lint("""\
            SCHEMA = "repro-demo/1"

            def produce():
                payload = {"schema": SCHEMA}
                payload["count"] = 1
                payload.update({"mode": "smoke"})
                return payload

            def validate(payload):
                if payload.get("schema") != SCHEMA:
                    raise ValueError("bad schema")
                if payload["count"] < 0 or payload["mode"] is None:
                    raise ValueError("bad")
            """) == []

    def test_asdict_expansion_resolves_dataclass_fields(self):
        findings = lint("""\
            from dataclasses import asdict, dataclass

            SCHEMA = "repro-demo/1"

            @dataclass
            class Report:
                count: int = 0

                def to_payload(self):
                    payload = {"schema": SCHEMA}
                    payload.update(asdict(self))
                    return payload

            def validate(payload):
                if payload.get("schema") != SCHEMA:
                    raise ValueError("bad schema")
                if payload["count"] < 0 or payload["host"] is None:
                    raise ValueError("bad")
            """)
        assert rules_of(findings) == ["SCH001"]
        assert "'host'" in findings[0].message

    def test_cross_module_schema_constants_resolve(self):
        findings = analyze_sources({
            "fix.consts": 'DEMO_SCHEMA = "repro-demo/1"\n',
            "fix.writer": textwrap.dedent("""\
                from fix.consts import DEMO_SCHEMA

                def produce():
                    return {"schema": DEMO_SCHEMA, "count": 1}
                """),
            "fix.checker": textwrap.dedent("""\
                from fix.consts import DEMO_SCHEMA

                def validate(payload):
                    if payload.get("schema") != DEMO_SCHEMA:
                        raise ValueError("bad schema")
                    if payload["count"] < 0:
                        raise ValueError("bad")
                    if payload.get("host") is None:
                        raise ValueError("bad")
                """),
        })
        assert rules_of(findings) == ["SCH001"]
        assert findings[0].file.endswith("writer.py")
        assert "'host'" in findings[0].message


# -- waiver directives ------------------------------------------------------


class TestWaivers:
    def test_trailing_allow_suppresses_the_line(self):
        assert lint("""\
            import time

            def stamp():
                return time.time()  # repro: allow(DET001) test fixture
            """) == []

    def test_standalone_allow_attaches_to_next_statement(self):
        assert lint("""\
            import time

            def stamp():
                # repro: allow(DET001) test fixture
                return time.time()
            """) == []

    def test_allow_file_waives_the_whole_module(self):
        assert lint("""\
            # repro: allow-file(DET001)
            import time

            def start():
                return time.time()

            def stop():
                return time.time()
            """) == []

    def test_allow_does_not_leak_to_other_rules(self):
        findings = lint("""\
            import time

            def stamp(name):
                salt = hash(name)  # repro: allow(DET001) wrong rule
                return salt, time.time()
            """)
        assert sorted(rules_of(findings)) == ["DET001", "DET005"]

    def test_allow_does_not_leak_to_other_lines(self):
        findings = lint("""\
            import time

            def stamp():
                a = time.time()  # repro: allow(DET001) this one only
                b = time.time()
                return a, b
            """)
        assert rules_of(findings) == ["DET001"]
        assert findings[0].line == 5

    def test_allow_suppresses_asy_findings(self):
        assert lint("""\
            import time

            async def warmup():
                time.sleep(0.1)  # repro: allow(ASY001) startup only
            """) == []

    def test_allow_suppresses_sch_findings(self):
        assert lint("""\
            SCHEMA = "repro-demo/1"

            def produce():
                # repro: allow(SCH002) extra debug surface
                return {"schema": SCHEMA, "count": 1, "debug": True}

            def validate(payload):
                if payload.get("schema") != SCHEMA:
                    raise ValueError("bad schema")
                if payload["count"] < 0:
                    raise ValueError("bad")
            """) == []


# -- --fix-waivers ----------------------------------------------------------

_FIXABLE = textwrap.dedent("""\
    from repro.core.expcache import EXPERIMENT_CACHE
    from repro.core.parallel import map_cells

    LOOKUP = dict()

    # repro: cache-key-covers(LOOKUP, GONE)
    def _cell(item):
        return LOOKUP.get(item, 0) + item

    def sweep(cells):
        return map_cells(
            _cell, cells,
            cache=EXPERIMENT_CACHE,
            key_parts=lambda cell: (cell,),
            label="sweep-fixture",
        )
    """)


class TestFixWaivers:
    def test_rewrites_stale_waiver_in_place(self, tmp_path):
        mod = tmp_path / "sweepmod.py"
        mod.write_text(_FIXABLE)
        changed = analysis.fix_waivers([tmp_path])
        assert len(changed) == 1
        text = mod.read_text()
        assert "# repro: cache-key-covers(LOOKUP)" in text
        assert "GONE" not in text
        assert analysis.run([tmp_path]) == []

    def test_inserts_missing_waiver(self, tmp_path):
        mod = tmp_path / "sweepmod.py"
        mod.write_text(
            _FIXABLE.replace(
                "# repro: cache-key-covers(LOOKUP, GONE)\n", ""
            )
        )
        assert analysis.run([tmp_path]) != []
        analysis.fix_waivers([tmp_path])
        assert "# repro: cache-key-covers(LOOKUP)" in mod.read_text()
        assert analysis.run([tmp_path]) == []

    def test_deletes_waiver_when_cell_has_no_inputs(self, tmp_path):
        mod = tmp_path / "sweepmod.py"
        mod.write_text(
            _FIXABLE.replace("return LOOKUP.get(item, 0) + item",
                             "return item * 2")
        )
        analysis.fix_waivers([tmp_path])
        assert "cache-key-covers" not in mod.read_text()
        assert analysis.run([tmp_path]) == []

    def test_accurate_tree_is_a_no_op(self, tmp_path):
        mod = tmp_path / "sweepmod.py"
        accurate = _FIXABLE.replace(", GONE", "")
        mod.write_text(accurate)
        assert analysis.fix_waivers([tmp_path]) == []
        assert mod.read_text() == accurate


# -- baseline ---------------------------------------------------------------

_DIRTY = """\
    import time

    def stamp():
        return time.time()
    """


class TestBaseline:
    def test_round_trip_suppresses_everything(self, tmp_path):
        findings = lint(_DIRTY)
        assert findings
        path = tmp_path / "baseline.json"
        analysis.save_baseline(findings, path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        grandfathered = analysis.load_baseline(path)
        fresh, suppressed = analysis.apply_baseline(
            findings, grandfathered
        )
        assert fresh == []
        assert suppressed == len(findings)

    def test_fingerprints_survive_line_shifts(self):
        shifted = "# a comment\n# another\n\n" + textwrap.dedent(_DIRTY)
        original = lint(_DIRTY)
        moved = lint(shifted)
        assert [f.line for f in original] != [f.line for f in moved]
        assert analysis.fingerprints(original) == \
            analysis.fingerprints(moved)

    def test_repeated_violations_stay_distinct(self):
        findings = lint("""\
            import time

            def stamp():
                return time.time() - time.time()
            """)
        assert len(findings) == 2
        assert len(set(analysis.fingerprints(findings))) == 2

    def test_new_findings_stay_fresh(self, tmp_path):
        path = tmp_path / "baseline.json"
        analysis.save_baseline(lint(_DIRTY), path)
        grandfathered = analysis.load_baseline(path)
        both = lint(textwrap.dedent(_DIRTY) + "\n"
                    "def salted(name):\n"
                    "    return hash(name)\n")
        fresh, suppressed = analysis.apply_baseline(both, grandfathered)
        assert suppressed == 1
        assert rules_of(fresh) == ["DET005"]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert analysis.load_baseline(tmp_path / "nope.json") == set()

    def test_asy_and_sch_findings_round_trip(self, tmp_path):
        findings = lint("""\
            import time

            SCHEMA = "repro-demo/1"

            async def warmup():
                time.sleep(0.1)

            def produce():
                return {"schema": SCHEMA, "count": 1, "debug": True}

            def validate(payload):
                if payload.get("schema") != SCHEMA:
                    raise ValueError("bad schema")
                if payload["count"] < 0:
                    raise ValueError("bad")
            """)
        assert sorted(rules_of(findings)) == ["ASY001", "SCH002"]
        path = tmp_path / "baseline.json"
        analysis.save_baseline(findings, path)
        fresh, suppressed = analysis.apply_baseline(
            findings, analysis.load_baseline(path)
        )
        assert fresh == []
        assert suppressed == 2

    def test_unknown_schema_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": "bogus/9",
                                    "fingerprints": []}))
        with pytest.raises(ValueError, match="bogus/9"):
            analysis.load_baseline(path)


# -- report formats ---------------------------------------------------------


class TestReporting:
    def test_json_payload_schema_is_locked(self):
        findings = lint(_DIRTY)
        payload = analysis.to_json_payload(findings, suppressed=2,
                                           baseline_path="b.json")
        assert set(payload) == {"schema", "ok", "counts", "families",
                                "findings", "baseline"}
        assert payload["schema"] == REPORT_SCHEMA
        assert REPORT_SCHEMA == "repro-lint/2"
        assert payload["ok"] is False
        assert payload["counts"] == {"DET001": 1}
        assert payload["families"] == {"DET": 1}
        assert payload["baseline"] == {"path": "b.json",
                                       "suppressed": 2}
        assert set(payload["findings"][0]) == {
            "file", "line", "col", "rule", "symbol", "message",
            "severity",
        }

    def test_clean_payload_is_ok(self):
        payload = analysis.to_json_payload([])
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["families"] == {}

    def test_families_aggregate_across_rules(self):
        findings = lint("""\
            import time

            def stamp(name):
                return hash(name), time.time()

            async def warmup():
                time.sleep(0.1)
            """)
        payload = analysis.to_json_payload(findings)
        assert payload["counts"] == {"ASY001": 1, "DET001": 1,
                                     "DET005": 1}
        assert payload["families"] == {"ASY": 1, "DET": 2}
        assert analysis.rule_family("SCH003") == "SCH"

    def test_validate_lint_payload_accepts_own_output(self):
        for findings in ([], lint(_DIRTY)):
            analysis.validate_lint_payload(
                analysis.to_json_payload(findings)
            )

    @pytest.mark.parametrize("corrupt,match", [
        (lambda p: p.update(schema="repro-lint/1"), "schema"),
        (lambda p: p.update(ok=True), "ok=true"),
        (lambda p: p.update(ok="yes"), "bool"),
        (lambda p: p.pop("families"), "families"),
        (lambda p: p["families"].update(DET=7), "totals"),
        (lambda p: p["counts"].update(DET001=0), "positive"),
        (lambda p: p["findings"][0].update(rule=""), "rule"),
        (lambda p: p["findings"][0].update(line=-1), "line"),
        (lambda p: p.update(baseline=None), "baseline"),
    ])
    def test_validate_lint_payload_rejects_corruption(self, corrupt,
                                                      match):
        payload = analysis.to_json_payload(lint(_DIRTY))
        corrupt(payload)
        with pytest.raises(ValueError, match=match):
            analysis.validate_lint_payload(payload)

    def test_text_rendering(self):
        findings = lint(_DIRTY)
        text = analysis.render_text(findings)
        assert "DET001" in text
        assert "1 finding(s)" in text
        assert "clean" in analysis.render_text([], suppressed=3)

    def test_every_finding_cites_a_cataloged_rule(self):
        sampled = lint(_DIRTY) + lint(pool_src("""\
            def sweep(cells):
                return map_cells(lambda c: c, cells)
            """))
        assert {f.rule for f in sampled} <= set(RULES)

    def test_findings_sort_stably(self):
        a = Finding("a.py", 1, 1, "DET001", "f", "m")
        b = Finding("a.py", 2, 1, "DET001", "f", "m")
        assert sorted([b, a]) == [a, b]


class TestMatchRules:
    def test_exact_rule_id(self):
        assert analysis.match_rules("ASY002") == {"ASY002"}

    def test_family_prefix_expands(self):
        assert analysis.match_rules("asy") == {
            "ASY001", "ASY002", "ASY003", "ASY004",
        }
        assert analysis.match_rules("SCH") == {
            "SCH001", "SCH002", "SCH003",
        }

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="NOPE"):
            analysis.match_rules("NOPE")


# -- the gate itself --------------------------------------------------------


class TestLiveTree:
    def test_shipped_tree_is_clean(self):
        # The same invariant scripts/check.sh enforces: zero findings
        # on src/repro with no baseline debt — now including the ASY
        # async-safety and SCH schema-contract families.
        assert analysis.run() == []

    def test_rule_catalog_covers_all_five_families(self):
        families = {analysis.rule_family(r) for r in RULES}
        assert families == {"DET", "POOL", "KEY", "ASY", "SCH"}
        assert {"ASY001", "ASY002", "ASY003", "ASY004",
                "SCH001", "SCH002", "SCH003"} <= set(RULES)

    def test_shipped_baseline_is_empty(self):
        baseline = REPO_ROOT / ".repro-lint-baseline.json"
        payload = json.loads(baseline.read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        assert payload["fingerprints"] == []


class TestLintCli:
    def test_clean_tree_exits_zero_with_json(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["ok"] is True
        assert payload["findings"] == []

    @pytest.mark.parametrize("family,source", [
        ("DET001", "import time\n\ndef f():\n    return time.time()\n"),
        ("POOL002",
         "from repro.core.parallel import map_cells\n\n"
         "REG = dict()\n\n"
         "def _cell(c):\n    REG.update({c: 1})\n    return c\n\n"
         "def sweep(cells):\n    return map_cells(_cell, cells)\n"),
        ("KEY003",
         "from repro.core.expcache import EXPERIMENT_CACHE\n"
         "from repro.core.parallel import map_cells\n\n"
         "def _cell(c):\n    return c\n\n"
         "def sweep(cells):\n"
         "    return map_cells(_cell, cells, cache=EXPERIMENT_CACHE,\n"
         "                     key_parts=lambda c: (c,))\n"),
        ("ASY001",
         "import time\n\nasync def handler():\n    time.sleep(0.1)\n"),
        ("ASY002",
         "import asyncio\n\n"
         "class Conn:\n"
         "    async def _dial(self):\n"
         "        await asyncio.sleep(0)\n\n"
         "    async def connect(self):\n"
         "        if self._writer is None:\n"
         "            self._writer = await self._dial()\n"),
        ("ASY003",
         "import asyncio\n\n"
         "async def job():\n    await asyncio.sleep(0)\n\n"
         "async def main():\n    asyncio.create_task(job())\n"),
        ("ASY004",
         "async def fetch(reader):\n"
         "    return await reader.readline()\n"),
        ("SCH001",
         'SCHEMA = "repro-demo/1"\n\n'
         "def produce():\n"
         '    return {"schema": SCHEMA}\n\n'
         "def validate(p):\n"
         '    if p.get("schema") != SCHEMA:\n'
         "        raise ValueError(p)\n"
         '    if p["count"] < 0:\n'
         "        raise ValueError(p)\n"),
        ("SCH002",
         'SCHEMA = "repro-demo/1"\n\n'
         "def produce():\n"
         '    return {"schema": SCHEMA, "debug": True}\n\n'
         "def validate(p):\n"
         '    if p.get("schema") != SCHEMA:\n'
         "        raise ValueError(p)\n"),
        ("SCH003",
         "def produce():\n"
         '    return {"schema": "repro-demo/2"}\n\n'
         "def validate(p):\n"
         '    if p.get("schema") != "repro-demo/1":\n'
         "        raise ValueError(p)\n"),
    ])
    def test_injected_violation_exits_nonzero(self, tmp_path, capsys,
                                              family, source):
        bad = tmp_path / "bad.py"
        bad.write_text(source)
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--paths", str(bad),
                  "--baseline", str(tmp_path / "none.json")])
        assert exc.value.code == 1
        assert family in capsys.readouterr().out

    def test_baseline_grandfathers_via_cli(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--paths", str(bad),
                     "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", "--json", "--paths", str(bad),
                     "--baseline", str(baseline)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["baseline"]["suppressed"] == 1

    def test_rule_filter_narrows_the_report(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\n\n"
            "def stamp():\n    return time.time()\n\n"
            "async def pause():\n    time.sleep(0.1)\n"
        )
        base = ["lint", "--paths", str(bad),
                "--baseline", str(tmp_path / "none.json")]
        with pytest.raises(SystemExit) as exc:
            main(base + ["--rule", "ASY001", "--json"])
        assert exc.value.code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"ASY001": 1}
        assert payload["families"] == {"ASY": 1}
        with pytest.raises(SystemExit) as exc:
            main(base + ["--rule", "det"])
        assert exc.value.code == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "ASY001" not in out

    def test_rule_filter_can_report_clean(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main(["lint", "--paths", str(bad),
                     "--baseline", str(tmp_path / "none.json"),
                     "--rule", "SCH"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_rule_selector_is_a_usage_error(self, tmp_path,
                                                    capsys):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--paths", str(tmp_path), "--rule", "NOPE"])
        assert exc.value.code == 2
        assert "NOPE" in capsys.readouterr().err

    def test_json_is_byte_identical_across_runs_and_jobs(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\n\n"
            "async def pause():\n    time.sleep(0.1)\n"
        )
        outputs = []
        for extra in ([], [], ["--jobs", "4"]):
            with pytest.raises(SystemExit):
                main(["lint", "--json", "--paths", str(bad),
                      "--baseline", str(tmp_path / "none.json")]
                     + extra)
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_fix_waivers_flag_repairs_the_tree(self, tmp_path, capsys):
        mod = tmp_path / "sweepmod.py"
        mod.write_text(_FIXABLE)
        assert main(["lint", "--fix-waivers",
                     "--paths", str(tmp_path),
                     "--baseline", str(tmp_path / "none.json")]) == 0
        out = capsys.readouterr().out
        assert "rewrote" in out
        assert "GONE" not in mod.read_text()
