"""The accelerator backend registry and the ``bulk`` backend.

Three layers:

* registry semantics — resolution by ``(kernel, backend)`` name with
  fallback to ``optimized``, unknown-name errors, nestable
  ``backend_mode`` patching with exact restore, and the availability
  report the CLI renders;
* graceful degradation — with numpy absent the ``bulk`` backend stays
  selectable, every kernel delegates to the optimized implementation,
  and the perf harness stops measuring it;
* byte-identity — ≥1000 seeded cases per kernel comparing the bulk
  backend against the pinned reference kernels, including the empty /
  all-matching / 63- / 64- / 65-byte block edges the vector batching
  must not mis-charge.
"""

from __future__ import annotations

import pytest

from repro.accel.hash_table import HardwareHashTable
from repro.accel.heap_manager import HardwareHeapManager
from repro.accel.string_accel import StringAccelerator
from repro.accel.registry import (
    DEFAULT_BACKEND,
    REFERENCE_BACKEND,
    REGISTRY,
    available_backends,
    backend_mode,
    backend_names,
    current_backend,
    measured_backends,
)
from repro.common.rng import DeterministicRng
from repro.regex.charset import CharSet
from repro.regex.engine import CompiledRegex
from repro.runtime.strings import HTML_ESCAPES

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

CASES_PER_KERNEL = 1_000

#: Subject alphabet: heavy on HTML metacharacters and repeats so the
#: candidate masks see hits, misses, and dense all-matching runs.
ALPHABET = "abcdexyz <>&\"'0123456789/p"


def _subject(rng: DeterministicRng, length: int) -> str:
    if length and rng.random() < 0.06:
        # Occasional non-latin-1 subject: must take the delegate path.
        chars = [chr(rng.randint(32, 0x2028)) for _ in range(length)]
        return "".join(chars)
    return "".join(rng.choice(ALPHABET) for _ in range(length))


def _lengths(rng: DeterministicRng, count: int) -> list[int]:
    """Case lengths with every block edge pinned in."""
    edges = [0, 1, 62, 63, 64, 65, 127, 128, 129]
    out = list(edges)
    while len(out) < count:
        out.append(rng.randint(0, 200))
    return out[:count]


class TestResolution:
    def test_resolution_by_name(self):
        impl = REGISTRY.resolve("string.find", "bulk")
        from repro.accel.backends.bulk import bulk_find
        assert impl is bulk_find
        assert REGISTRY.resolve("string.find", DEFAULT_BACKEND) \
            is StringAccelerator.__dict__["find"]
        from repro.accel.reference import ReferenceStringAccelerator
        assert REGISTRY.resolve("string.find", REFERENCE_BACKEND) \
            is ReferenceStringAccelerator.__dict__["find"]

    def test_unregistered_kernel_falls_back_to_optimized(self):
        # bulk registers no heap kernels: the single heap manager
        # implementation is shared by every backend.
        for kernel in ("heap.hmmalloc", "heap.hmfree", "regex.resume"):
            assert REGISTRY.resolve(kernel, "bulk") \
                is REGISTRY.resolve(kernel, DEFAULT_BACKEND)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            REGISTRY.resolve("string.find", "simd512")
        with pytest.raises(ValueError, match="unknown backend"):
            with backend_mode("simd512"):
                pass  # pragma: no cover

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            REGISTRY.resolve("string.reverse", "bulk")

    def test_every_core_kernel_is_bound(self):
        assert set(REGISTRY.kernel_names()) >= {
            "string.find", "string.compare", "string.html_escape",
            "string.char_class_bitmap", "hash.probe_window",
            "regex.search", "regex.state_after", "regex.resume",
            "heap.hmmalloc", "heap.hmfree",
        }

    def test_registered_backends(self):
        names = backend_names()
        assert names[0] == DEFAULT_BACKEND
        assert REFERENCE_BACKEND in names
        assert "bulk" in names


class TestBackendMode:
    def test_patches_and_restores(self):
        from repro.accel.backends.bulk import bulk_find
        original = StringAccelerator.__dict__["find"]
        with backend_mode("bulk"):
            assert StringAccelerator.__dict__["find"] is bulk_find
            assert current_backend() == "bulk"
        assert StringAccelerator.__dict__["find"] is original
        assert current_backend() == DEFAULT_BACKEND

    def test_nesting_restores_each_level(self):
        from repro.accel.backends.bulk import bulk_find
        from repro.accel.reference import ReferenceStringAccelerator
        original = StringAccelerator.__dict__["find"]
        with backend_mode("bulk"):
            with backend_mode(REFERENCE_BACKEND):
                assert StringAccelerator.__dict__["find"] \
                    is ReferenceStringAccelerator.__dict__["find"]
                assert current_backend() == REFERENCE_BACKEND
            assert StringAccelerator.__dict__["find"] is bulk_find
            assert current_backend() == "bulk"
        assert StringAccelerator.__dict__["find"] is original

    def test_exception_still_restores(self):
        original = StringAccelerator.__dict__["find"]
        with pytest.raises(RuntimeError, match="boom"):
            with backend_mode("bulk"):
                raise RuntimeError("boom")
        assert StringAccelerator.__dict__["find"] is original
        assert current_backend() == DEFAULT_BACKEND

    def test_reference_mode_alias_subsumed(self):
        # The legacy entry point must be the registry's reference mode.
        from repro.accel.reference import reference_mode
        with reference_mode():
            assert current_backend() == REFERENCE_BACKEND

    def test_heap_manager_identical_across_modes(self):
        def drive() -> list:
            from repro.runtime.slab import SlabAllocator
            heap = HardwareHeapManager(SlabAllocator())
            ptrs, out = [], []
            for size in (24, 64, 8, 129, 24):
                outcome = heap.hmmalloc(size)
                ptrs.append(outcome.address)
                out.append(outcome)
            out.append(heap.hmfree(ptrs[1], 64))
            out.append(heap.hmmalloc(48))
            return out

        baseline = repr(drive())
        for name in backend_names():
            with backend_mode(name):
                assert repr(drive()) == baseline, name


class TestAvailabilityReport:
    def test_report_shape(self):
        rows = available_backends()
        by_name = {row["name"]: row for row in rows}
        assert set(by_name) >= {DEFAULT_BACKEND, REFERENCE_BACKEND, "bulk"}
        for row in rows:
            assert set(row) == {"name", "available", "reason", "kernels"}
            assert isinstance(row["available"], bool)
            assert row["available"] == (row["reason"] is None)
            assert isinstance(row["kernels"], list)
        assert by_name[DEFAULT_BACKEND]["available"]
        assert by_name[REFERENCE_BACKEND]["available"]
        assert "string.find" in by_name["bulk"]["kernels"]
        assert "heap.hmmalloc" not in by_name["bulk"]["kernels"]

    def test_measured_backends_exclude_reference(self):
        measured = measured_backends()
        assert REFERENCE_BACKEND not in measured
        assert DEFAULT_BACKEND in measured

    @pytest.mark.skipif(np is None, reason="numpy not installed")
    def test_bulk_measured_when_numpy_present(self):
        assert "bulk" in measured_backends()


class TestNoNumpyFallback:
    """``bulk`` with numpy gone: selectable, degraded, still correct."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        import repro.accel.backends.bulk as bulk_mod
        monkeypatch.setattr(bulk_mod, "np", None)

    def test_reported_unavailable(self, no_numpy):
        rows = {row["name"]: row for row in available_backends()}
        assert rows["bulk"]["available"] is False
        assert "numpy" in rows["bulk"]["reason"]
        assert "bulk" not in measured_backends()

    def test_kernels_degrade_to_optimized_results(self, no_numpy):
        accel = StringAccelerator()
        subject = '<p>the "lazy" dog &amp; friends</p>' * 4
        baseline = repr([
            accel.find(subject, "lazy"),
            accel.find(subject, "</article>"),
            accel.html_escape(subject, HTML_ESCAPES),
            accel.char_class_bitmap(subject, CharSet.of("<>&"), 32),
            accel.compare(subject, subject[:-1] + "!"),
        ])
        with backend_mode("bulk"):
            degraded = repr([
                accel.find(subject, "lazy"),
                accel.find(subject, "</article>"),
                accel.html_escape(subject, HTML_ESCAPES),
                accel.char_class_bitmap(subject, CharSet.of("<>&"), 32),
                accel.compare(subject, subject[:-1] + "!"),
            ])
        assert degraded == baseline

    def test_hash_and_regex_degrade(self, no_numpy):
        def drive() -> list:
            table = HardwareHashTable()
            out = [table.insert_clean("k", 0x1000, 1),
                   table.get("k", 0x1000)]
            rx = CompiledRegex("<[a-z]+")
            out.append(rx.search("see <div> here"))
            return out

        baseline = repr(drive())
        with backend_mode("bulk"):
            assert repr(drive()) == baseline


def _drive_all(cases, drive) -> list[str]:
    return [drive(*case) for case in cases]


def _identity(cases, drive):
    """repr-compare one kernel's outcomes: bulk vs reference."""
    with backend_mode(REFERENCE_BACKEND):
        expected = _drive_all(cases, drive)
    with backend_mode("bulk"):
        actual = _drive_all(cases, drive)
    mismatches = [
        (case, exp, act)
        for case, exp, act in zip(cases, expected, actual)
        if exp != act
    ]
    assert not mismatches, (
        f"{len(mismatches)} divergence(s); first: {mismatches[0]}"
    )


@pytest.mark.skipif(np is None, reason="numpy not installed")
class TestBulkByteIdentity:
    """≥1000 seeded cases per kernel: bulk == reference, exactly.

    ``repr`` comparison covers the value *and* the cycle / block /
    bytes-processed charges, so a speedup can never come from charging
    differently.
    """

    def test_find(self):
        rng = DeterministicRng(0xB011).fork("identity/find")
        cases = []
        for length in _lengths(rng, CASES_PER_KERNEL):
            subject = _subject(rng, length)
            kind = rng.random()
            if kind < 0.25 and length >= 2:
                # Matching pattern: a slice of the subject itself.
                lo = rng.randint(0, length - 2)
                hi = min(length, lo + rng.randint(1, 8))
                pattern = subject[lo:hi]
            elif kind < 0.4 and length >= 1:
                # All-matching: one repeated character.
                ch = subject[rng.randint(0, length - 1)]
                subject = ch * length
                pattern = ch * rng.randint(1, min(4, length))
            else:
                pattern = "".join(
                    rng.choice(ALPHABET)
                    for _ in range(rng.randint(1, 8))
                )
            start = rng.choice([0, 0, 0, 1, 62, 63, 64, 65,
                                max(0, length - 1)])
            cases.append((subject, pattern, start))
        accel = StringAccelerator()
        _identity(
            cases,
            lambda s, p, st: repr(accel.find(s, p, st)),
        )

    def test_compare(self):
        rng = DeterministicRng(0xB011).fork("identity/compare")
        cases = []
        for length in _lengths(rng, CASES_PER_KERNEL):
            a = _subject(rng, length)
            kind = rng.random()
            if kind < 0.3:
                b = a  # equal
            elif kind < 0.6 and length:
                # diverge at a seeded position (incl. block edges)
                pos = rng.choice(
                    [0, length - 1, min(62, length - 1),
                     min(64, length - 1), rng.randint(0, length - 1)]
                )
                b = a[:pos] + chr(ord(a[pos]) ^ 1) + a[pos + 1:]
            else:
                b = _subject(rng, rng.randint(0, 200))
            cases.append((a, b))
        accel = StringAccelerator()
        _identity(cases, lambda a, b: repr(accel.compare(a, b)))

    def test_html_escape(self):
        rng = DeterministicRng(0xB011).fork("identity/escape")
        clean = "abcdexyz 0123456789"
        cases = []
        for length in _lengths(rng, CASES_PER_KERNEL):
            if rng.random() < 0.4:
                # Clean subject: the gate must skip the escape pass
                # and still charge identically.
                subject = "".join(
                    rng.choice(clean) for _ in range(length)
                )
            else:
                subject = _subject(rng, length)
            cases.append((subject,))
        accel = StringAccelerator()
        _identity(
            cases,
            lambda s: repr(accel.html_escape(s, HTML_ESCAPES)),
        )

    def test_char_class_bitmap(self):
        rng = DeterministicRng(0xB011).fork("identity/charclass")
        classes = [CharSet.of("<>&\"'"), CharSet.of("0123456789"),
                   CharSet.of(" "), CharSet.of("abcdexyz")]
        cases = []
        for length in _lengths(rng, CASES_PER_KERNEL):
            cases.append((
                _subject(rng, length),
                rng.choice(classes),
                rng.choice([1, 7, 32, 64]),
            ))
        accel = StringAccelerator()
        _identity(
            cases,
            lambda s, c, seg: repr(accel.char_class_bitmap(s, c, seg)),
        )

    def test_hash_probe(self):
        rng = DeterministicRng(0xB011).fork("identity/hash")
        ops = []
        for i in range(CASES_PER_KERNEL):
            if rng.random() < 0.08:
                key = "k€" + rng.ascii_word()  # wide-char fold
            else:
                key = rng.ascii_word(1, 14)
            base = 0x1000 + rng.randint(0, 6) * 0x200
            ops.append((i % 3, key, base, i))

        def drive() -> list[str]:
            table = HardwareHashTable()
            out = []
            for kind, key, base, i in ops:
                if kind == 0:
                    out.append(repr(table.insert_clean(key, base, i)))
                elif kind == 1:
                    out.append(repr(table.get(key, base)))
                else:
                    out.append(repr(table.set(key, base, i)))
            return out

        with backend_mode(REFERENCE_BACKEND):
            expected = drive()
        with backend_mode("bulk"):
            assert drive() == expected

    def test_hash_probe_long_keys_vector_fold(self):
        # get/set cap keys at config.max_key_bytes (24), below the
        # vector-fold threshold — drive the probe window directly so
        # the np.frombuffer regrouping itself is identity-checked.
        rng = DeterministicRng(0xB011).fork("identity/hash-long")
        keys = []
        for _ in range(CASES_PER_KERNEL):
            length = rng.randint(32, 96)
            if rng.random() < 0.1:
                keys.append("€" * length)
            else:
                keys.append(
                    "".join(rng.choice(ALPHABET)
                            for _ in range(length))
                )

        def drive() -> list:
            table = HardwareHashTable()
            return [tuple(table._probe_window(key, 0x1000 + 0x200 * i))
                    for i, key in enumerate(keys)]

        with backend_mode(REFERENCE_BACKEND):
            expected = drive()
        with backend_mode("bulk"):
            assert drive() == expected

    def test_regex_search_and_state_after(self):
        rng = DeterministicRng(0xB011).fork("identity/regex")
        patterns = ["<[a-z]+", "[0-9]{2,4}", "(?i)lazy", "a[^b]c",
                    "x+y"]
        cases = []
        for length in _lengths(rng, CASES_PER_KERNEL):
            text = _subject(rng, length)
            cases.append((rng.choice(patterns), text,
                          rng.choice([0, 0, 1, 63, 64, 65])))

        def drive(pattern, text, start) -> str:
            rx = CompiledRegex(pattern)
            out = rx.search(text, start)
            state = rx.state_after(text, start)
            return repr((out, state))

        _identity(cases, drive)
