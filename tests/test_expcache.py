"""Experiment-cache contract: key stability and the kill switch.

``cache_key`` addresses results by content, so its output must be a
pure function of (CODE_SALT, parts) — stable across processes, Python
invocations, and hash randomization.  The ``REPRO_EXPCACHE=0``
environment switch must make every cache a transparent pass-through,
because it is the documented escape hatch when a cached result is
suspected of masking a code change.
"""

from __future__ import annotations

import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.core.expcache import (
    CODE_SALT,
    ENV_DISABLE,
    EXPERIMENT_CACHE,
    ExperimentCache,
    cache_key,
)

SRC = str(Path(__file__).resolve().parents[1] / "src")


@dataclass(frozen=True)
class _Knobs:
    entries: int = 512
    probe_width: int = 4


class TestKeyStability:
    def test_same_parts_same_key(self):
        assert cache_key("fig14", 17, _Knobs()) \
            == cache_key("fig14", 17, _Knobs())

    def test_any_part_perturbs_key(self):
        base = cache_key("fig14", 17, _Knobs())
        assert cache_key("fig15", 17, _Knobs()) != base
        assert cache_key("fig14", 18, _Knobs()) != base
        assert cache_key("fig14", 17, _Knobs(probe_width=8)) != base

    def test_key_is_stable_across_processes(self):
        """PYTHONHASHSEED randomizes ``hash()`` per process; blake2b
        over reprs must not care.  Two fresh interpreters (distinct
        hash seeds forced) must agree with this process."""
        code = (
            "from repro.core.expcache import cache_key; "
            "print(cache_key('fig14', 17, ('app', 2), 'wordpress'))"
        )
        keys = set()
        for hash_seed in ("1", "2"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hash_seed,
                     "PATH": "/usr/bin:/bin"},
                capture_output=True, text=True, check=True,
            )
            keys.add(out.stdout.strip())
        keys.add(cache_key("fig14", 17, ("app", 2), "wordpress"))
        assert len(keys) == 1, keys

    def test_salt_is_part_of_the_key(self, monkeypatch):
        import repro.core.expcache as expcache
        before = cache_key("cell", 1)
        monkeypatch.setattr(expcache, "CODE_SALT", CODE_SALT + "-next")
        assert cache_key("cell", 1) != before


class TestKillSwitch:
    def test_env_zero_disables_lookup_and_store(self, monkeypatch):
        monkeypatch.setenv(ENV_DISABLE, "0")
        cache = ExperimentCache()
        assert not cache.enabled
        calls = []
        key = cache_key("kill-switch-cell")
        for _ in range(2):
            cache.get_or_compute(key, lambda: calls.append(1) or len(calls))
        assert calls == [1, 1], "disabled cache must recompute"
        assert len(cache) == 0, "disabled cache must not store"

    def test_env_other_values_keep_cache_on(self, monkeypatch):
        for value in ("1", "", "yes"):
            monkeypatch.setenv(ENV_DISABLE, value)
            assert ExperimentCache().enabled, value
        monkeypatch.delenv(ENV_DISABLE)
        assert ExperimentCache().enabled

    def test_kill_switch_reaches_the_process_wide_cache(self, monkeypatch):
        key = cache_key("global-kill-switch-probe")
        EXPERIMENT_CACHE.store(key, "cached")
        try:
            monkeypatch.setenv(ENV_DISABLE, "0")
            hit, _ = EXPERIMENT_CACHE.lookup(key)
            assert not hit
            monkeypatch.setenv(ENV_DISABLE, "1")
            hit, value = EXPERIMENT_CACHE.lookup(key)
            assert hit and value == "cached"
        finally:
            EXPERIMENT_CACHE._entries.pop(key, None)

    def test_disabled_scope_nests_with_env(self, monkeypatch):
        monkeypatch.setenv(ENV_DISABLE, "1")
        cache = ExperimentCache()
        with cache.disabled_scope():
            assert not cache.enabled
            with cache.disabled_scope():
                assert not cache.enabled
            assert not cache.enabled
        assert cache.enabled
