"""Unit + integration tests: the discrete-event web-server model."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.workloads.server import (
    LoadPoint,
    ServerConfig,
    WebServerSimulator,
    latency_curve,
    slo_capacity,
)


def make_sim(service=100.0, workers=2, requests=800) -> WebServerSimulator:
    return WebServerSimulator(
        [service], ServerConfig(workers=workers, requests=requests),
        DeterministicRng(3),
    )


class TestSimulatorBasics:
    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            WebServerSimulator([])

    def test_rejects_nonpositive_service(self):
        with pytest.raises(ValueError):
            WebServerSimulator([0.0])

    def test_rejects_nonpositive_load(self):
        with pytest.raises(ValueError):
            make_sim().run(0.0)

    def test_capacity(self):
        sim = make_sim(service=100.0, workers=4)
        assert sim.capacity_rps() == pytest.approx(0.04)

    def test_conservation(self):
        """Every request is served after it arrives, for at least its
        service time, on a worker that was free."""
        sim = make_sim()
        served = sim.run(0.6)
        for r in served:
            assert r.start >= r.arrival
            assert r.finish - r.start == pytest.approx(100.0)

    def test_workers_never_oversubscribed(self):
        sim = make_sim(workers=3)
        served = sim.run(0.9)
        events = []
        for r in served:
            events.append((r.start, 1))
            events.append((r.finish, -1))
        busy = 0
        for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
            busy += delta
            assert busy <= 3

    def test_deterministic(self):
        a = make_sim().run(0.7)
        b = make_sim().run(0.7)
        assert [r.finish for r in a] == [r.finish for r in b]


class TestQueueingBehavior:
    def test_latency_grows_with_load(self):
        curve = latency_curve([100.0], loads=(0.3, 0.6, 0.9),
                              config=ServerConfig(workers=2, requests=1200))
        p99s = [p.p99_latency for p in curve]
        assert p99s[0] < p99s[1] < p99s[2]

    def test_low_load_has_little_queueing(self):
        curve = latency_curve([100.0], loads=(0.1,),
                              config=ServerConfig(workers=4, requests=1200))
        assert curve[0].mean_queueing < 10.0

    def test_faster_service_gives_lower_tail_at_same_load(self):
        cfg = ServerConfig(workers=2, requests=1200)
        slow = latency_curve([100.0], loads=(0.8,), config=cfg)[0]
        fast = latency_curve([60.0], loads=(0.8,), config=cfg)[0]
        assert fast.p99_latency < slow.p99_latency

    def test_slo_capacity_ordering(self):
        """A faster tier sustains more load at the same SLO —
        the introduction's utilization argument."""
        cfg = ServerConfig(workers=2, requests=900)
        slo = 400.0
        slow_cap = slo_capacity([100.0], slo, cfg)
        fast_cap = slo_capacity([55.0], slo, cfg)
        assert fast_cap > slow_cap

    def test_empirical_distribution_sampled(self):
        sim = WebServerSimulator(
            [50.0, 150.0], ServerConfig(workers=2, requests=600),
            DeterministicRng(3),
        )
        services = {round(r.finish - r.start) for r in sim.run(0.5)}
        assert services == {50, 150}
