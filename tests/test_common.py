"""Unit tests: deterministic RNG and statistics plumbing."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.rng import DeterministicRng
from repro.common.stats import (
    Counter,
    Histogram,
    LatencySummary,
    StatRegistry,
    geometric_mean,
    percentile,
    summarize_latencies,
    weighted_mean,
)


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.random() for _ in range(50)] \
            == [b.random() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(7)
        b = DeterministicRng(8)
        assert [a.random() for _ in range(10)] \
            != [b.random() for _ in range(10)]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(7).fork("x")
        b = DeterministicRng(7).fork("x")
        assert a.random() == b.random()

    def test_fork_labels_independent(self):
        base = DeterministicRng(7)
        assert base.fork("x").random() != base.fork("y").random()

    def test_fork_does_not_disturb_parent(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        a.fork("child")
        assert a.random() == b.random()

    def test_zipf_range(self):
        rng = DeterministicRng(1)
        draws = [rng.zipf(100, 1.1) for _ in range(500)]
        assert all(0 <= d < 100 for d in draws)

    def test_zipf_is_skewed(self):
        rng = DeterministicRng(1)
        draws = [rng.zipf(1000, 1.2) for _ in range(2000)]
        top_share = sum(1 for d in draws if d < 10) / len(draws)
        assert top_share > 0.3  # top-1% of ranks gets >30% of draws

    def test_zipf_cache_handles_multiple_shapes(self):
        rng = DeterministicRng(1)
        for _ in range(10):
            assert 0 <= rng.zipf(10, 1.0) < 10
            assert 0 <= rng.zipf(1000, 0.8) < 1000

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).zipf(0)

    def test_geometric_cap(self):
        rng = DeterministicRng(1)
        assert all(rng.geometric(0.01, cap=5) <= 5 for _ in range(200))

    def test_geometric_p1_is_zero(self):
        assert DeterministicRng(1).geometric(1.0) == 0

    def test_geometric_rejects_bad_p(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).geometric(0.0)

    def test_ascii_word_alphabet(self):
        rng = DeterministicRng(1)
        for _ in range(50):
            word = rng.ascii_word(3, 8)
            assert 3 <= len(word) <= 8
            assert word.isalpha() and word.islower()

    @given(st.integers(min_value=0, max_value=2**32))
    def test_any_seed_works(self, seed):
        rng = DeterministicRng(seed)
        assert 0.0 <= rng.random() < 1.0


class TestCounter:
    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_reset(self):
        c = Counter("x", 9)
        c.reset()
        assert c.value == 0


class TestStatRegistry:
    def test_bump_and_get(self):
        r = StatRegistry()
        r.bump("a")
        r.bump("a", 2)
        assert r.get("a") == 3
        assert r.get("missing") == 0

    def test_ratio_guards_zero(self):
        r = StatRegistry()
        assert r.ratio("a", "b") == 0.0
        r.bump("a", 3)
        r.bump("b", 4)
        assert r.ratio("a", "b") == pytest.approx(0.75)

    def test_per_kilo(self):
        r = StatRegistry()
        r.bump("misses", 5)
        r.bump("instructions", 1000)
        assert r.per_kilo("misses", "instructions") == pytest.approx(5.0)

    def test_snapshot_diff(self):
        r = StatRegistry()
        r.bump("a", 2)
        snap = r.snapshot()
        r.bump("a", 3)
        r.bump("b")
        assert r.diff(snap) == {"a": 3, "b": 1}

    def test_merge(self):
        a = StatRegistry()
        b = StatRegistry()
        a.bump("x", 1)
        b.bump("x", 2)
        b.bump("y", 5)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 5

    def test_iter_sorted(self):
        r = StatRegistry()
        r.bump("b")
        r.bump("a")
        assert [k for k, _ in r] == ["a", "b"]


class TestHistogram:
    def test_record_and_cumulative(self):
        h = Histogram(edges=[10, 20, 30])
        for v in (5, 15, 15, 25, 99):
            h.record(v)
        assert h.counts == [1, 2, 1]
        assert h.overflow == 1
        assert h.cumulative() == pytest.approx([0.2, 0.6, 0.8])

    def test_fraction_at_or_below(self):
        h = Histogram(edges=[32, 64, 128])
        h.record(10, weight=8)
        h.record(100, weight=2)
        assert h.fraction_at_or_below(64) == pytest.approx(0.8)

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=[3, 1])

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1))
    def test_total_weight_conserved(self, values):
        h = Histogram(edges=[50, 100, 150])
        for v in values:
            h.record(v)
        assert sum(h.counts) + h.overflow == h.total_weight == len(values)


class TestPercentile:
    def test_nearest_rank_basics(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_order_independent(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert percentile(values, 50) == percentile(sorted(values), 50)

    def test_single_sample(self):
        assert percentile([42.0], 99.9) == 42.0

    def test_p0_is_the_minimum(self):
        assert percentile([3.0, 1.0, 2.0], 0) == 1.0

    def test_rejects_empty_and_bad_p(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_matches_core_latency_alias(self):
        # core.latency re-exports this implementation; they must agree.
        from repro.core.latency import percentile as core_percentile
        assert core_percentile is percentile

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e9,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
        ),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_result_is_always_a_sample(self, values, p):
        assert percentile(values, p) in values


class TestLatencySummary:
    def test_summarize(self):
        s = summarize_latencies([float(v) for v in range(1, 1001)])
        assert s.count == 1000
        assert s.mean == pytest.approx(500.5)
        assert s.p50 == 500.0
        assert s.p99 == 990.0
        assert s.p999 == 1000.0  # ceil(0.999 * 1000) rounds up in float

    def test_empty_is_zeroed(self):
        assert summarize_latencies([]) == LatencySummary()


class TestMeans:
    def test_weighted_mean(self):
        assert weighted_mean([(1.0, 1.0), (3.0, 3.0)]) == pytest.approx(2.5)

    def test_weighted_mean_empty(self):
        assert weighted_mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
