"""Unit tests: trace generation and core timing models (Figure 2)."""

from __future__ import annotations

import dataclasses

from repro.common.rng import DeterministicRng
from repro.uarch.core import (
    CharacterizationRun,
    CoreConfig,
    TraceCounts,
    effective_issue_width,
    estimate_cycles,
    sweep_cores,
)
from repro.uarch.trace import SPEC_LIKE_PROFILE, TraceGenerator, TraceProfile


def small_profile(**kwargs) -> TraceProfile:
    defaults = dict(instructions=30_000)
    defaults.update(kwargs)
    return TraceProfile(**defaults)


class TestTraceGenerator:
    def test_branch_fraction_respected(self):
        p = small_profile()
        gen = TraceGenerator(p, DeterministicRng(1))
        branches = list(gen.branch_stream())
        assert len(branches) == int(p.instructions * p.branch_fraction)

    def test_streams_deterministic_per_pass(self):
        p = small_profile()
        a = TraceGenerator(p, DeterministicRng(1))
        b = TraceGenerator(p, DeterministicRng(1))
        assert [r.pc for r in a.branch_stream(0)][:100] == \
               [r.pc for r in b.branch_stream(0)][:100]

    def test_passes_are_different_samples(self):
        p = small_profile()
        gen = TraceGenerator(p, DeterministicRng(1))
        pass0 = [r.taken for r in gen.branch_stream(0)]
        gen2 = TraceGenerator(p, DeterministicRng(1))
        next(gen2.branch_stream(0))  # keep loop-state comparable
        pass1 = [r.taken for r in TraceGenerator(p, DeterministicRng(1)).branch_stream(1)]
        assert pass0[:200] != pass1[:200]

    def test_fetch_addresses_within_footprint(self):
        p = small_profile()
        gen = TraceGenerator(p, DeterministicRng(1))
        for rec in gen.fetch_stream():
            assert 0x40_0000 <= rec.addr < 0x40_0000 + p.icache_lines * 64 + 64

    def test_mem_stream_write_fraction(self):
        p = small_profile()
        gen = TraceGenerator(p, DeterministicRng(1))
        recs = list(gen.mem_stream())
        writes = sum(1 for r in recs if r.is_write)
        assert abs(writes / len(recs) - p.write_fraction) < 0.08

    def test_indirect_branches_unconditional(self):
        p = small_profile(indirect_fraction=0.5, cold_branch_fraction=0.0)
        gen = TraceGenerator(p, DeterministicRng(1))
        indirects = [r for r in gen.branch_stream() if r.is_indirect]
        assert indirects
        assert all(not r.is_conditional and r.taken for r in indirects)


class TestIssueWidthModel:
    def test_ooo_bounded_by_ilp(self):
        cfg = CoreConfig.ooo(8)
        assert effective_issue_width(cfg, ilp=2.9) < 3.2

    def test_inorder_less_efficient_than_ooo(self):
        ilp = 2.9
        inorder = effective_issue_width(CoreConfig.inorder_2(), ilp)
        ooo = effective_issue_width(CoreConfig.ooo(2), ilp)
        assert inorder < ooo

    def test_width_helps_until_ilp(self):
        ilp = 2.9
        w2 = effective_issue_width(CoreConfig.ooo(2), ilp)
        w4 = effective_issue_width(CoreConfig.ooo(4), ilp)
        w8 = effective_issue_width(CoreConfig.ooo(8), ilp)
        assert w2 < w4 < w8
        # The paper's <3% claim between 4- and 8-wide.
        assert (w8 - w4) / w4 < 0.05


class TestEstimateCycles:
    def _counts(self) -> TraceCounts:
        return TraceCounts(
            instructions=100_000, branches=22_000,
            branch_mispredicts=1_500, btb_misses=800,
            mem_stall_cycles=20_000,
        )

    def test_mispredicts_cost_cycles(self):
        cfg = CoreConfig.xeon_like()
        base = estimate_cycles(cfg, self._counts(), ilp=2.9)
        worse = dataclasses.replace(self._counts(), branch_mispredicts=3_000)
        assert estimate_cycles(cfg, worse, ilp=2.9) > base

    def test_ooo_hides_memory_latency(self):
        counts = self._counts()
        inorder = estimate_cycles(CoreConfig("io", 4, False), counts, 2.9)
        ooo = estimate_cycles(CoreConfig("ooo", 4, True), counts, 2.9)
        assert ooo < inorder

    def test_core_sweep_ordering(self):
        """Figure 2(c): in-order-2 ≫ OoO-2 > OoO-4 ≳ OoO-8."""
        profile = small_profile(instructions=60_000)
        sweep = sweep_cores(profile, DeterministicRng(1), [
            CoreConfig.inorder_2(), CoreConfig.ooo(2),
            CoreConfig.ooo(4), CoreConfig.ooo(8),
        ])
        assert sweep["inorder-2"] > sweep["ooo-2"] > sweep["ooo-4"]
        assert sweep["ooo-4"] >= sweep["ooo-8"]
        gain_8_wide = (sweep["ooo-4"] - sweep["ooo-8"]) / sweep["ooo-4"]
        assert gain_8_wide < 0.03  # "very little (<3%)"


class TestCharacterizationRun:
    def test_produces_all_rates(self):
        run = CharacterizationRun(small_profile(), DeterministicRng(1))
        counts = run.run(warmup_passes=1)
        assert counts.branch_mpki > 0
        assert 0 < counts.btb_hit_rate <= 1
        assert counts.l1i_mpki >= 0
        assert counts.instructions == 30_000

    def test_warmup_improves_rates(self):
        cold = CharacterizationRun(small_profile(), DeterministicRng(1))
        c0 = cold.run(warmup_passes=0)
        warm = CharacterizationRun(small_profile(), DeterministicRng(1))
        c1 = warm.run(warmup_passes=1)
        assert c1.btb_hit_rate > c0.btb_hit_rate

    def test_spec_profile_predicts_better_than_php(self):
        php = CharacterizationRun(
            small_profile(instructions=60_000), DeterministicRng(1)
        ).run()
        spec_profile = dataclasses.replace(
            SPEC_LIKE_PROFILE, instructions=60_000
        )
        spec = CharacterizationRun(spec_profile, DeterministicRng(1)).run()
        assert spec.branch_mpki < php.branch_mpki / 2
