"""Live serving path: HTTP robustness, cache, schemas, load driver.

The wall-clock subsystem gets the adversarial treatment the
event-driven simulators get from conformance: malformed request
lines, oversized headers, clients vanishing mid-response, graceful
shutdown draining in-flight renders — plus schema validation for the
``repro-serve/1`` payload, the ``repro-serve-history/1`` trajectory
row, and the ``repro-serve-telemetry/1`` event stream, and the
served-bytes differential oracle.  Timing assertions use generous
margins: these tests must pass on a loaded CI runner, so they assert
*ordering* (the drained response completed) rather than durations.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.fleet.cache_tier import (
    CacheShard,
    CacheTierConfig,
    jittered_ttl,
)
from repro.common.stats import StatRegistry
from repro.serve.httpd import FragmentCache, MiniPhpServer, ServeConfig
from repro.serve.loadclient import (
    ArrivalShape,
    LoadConfig,
    max_supported_connections,
    run_load,
)
from repro.serve.report import (
    SERVE_HISTORY_SCHEMA,
    SERVE_SCHEMA,
    ServeReport,
    append_serve_history,
    build_report,
    format_serve_report,
    serve_history_row,
    validate_serve_history_row,
    validate_serve_payload,
)
from repro.serve.run import serve_oracle_mismatches
from repro.serve.telemetry import (
    TELEMETRY_SCHEMA,
    RequestEvent,
    TelemetryLog,
    summarize_ops,
    validate_event_row,
)
from repro.workloads.templates import render_http_page


def _config(**overrides) -> ServeConfig:
    base = dict(deadline_s=5.0, render_workers=2)
    base.update(overrides)
    return ServeConfig(**base)


def _slow_render(delay_s: float):
    def render(app: str, seed: int, vary: int):
        time.sleep(delay_s)
        return f"<html>slow {app} {seed} {vary}</html>", {}
    return render


async def _raw_exchange(port: int, payload: bytes) -> bytes:
    """Write raw bytes, read to EOF (server closes on errors)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        return await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def _get_on(reader, writer, target: str):
    """One keep-alive GET on an open connection."""
    writer.write(
        f"GET {target} HTTP/1.1\r\nHost: t\r\n\r\n".encode("ascii")
    )
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split(b" ", 2)[1])
    headers = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers["content-length"]))
    return status, headers, body


def _run(coro):
    return asyncio.run(coro)


class TestHttpRobustness:
    def test_malformed_request_line_gets_400(self):
        async def scenario():
            server = MiniPhpServer(_config())
            await server.start()
            try:
                raw = await _raw_exchange(
                    server.port, b"NOT A VALID REQUEST LINE\r\n\r\n"
                )
            finally:
                await server.stop()
            return raw, server.stats.get("serve.bad_requests")

        raw, bad = _run(scenario())
        assert raw.startswith(b"HTTP/1.1 400 ")
        assert b"Connection: close" in raw
        assert bad == 1

    def test_binary_garbage_gets_400_not_a_crash(self):
        async def scenario():
            server = MiniPhpServer(_config())
            await server.start()
            try:
                return await _raw_exchange(
                    server.port, b"\x00\xff\xfe GET / nonsense\r\n\r\n"
                )
            finally:
                await server.stop()

        assert _run(scenario()).startswith(b"HTTP/1.1 400 ")

    def test_oversized_header_block_gets_431(self):
        async def scenario():
            server = MiniPhpServer(_config(max_header_bytes=1024))
            await server.start()
            try:
                big = b"X-Big: " + b"a" * 3000 + b"\r\n"
                return await _raw_exchange(
                    server.port,
                    b"GET /wordpress HTTP/1.1\r\n" + big + b"\r\n",
                )
            finally:
                await server.stop()

        assert _run(scenario()).startswith(b"HTTP/1.1 431 ")

    def test_many_small_headers_beyond_cap_get_431(self):
        async def scenario():
            server = MiniPhpServer(_config(max_header_bytes=512))
            await server.start()
            try:
                headers = b"".join(
                    b"X-H%d: v\r\n" % i for i in range(200)
                )
                return await _raw_exchange(
                    server.port,
                    b"GET /wordpress HTTP/1.1\r\n" + headers + b"\r\n",
                )
            finally:
                await server.stop()

        assert _run(scenario()).startswith(b"HTTP/1.1 431 ")

    def test_overlong_request_line_gets_414(self):
        async def scenario():
            server = MiniPhpServer(_config())
            await server.start()
            try:
                target = "/wordpress?pad=" + "x" * 8000
                return await _raw_exchange(
                    server.port,
                    f"GET {target} HTTP/1.1\r\n\r\n".encode("ascii"),
                )
            finally:
                await server.stop()

        assert _run(scenario()).startswith(b"HTTP/1.1 414 ")

    def test_post_gets_405_and_unknown_route_404(self):
        async def scenario():
            server = MiniPhpServer(_config())
            await server.start()
            try:
                post = await _raw_exchange(
                    server.port, b"POST /wordpress HTTP/1.1\r\n\r\n"
                )
                missing = await _raw_exchange(
                    server.port,
                    b"GET /joomla HTTP/1.1\r\n"
                    b"Connection: close\r\n\r\n",
                )
            finally:
                await server.stop()
            return post, missing

        post, missing = _run(scenario())
        assert post.startswith(b"HTTP/1.1 405 ")
        assert missing.startswith(b"HTTP/1.1 404 ")

    def test_non_integer_query_param_gets_400(self):
        async def scenario():
            server = MiniPhpServer(_config())
            await server.start()
            try:
                return await _raw_exchange(
                    server.port,
                    b"GET /wordpress?seed=abc HTTP/1.1\r\n\r\n",
                )
            finally:
                await server.stop()

        assert _run(scenario()).startswith(b"HTTP/1.1 400 ")

    def test_client_disconnect_mid_render_leaves_server_alive(self):
        async def scenario():
            server = MiniPhpServer(
                _config(), render_fn=_slow_render(0.3)
            )
            await server.start()
            try:
                # First client fires a slow request and vanishes.
                _, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    b"GET /drupal?seed=1 HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                await writer.drain()
                writer.close()
                # Second client must still get a full answer.
                reader2, writer2 = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                status, _, body = await _get_on(
                    reader2, writer2, "/mediawiki?seed=2"
                )
                writer2.close()
            finally:
                await server.stop()
            return status, body

        status, body = _run(scenario())
        assert status == 200
        assert b"slow mediawiki 2" in body

    def test_keep_alive_serves_multiple_requests_per_connection(self):
        async def scenario():
            server = MiniPhpServer(_config())
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                results = []
                for target in ("/wordpress?seed=3", "/drupal?seed=3",
                               "/wordpress?seed=3"):
                    results.append(
                        await _get_on(reader, writer, target)
                    )
                writer.close()
            finally:
                await server.stop()
            return results, server.stats.get("serve.connections")

        results, connections = _run(scenario())
        assert [status for status, _, _ in results] == [200, 200, 200]
        assert all(
            h["connection"] == "keep-alive" for _, h, _ in results
        )
        assert connections == 1

    def test_graceful_shutdown_drains_the_inflight_response(self):
        async def scenario():
            server = MiniPhpServer(
                _config(), render_fn=_slow_render(0.3)
            )
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"GET /wordpress?seed=9 HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            await writer.drain()
            await asyncio.sleep(0.1)  # request is now mid-render
            stop_task = asyncio.create_task(server.stop(drain=True))
            status_line = await reader.readline()
            rest = await reader.read(-1)
            await stop_task
            writer.close()
            return status_line, rest, server.stats.get(
                "serve.drain_cancelled"
            )

        status_line, rest, cancelled = _run(scenario())
        assert status_line.startswith(b"HTTP/1.1 200 ")
        assert b"slow wordpress 9" in rest
        assert cancelled == 0

    def test_served_page_matches_direct_render(self):
        async def scenario():
            server = MiniPhpServer(_config())
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                status, _, body = await _get_on(
                    reader, writer, "/wordpress?seed=5&vary=1"
                )
                writer.close()
            finally:
                await server.stop()
            return status, body

        status, body = _run(scenario())
        expected, _ = render_http_page("wordpress", 5, 1)
        assert status == 200
        assert body == expected.encode("utf-8")


class TestFragmentCache:
    def test_second_fetch_is_a_cache_hit(self):
        async def scenario():
            server = MiniPhpServer(_config())
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                first = await _get_on(reader, writer, "/drupal?seed=4")
                second = await _get_on(reader, writer, "/drupal?seed=4")
                writer.close()
            finally:
                await server.stop()
            return first, second

        (s1, h1, b1), (s2, h2, b2) = _run(scenario())
        assert (s1, s2) == (200, 200)
        assert h1["x-cache"] == "miss"
        assert h2["x-cache"] == "hit"
        assert b1 == b2

    def test_shard_values_die_with_their_entries(self):
        stats = StatRegistry("t")
        shard = CacheShard(capacity=2, stats=stats)
        shard.put("a", now=0.0, ttl=10.0, value=b"A")
        shard.put("b", now=0.0, ttl=10.0, value=b"B")
        assert shard.value_of("a") == b"A"
        # Eviction drops the LRU entry's value with it.
        shard.put("c", now=0.0, ttl=10.0, value=b"C")
        assert shard.value_of("a") is None
        # Expiry drops the value on touch.
        assert shard.probe("b", now=20.0, stale_cycles=None) == "miss"
        assert shard.value_of("b") is None
        # Flush drops everything.
        shard.flush()
        assert shard.value_of("c") is None

    def test_fragment_cache_probe_hit_stale_miss(self):
        config = CacheTierConfig(
            shards=2, shard_capacity=8, ttl_services=10.0,
            stale_services=10.0, single_flight=True,
        )
        cache = FragmentCache(config, mean_service_s=1.0)
        cache.fill("k", now=0.0, body=b"page")
        state, value = cache.probe("k", now=1.0)
        assert (state, value) == ("hit", b"page")
        ttl = jittered_ttl("k", 10.0, config.ttl_jitter)
        state, value = cache.probe("k", now=ttl + 1.0)
        assert (state, value) == ("stale", b"page")
        state, value = cache.probe("k", now=ttl + 11.0)
        assert (state, value) == ("miss", None)

    def test_jittered_ttl_is_pure_and_bounded(self):
        assert jittered_ttl("x", None, 0.5) is None
        assert jittered_ttl("x", 100.0, 0.0) == 100.0
        seen = {jittered_ttl(f"k{i}", 100.0, 0.2) for i in range(50)}
        assert len(seen) > 10, "jitter should spread per-key"
        assert all(80.0 <= t <= 100.0 for t in seen)
        assert jittered_ttl("k1", 100.0, 0.2) \
            == jittered_ttl("k1", 100.0, 0.2)


class TestTelemetry:
    def _event(self, **overrides) -> RequestEvent:
        base = dict(
            t_ms=1.0, route="wordpress", status=200, cache="hit",
            queue_wait_ms=0.0, render_ms=0.0, total_ms=0.5,
            bytes_out=100,
        )
        base.update(overrides)
        return RequestEvent(**base)

    def test_ring_is_bounded_and_counts_drops(self):
        log = TelemetryLog(max_events=5)
        for i in range(8):
            log.record(self._event(t_ms=float(i)))
        assert len(log) == 5
        assert log.recorded == 8
        assert log.dropped == 3
        # The *tail* survives (oldest events dropped first).
        assert [e.t_ms for e in log] == [3.0, 4.0, 5.0, 6.0, 7.0]

    def test_jsonl_roundtrip_validates(self, tmp_path):
        log = TelemetryLog()
        log.record(self._event())
        log.record(self._event(
            status=503, cache="miss", shed="admission queue full",
            bytes_out=0,
        ))
        path = log.write_jsonl(tmp_path / "t.jsonl")
        rows = TelemetryLog.read_jsonl(path)
        assert len(rows) == 2
        assert all(r["schema"] == TELEMETRY_SCHEMA for r in rows)
        assert rows[1]["shed"] == "admission queue full"

    def test_validator_rejects_corrupt_rows(self):
        good = self._event().to_row()
        validate_event_row(good)
        for corrupt in (
            {**good, "schema": "repro-serve/1"},
            {**good, "cache": "warm"},
            {**good, "status": 9000},
            {**good, "total_ms": -1.0},
            {**good, "bytes_out": -5},
            {**good, "ops": []},
        ):
            with pytest.raises(ValueError):
                validate_event_row(corrupt)

    def test_latency_samples_and_ops_summary(self):
        log = TelemetryLog()
        log.record(self._event(total_ms=2.0, ops={"calls": 3}))
        log.record(self._event(status=503, total_ms=9.0))
        log.record(self._event(total_ms=4.0, ops={"calls": 2}))
        assert log.latency_samples() == [2.0, 4.0]
        assert summarize_ops(iter(log)) == {"calls": 5}


class TestServeReportSchema:
    def _payload(self) -> dict:
        report = ServeReport(
            mode="smoke", seed=0, connections=8, peak_connections=8,
            offered=10, answered=10, ok=10, goodput_rps=5.0,
            goodput_ratio=1.0, slo_ok=True, oracle_ok=True,
            duration_s=2.0,
        )
        from repro.common.stats import summarize_latencies
        report.latency = summarize_latencies([1.0, 2.0, 3.0])
        return report.to_payload()

    def test_roundtrip_validates(self):
        payload = self._payload()
        assert payload["schema"] == SERVE_SCHEMA
        validate_serve_payload(payload)

    def test_validator_rejects_corrupt_payloads(self):
        good = self._payload()
        for corrupt in (
            {**good, "schema": "repro-perf/1"},
            {**good, "mode": "prod"},
            {**good, "offered": -1},
            {**good, "goodput_ratio": 1.5},
            {**good, "latency": {}},
            {**good, "slo_ok": "yes"},
            {**good, "oracle_ok": None},
            {**good, "host": {}},
        ):
            with pytest.raises(ValueError):
                validate_serve_payload(corrupt)

    def test_served_requests_require_latency_samples(self):
        bad = self._payload()
        bad["latency"] = dict(
            count=0, mean=0.0, p50=0.0, p99=0.0, p999=0.0
        )
        with pytest.raises(ValueError):
            validate_serve_payload(bad)

    def test_history_row_roundtrip_and_append(self, tmp_path):
        payload = self._payload()
        row = serve_history_row(payload)
        assert row["schema"] == SERVE_HISTORY_SCHEMA
        validate_serve_history_row(row)
        path = tmp_path / "history.jsonl"
        path.touch()
        append_serve_history(payload, path=path)
        append_serve_history(payload, path=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            validate_serve_history_row(json.loads(line))

    def test_history_validator_rejects_corrupt_rows(self):
        good = serve_history_row(self._payload())
        for corrupt in (
            {**good, "schema": "repro-perf-history/1"},
            {**good, "goodput_ratio": -0.1},
            {**good, "slo_ok": 1},
            {**good, "connections": 1.5},
            {**good, "host": {}},
        ):
            with pytest.raises(ValueError):
                validate_serve_history_row(corrupt)

    def test_format_serve_report_renders_the_verdict(self):
        text = format_serve_report(self._payload())
        assert "live serving path (wall-clock)" in text
        assert "PASS" in text


class TestLoadClient:
    def test_arrival_schedule_is_deterministic(self):
        from repro.common.rng import DeterministicRng

        shape = ArrivalShape(
            rate_rps=200.0, duration_s=3.0, flash_multiplier=2.0,
            flash_start_s=1.0, flash_duration_s=1.0,
            diurnal_amplitude=0.3, diurnal_period_s=3.0,
        )
        a = shape.draw_arrivals(DeterministicRng(7).fork("arrivals"))
        b = shape.draw_arrivals(DeterministicRng(7).fork("arrivals"))
        assert a == b
        assert all(0.0 <= t < 3.0 for t in a)
        # Offered volume lands in the right ballpark for λ(t).
        assert 300 < len(a) < 1_200

    def test_flash_window_concentrates_arrivals(self):
        from repro.common.rng import DeterministicRng

        shape = ArrivalShape(
            rate_rps=300.0, duration_s=4.0, flash_multiplier=3.0,
            flash_start_s=1.0, flash_duration_s=1.0,
        )
        arrivals = shape.draw_arrivals(
            DeterministicRng(3).fork("arrivals")
        )
        inside = sum(1 for t in arrivals if 1.0 <= t < 2.0)
        outside = (len(arrivals) - inside) / 3.0  # per non-flash second
        assert inside > 1.8 * outside

    def test_fd_clamp_respects_the_budget(self):
        import resource

        soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
        clamped = max_supported_connections(10**9)
        assert 1 <= clamped <= soft // 2
        assert max_supported_connections(4) == 4

    def test_end_to_end_small_load_run(self):
        async def scenario():
            server = MiniPhpServer(_config())
            await server.start()
            try:
                config = LoadConfig(
                    connections=8,
                    shape=ArrivalShape(rate_rps=80.0, duration_s=1.0),
                    seed=1, seed_space=4, vary_space=1,
                )
                result = await run_load(
                    "127.0.0.1", server.port, config
                )
            finally:
                await server.stop()
            return result, server

        result, server = _run(scenario())
        assert result.offered > 20
        assert result.ok == result.offered
        assert result.conn_errors == 0
        assert result.connections == 8
        assert server.peak_connections <= 8
        assert len(result.latencies_ms) == result.ok
        report = build_report("smoke", 1, result, server)
        payload = report.to_payload()
        validate_serve_payload(payload)
        assert payload["goodput_ratio"] == 1.0


class TestServedBytesOracle:
    def test_pinned_cases_are_byte_identical(self):
        cases = [("wordpress", 0, 0), ("drupal", 3, 1),
                 ("mediawiki", 5, 2)]
        assert serve_oracle_mismatches(cases) == []

    def test_oracle_runs_as_a_conformance_domain(self):
        from repro.conformance.fuzzer import DOMAINS, run_case

        assert "serve" in DOMAINS
        run_case("serve", [["wordpress", 1, 0], ["drupal", 2, 1]])

    def test_oracle_rejects_malformed_case_ops(self):
        from repro.conformance.oracles import (
            ConformanceFailure,
            run_serve_oracle,
        )

        with pytest.raises(ConformanceFailure):
            run_serve_oracle([["wordpress", 1]])

    def test_generator_produces_valid_cases(self):
        from repro.common.rng import DeterministicRng
        from repro.conformance.fuzzer import generate_case

        rng = DeterministicRng(11).fork("serve-gen")
        for _ in range(5):
            case = generate_case("serve", rng)
            assert 1 <= len(case) <= 3
            for app, seed, vary in case:
                assert app in ("wordpress", "drupal", "mediawiki")
                assert 0 <= seed <= 9
                assert 0 <= vary <= 2
