"""Unit + property tests: hardware heap manager (Section 4.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.heap_manager import HardwareHeapManager, HeapManagerConfig
from repro.runtime.slab import SlabAllocator


def make_hm(**kwargs) -> HardwareHeapManager:
    return HardwareHeapManager(SlabAllocator(), HeapManagerConfig(**kwargs))


class TestConfig:
    def test_class_bytes(self):
        cfg = HeapManagerConfig()
        assert cfg.class_bytes(0) == 16
        assert cfg.class_bytes(7) == 128

    def test_class_for_boundaries(self):
        cfg = HeapManagerConfig()
        assert cfg.class_for(1) == 0
        assert cfg.class_for(16) == 0
        assert cfg.class_for(17) == 1
        assert cfg.class_for(128) == 7

    def test_class_for_oversize(self):
        assert HeapManagerConfig().class_for(129) is None

    def test_class_for_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            HeapManagerConfig().class_for(0)


class TestMallocFree:
    def test_first_malloc_falls_back_then_prefetch_fills(self):
        hm = make_hm()
        first = hm.hmmalloc(40)
        assert first.software_fallback and first.address is not None
        second = hm.hmmalloc(40)
        assert not second.software_fallback  # prefetcher refilled

    def test_oversize_is_comparator_bypassed(self):
        hm = make_hm()
        out = hm.hmmalloc(200)
        assert out.software_fallback and out.address is None
        assert hm.stats.get("hwheap.oversize_bypass") == 1

    def test_free_then_malloc_reuses_block(self):
        hm = make_hm()
        a = hm.hmmalloc(40)
        hm.hmfree(a.address, 40)
        b = hm.hmmalloc(40)
        assert b.address == a.address  # head of the hardware free list

    def test_free_overflow_spills_one_block(self):
        hm = make_hm(entries_per_class=4)
        addrs = [hm.hmmalloc(20).address for _ in range(8)]
        # The prefetcher may have pre-staged blocks; frees first fill
        # the remaining capacity, then every free spills exactly one
        # tail block to memory (the paper's single-str overflow path).
        headroom = 4 - hm.cached_blocks()
        outcomes = [hm.hmfree(a, 20) for a in addrs]
        overflows = [o for o in outcomes if o.software_fallback]
        assert len(overflows) == 8 - headroom
        assert all(o.overflow_stores == 1 for o in overflows)
        assert hm.cached_blocks() == 4  # never exceeds capacity

    def test_different_sizes_use_different_lists(self):
        hm = make_hm()
        a = hm.hmmalloc(10)
        b = hm.hmmalloc(100)
        hm.hmfree(a.address, 10)
        hm.hmfree(b.address, 100)
        assert hm.hmmalloc(100).address == b.address

    def test_hit_rate_high_under_churn(self):
        """Strong reuse ⇒ the common case never touches software."""
        hm = make_hm()
        for _ in range(500):
            out = hm.hmmalloc(48)
            hm.hmfree(out.address, 48)
        assert hm.hit_rate() > 0.95


class TestFlush:
    def test_hmflush_empties_hardware(self):
        hm = make_hm()
        out = hm.hmmalloc(32)
        hm.hmfree(out.address, 32)
        flushed = hm.hmflush()
        assert flushed == hm.stats.get("hwheap.flushed_blocks")
        assert flushed > 0
        assert hm.cached_blocks() == 0

    def test_flushed_blocks_usable_by_software(self):
        slab = SlabAllocator()
        hm = HardwareHeapManager(slab)
        out = hm.hmmalloc(32)
        hm.hmfree(out.address, 32)
        hm.hmflush()
        # Software can now hand the same storage out again.
        assert slab.pop_free_block(1) is not None

    def test_context_switch_roundtrip(self):
        hm = make_hm()
        a = hm.hmmalloc(24)
        hm.hmflush()
        # After the flush the next malloc misses (lists are empty) but
        # still succeeds through the software path.
        b = hm.hmmalloc(24)
        assert b.address is not None


class TestAddressDiscipline:
    @given(st.lists(st.integers(min_value=1, max_value=128), min_size=1,
                    max_size=120))
    @settings(max_examples=40)
    def test_no_double_allocation(self, sizes):
        """A live block is never handed out twice."""
        hm = make_hm()
        live: set[int] = set()
        for i, size in enumerate(sizes):
            out = hm.hmmalloc(size)
            assert out.address not in live
            live.add(out.address)
            if i % 3 == 0:
                addr = live.pop()
                hm.hmfree(addr, size)

    @given(st.lists(st.integers(min_value=1, max_value=200), max_size=80))
    @settings(max_examples=40)
    def test_alloc_free_cycle_never_leaks_hw_state(self, sizes):
        hm = make_hm()
        pairs = []
        for size in sizes:
            out = hm.hmmalloc(size)
            if out.address is not None:
                pairs.append((out.address, size))
        for addr, size in pairs:
            if HeapManagerConfig().class_for(size) is not None:
                hm.hmfree(addr, size)
        hm.hmflush()
        assert hm.cached_blocks() == 0
