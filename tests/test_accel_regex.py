"""Unit + property tests: content sifting and content reuse (§4.5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.regex_accel import (
    ContentReuseTable,
    ContentSifter,
    HintVector,
    ReuseAcceleratedMatcher,
    ReuseTableConfig,
    pattern_starts_special,
)
from repro.accel.string_accel import StringAccelerator
from repro.regex.engine import CompiledRegex
from repro.workloads.text import special_char_segments


@pytest.fixture
def sifter() -> ContentSifter:
    return ContentSifter(StringAccelerator())


CLEAN = "plain words only here " * 6
SPECIAL = "'quote' and <tag> plus \"double\""


class TestHintVector:
    def test_spans_merge_adjacent(self):
        hv = HintVector(32, [True, True, False, True], 128)
        assert hv.scan_spans() == [(0, 64), (96, 128)]

    def test_skippable_chars(self):
        hv = HintVector(32, [False, True], 50)
        assert hv.skippable_chars() == 32

    def test_short_tail_segment(self):
        hv = HintVector(32, [False, False], 40)
        assert hv.skippable_chars() == 40

    def test_build_matches_ground_truth(self, sifter):
        content = CLEAN + SPECIAL + CLEAN
        hv, cycles = sifter.build_hint_vector(content)
        assert hv.bits == special_char_segments(content, 32)
        assert cycles > 0


class TestPatternSafety:
    @pytest.mark.parametrize("pattern", [
        r"'[A-Za-z]", r"\"[A-Za-z]", r"\n", r"<[a-z][a-z]*",
        r"\[[a-z]+", r"&[a-z]+;", r"==+", r"\[\[",
    ])
    def test_paper_patterns_are_safe(self, pattern):
        assert pattern_starts_special(CompiledRegex(pattern))

    @pytest.mark.parametrize("pattern", [r"[a-z]+", r"abc", r"\d+"])
    def test_regular_starting_patterns_are_unsafe(self, pattern):
        assert not pattern_starts_special(CompiledRegex(pattern))

    def test_unsafe_pattern_falls_back_to_full_scan(self, sifter):
        content = CLEAN + SPECIAL
        hv, _ = sifter.build_hint_vector(content)
        rx = CompiledRegex(r"[a-z]+")
        result = sifter.shadow_findall(rx, content, hv)
        assert not result.used_sifting
        assert result.chars_skipped == 0


class TestShadowScan:
    def _reference(self, pattern: str, content: str):
        matches, chars = CompiledRegex(pattern).findall(content)
        return [(m.start, m.end) for m in matches], chars

    @pytest.mark.parametrize("pattern", [
        r"'[A-Za-z]", r"<[a-z]+>", r"\[[a-z]+\]", r"&[a-z]+;",
    ])
    def test_matches_equal_full_scan(self, sifter, pattern):
        content = (
            CLEAN + "'alpha' " + CLEAN + "<em> and [code] &amp; " + CLEAN
        )
        hv, _ = sifter.build_hint_vector(content)
        rx = CompiledRegex(pattern)
        result = sifter.shadow_findall(rx, content, hv)
        ref_spans, ref_chars = self._reference(pattern, content)
        assert [(m.start, m.end) for m in result.matches] == ref_spans
        assert result.chars_examined <= ref_chars

    def test_clean_content_is_fully_skipped(self, sifter):
        hv, _ = sifter.build_hint_vector(CLEAN)
        rx = CompiledRegex(r"'[A-Za-z]")
        result = sifter.shadow_findall(rx, CLEAN, hv)
        assert result.matches == []
        assert result.chars_examined == 0
        assert result.chars_skipped == len(CLEAN)

    def test_match_spanning_into_clean_segment(self, sifter):
        # Tag starts in a marked segment but extends into clean text.
        content = "x" * 30 + "<" + "a" * 40 + ">" + " tail " * 10
        hv, _ = sifter.build_hint_vector(content)
        rx = CompiledRegex(r"<[a-z]+>")
        result = sifter.shadow_findall(rx, content, hv)
        assert [(m.start, m.end) for m in result.matches] == [(30, 72)]

    @given(st.lists(st.sampled_from(
        ["plain words ", "more text ", "'q' ", "<em> ", "filler here "]),
        min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_sift_equals_full_scan_property(self, pieces):
        sifter = ContentSifter(StringAccelerator())
        content = "".join(pieces)
        hv, _ = sifter.build_hint_vector(content)
        for pattern in (r"'[a-z]'", r"<[a-z]+>"):
            rx = CompiledRegex(pattern)
            got = sifter.shadow_findall(rx, content, hv)
            want, _ = CompiledRegex(pattern).findall(content)
            assert [(m.start, m.end) for m in got.matches] == \
                   [(m.start, m.end) for m in want]


class TestWhitespacePadding:
    def test_same_length_replacement_keeps_alignment(self, sifter):
        content = CLEAN + "'x" + CLEAN
        hv, _ = sifter.build_hint_vector(content)
        rx = CompiledRegex(r"'[a-z]")
        matches, _ = rx.findall(content)
        new_content, new_hv, pad = sifter.replace_with_padding(
            content, matches, "’y", hv
        )
        assert len(new_content) == len(content)
        assert pad == 0
        assert new_hv.bits == hv.bits

    def test_shrinking_replacement_pads_segment(self, sifter):
        content = CLEAN + "<em>" + CLEAN
        hv, _ = sifter.build_hint_vector(content)
        rx = CompiledRegex(r"<[a-z]+>")
        matches, _ = rx.findall(content)
        new_content, new_hv, pad = sifter.replace_with_padding(
            content, matches, "~", hv
        )
        assert pad == 3  # "<em>" → "~" plus 3 pad spaces
        assert len(new_content) == len(content)

    def test_growing_replacement_extends_marked_segment(self, sifter):
        content = "x" * 31 + "\n" + "y" * 64
        hv, _ = sifter.build_hint_vector(content)
        rx = CompiledRegex(r"\n")
        matches, _ = rx.findall(content)
        new_content, new_hv, pad = sifter.replace_with_padding(
            content, matches, "<br />", hv
        )
        # Following content still starts on a segment boundary.
        assert new_content.index("y" * 64) % 32 == 0
        # The grown segment stays marked.
        assert new_hv.bits[0]

    def test_shadow_scan_still_correct_after_padding(self, sifter):
        content = CLEAN + "'x " + CLEAN + "<em> " + CLEAN
        hv, _ = sifter.build_hint_vector(content)
        rx1 = CompiledRegex(r"'[a-z]")
        matches, _ = rx1.findall(content)
        new_content, new_hv, _ = sifter.replace_with_padding(
            content, matches, "’~", hv
        )
        rx2 = CompiledRegex(r"<[a-z]+>")
        got = sifter.shadow_findall(rx2, new_content, new_hv)
        want, _ = CompiledRegex(r"<[a-z]+>").findall(new_content)
        assert [(m.start, m.end) for m in got.matches] == \
               [(m.start, m.end) for m in want]


URL = r"https://[a-z]+/\?author=[a-z]+"


class TestContentReuseTable:
    def test_install_then_learn_then_jump(self):
        t = ContentReuseTable()
        s1, m1 = t.regexlookup(0x77, 0, "https://localhost/?author=abc")
        assert s1 == "install" and m1 == 0
        s2, m2 = t.regexlookup(0x77, 0, "https://localhost/?author=xyz")
        assert s2 == "learn" and m2 == 26
        t.regexset(0x77, 0, state=9, last_accept=None)
        s3, m3 = t.regexlookup(0x77, 0, "https://localhost/?author=qrs")
        assert s3 == "jump" and m3 == 26

    def test_first_byte_mismatch_reinstalls(self):
        t = ContentReuseTable()
        t.regexlookup(0x77, 0, "https://a/?author=x")
        s, _ = t.regexlookup(0x77, 0, "ftp://b")
        assert s == "install"

    def test_pc_isolation(self):
        t = ContentReuseTable()
        t.regexlookup(0x77, 0, "https://a/?author=x")
        s, _ = t.regexlookup(0x88, 0, "https://a/?author=x")
        assert s == "install"

    def test_asid_isolation(self):
        t = ContentReuseTable()
        t.regexlookup(0x77, 1, "https://a/?author=x")
        s, _ = t.regexlookup(0x77, 2, "https://a/?author=x")
        assert s == "install"

    def test_lru_eviction_at_capacity(self):
        t = ContentReuseTable(ReuseTableConfig(entries=2))
        t.regexlookup(1, 0, "aaa")
        t.regexlookup(2, 0, "bbb")
        t.regexlookup(3, 0, "ccc")  # evicts PC 1
        assert t.stats.get("reuse.evictions") == 1
        s, _ = t.regexlookup(1, 0, "aaa")
        assert s == "install"

    def test_content_capped_at_32_bytes(self):
        t = ContentReuseTable()
        long_a = "x" * 40 + "abc"
        long_b = "x" * 40 + "def"
        t.regexlookup(1, 0, long_a)
        s, m = t.regexlookup(1, 0, long_b)
        # Only the first 32 bytes are compared; they match fully.
        assert s == "learn" and m == 32


class TestReuseAcceleratedMatcher:
    def _software_end(self, pattern, content):
        m = CompiledRegex(pattern).match_prefix(content).match
        return m.end if m else None

    def test_jump_gives_same_answer(self):
        t = ContentReuseTable()
        matcher = ReuseAcceleratedMatcher(t)
        rx = CompiledRegex(URL)
        urls = [
            "https://localhost/?author=abc",
            "https://localhost/?author=xyz",
            "https://localhost/?author=abc",
            "https://localhost/?author=pqr",
        ]
        for url in urls:
            out = matcher.match(rx, url, pc=0x42)
            assert out.match_end == self._software_end(URL, url), url

    def test_jump_skips_prefix_work(self):
        t = ContentReuseTable()
        matcher = ReuseAcceleratedMatcher(t)
        rx = CompiledRegex(URL)
        matcher.match(rx, "https://localhost/?author=abc", pc=1)
        matcher.match(rx, "https://localhost/?author=xyz", pc=1)
        out = matcher.match(rx, "https://localhost/?author=pqr", pc=1)
        assert out.scenario == "jump"
        assert out.chars_skipped == 26
        assert out.chars_examined == 3

    def test_non_matching_content_correct(self):
        t = ContentReuseTable()
        matcher = ReuseAcceleratedMatcher(t)
        rx = CompiledRegex(URL)
        out = matcher.match(rx, "not a url at all", pc=7)
        assert out.match_end is None

    @given(st.lists(st.sampled_from(["abc", "xyz", "pqr", "aardvark", "ab"]),
                    min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_reuse_always_matches_software(self, authors):
        t = ContentReuseTable()
        matcher = ReuseAcceleratedMatcher(t)
        rx = CompiledRegex(URL)
        for author in authors:
            url = f"https://localhost/?author={author}"
            out = matcher.match(rx, url, pc=3)
            assert out.match_end == self._software_end(URL, url)
