"""Unit tests: overload dynamics, metastability verdicts, defenses.

The headline acceptance criteria live here: with defenses disabled the
flash-crowd + retry-storm demo stays collapsed long after the trigger
clears (metastable), and with defenses enabled the same storm recovers
to the SLO within one trigger duration — deterministically, at the
pinned seed, byte-identically across ``--jobs`` fan-out.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.report import overload_report, overload_timeline
from repro.fleet import (
    OverloadConfig,
    min_nodes_to_survive,
    overload_topology,
    run_overload,
    run_overload_matrix,
)
from repro.fleet.overload import (
    defended_config,
    headline_scenarios,
    undefended_config,
)
from repro.resilience.policies import (
    AdaptiveConcurrencyLimit,
    AdaptiveConcurrencyPolicy,
    RetryBudget,
    RetryBudgetPolicy,
)

SEED = 17


def small_config(**overrides) -> OverloadConfig:
    base = dict(
        horizon_services=120.0,
        flash_start_services=30.0,
        flash_duration_services=20.0,
        bucket_services=10.0,
    )
    base.update(overrides)
    return OverloadConfig(**base)


class TestOverloadConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(horizon_services=0.0),
        dict(base_load=0.0),
        dict(arrival_rate=-1.0),
        dict(flash_multiplier=0.5),
        dict(flash_start_services=-1.0),
        dict(flash_duration_services=0.0),
        # flash must end before the horizon
        dict(flash_start_services=100.0, flash_duration_services=20.0),
        dict(diurnal_amplitude=1.0),
        dict(diurnal_period_services=0.0),
        dict(timeout_services=0.0),
        dict(max_retries=-1),
        dict(sync_backoff_services=0.0),
        dict(max_queue=0),
        dict(key_population=0),
        dict(key_zipf_s=0.0),
        dict(bucket_services=0.0),
        dict(recovery_slo=0.0),
        dict(recovery_slo=1.5),
        dict(metastable_factor=0.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            small_config(**kwargs)

    def test_flash_end(self):
        cfg = small_config()
        assert cfg.flash_end_services == 50.0


class TestPolicies:
    def test_retry_budget_earns_and_spends(self):
        budget = RetryBudget(RetryBudgetPolicy(
            ratio=0.5, burst=2.0, initial=1.0
        ))
        assert budget.try_spend()          # 1.0 -> 0.0
        assert not budget.try_spend()      # empty: denied
        assert budget.denied == 1
        for _ in range(10):
            budget.record_success()        # capped at burst
        assert budget.tokens == 2.0
        assert budget.try_spend() and budget.try_spend()
        assert budget.spent == 3

    def test_retry_budget_policy_validation(self):
        with pytest.raises(ValueError):
            RetryBudgetPolicy(ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudgetPolicy(burst=0.0)
        with pytest.raises(ValueError):
            RetryBudgetPolicy(burst=5.0, initial=6.0)

    def test_adaptive_limit_aimd(self):
        policy = AdaptiveConcurrencyPolicy(
            target_latency_services=4.0, increase=0.5, decrease=0.5,
            min_limit=1.0, max_limit=8.0,
        )
        limit = AdaptiveConcurrencyLimit(policy, mean_service_cycles=10.0)
        assert limit.limit == 8.0
        limit.record(100.0)                # over 40 cycles: halve
        assert limit.limit == 4.0 and limit.decreases == 1
        limit.record(10.0)                 # under target: +0.5
        assert limit.limit == 4.5
        for _ in range(100):
            limit.record(1000.0)
        assert limit.limit == 1.0          # floored at min_limit
        assert limit.admit(0) and not limit.admit(1)

    def test_adaptive_policy_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConcurrencyPolicy(target_latency_services=0.0)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyPolicy(decrease=1.0)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyPolicy(min_limit=0.5)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimit(
                AdaptiveConcurrencyPolicy(), mean_service_cycles=0.0
            )


class TestOverloadSimulator:
    def test_same_seed_identical_report(self):
        topo = overload_topology()
        cfg = undefended_config(smoke=True)
        a = run_overload(topo, cfg, seed=23)
        b = run_overload(topo, cfg, seed=23)
        assert a == b
        assert repr(a) == repr(b)
        assert overload_report([a]) == overload_report([b])

    def test_different_seeds_differ(self):
        topo = overload_topology()
        cfg = small_config()
        assert run_overload(topo, cfg, seed=1) != run_overload(
            topo, cfg, seed=2
        )

    def test_series_account_for_every_arrival(self):
        report = run_overload(
            overload_topology(), small_config(), seed=SEED
        )
        assert report.arrivals > 0
        assert sum(report.arrival_series) == report.arrivals
        assert sum(report.goodput_series) == report.goodput
        n = len(report.arrival_series)
        for series in (report.goodput_series, report.shed_series,
                       report.timeout_series, report.retry_series,
                       report.queue_series):
            assert len(series) == n
        assert report.goodput <= report.arrivals
        assert report.attempts >= report.arrivals

    def test_flash_crowd_lifts_arrival_rate(self):
        report = run_overload(
            overload_topology(),
            small_config(flash_multiplier=4.0, base_load=0.3),
            seed=SEED,
        )
        per_bucket = report.arrival_series
        flash = per_bucket[3:5]            # buckets covering 30..50
        calm = per_bucket[0:3]
        assert min(flash) > max(calm)

    def test_diurnal_modulation_changes_arrivals(self):
        flat = run_overload(
            overload_topology(), small_config(), seed=SEED
        )
        wavy = run_overload(
            overload_topology(),
            small_config(diurnal_amplitude=0.5,
                         diurnal_period_services=60.0),
            seed=SEED,
        )
        assert flat.arrival_series != wavy.arrival_series

    def test_mass_expiry_fires_at_flash(self):
        report = run_overload(
            overload_topology(), undefended_config(smoke=True),
            seed=SEED,
        )
        assert report.mass_expiries == 1


class TestHeadlineDemo:
    """The PR's acceptance criteria, asserted at the pinned seed."""

    @pytest.fixture(scope="class")
    def reports(self):
        return {
            r.scenario: r for r in run_overload_matrix(
                overload_topology(), headline_scenarios(smoke=True),
                seed=SEED,
            )
        }

    def test_both_runs_healthy_before_the_trigger(self, reports):
        assert reports["undefended"].pre_trigger_goodput >= 0.9
        assert reports["defended"].pre_trigger_goodput >= 0.9

    def test_undefended_run_is_metastable(self, reports):
        undef = reports["undefended"]
        flash = undef.flash_end_services - undef.flash_start_services
        assert undef.metastable and not undef.recovered
        # Goodput never sustains even 50% of the pre-trigger level
        # within 5 trigger durations of the flash ending.
        assert (
            undef.half_recovery_services is None
            or undef.half_recovery_services >= 5.0 * flash
        )
        # The sustaining loop: retries amplify load, zombie renders
        # burn capacity for clients that already hung up.
        assert undef.amplification > 1.5
        assert undef.zombies > 0
        assert undef.timeouts > 0

    def test_defended_run_recovers_within_one_trigger(self, reports):
        defended = reports["defended"]
        flash = (
            defended.flash_end_services - defended.flash_start_services
        )
        assert defended.recovered
        assert defended.recovery_services is not None
        assert defended.recovery_services <= flash
        # Every defense layer actually engaged.
        assert defended.retries_denied > 0
        assert defended.shed + defended.shed_expired > 0
        assert defended.stale_served + defended.coalesced > 0
        assert (
            defended.goodput_ratio
            > reports["undefended"].goodput_ratio
        )

    def test_retry_budget_alone_breaks_the_loop(self, reports):
        budget_only = reports["retry-budget-only"]
        assert budget_only.recovered
        assert budget_only.retries_denied > 0
        assert (
            budget_only.amplification
            < reports["undefended"].amplification
        )

    def test_timeline_renders_flash_window(self, reports):
        for report in reports.values():
            line = overload_timeline(report)
            assert "[" in line and "]" in line
            assert report.scenario in line
        table = overload_report(list(reports.values()))
        assert "METASTABLE" in table and "recovered" in table


class TestRetryBudgetMonotonicity:
    """Metamorphic invariant: disabling the budget never sends fewer
    retries at equal seeds — the budget only ever withholds."""

    @pytest.mark.parametrize("seed", [17, 23, 99])
    def test_budget_off_sends_at_least_as_many_retries(self, seed):
        topo = overload_topology()
        on_cfg = defended_config(smoke=True)
        off_cfg = replace(on_cfg, retry_budget=None)
        on = run_overload(topo, on_cfg, seed=seed)
        off = run_overload(topo, off_cfg, seed=seed)
        assert off.retries_sent >= on.retries_sent
        assert on.retries_denied > 0
        assert off.retries_denied == 0


class TestJobsByteIdentity:
    def test_matrix_identical_across_pool_fanout(self):
        from repro.core.expcache import EXPERIMENT_CACHE

        topo = overload_topology()
        scenarios = headline_scenarios(smoke=True)
        EXPERIMENT_CACHE.clear()
        serial = run_overload_matrix(topo, scenarios, seed=SEED, jobs=1)
        EXPERIMENT_CACHE.clear()
        pooled = run_overload_matrix(topo, scenarios, seed=SEED, jobs=4)
        assert repr(serial) == repr(pooled)
        assert overload_report(serial) == overload_report(pooled)


class TestMinNodesToSurvive:
    def test_requires_absolute_rate(self):
        with pytest.raises(ValueError):
            min_nodes_to_survive(
                lambda n: overload_topology(nodes=n),
                undefended_config(smoke=True),
            )

    def test_validation(self):
        cfg = replace(undefended_config(smoke=True), arrival_rate=5.6)
        with pytest.raises(ValueError):
            min_nodes_to_survive(
                lambda n: overload_topology(nodes=n), cfg, max_nodes=0
            )
        with pytest.raises(ValueError):
            min_nodes_to_survive(
                lambda n: overload_topology(nodes=n), cfg,
                slo_goodput=0.0,
            )

    def test_defenses_cut_the_node_count(self):
        rate = 5.6
        need_undef = min_nodes_to_survive(
            lambda n: overload_topology(nodes=n),
            replace(undefended_config(smoke=True), arrival_rate=rate),
            seed=SEED,
        )
        need_def = min_nodes_to_survive(
            lambda n: overload_topology(nodes=n),
            replace(defended_config(smoke=True), arrival_rate=rate),
            seed=SEED,
        )
        assert need_def is not None
        assert need_undef is None or need_undef > need_def
