"""Unit tests: PHP value model, refcounting, type checks."""

from __future__ import annotations

from repro.runtime.values import PhpType, PhpValue, ValueRuntime


class TestPhpType:
    def test_refcounted_types(self):
        assert PhpType.STRING.is_refcounted
        assert PhpType.ARRAY.is_refcounted
        assert PhpType.OBJECT.is_refcounted

    def test_scalar_types_not_refcounted(self):
        for t in (PhpType.NULL, PhpType.BOOL, PhpType.INT, PhpType.DOUBLE):
            assert not t.is_refcounted


class TestPhpValue:
    def test_constructors(self):
        assert PhpValue.null().type is PhpType.NULL
        assert PhpValue.of_int(3).payload == 3
        assert PhpValue.of_bool(True).payload is True
        assert PhpValue.of_double(1.5).payload == 1.5
        assert PhpValue.of_string("x").type is PhpType.STRING

    def test_initial_refcount(self):
        assert PhpValue.of_string("x").refcount == 1


class TestValueRuntime:
    def test_incref_counts_heap_values(self):
        rt = ValueRuntime()
        v = PhpValue.of_string("x")
        rt.incref(v)
        assert v.refcount == 2
        assert rt.stats.get("refcount.incref") == 1
        assert rt.refcount_uops == ValueRuntime.UOPS_PER_RC_OP

    def test_incref_ignores_scalars(self):
        rt = ValueRuntime()
        v = PhpValue.of_int(1)
        rt.incref(v)
        assert rt.stats.get("refcount.incref") == 0

    def test_decref_destroys_at_zero(self):
        rt = ValueRuntime()
        v = PhpValue.of_string("x")
        assert rt.decref(v) is True
        assert rt.stats.get("refcount.destroys") == 1

    def test_decref_survives_above_zero(self):
        rt = ValueRuntime()
        v = PhpValue.of_string("x")
        rt.incref(v)
        assert rt.decref(v) is False
        assert v.refcount == 1

    def test_decref_scalar_is_noop(self):
        rt = ValueRuntime()
        assert rt.decref(PhpValue.of_int(1)) is False
        assert rt.refcount_uops == 0

    def test_type_check_pass_and_fail(self):
        rt = ValueRuntime()
        v = PhpValue.of_int(1)
        assert rt.type_check(v, PhpType.INT)
        assert not rt.type_check(v, PhpType.STRING)
        assert rt.stats.get("typecheck.checks") == 2
        assert rt.stats.get("typecheck.misses") == 1
        assert rt.typecheck_uops == 2 * ValueRuntime.UOPS_PER_TYPE_CHECK

    def test_uop_accounting_accumulates(self):
        rt = ValueRuntime()
        v = PhpValue.of_array([])
        for _ in range(10):
            rt.incref(v)
        for _ in range(10):
            rt.decref(v)
        assert rt.refcount_uops == 20 * ValueRuntime.UOPS_PER_RC_OP
