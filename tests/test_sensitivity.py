"""Integration tests: parameter sensitivity sweeps."""

from __future__ import annotations

import pytest

from repro.core.sensitivity import (
    sweep_probe_width,
    sweep_reuse_content_bytes,
    sweep_reuse_entries,
    sweep_segment_size,
)


class TestProbeWidth:
    def test_wider_probes_never_hurt(self):
        sweep = sweep_probe_width(requests=2)
        rates = [sweep[w] for w in sorted(sweep)]
        assert all(a <= b + 0.01 for a, b in zip(rates, rates[1:]))

    def test_paper_width_near_saturation(self):
        """4 probes capture almost all of the 8-probe hit rate."""
        sweep = sweep_probe_width(requests=2)
        assert sweep[4] >= sweep[8] - 0.01


class TestSegmentSize:
    def test_smaller_segments_skip_more(self):
        sweep = sweep_segment_size()
        sizes = sorted(sweep)
        skips = [sweep[s]["skip_fraction"] for s in sizes]
        assert all(a >= b - 0.02 for a, b in zip(skips, skips[1:]))

    def test_hv_bits_halve_with_size(self):
        sweep = sweep_segment_size(sizes=(16, 32))
        assert sweep[16]["hv_bits"] == pytest.approx(
            2 * sweep[32]["hv_bits"], abs=1
        )

    def test_paper_choice_in_sweet_band(self):
        """32-byte segments keep most of the skip at 1/4 the HV bits
        of 8-byte segments."""
        sweep = sweep_segment_size()
        assert sweep[32]["skip_fraction"] > 0.5 * sweep[8]["skip_fraction"]
        assert sweep[32]["hv_bits"] == sweep[8]["hv_bits"] / 4


class TestReuseCapacity:
    def test_content_bytes_must_cover_shared_prefix(self):
        sweep = sweep_reuse_content_bytes()
        # The author-URL prefix is 26 bytes: 8/16 truncate it, 32 covers.
        assert sweep[8] < sweep[32]
        assert sweep[16] < sweep[32]
        assert sweep[64] == pytest.approx(sweep[32], abs=0.02)

    def test_entries_must_cover_live_call_sites(self):
        sweep = sweep_reuse_entries()
        assert sweep[2] < 0.1          # LRU churn destroys memoization
        assert sweep[32] > 0.4         # the paper's sizing works
        assert sweep[128] >= sweep[32] - 0.05
