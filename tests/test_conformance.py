"""Conformance subsystem: corpus replay, determinism, bug injection.

Three layers of assurance over :mod:`repro.conformance`:

* the persisted regression corpus under ``tests/corpus/`` (including
  the shrunk repros of real bugs the fuzzer found — the ``(?i)``
  negated-class fold and nullable-pattern sifting) stays green;
* a conformance run is a pure function of its seed, serial or fanned
  out over the process pool;
* deliberately corrupted accelerators are *caught* by the fuzzer and
  shrunk to minimal repros — the oracles are live, not vacuous.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.accel.hash_table import HardwareHashTable, HashOpOutcome
from repro.accel.string_accel import StringAccelerator
from repro.common.rng import DeterministicRng
from repro.conformance import (
    BASE_DOMAINS,
    DOMAINS,
    ConformanceFailure,
    fuzz_domain,
    generate_case,
    run_case,
    run_conformance,
    run_invariant,
    shrink_case,
    split_domain,
    write_failure_artifacts,
)
from repro.conformance.invariants import INVARIANTS
from repro.core.report import conformance_report

CORPUS_DIR = Path(__file__).parent / "corpus"


def _corpus_cases() -> list:
    params = []
    for path in sorted(CORPUS_DIR.glob("*.json")):
        payload = json.loads(path.read_text())
        for i, case in enumerate(payload["cases"]):
            params.append(pytest.param(
                payload["domain"], case,
                id=f"{payload['domain']}-{i}",
            ))
    return params


class TestCorpusReplay:
    def test_corpus_exists_for_every_base_domain(self):
        """Every base domain has a corpus; variant corpora (e.g.
        ``string@bulk``) must name a registered backend so replay
        fails loudly on a stale file.  Variant files are kept even on
        machines where the backend degrades (replay still proves the
        fallback path byte-identical)."""
        from repro.accel.registry import REGISTRY

        found = {p.stem for p in CORPUS_DIR.glob("*.json")}
        assert found >= set(BASE_DOMAINS)
        for stem in found:
            base, backend = split_domain(stem)
            assert base in BASE_DOMAINS
            assert backend is None or backend in REGISTRY.backend_names()

    @pytest.mark.parametrize("domain,case", _corpus_cases())
    def test_corpus_case_passes(self, domain, case):
        run_case(domain, case)

    def test_corpus_cases_are_plain_json(self):
        for path in CORPUS_DIR.glob("*.json"):
            payload = json.loads(path.read_text())
            assert json.loads(json.dumps(payload)) == payload


class TestDeterminism:
    def test_same_seed_identical_report(self):
        first = run_conformance(smoke=True, seed=321, jobs=1)
        second = run_conformance(smoke=True, seed=321, jobs=1)
        assert first.to_dict() == second.to_dict()
        assert conformance_report(first) == conformance_report(second)

    def test_jobs_fanout_matches_serial(self):
        serial = run_conformance(smoke=True, seed=321, jobs=1)
        fanned = run_conformance(smoke=True, seed=321, jobs=2)
        assert serial.to_dict() == fanned.to_dict()

    def test_clean_run_reports_ok(self):
        report = run_conformance(smoke=True, seed=321, jobs=1)
        assert report.ok
        assert report.total_failures == 0
        assert report.total_cases == len(DOMAINS) * report.domains[0].cases
        assert {row["name"] for row in report.invariants} == set(INVARIANTS)

    def test_generation_is_seed_deterministic(self, make_rng):
        for domain in DOMAINS:
            a = [generate_case(domain, make_rng(9, f"g/{domain}"))
                 for _ in range(5)]
            b = [generate_case(domain, make_rng(9, f"g/{domain}"))
                 for _ in range(5)]
            assert a == b


class TestInjectedBugs:
    """Corrupt a kernel, assert the fuzzer catches and shrinks it."""

    def test_hash_value_corruption_caught_and_shrunk(self, monkeypatch):
        original = HardwareHashTable.get

        def corrupted(self, key, base):
            out = original(self, key, base)
            if out.hit and isinstance(out.value_ptr, int):
                return HashOpOutcome(True, value_ptr=out.value_ptr + 1,
                                     cycles=out.cycles)
            return out

        monkeypatch.setattr(HardwareHashTable, "get", corrupted)
        result = fuzz_domain("hash", seed=77, cases=40)
        assert result.failures > 0
        assert result.shrunk
        smallest = result.shrunk[0]["shrunk"]
        # Minimal repro: one SET to plant the value, one GET to read it.
        assert len(smallest) <= 3
        with pytest.raises(ConformanceFailure):
            run_case("hash", smallest)

    def test_string_case_corruption_caught(self, monkeypatch):
        original = StringAccelerator.to_upper

        def corrupted(self, subject):
            out = original(self, subject)
            return type(out)(out.value.swapcase(), out.cycles,
                             out.blocks, out.bytes_processed)

        monkeypatch.setattr(StringAccelerator, "to_upper", corrupted)
        result = fuzz_domain("string", seed=77, cases=60)
        assert result.failures > 0
        smallest = result.shrunk[0]["shrunk"]
        assert len(smallest) <= 2

    def test_oracle_crash_is_a_conformance_failure(self, monkeypatch):
        def explode(self, key, base):
            raise RuntimeError("simulated latch-up")

        monkeypatch.setattr(HardwareHashTable, "get", explode)
        with pytest.raises(ConformanceFailure, match="latch-up"):
            run_case("hash", [["set", "k1", 0, 5], ["get", "k1", 0]])


class TestShrinking:
    def test_shrunk_case_still_fails(self, monkeypatch):
        original = HardwareHashTable.get

        def corrupted(self, key, base):
            out = original(self, key, base)
            if out.hit and isinstance(out.value_ptr, int):
                return HashOpOutcome(True, value_ptr=out.value_ptr + 1,
                                     cycles=out.cycles)
            return out

        monkeypatch.setattr(HardwareHashTable, "get", corrupted)
        rng = DeterministicRng(13).fork("shrink-test")
        for _ in range(200):
            case = generate_case("hash", rng)
            try:
                run_case("hash", case)
            except ConformanceFailure:
                break
        else:
            pytest.fail("no failing case generated")
        small = shrink_case("hash", case)
        assert len(small) <= len(case)
        with pytest.raises(ConformanceFailure):
            run_case("hash", small)
        # Shrunk cases must persist to the corpus as plain JSON.
        assert json.loads(json.dumps(small)) == small

    def test_shrink_passing_case_is_identity(self):
        case = [["set", "k1", 0, 1], ["get", "k1", 0]]
        assert shrink_case("hash", case) == case


class TestInvariantsRegistry:
    def test_unknown_invariant_rejected(self):
        with pytest.raises(ConformanceFailure, match="unknown"):
            run_invariant("no-such-invariant")

    @pytest.mark.parametrize("name", sorted(INVARIANTS))
    def test_invariant_passes_smoke(self, name):
        detail = run_invariant(name, seed=2024, smoke=True)
        assert isinstance(detail, str) and detail


class TestArtifacts:
    def test_clean_report_writes_nothing(self, tmp_path):
        report = run_conformance(smoke=True, seed=321, jobs=1)
        assert write_failure_artifacts(report, tmp_path) is None
        assert not list(tmp_path.iterdir())

    def test_failing_report_persists_shrunk_repros(
        self, tmp_path, monkeypatch
    ):
        original = HardwareHashTable.get

        def corrupted(self, key, base):
            out = original(self, key, base)
            if out.hit and isinstance(out.value_ptr, int):
                return HashOpOutcome(True, value_ptr=out.value_ptr + 1,
                                     cycles=out.cycles)
            return out

        monkeypatch.setattr(HardwareHashTable, "get", corrupted)
        from repro.conformance.fuzzer import ConformanceReport
        report = ConformanceReport(
            seed=77, smoke=True,
            domains=[fuzz_domain("hash", seed=77, cases=40)],
        )
        assert not report.ok
        path = write_failure_artifacts(report, tmp_path)
        assert path is not None
        payload = json.loads(path.read_text())
        assert payload["ok"] is False
        assert payload["domains"][0]["shrunk"]


class TestRegressionBugs:
    """Direct checks for the bugs the fuzzer originally surfaced."""

    def test_ignorecase_negated_class_excludes_both_cases(self):
        from repro.regex.engine import CompiledRegex
        rx = CompiledRegex("(?i)[^a]")
        out = rx.search("aA b")
        assert (out.match.start, out.match.end) == (2, 3)
        assert CompiledRegex("(?i)0[^a]").search("0a").match is None

    def test_nullable_pattern_never_sifted(self):
        from repro.accel.regex_accel import pattern_starts_special
        from repro.regex.engine import CompiledRegex
        assert not pattern_starts_special(CompiledRegex("\\?*"))
        assert not pattern_starts_special(CompiledRegex("\\.{0,0}"))
        # Non-nullable special-start patterns still qualify.
        assert pattern_starts_special(CompiledRegex("<[a-z]+"))
