"""Integration tests: workload fidelity anchors hold for every app."""

from __future__ import annotations

import pytest

from repro.workloads.apps import php_applications
from repro.workloads.validation import Anchor, fidelity_failures, validate_app


class TestAnchor:
    def test_ok_band(self):
        assert Anchor("x", "s", 0.5, 0.4, 0.6).ok
        assert not Anchor("x", "s", 0.39, 0.4, 0.6).ok
        assert Anchor("x", "s", 0.4, 0.4, 0.6).ok  # inclusive


@pytest.mark.parametrize(
    "app", php_applications(), ids=lambda a: a.name
)
class TestAllAnchorsHold:
    def test_scorecard_clean(self, app):
        anchors = validate_app(app, requests=3)
        failures = fidelity_failures(anchors)
        assert not failures, [
            (a.name, a.measured, a.low, a.high) for a in failures
        ]

    def test_every_anchor_present(self, app):
        names = {a.name for a in validate_app(app, requests=2)}
        assert {
            "branch fraction", "SET share", "keys ≤ 24 B",
            "allocations ≤ 128 B", "special-segment density",
            "hottest function share", "top-100 function share",
            "post-mitigation time", "four-category share",
        } == names
