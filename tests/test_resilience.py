"""Unit + integration tests: fault injection and resilience policies."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.rng import DeterministicRng
from repro.isa import AcceleratorComplex
from repro.isa.multicore import MulticoreSystem
from repro.resilience import (
    ACCEL_FAULT_KINDS,
    CircuitBreaker,
    CircuitBreakerPolicy,
    FaultInjector,
    FaultScenario,
    ResiliencePolicy,
    ResilientServerConfig,
    ResilientServerSimulator,
    RetryPolicy,
    full_policy,
    no_policy,
    retries_only,
    run_matrix,
    standard_policies,
    standard_scenarios,
)
from repro.runtime.phparray import PhpArray

ACCEL = [80.0, 100.0, 120.0]
SOFT = [130.0, 160.0, 190.0]


def make_sim(scenario=None, policy=None, seed=7, **cfg_kwargs):
    cfg_kwargs.setdefault("workers", 4)
    cfg_kwargs.setdefault("requests", 800)
    cfg_kwargs.setdefault("warmup_requests", 20)
    cfg_kwargs.setdefault("offered_load", 0.6)
    return ResilientServerSimulator(
        ACCEL, SOFT,
        scenario or FaultScenario("test"),
        policy or no_policy(),
        ResilientServerConfig(**cfg_kwargs),
        DeterministicRng(seed),
    )


class TestFaultScenario:
    def test_rejects_bad_fault_rate(self):
        with pytest.raises(ValueError):
            FaultScenario(accel_fault_rate=1.0)
        with pytest.raises(ValueError):
            FaultScenario(accel_fault_rate=-0.1)

    def test_rejects_bad_straggler_knobs(self):
        with pytest.raises(ValueError):
            FaultScenario(straggler_probability=2.0)
        with pytest.raises(ValueError):
            FaultScenario(straggler_multiplier=0.5)

    def test_rejects_bad_crash_knobs(self):
        with pytest.raises(ValueError):
            FaultScenario(crash_mtbf_services=-1.0)
        with pytest.raises(ValueError):
            FaultScenario(crash_downtime_services=0.0)

    def test_standard_scenarios_start_fault_free(self):
        scenarios = standard_scenarios()
        first = scenarios[0]
        assert first.accel_fault_rate == 0.0
        assert first.crash_mtbf_services == 0.0
        assert first.straggler_probability == 0.0
        assert len({s.name for s in scenarios}) == len(scenarios)


class TestFaultInjector:
    def make_injector(self, seed=5, **kwargs):
        scenario = FaultScenario("t", **kwargs)
        return FaultInjector(
            scenario, DeterministicRng(seed), mean_service_cycles=100.0
        )

    def test_schedule_deterministic(self):
        a = self.make_injector(accel_fault_rate=0.1,
                               crash_mtbf_services=300.0)
        b = self.make_injector(accel_fault_rate=0.1,
                               crash_mtbf_services=300.0)
        sched_a = a.schedule(1_000_000.0, workers=4)
        sched_b = b.schedule(1_000_000.0, workers=4)
        assert sched_a.windows == sched_b.windows
        assert sched_a.crashes == sched_b.crashes

    def test_different_seeds_differ(self):
        a = self.make_injector(seed=1, accel_fault_rate=0.1)
        b = self.make_injector(seed=2, accel_fault_rate=0.1)
        assert (a.schedule(1_000_000.0, 4).windows
                != b.schedule(1_000_000.0, 4).windows)

    def test_duty_cycle_tracks_fault_rate(self):
        inj = self.make_injector(accel_fault_rate=0.10)
        sched = inj.schedule(5_000_000.0, workers=4)
        duty = sched.degraded_time() / sched.horizon
        assert 0.05 < duty < 0.18

    def test_fault_kinds_cycle_through_all_units(self):
        inj = self.make_injector(accel_fault_rate=0.3)
        sched = inj.schedule(2_000_000.0, workers=4)
        kinds = [w.kind for w in sched.windows]
        assert set(kinds) == set(ACCEL_FAULT_KINDS)
        # Round-robin: the first four windows hit four distinct units.
        assert len(set(kinds[:4])) == 4

    def test_faulted_at_window_boundaries(self):
        inj = self.make_injector(accel_fault_rate=0.1)
        sched = inj.schedule(1_000_000.0, workers=4)
        w = sched.windows[0]
        assert sched.faulted_at(w.start) is w
        assert sched.faulted_at(w.end - 1.0) is w
        assert sched.faulted_at(w.end) is None
        assert sched.faulted_at(w.start - 1.0) is None

    def test_fault_free_schedule_is_empty(self):
        sched = self.make_injector().schedule(1_000_000.0, workers=4)
        assert sched.windows == []
        assert sched.crashes == []
        assert sched.faulted_at(500.0) is None

    def test_crashes_pick_valid_workers(self):
        inj = self.make_injector(crash_mtbf_services=100.0)
        sched = inj.schedule(2_000_000.0, workers=3)
        assert sched.crashes
        assert all(0 <= c.worker < 3 for c in sched.crashes)

    def test_straggler_multiplier_values(self):
        inj = self.make_injector(straggler_probability=0.5,
                                 straggler_multiplier=6.0)
        draws = {inj.straggler_multiplier() for _ in range(200)}
        assert draws == {1.0, 6.0}


class TestRetryPolicy:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_services=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_services=10.0,
                        max_backoff_services=1.0)

    def test_backoff_stays_within_bounds(self):
        policy = RetryPolicy(base_backoff_services=0.5,
                             max_backoff_services=8.0)
        rng = DeterministicRng(11)
        previous = 0.0
        for _ in range(500):
            previous = policy.next_backoff(previous, rng)
            assert 0.5 <= previous <= 8.0

    def test_backoff_grows_in_expectation(self):
        policy = RetryPolicy(base_backoff_services=1.0,
                             max_backoff_services=1e9)
        rng = DeterministicRng(11)
        firsts, thirds = [], []
        for _ in range(300):
            b1 = policy.next_backoff(0.0, rng)
            b2 = policy.next_backoff(b1, rng)
            b3 = policy.next_backoff(b2, rng)
            firsts.append(b1)
            thirds.append(b3)
        assert (sum(thirds) / len(thirds)) > (sum(firsts) / len(firsts))


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=5.0, probes=2):
        return CircuitBreaker(
            CircuitBreakerPolicy(
                failure_threshold=threshold, cooldown_services=cooldown,
                probe_successes=probes,
            ),
            mean_service_cycles=100.0,
        )

    def test_trips_after_consecutive_failures(self):
        cb = self.make(threshold=3)
        assert not cb.record_failure(0.0)
        assert not cb.record_failure(1.0)
        assert cb.record_failure(2.0)
        assert cb.state == "open"
        assert cb.trips == 1

    def test_success_resets_failure_streak(self):
        cb = self.make(threshold=3)
        cb.record_failure(0.0)
        cb.record_failure(1.0)
        cb.record_success(2.0)
        assert not cb.record_failure(3.0)
        assert cb.state == "closed"

    def test_open_blocks_until_cooldown(self):
        cb = self.make(threshold=1, cooldown=5.0)  # 500 cycles
        cb.record_failure(1_000.0)
        assert not cb.allow_accelerated(1_100.0)
        assert cb.allow_accelerated(1_500.0)       # half-open probe
        assert cb.state == "half_open"

    def test_half_open_closes_after_probe_successes(self):
        cb = self.make(threshold=1, cooldown=5.0, probes=2)
        cb.record_failure(0.0)
        cb.allow_accelerated(500.0)
        assert not cb.record_success(600.0)
        assert cb.record_success(700.0)
        assert cb.state == "closed"

    def test_half_open_failure_retrips(self):
        cb = self.make(threshold=1, cooldown=5.0)
        cb.record_failure(0.0)
        cb.allow_accelerated(500.0)
        assert cb.record_failure(600.0)
        assert cb.state == "open"
        assert cb.trips == 2
        assert not cb.allow_accelerated(700.0)


class TestPolicyValidation:
    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(timeout_service_multiple=0.0)

    def test_rejects_bad_queue_bound(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_queue=0)

    def test_standard_policies_shape(self):
        names = [p.name for p in standard_policies()]
        assert names == ["no-policy", "retries", "retries+breaker"]
        assert no_policy().retry is None
        assert retries_only().breaker is None
        assert full_policy().breaker is not None
        assert full_policy().max_queue is not None


class TestAcceleratorFaultHooks:
    def test_hash_storm_preserves_dirty_values(self, complex_):
        """The storm uses the stale-flag writeback protocol: every
        dirty entry lands in the software map before invalidation."""
        array = PhpArray(base_address=0xAB00)
        complex_.register_map(array)
        for i in range(6):
            complex_.hash_table.set(f"k{i}", array.base_address, f"v{i}")
        affected = complex_.inject_fault("hash_storm")
        assert affected > 0
        assert complex_.hash_table.occupancy() == 0
        for i in range(6):
            assert array.get(f"k{i}") == f"v{i}"
        stats = complex_.hash_table.stats
        assert stats.get("hwhash.fault_storms") == 1
        assert stats.get("hwhash.fault_dirty_writebacks") > 0

    def test_heap_outage_routes_to_software_and_repairs(self, complex_):
        hm = complex_.heap_manager
        hm.hmmalloc(32)  # warm the free lists via the prefetcher
        complex_.inject_fault("heap_outage")
        assert hm.cached_blocks() == 0   # hmflush on the way down: no leaks
        out = hm.hmmalloc(32)
        assert out.software_fallback
        assert hm.stats.get("hwheap.fault_bypasses") >= 1
        complex_.inject_fault("heap_repair")
        assert not hm.faulted
        assert hm.stats.get("hwheap.fault_repairs") == 1

    def test_reuse_flush_drops_entries(self, complex_):
        complex_.reuse_table.regexlookup(1, 1, "hello world")
        dropped = complex_.inject_fault("reuse_flush")
        assert dropped >= 1
        assert complex_.reuse_table.stats.get("reuse.fault_flushes") == 1

    def test_string_config_loss_counts(self, complex_):
        complex_.inject_fault("string_config_loss")
        assert (complex_.string.stats.get("hwstring.fault_config_losses")
                == 1)

    def test_unknown_fault_kind_raises(self, complex_):
        with pytest.raises(ValueError):
            complex_.inject_fault("cosmic_ray")

    def test_every_scheduled_kind_is_injectable(self, complex_):
        for kind in ACCEL_FAULT_KINDS:
            complex_.inject_fault(kind)
        assert complex_.stats.get("complex.faults_injected") == len(
            ACCEL_FAULT_KINDS
        )


class TestCoreCrash:
    def test_crash_releases_ownership_and_counts_damage(self):
        sys = MulticoreSystem(cores=2)
        shared = sys.new_shared_map()
        for i in range(8):
            sys.hash_set(0, shared, f"k{i}", f"v{i}")
        damage = sys.crash_core(0)
        assert damage["maps_released"] == 1
        assert damage["dirty_entries_lost"] > 0
        assert sys.stats.get("multicore.crashes") == 1
        # The surviving core re-acquires the map; software state is
        # stale for lost dirty entries but the system keeps serving.
        sys.hash_set(1, shared, "after", "crash")
        assert sys.hash_get(1, shared, "after") == "crash"

    def test_restart_brings_core_back_cold(self):
        sys = MulticoreSystem(cores=2)
        shared = sys.new_shared_map()
        sys.hash_set(0, shared, "k", "v")
        sys.crash_core(0)
        sys.restart_core(0)
        assert sys.stats.get("multicore.restarts") == 1
        sys.hash_set(0, shared, "k2", "v2")
        assert sys.hash_get(0, shared, "k2") == "v2"


class TestResilientSimulator:
    def test_run_is_deterministic(self):
        a = make_sim(FaultScenario("f", accel_fault_rate=0.1),
                     full_policy()).run()
        b = make_sim(FaultScenario("f", accel_fault_rate=0.1),
                     full_policy()).run()
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ResilientServerSimulator([], SOFT, FaultScenario(), no_policy())
        with pytest.raises(ValueError):
            ResilientServerSimulator(ACCEL, [0.0], FaultScenario(),
                                     no_policy())
        with pytest.raises(ValueError):
            ResilientServerConfig(workers=0)
        with pytest.raises(ValueError):
            ResilientServerConfig(requests=0)
        with pytest.raises(ValueError):
            ResilientServerConfig(warmup_requests=-1)
        with pytest.raises(ValueError):
            ResilientServerConfig(offered_load=0.0)

    def test_fault_free_no_policy_serves_everything(self):
        report = make_sim().run()
        assert report.offered == 800
        assert report.succeeded == 800
        assert report.failed == 0
        assert report.shed == 0
        assert report.availability == 1.0
        assert report.retry_amplification == 1.0

    def test_warmup_excluded_from_reporting(self):
        report = make_sim(requests=400, warmup_requests=100).run()
        assert report.offered == 400
        assert report.succeeded + report.failed + report.shed == 400

    def test_faults_cost_availability_without_policy(self):
        report = make_sim(
            FaultScenario("f", accel_fault_rate=0.1), no_policy()
        ).run()
        assert report.faulted_attempts > 0
        assert report.failed > 0
        assert report.availability < 1.0
        assert report.wasted_cycles > 0.0

    def test_retries_recover_availability(self):
        scenario = FaultScenario("f", accel_fault_rate=0.1)
        bare = make_sim(scenario, no_policy()).run()
        retried = make_sim(scenario, retries_only()).run()
        assert retried.availability > bare.availability
        assert retried.retry_amplification > 1.0

    def test_goodput_acceptance_bar(self):
        """The ISSUE's acceptance criterion: retries + breaker hold
        goodput at a 10 % accelerator-fault rate within 15 % of the
        fault-free baseline; doing nothing degrades materially."""
        scenario = FaultScenario("f", accel_fault_rate=0.1)
        kwargs = dict(requests=2_500, warmup_requests=50)
        faultfree = make_sim(FaultScenario("clean"), full_policy(),
                             **kwargs).run()
        protected = make_sim(scenario, full_policy(), **kwargs).run()
        bare = make_sim(scenario, no_policy(), **kwargs).run()
        assert protected.goodput_vs(faultfree) >= 0.85
        assert bare.availability < protected.availability
        assert bare.goodput_per_kcycle < protected.goodput_per_kcycle

    def test_breaker_recosts_onto_software_path(self):
        """A tripped breaker re-routes to the software distribution and
        mirrors the transition onto a wired AcceleratorComplex, visible
        through its StatRegistry counters."""
        complex_ = AcceleratorComplex()
        sim = ResilientServerSimulator(
            ACCEL, SOFT,
            FaultScenario("f", accel_fault_rate=0.15),
            full_policy(),
            ResilientServerConfig(workers=4, requests=2_000,
                                  warmup_requests=20, offered_load=0.6),
            DeterministicRng(7),
            complex_=complex_,
        )
        report = sim.run()
        assert report.breaker_trips > 0
        assert report.software_path_attempts > 0
        assert 0.0 < report.software_path_share < 1.0
        stats = complex_.stats
        assert stats.get("complex.breaker_trips") == report.breaker_trips
        assert (stats.get("complex.software_path_requests")
                >= report.software_path_attempts)
        assert stats.get("complex.breaker_resets") > 0
        assert sim.stats.get("resilience.breaker_trips") \
            == report.breaker_trips

    def test_admission_control_sheds_under_overload(self):
        policy = ResiliencePolicy(name="tiny-queue", max_queue=2)
        report = make_sim(
            FaultScenario("clean"), policy, offered_load=1.4,
            requests=1_000,
        ).run()
        assert report.shed > 0
        assert report.shed + report.succeeded + report.failed == 1_000

    def test_timeouts_abandon_queued_requests(self):
        policy = ResiliencePolicy(name="strict-timeout",
                                  timeout_service_multiple=1.5)
        report = make_sim(
            FaultScenario("clean"), policy, offered_load=1.3,
            requests=1_000,
        ).run()
        assert report.timeouts > 0
        assert report.failed > 0

    def test_worker_crashes_kill_inflight_attempts(self):
        scenario = FaultScenario("crashy", crash_mtbf_services=150.0,
                                 crash_downtime_services=50.0)
        sim = make_sim(scenario, retries_only(), requests=1_500)
        report = sim.run()
        assert sim.stats.get("resilience.worker_crashes") > 0
        assert sim.stats.get("resilience.crash_kills") > 0
        assert sim.stats.get("resilience.worker_repairs") > 0
        assert report.availability > 0.99   # retries absorb the kills

    def test_stragglers_fatten_the_tail(self):
        clean = make_sim(FaultScenario("clean"), seed=9).run()
        slow = make_sim(
            FaultScenario("straggly", straggler_probability=0.05,
                          straggler_multiplier=8.0),
            seed=9,
        ).run()
        assert slow.p999_latency > clean.p999_latency


class TestRunMatrix:
    def test_matrix_deterministic(self):
        cfg = ResilientServerConfig(workers=4, requests=500,
                                    warmup_requests=10)
        a = run_matrix(ACCEL, SOFT, standard_scenarios(),
                       standard_policies(), cfg, seed=3)
        b = run_matrix(ACCEL, SOFT, standard_scenarios(),
                       standard_policies(), cfg, seed=3)
        assert ([dataclasses.asdict(r) for r in a]
                == [dataclasses.asdict(r) for r in b])

    def test_policies_share_fault_schedules_within_scenario(self):
        """All policies of one scenario face the same environment, so
        the no-policy and retries rows see identical faulted attempts
        in a scenario without retried (schedule-shifting) work — the
        fault-free rows must be exactly identical."""
        cfg = ResilientServerConfig(workers=4, requests=500,
                                    warmup_requests=10)
        reports = run_matrix(
            ACCEL, SOFT, [FaultScenario("fault-free")],
            standard_policies(), cfg, seed=3,
        )
        base = dataclasses.asdict(reports[0])
        for r in reports[1:]:
            d = dataclasses.asdict(r)
            assert d["succeeded"] == base["succeeded"]
            assert d["p99_latency"] == base["p99_latency"]

    def test_matrix_covers_all_cells(self):
        cfg = ResilientServerConfig(workers=2, requests=200)
        scenarios = standard_scenarios()[:2]
        policies = standard_policies()
        reports = run_matrix(ACCEL, SOFT, scenarios, policies, cfg, seed=3)
        cells = {(r.scenario, r.policy) for r in reports}
        assert cells == {(s.name, p.name)
                        for s in scenarios for p in policies}
