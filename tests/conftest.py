"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.isa.dispatch import AcceleratorComplex


@pytest.fixture
def rng() -> DeterministicRng:
    """A fresh deterministic stream per test."""
    return DeterministicRng(1234)


@pytest.fixture
def complex_() -> AcceleratorComplex:
    """A fresh accelerator complex per test."""
    return AcceleratorComplex()
