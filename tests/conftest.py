"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.isa.dispatch import AcceleratorComplex


@pytest.fixture
def rng() -> DeterministicRng:
    """A fresh deterministic stream per test."""
    return DeterministicRng(1234)


@pytest.fixture
def make_rng():
    """Factory for independent seeded streams within one test.

    Tests that drive two models side by side (optimized vs reference,
    model vs oracle) need *identical* input streams for both; calling
    ``make_rng(seed)`` twice with the same seed returns two streams
    that replay the same draws.
    """
    def factory(seed: int, label: str = "") -> DeterministicRng:
        stream = DeterministicRng(seed)
        return stream.fork(label) if label else stream
    return factory


@pytest.fixture
def reference_kernels():
    """Run the test body on the pre-optimization (seed) kernels.

    Wraps :func:`repro.accel.reference.reference_mode`: the optimized
    string/hash/regex kernels are patched back to their reference
    versions and every memo layer is disabled for the duration of the
    test.
    """
    from repro.accel.reference import reference_mode
    with reference_mode():
        yield


@pytest.fixture
def complex_() -> AcceleratorComplex:
    """A fresh accelerator complex per test."""
    return AcceleratorComplex()
