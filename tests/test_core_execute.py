"""Integration tests: accelerated execution ≡ software execution.

The paper's design principles require the accelerators to be drop-in:
"the VM still observes the same view of software data structures in
memory."  These tests run identical operation traces through both
paths and assert semantic equivalence (checksums over every observable
result) plus the expected cost relationships.
"""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.core.costs import DEFAULT_COSTS
from repro.core.execute import (
    HashSimulator,
    HeapSimulator,
    RegexSimulator,
    StringSimulator,
)
from repro.isa.dispatch import AcceleratorComplex
from repro.workloads.apps import wordpress
from repro.workloads.loadgen import LoadGenerator


def _traces(n: int = 3, seed: int = 99):
    lg = LoadGenerator(wordpress(), DeterministicRng(seed), warmup_requests=0)
    return lg, [lg.next_request() for _ in range(n)]


class TestHashEquivalence:
    def _run(self, mode, complex_=None, seed=99):
        lg = LoadGenerator(
            wordpress(), DeterministicRng(seed), warmup_requests=0
        )
        sim = HashSimulator(mode, lg.hash_generator, DEFAULT_COSTS, complex_)
        for _ in range(3):
            sim.execute(lg.next_request().hash_ops)
        return sim

    def test_checksums_match(self):
        sw = self._run("software")
        hw = self._run("accelerated", AcceleratorComplex())
        assert sw.run.checksum == hw.run.checksum

    def test_accelerated_is_cheaper(self):
        sw = self._run("software").finish()
        hw = self._run("accelerated", AcceleratorComplex()).finish()
        assert hw.cycles < sw.cycles
        assert hw.uops < sw.uops

    def test_software_maps_match_after_flush(self):
        """After flushing hardware state, memory views are identical."""
        complex_ = AcceleratorComplex()
        sw = self._run("software")
        hw = self._run("accelerated", complex_)
        for map_id, hw_array in hw.maps.items():
            complex_.hash_table.flush_map(hw_array.base_address)
        for map_id, sw_array in sw.maps.items():
            hw_array = hw.maps[map_id]
            assert sorted(sw_array.keys()) == sorted(hw_array.keys()), map_id
            for key in sw_array.keys():
                assert sw_array.get(key) == hw_array.get(key)

    def test_walk_cost_calibration(self):
        """§5.2: software hash walks average ≈ 90.66 µops."""
        sw = self._run("software")
        sw.finish()
        assert sw.average_walk_uops() == pytest.approx(90.66, rel=0.05)

    def test_hit_rate_in_paper_band(self):
        """Figure 7: a 512-entry table sits in the ~80–90% band."""
        complex_ = AcceleratorComplex()
        self._run("accelerated", complex_)
        assert 0.75 <= complex_.hash_table.hit_rate() <= 0.95

    def test_mode_validation(self):
        lg, _ = _traces()
        with pytest.raises(ValueError):
            HashSimulator("turbo", lg.hash_generator)
        with pytest.raises(ValueError):
            HashSimulator("accelerated", lg.hash_generator)


class TestHeapEquivalence:
    def _run(self, mode, complex_=None, seed=99):
        lg = LoadGenerator(
            wordpress(), DeterministicRng(seed), warmup_requests=0
        )
        sim = HeapSimulator(mode, DEFAULT_COSTS, complex_)
        for _ in range(3):
            sim.execute(lg.next_request().alloc_ops)
        return sim

    def test_checksums_match(self):
        sw = self._run("software")
        hw = self._run("accelerated", AcceleratorComplex())
        assert sw.run.checksum == hw.run.checksum

    def test_no_leaks_either_mode(self):
        sw = self._run("software")
        hw = self._run("accelerated", AcceleratorComplex())
        assert sw.live_allocations == 0
        assert hw.live_allocations == 0

    def test_accelerated_is_cheaper(self):
        sw = self._run("software").finish()
        hw = self._run("accelerated", AcceleratorComplex()).finish()
        assert hw.cycles < sw.cycles

    def test_hit_rate_very_high(self):
        """Strong reuse ⇒ the hardware lists serve almost everything."""
        complex_ = AcceleratorComplex()
        self._run("accelerated", complex_)
        assert complex_.heap_manager.hit_rate() > 0.9


class TestStringEquivalence:
    def _run(self, mode, complex_=None, seed=99):
        lg = LoadGenerator(
            wordpress(), DeterministicRng(seed), warmup_requests=0
        )
        sim = StringSimulator(mode, DEFAULT_COSTS, complex_)
        for _ in range(2):
            sim.execute(lg.next_request().str_ops)
        return sim

    def test_checksums_match(self):
        """Every string result is identical byte for byte."""
        sw = self._run("software")
        hw = self._run("accelerated", AcceleratorComplex())
        assert sw.run.checksum == hw.run.checksum

    def test_accelerated_is_cheaper(self):
        sw = self._run("software").finish()
        hw = self._run("accelerated", AcceleratorComplex()).finish()
        assert hw.cycles < sw.cycles


class TestRegexEquivalence:
    def _sims(self, seed=99):
        def run(mode, complex_=None):
            lg = LoadGenerator(
                wordpress(), DeterministicRng(seed), warmup_requests=0
            )
            sim = RegexSimulator(mode, DEFAULT_COSTS, complex_)
            for _ in range(2):
                trace = lg.next_request()
                sim.execute_reuse(trace.reuse_tasks)
            return sim
        return run("software"), run("accelerated", AcceleratorComplex())

    def test_reuse_results_match(self):
        sw, hw = self._sims()
        assert sw.run.checksum == hw.run.checksum

    def test_reuse_skips_work(self):
        sw, hw = self._sims()
        assert hw.run.uops < sw.run.uops
        assert hw.chars_skipped_reuse > 0

    def test_sift_nonmutating_matches(self):
        """Non-mutating sets produce identical match counts."""
        from repro.workloads.regexops import SiftTask, SHORTCODE_SET
        from repro.workloads.text import ContentSpec, TextCorpus
        corpus = TextCorpus(DeterministicRng(7))
        tasks = [
            SiftTask(SHORTCODE_SET, corpus.post(ContentSpec()))
            for _ in range(4)
        ]
        sw = RegexSimulator("software", DEFAULT_COSTS)
        hw = RegexSimulator("accelerated", DEFAULT_COSTS, AcceleratorComplex())
        sw.execute_sift(tasks)
        hw.execute_sift(tasks)
        assert sw.run.checksum == hw.run.checksum
        assert hw.run.uops < sw.run.uops

    def test_sifting_skips_content(self):
        lg = LoadGenerator(
            wordpress(), DeterministicRng(99), warmup_requests=0
        )
        hw = RegexSimulator("accelerated", DEFAULT_COSTS, AcceleratorComplex())
        for _ in range(2):
            trace = lg.next_request()
            hw.execute_sift(trace.sift_tasks)
        assert hw.chars_skipped_sifting > 0
        assert 0.0 < hw.skip_fraction() < 1.0
