"""Compatibility shim for environments without PEP 660 support.

``pip install -e . --no-build-isolation`` uses pyproject.toml; this
file additionally enables ``python setup.py develop`` on toolchains
that lack the ``wheel`` package (as some offline sandboxes do).
"""

from setuptools import setup

setup()
