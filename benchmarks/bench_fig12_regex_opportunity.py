"""Figure 12: content sifting + content reuse opportunity per app.

Paper: the y-axis is "the percentage of total textual content in the
entire application regexps can skip processing using content sifting
or content reuse" — substantial for all three applications (Drupal's
high skippability famously fails to become speedup because its regexp
*time* share is tiny; Figure 15 shows that side).
"""

from __future__ import annotations

from conftest import EVAL_REQUESTS

from repro.core.experiment import regex_opportunity
from repro.core.report import format_table, pct


def bench_fig12_opportunity(benchmark, report_sink):
    opportunity = benchmark.pedantic(
        lambda: regex_opportunity(requests=EVAL_REQUESTS),
        rounds=1, iterations=1,
    )
    report_sink(
        "fig12_regex_opportunity",
        format_table(
            ["app", "content skippable (sifting + reuse)"],
            [[app, pct(frac)] for app, frac in opportunity.items()],
            title="Figure 12: regexp content-filtering opportunity",
        ),
    )
    for app, frac in opportunity.items():
        assert 0.15 <= frac <= 0.85, app
