"""Section 5.1/5.2: accelerator area budget and CPU energy savings.

Paper: combined accelerator area 0.22 mm² (0.89 % of a 24.7 mm²
Nehalem-class core); energy savings 26.06 % (WordPress), 16.75 %
(Drupal), 19.81 % (MediaWiki), 21.01 % average, using
dynamic-instruction reduction as the proxy.
"""

from __future__ import annotations

from conftest import EVAL_REQUESTS

from repro.core.experiment import full_evaluation
from repro.core.report import energy_report, format_table, pct
from repro.power.area import accelerator_area_report


def bench_area_budget(benchmark, report_sink):
    report = benchmark(accelerator_area_report)
    rows = [[name, f"{mm2:.4f}"] for name, mm2 in report.rows()]
    rows.append(["TOTAL", f"{report.total_mm2:.4f}"])
    rows.append(["fraction of Nehalem core", pct(report.core_fraction)])
    report_sink(
        "area_budget",
        format_table(
            ["structure", "area (mm², 45 nm)"], rows,
            title="Section 5.1: accelerator area "
                  "(paper: 0.22 mm² total, 0.89 % of a 24.7 mm² core)",
        ),
    )
    assert abs(report.total_mm2 - 0.22) < 0.04
    assert report.core_fraction < 0.012


def bench_energy_savings(benchmark, report_sink):
    results = benchmark.pedantic(
        lambda: full_evaluation(requests=EVAL_REQUESTS),
        rounds=1, iterations=1,
    )
    report_sink("energy_savings", energy_report(results))

    e = {r.app: r.energy_saving for r in results}
    # Paper ordering: WordPress (26.06) > MediaWiki (19.81) > Drupal (16.75).
    assert e["wordpress"] > e["mediawiki"] > e["drupal"]
    avg = sum(e.values()) / len(e)
    assert 0.15 <= avg <= 0.30  # paper: 21.01 %
