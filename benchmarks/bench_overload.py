"""Overload resilience: the metastable-failure demo as a benchmark.

Not a paper figure — this runs the paper's fleet economics argument
into its failure mode: a flash crowd plus synchronized client retries
pushes an undefended fleet into a *metastable* state (saturation that
outlives its trigger, Bronson et al. HotOS'21), while the defended
configuration — retry budgets, decorrelated jitter, bounded queues,
deadline shedding, AIMD concurrency, and a stampede-proof cache —
rides out the identical storm and recovers within one trigger
duration.  The acceptance bars here are the PR's headline claims:

* undefended: goodput stays below 50% of the pre-trigger level for at
  least ``metastable_factor`` (5x) trigger durations after the flash
  ends — in practice it never recovers inside the horizon;
* defended: goodput back at the 95% recovery SLO within **one**
  trigger duration of the flash ending;
* the node-count price: against the same absolute storm, the
  undefended fleet needs strictly more boxes to survive.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.report import (
    format_table,
    overload_report,
    overload_timeline,
)
from repro.fleet import (
    defended_config,
    headline_scenarios,
    min_nodes_to_survive,
    overload_topology,
    run_overload_matrix,
    undefended_config,
)

SEED = 17

#: Absolute storm rate (requests per mean service time) for the
#: fleet-sizing sweep — pinned so every node count faces the same
#: traffic instead of a load fraction that scales with the fleet.
STORM_RATE = 5.6


def bench_overload_demo(benchmark, report_sink):
    def run():
        topology = overload_topology()
        reports = run_overload_matrix(
            topology, headline_scenarios(), seed=SEED
        )
        need = {
            name: min_nodes_to_survive(
                lambda n: overload_topology(nodes=n),
                replace(cfg, arrival_rate=STORM_RATE),
                seed=SEED,
            )
            for name, cfg in (
                ("undefended", undefended_config()),
                ("defended", defended_config()),
            )
        }
        return reports, need

    reports, need = benchmark.pedantic(run, rounds=1, iterations=1)
    by_name = {r.scenario: r for r in reports}

    sizing = format_table(
        ["scenario", "min nodes to ride out the storm"],
        [[name, str(n) if n is not None else "> 8"]
         for name, n in need.items()],
        title=f"Fleet sizing vs the same absolute storm "
              f"(rate {STORM_RATE} req/svc)",
    )
    timelines = "\n".join(overload_timeline(r) for r in reports)
    report_sink(
        "overload",
        overload_report(reports) + "\n\n" + timelines + "\n\n" + sizing,
    )

    undef = by_name["undefended"]
    defended = by_name["defended"]
    flash = undef.flash_end_services - undef.flash_start_services

    # Both runs were healthy before the trigger: the collapse is the
    # storm's doing, not an undersized fleet.
    assert undef.pre_trigger_goodput >= 0.9
    assert defended.pre_trigger_goodput >= 0.9

    # Undefended: metastable.  Goodput never sustains even 50% of the
    # pre-trigger level within 5 trigger durations of the flash ending
    # (half_recovery_services is None when it never happens at all).
    assert undef.metastable
    assert (
        undef.half_recovery_services is None
        or undef.half_recovery_services >= 5.0 * flash
    )
    # The sustaining loop is visible in the counters: retries amplify
    # load and the fleet burns capacity on zombie renders.
    assert undef.amplification > 1.5
    assert undef.zombies > 0

    # Defended: same storm, recovered to the 95% SLO within one
    # trigger duration.
    assert not defended.metastable
    assert defended.recovery_services is not None
    assert defended.recovery_services <= flash
    # The defenses, not luck: budget denials, shed load, stampede
    # saves (stale serves + coalesced waiters) all engaged.
    assert defended.retries_denied > 0
    assert defended.shed + defended.shed_expired > 0
    assert defended.stale_served + defended.coalesced > 0
    assert defended.goodput_ratio > undef.goodput_ratio

    # The node-count cost of skipping the defenses.
    assert need["defended"] is not None
    assert need["undefended"] is None or (
        need["undefended"] > need["defended"]
    )
