"""Figure 14: execution time normalized to unmodified HHVM.

Paper: prior optimizations bring the average to ≈88.15 %; adding the
four accelerators brings it to ≈70.22 % (a 17.93-point improvement,
19.79 % relative to the optimized baseline).  Drupal benefits least.

Also regenerates the Section 5.2 µop anchors (malloc 69, free 37, hash
walk 90.66).
"""

from __future__ import annotations

from conftest import EVAL_REQUESTS

from repro.core.experiment import full_evaluation
from repro.core.report import figure14_report, format_table


def bench_fig14_speedup(benchmark, report_sink):
    results = benchmark.pedantic(
        lambda: full_evaluation(requests=EVAL_REQUESTS),
        rounds=1, iterations=1,
    )
    report_sink("fig14_speedup", figure14_report(results))

    by_name = {r.app: r for r in results}
    priors_avg = sum(r.time_with_priors for r in results) / len(results)
    final_avg = sum(r.time_with_accelerators for r in results) / len(results)
    assert abs(priors_avg - 0.8815) < 0.02
    assert abs(final_avg - 0.7022) < 0.025
    assert by_name["drupal"].accel_benefit_total == min(
        r.accel_benefit_total for r in results
    )

    # Section 5.2 µop anchors.
    walk = sum(r.average_walk_uops for r in results) / len(results)
    report_sink(
        "sec52_uop_anchors",
        format_table(
            ["metric", "measured", "paper"],
            [
                ["software hash walk µops", f"{walk:.2f}", "90.66"],
                ["software malloc µops", "69 (model constant)", "69"],
                ["software free µops", "37 (model constant)", "37"],
            ],
            title="Section 5.2: software-path µop costs",
        ),
    )
    assert abs(walk - 90.66) < 5.0
