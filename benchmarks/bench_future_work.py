"""Future-work benches: the SLB data-dependent-branch predictor the
paper points to ([35]) and the introduction's datacenter framing.
"""

from __future__ import annotations

from conftest import EVAL_REQUESTS

from repro.core.report import format_table, pct
from repro.core.throughput import fleet_summary, throughput_analysis
from repro.uarch.slb import measure_slb_headroom
from repro.uarch.trace import TraceProfile


def bench_slb_headroom(benchmark, report_sink):
    profile = TraceProfile(instructions=200_000)
    result = benchmark.pedantic(
        lambda: measure_slb_headroom(profile), rounds=1, iterations=1
    )
    report_sink(
        "future_slb",
        format_table(
            ["metric", "value"],
            [
                ["TAGE MPKI", f"{result['tage_mpki']:.2f}"],
                ["TAGE + SLB MPKI", f"{result['slb_mpki']:.2f}"],
                ["MPKI improvement", pct(result["improvement"])],
                ["SLB queue hit rate", pct(result["queue_hit_rate"])],
            ],
            title="Future work (§2, ref [35]): SLB prediction of "
                  "data-dependent branches",
        ),
    )
    assert result["slb_mpki"] < result["tage_mpki"]


def bench_fleet_throughput(benchmark, report_sink):
    def run():
        analysis = throughput_analysis(requests=EVAL_REQUESTS)
        return analysis, fleet_summary(analysis)

    analysis, summary = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [t.app, f"{t.baseline_rps:.1f}", f"{t.accelerated_rps:.1f}",
         pct(t.capacity_gain)]
        for t in analysis
    ]
    rows.append([
        "fleet (1M rps)",
        f"{summary['baseline_cores']:.0f} cores",
        f"{summary['accelerated_cores']:.0f} cores",
        pct(summary["fleet_reduction"]),
    ])
    report_sink(
        "future_fleet",
        format_table(
            ["app", "baseline", "accelerated", "gain"], rows,
            title="Introduction framing: per-core request throughput "
                  "and fleet sizing",
        ),
    )
    assert 0.2 <= summary["fleet_reduction"] <= 0.4
