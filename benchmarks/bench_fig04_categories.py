"""Figure 4: categorization of WordPress leaf functions into the four
accelerated activity classes (hash map access, heap management, string
manipulation, regular expression processing).
"""

from __future__ import annotations

from repro.core.experiment import categorization
from repro.core.report import format_table, pct
from repro.workloads.apps import wordpress


def bench_fig04_categories(benchmark, report_sink):
    shares = benchmark(lambda: categorization(wordpress()))

    report_sink(
        "fig04_categories",
        format_table(
            ["category", "share of post-mitigation time"],
            [[k, pct(v)] for k, v in shares.items()],
            title="Figure 4: WordPress leaf functions by accelerated "
                  "category",
        ),
    )

    four = sum(v for k, v in shares.items() if k != "other")
    assert 0.25 <= four <= 0.45
    assert abs(sum(shares.values()) - 1.0) < 1e-9
