"""Workload card: every distributional anchor from the paper, checked.

Prints the fidelity scorecard of all three synthetic applications —
the evidence that the generated traffic matches what the paper
measured on the real WordPress/Drupal/MediaWiki deployments.
"""

from __future__ import annotations

from conftest import EVAL_REQUESTS

from repro.core.report import format_table
from repro.workloads.apps import php_applications
from repro.workloads.validation import fidelity_failures, validate_app


def bench_workload_fidelity(benchmark, report_sink):
    def run():
        return {
            app.name: validate_app(app, requests=EVAL_REQUESTS)
            for app in php_applications()
        }

    cards = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for app, anchors in cards.items():
        for a in anchors:
            rows.append([
                app, a.name, f"{a.measured:.3f}",
                f"[{a.low:.2f}, {a.high:.2f}]",
                "ok" if a.ok else "FAIL", a.source,
            ])
    report_sink(
        "workload_fidelity",
        format_table(
            ["app", "anchor", "measured", "band", "", "paper source"],
            rows,
            title="Workload fidelity card: generated traffic vs the "
                  "paper's measured facts",
        ),
    )
    for anchors in cards.values():
        assert not fidelity_failures(anchors)
