"""Microbenchmarks of the accelerator kernels themselves.

These are throughput benchmarks of the *simulator* (useful when
modifying the models); the quantities the paper reports come from the
figure benches, not from these timings.
"""

from __future__ import annotations

from repro.accel.hash_table import HardwareHashTable
from repro.accel.heap_manager import HardwareHeapManager
from repro.accel.regex_accel import ContentSifter
from repro.accel.string_accel import StringAccelerator
from repro.common.rng import DeterministicRng
from repro.regex.engine import CompiledRegex
from repro.runtime.slab import SlabAllocator
from repro.workloads.text import ContentSpec, TextCorpus

BASE = 0x6800_0000


def bench_hash_table_get_set(benchmark):
    ht = HardwareHashTable()
    ht.writeback_handler = lambda b, k, v: None
    keys = [f"key_{i}" for i in range(256)]
    for i, k in enumerate(keys):
        ht.set(k, BASE, i)

    def kernel():
        for k in keys:
            ht.get(k, BASE)
            ht.set(k, BASE, 1)

    benchmark(kernel)


def bench_heap_manager_churn(benchmark):
    hm = HardwareHeapManager(SlabAllocator())

    def kernel():
        addrs = [hm.hmmalloc(48).address for _ in range(64)]
        for a in addrs:
            hm.hmfree(a, 48)

    benchmark(kernel)


def bench_string_find(benchmark):
    accel = StringAccelerator()
    subject = ("lorem ipsum dolor sit amet " * 40) + "needle" + " tail" * 10

    def kernel():
        return accel.find(subject, "needle")

    result = benchmark(kernel)
    assert result.value == subject.find("needle")


def bench_sifted_scan_vs_full(benchmark):
    corpus = TextCorpus(DeterministicRng(11))
    content = corpus.post(ContentSpec(special_segment_fraction=0.25))
    sifter = ContentSifter(StringAccelerator())
    hv, _ = sifter.build_hint_vector(content)
    rx = CompiledRegex(r"<[a-z]+")

    def kernel():
        return sifter.shadow_findall(rx, content, hv)

    result = benchmark(kernel)
    want, _ = CompiledRegex(r"<[a-z]+").findall(content)
    assert len(result.matches) == len(want)


def bench_regex_engine_findall(benchmark):
    corpus = TextCorpus(DeterministicRng(12))
    content = corpus.post(ContentSpec())
    rx = CompiledRegex(r"'[A-Za-z]")

    def kernel():
        return rx.findall(content)

    benchmark(kernel)
