"""Figure 5: post-mitigation execution-time breakdown of all three
applications across the four target categories.

Paper: Drupal "shows the least opportunity" — it has the smallest
string + regexp share (Section 5.3 ties this to its small regexp
benefit later).
"""

from __future__ import annotations

from repro.core.experiment import post_mitigation_breakdown
from repro.core.report import format_table, pct


def bench_fig05_breakdown(benchmark, report_sink):
    breakdown = benchmark(post_mitigation_breakdown)

    categories = ["hash", "heap", "string", "regex", "other"]
    rows = [
        [app, *(pct(b[c]) for c in categories)]
        for app, b in breakdown.items()
    ]
    report_sink(
        "fig05_breakdown",
        format_table(
            ["app", *categories], rows,
            title="Figure 5: execution-time breakdown after mitigating "
                  "the abstraction overheads",
        ),
    )

    sr = {app: b["string"] + b["regex"] for app, b in breakdown.items()}
    assert sr["drupal"] == min(sr.values())
    four = {app: 1.0 - b["other"] for app, b in breakdown.items()}
    assert all(0.15 <= f <= 0.45 for f in four.values())
