"""Queueing view of the speedup: tail latency vs offered load.

Not a paper figure — this makes the introduction's utilization
argument quantitative: feeding the measured per-request service-time
distributions into an M/G/c queue shows the accelerated tier holding
its p99 SLO at far higher offered load.
"""

from __future__ import annotations

from repro.core.latency import request_latency_report
from repro.core.report import format_table, pct
from repro.workloads.server import ServerConfig, latency_curve, slo_capacity

LOADS = (0.3, 0.5, 0.7, 0.8, 0.9)


def bench_latency_vs_load(benchmark, report_sink):
    def run():
        rep = request_latency_report("wordpress", requests=25)
        cfg = ServerConfig(workers=4, requests=1500)
        sw_curve = latency_curve(rep.software.samples, LOADS, cfg)
        hw_curve = latency_curve(rep.accelerated.samples, LOADS, cfg)
        slo = rep.software.p(99) * 1.5
        sw_cap = slo_capacity(rep.software.samples, slo, cfg)
        hw_cap = slo_capacity(rep.accelerated.samples, slo, cfg)
        return sw_curve, hw_curve, slo, sw_cap, hw_cap

    sw_curve, hw_curve, slo, sw_cap, hw_cap = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        [f"{sw.offered_load:.0%}", f"{sw.p99_latency:,.0f}",
         f"{hw.p99_latency:,.0f}",
         f"{sw.p99_latency / hw.p99_latency:.2f}x"]
        for sw, hw in zip(sw_curve, hw_curve)
    ]
    rows.append([
        f"SLO {slo:,.0f} cyc", f"load ≤ {pct(sw_cap, 0)}",
        f"load ≤ {pct(hw_cap, 0)}", "capacity",
    ])
    report_sink(
        "server_queueing",
        format_table(
            ["offered load", "software p99 (cyc)", "accelerated p99 (cyc)",
             "gap"],
            rows,
            title="Queueing: WordPress request p99 vs offered load "
                  "(4 workers, M/G/c)",
        ),
    )

    for sw, hw in zip(sw_curve, hw_curve):
        assert hw.p99_latency < sw.p99_latency
    assert hw_cap > sw_cap
