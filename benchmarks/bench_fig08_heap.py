"""Figure 8: memory usage patterns.

* 8(a): cumulative allocation-size distribution — requests ≤ 128 B
  dominate.
* 8(b)/8(c): live bytes per slab over time — flat for the four
  smallest slabs (strong memory reuse), for WordPress and MediaWiki.
"""

from __future__ import annotations

from repro.core.experiment import allocation_profile
from repro.core.report import format_table, pct
from repro.runtime.slab import SLAB_CLASS_BOUNDS
from repro.workloads.allocs import size_fraction_at_or_below
from repro.workloads.apps import mediawiki, wordpress


def bench_fig08a_size_distribution(benchmark, report_sink):
    sim, allocs = benchmark.pedantic(
        lambda: allocation_profile(wordpress()), rounds=1, iterations=1
    )
    cumulative = sim.slab.size_histogram.cumulative()
    rows = [
        [f"≤ {edge} B", pct(c)]
        for edge, c in zip(SLAB_CLASS_BOUNDS, cumulative)
    ]
    report_sink(
        "fig08a_size_distribution",
        format_table(
            ["slab bound", "cumulative fraction of requests"], rows,
            title="Figure 8(a): allocation-size distribution "
                  "(paper: ≤128 B dominates)",
        ),
    )
    assert size_fraction_at_or_below(allocs, 128) >= 0.75


def _usage_trend(app):
    """Per-slab (first-half mean, second-half mean) of live bytes.

    The Figure 8(b)/(c) claim is that the small slabs do not *grow*
    over time — churned objects recycle the same storage — so the
    right flatness measure is the absence of a trend, not zero
    variance (the live population naturally pulses with requests).
    """
    sim, _ = allocation_profile(app, requests=6)
    samples = sim.slab.usage_samples
    steady = samples[len(samples) // 4:]
    half = len(steady) // 2
    trend = []
    for cls in range(4):  # the four smallest slabs
        first = [snap[cls] for _, snap in steady[:half]]
        second = [snap[cls] for _, snap in steady[half:]]
        trend.append((
            cls,
            sum(first) / len(first),
            sum(second) / len(second),
        ))
    return trend


def bench_fig08bc_usage_over_time(benchmark, report_sink):
    results = benchmark.pedantic(
        lambda: {
            "wordpress": _usage_trend(wordpress()),
            "mediawiki": _usage_trend(mediawiki()),
        },
        rounds=1, iterations=1,
    )
    rows = []
    for app, trend in results.items():
        for cls, first, second in trend:
            bound = SLAB_CLASS_BOUNDS[cls]
            growth = (second - first) / first if first else 0.0
            rows.append([app, f"≤ {bound} B", f"{first:,.0f}",
                         f"{second:,.0f}", pct(growth)])
    report_sink(
        "fig08bc_usage",
        format_table(
            ["app", "slab", "live B (1st half)", "live B (2nd half)",
             "growth"],
            rows,
            title="Figure 8(b)/(c): live bytes per small slab over time "
                  "(flat ⇒ strong reuse)",
        ),
    )
    # No slab grows meaningfully over the run: storage is recycled.
    block = SLAB_CLASS_BOUNDS[0]
    for trend in results.values():
        for cls, first, second in trend:
            assert second <= first * 1.6 + 4 * block
