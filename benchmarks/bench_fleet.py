"""Fleet economics: cache shielding and accelerated-node TCO.

Not a paper figure — this runs the paper's fleet-scale cost argument
forward: compose N per-node server models behind a load balancer with
a sharded object cache in front, on measured WordPress service-time
distributions, and check the two acceptance bars:

* at a fixed node count, the cache tier **lifts SLO-compliant
  capacity** versus the same backends with no cache;
* an accelerated fleet meets the same absolute SLO at the same
  offered traffic with **fewer nodes** than a software-only fleet —
  the "how many fewer boxes" form of the paper's TCO claim.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.latency import request_latency_report
from repro.core.report import fleet_report, format_table
from repro.fleet import (
    CacheTierConfig,
    FleetConfig,
    fleet_slo_capacity,
    homogeneous_fleet,
    min_nodes_for_slo,
    mixed_fleet,
    run_fleet,
    run_fleet_matrix,
)
from repro.resilience.faults import FaultScenario

SEED = 17


def bench_fleet_matrix(benchmark, report_sink):
    def run():
        rep = request_latency_report("wordpress", requests=25)
        accel = rep.accelerated.samples
        soft = rep.software.samples
        mean_accel = sum(accel) / len(accel)

        cache = CacheTierConfig(shards=4, shard_capacity=256)
        cfg = FleetConfig(
            requests=2_500, warmup_requests=100, offered_load=0.7
        )
        cached = homogeneous_fleet("accel-4", accel, nodes=4, cache=cache)
        topologies = [
            cached,
            cached.without_cache(),
            mixed_fleet("mixed-2+2", accel, soft, 2, 2, cache=cache),
            homogeneous_fleet(
                "software-4", soft, nodes=4, kind="software", cache=cache
            ),
        ]
        reports = run_fleet_matrix(
            topologies,
            ["round-robin", "least-outstanding", "p2c"],
            cfg, seed=SEED,
        )
        storm = FaultScenario(
            "cache-storms", accel_fault_rate=0.10,
            accel_fault_window_services=5.0,
        )
        reports.append(run_fleet(
            replace(cached, name="accel-4+storm"),
            replace(cfg, storm_scenario=storm),
            seed=SEED,
        ))

        # SLO economics.  The SLO is absolute (cycles), so it means
        # the same thing to every fleet shape below.
        slo = 8.0 * mean_accel
        scan_cfg = FleetConfig(requests=1_000, warmup_requests=50)
        cap_cached = fleet_slo_capacity(
            cached, slo, scan_cfg, seed=SEED,
            resolution=0.1, max_load=1.5,
        )
        cap_bare = fleet_slo_capacity(
            cached.without_cache(), slo, scan_cfg, seed=SEED,
            resolution=0.1, max_load=1.5,
        )
        # Fix the traffic at 1.5 accelerated nodes' worth and ask how
        # many boxes each deployment needs to meet the SLO.
        rate = 1.5 * 4 / mean_accel
        need_accel = min_nodes_for_slo(
            lambda n: homogeneous_fleet("a", accel, nodes=n),
            rate, slo, scan_cfg, seed=SEED,
        )
        need_soft = min_nodes_for_slo(
            lambda n: homogeneous_fleet(
                "s", soft, nodes=n, kind="software"
            ),
            rate, slo, scan_cfg, seed=SEED,
        )
        return reports, (cap_cached, cap_bare, need_accel, need_soft)

    reports, econ = benchmark.pedantic(run, rounds=1, iterations=1)
    cap_cached, cap_bare, need_accel, need_soft = econ

    economics = format_table(
        ["question", "answer"],
        [
            ["SLO capacity, 4 accel nodes + cache (load frac)",
             f"{cap_cached:.2f}"],
            ["SLO capacity, 4 accel nodes, no cache (load frac)",
             f"{cap_bare:.2f}"],
            ["nodes needed at fixed traffic+SLO, accelerated",
             str(need_accel)],
            ["nodes needed at fixed traffic+SLO, software-only",
             str(need_soft)],
        ],
        title="Fleet economics (SLO = 8x mean accelerated service)",
    )
    report_sink("fleet", fleet_report(reports) + "\n\n" + economics)

    # Acceptance: the cache tier lifts SLO-compliant capacity at a
    # fixed node count ...
    assert cap_cached > cap_bare > 0.0
    # ... and the accelerated fleet meets the same SLO at the same
    # offered traffic with fewer nodes than software-only boxes.
    assert need_accel is not None and need_soft is not None
    assert need_accel < need_soft

    by_cell = {(r.fleet, r.balancer): r for r in reports}
    cached_p2c = by_cell[("accel-4", "p2c")]
    bare_p2c = by_cell[("accel-4-nocache", "p2c")]
    # The cache actually shields the backends in the matrix runs.
    assert cached_p2c.cache_hit_ratio > 0.5
    assert cached_p2c.mean_utilization < bare_p2c.mean_utilization
    # On the heterogeneous fleet, load-aware balancing beats blind
    # rotation on utilization balance.
    assert (
        by_cell[("mixed-2+2", "p2c")].utilization_imbalance
        <= by_cell[("mixed-2+2", "round-robin")].utilization_imbalance
    )
    # Storms flushed shards and cost hit ratio, without losing requests.
    stormy = by_cell[("accel-4+storm", "p2c")]
    assert stormy.storms > 0
    assert stormy.cache_hit_ratio < cached_p2c.cache_hit_ratio
    assert stormy.availability == 1.0
