"""End-to-end template-rendering latency distributions.

Not a paper figure: renders real MiniPHP pages for all three
applications on the software and accelerated backends and reports
per-request latency quantiles — the request-level view behind the
intro's datacenter motivation.  Pages must be byte-identical.
"""

from __future__ import annotations

from repro.core.latency import request_latency_report
from repro.core.report import format_table


def bench_request_latency(benchmark, report_sink):
    def run():
        return {
            app: request_latency_report(app, requests=25)
            for app in ("wordpress", "drupal", "mediawiki")
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for app, r in reports.items():
        rows.append([
            app,
            f"{r.software.p(50):.0f} / {r.software.p(99):.0f}",
            f"{r.accelerated.p(50):.0f} / {r.accelerated.p(99):.0f}",
            f"{r.mean_speedup:.2f}x",
            f"{r.p99_speedup:.2f}x",
            "yes" if r.pages_identical else "NO",
        ])
    report_sink(
        "latency",
        format_table(
            ["app", "software p50/p99 (cyc)", "accel p50/p99 (cyc)",
             "mean speedup", "p99 speedup", "pages identical"],
            rows,
            title="Per-request backend latency over the MiniPHP "
                  "templates (accelerated-category cycles only)",
        ),
    )
    for r in reports.values():
        assert r.pages_identical
        assert r.mean_speedup > 1.2
