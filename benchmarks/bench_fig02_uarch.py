"""Figure 2 and the Section 2 in-text rates.

* Branch MPKI under a 32 KB TAGE (paper: 17.26 / 14.48 / 15.14 vs 2.9
  for SPEC CPU2006-like code).
* Fig 2(a): execution time vs BTB entries × I-cache size; even a
  64K-entry BTB reaches only a modest hit rate (paper: 95.85 %).
* Fig 2(b): L1I / L1D / L2 MPKI.
* Fig 2(c): in-order vs out-of-order width sweep (<3 % gain from
  4-wide to 8-wide).
"""

from __future__ import annotations

import dataclasses

from conftest import SWEEP_INSTRUCTIONS, UARCH_INSTRUCTIONS

from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.core.experiment import uarch_characterization
from repro.core.report import format_table, pct
from repro.uarch.core import CharacterizationRun, CoreConfig, sweep_cores
from repro.uarch.trace import SPEC_LIKE_PROFILE
from repro.workloads.apps import php_applications, wordpress


def bench_fig02_branch_mpki(benchmark, report_sink):
    """Section 2: per-app branch MPKI plus the SPEC baseline."""

    def run():
        rows = []
        for app in php_applications():
            r = uarch_characterization(
                app, instructions=UARCH_INSTRUCTIONS
            )
            rows.append((app.name, r.branch_mpki, r.l1i_mpki,
                         r.l1d_mpki, r.l2_mpki))
        spec = dataclasses.replace(
            SPEC_LIKE_PROFILE, instructions=UARCH_INSTRUCTIONS
        )
        counts = CharacterizationRun(spec, DeterministicRng(DEFAULT_SEED)).run(
            warmup_passes=2
        )
        rows.append(("spec-cpu-like", counts.branch_mpki, counts.l1i_mpki,
                     counts.l1d_mpki, counts.l2_mpki))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        "fig02_mpki",
        format_table(
            ["workload", "branch MPKI", "L1I MPKI", "L1D MPKI", "L2 MPKI"],
            [[name, f"{b:.2f}", f"{i:.2f}", f"{d:.2f}", f"{l2:.2f}"]
             for name, b, i, d, l2 in rows],
            title="Section 2 / Figure 2(b): steady-state rates "
                  "(paper: PHP 17.26/14.48/15.14 MPKI, SPEC 2.9)",
        ),
    )
    php_mpki = [b for name, b, *_ in rows if name != "spec-cpu-like"]
    spec_mpki = rows[-1][1]
    assert all(m > 3 * spec_mpki for m in php_mpki)


def bench_fig02a_btb_icache_sweep(benchmark, report_sink):
    """Figure 2(a): execution time over BTB entries × I-cache size."""
    profile = dataclasses.replace(
        wordpress().trace_profile, instructions=SWEEP_INSTRUCTIONS
    )
    btb_sizes = [4096, 8192, 16384, 32768, 65536]
    icache_sizes = [32, 64, 128]

    def run():
        from repro.uarch.core import sweep_btb_and_icache
        return sweep_btb_and_icache(
            profile, DeterministicRng(DEFAULT_SEED),
            btb_sizes=btb_sizes, icache_kb_sizes=icache_sizes,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    base = sweep[(4096, 32)]
    rows = []
    for btb in btb_sizes:
        rows.append(
            [f"{btb // 1024}K"]
            + [f"{sweep[(btb, ic)] / base:.4f}" for ic in icache_sizes]
        )
    report_sink(
        "fig02a_btb_icache",
        format_table(
            ["BTB entries"] + [f"L1I {ic} KB" for ic in icache_sizes],
            rows,
            title="Figure 2(a): execution time vs BTB size × I-cache "
                  "size (normalized to 4K BTB / 32 KB L1I)",
        ),
    )
    # Bigger BTBs monotonically help at fixed I-cache size.
    for ic in icache_sizes:
        series = [sweep[(btb, ic)] for btb in btb_sizes]
        assert all(a >= b for a, b in zip(series, series[1:]))


def bench_fig02c_core_sweep(benchmark, report_sink):
    """Figure 2(c): in-order vs OoO width sweep."""
    profile = dataclasses.replace(
        wordpress().trace_profile, instructions=SWEEP_INSTRUCTIONS
    )
    configs = [CoreConfig.inorder_2(), CoreConfig.ooo(2),
               CoreConfig.ooo(4), CoreConfig.ooo(8)]

    def run():
        return sweep_cores(profile, DeterministicRng(DEFAULT_SEED), configs)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    base = sweep["inorder-2"]
    report_sink(
        "fig02c_cores",
        format_table(
            ["core", "normalized execution time"],
            [[name, f"{cycles / base:.4f}"] for name, cycles in sweep.items()],
            title="Figure 2(c): execution time by core model "
                  "(normalized to 2-wide in-order)",
        ),
    )
    assert sweep["inorder-2"] > sweep["ooo-2"] > sweep["ooo-4"]
    gain = (sweep["ooo-4"] - sweep["ooo-8"]) / sweep["ooo-4"]
    assert gain < 0.03  # the paper's "<3%"
