"""Wall-clock perf bench: registered backends vs pinned reference.

Unlike the figure benches (which measure *simulated* outcomes), this
bench measures real machine throughput of the hot kernels and the
end-to-end evaluation against the in-repo reference implementations
(:mod:`repro.accel.reference`), asserting the speedup floors the
optimization work committed to — for *every* measured backend the
registry reports (``optimized``, and ``bulk`` when numpy is present):

* string-accelerator microbench ≥ 2.0× over the per-character matrix
  (≥ 2.5× for the ``bulk`` numpy backend — vectorization must clearly
  beat the reference, not merely edge past it);
* hash-table kernel ≥ 1.2× — guards most of the PR-6 probe-path win
  (the old 1.0 floor only caught a kernel running outright slower);
* ``full_evaluation`` end-to-end ≥ 1.5× over ``reference_mode`` (the
  seed repo's execution profile: reference kernels, no trace-stream /
  experiment / compiled-pattern caches).

CI runs only ``python -m repro perf --smoke`` (schema validation, no
ratio assertions) — shared runners make wall-clock ratios flaky there.
This bench is for real hardware: ``pytest benchmarks/bench_perf.py``.
"""

from __future__ import annotations

from repro.core.perf import (
    E2E_SPEEDUP_MIN,
    HASH_SPEEDUP_MIN,
    format_perf_report,
    run_perf,
    string_floor,
    validate_perf_payload,
)


def bench_perf(benchmark, report_sink):
    payload = benchmark.pedantic(
        lambda: run_perf(smoke=False, check_speedups=False),
        rounds=1, iterations=1,
    )
    validate_perf_payload(payload)
    report_sink("perf", format_perf_report(payload))

    metrics = payload["metrics"]
    measured = payload["measured_backends"]
    assert measured, "no measured backends in the payload"
    for name in measured:
        string_speedup = \
            metrics["string_accel"]["backends"][name]["speedup"]
        hash_speedup = metrics["hash_table"]["backends"][name]["speedup"]
        e2e_speedup = \
            metrics["e2e_full_evaluation"]["backends"][name]["speedup"]
        floor = string_floor(name)
        assert string_speedup >= floor, (
            f"string-accel [{name}] speedup {string_speedup:.2f}x "
            f"below {floor}x"
        )
        assert hash_speedup >= HASH_SPEEDUP_MIN, (
            f"hash-table [{name}] speedup {hash_speedup:.2f}x below "
            f"{HASH_SPEEDUP_MIN}x"
        )
        assert e2e_speedup >= E2E_SPEEDUP_MIN, (
            f"e2e [{name}] speedup {e2e_speedup:.2f}x below "
            f"{E2E_SPEEDUP_MIN}x"
        )
    # The /1 mirror fields must keep tracking the default backend.
    assert metrics["string_accel"]["speedup"] >= string_floor("optimized")
    # The harness itself asserted outcome equivalence inline; spot-check
    # the payload reflects a genuine measurement.
    assert metrics["hash_table"]["ops_per_sec_optimized"] > 0
    assert metrics["fleet"]["events_per_sec"] > 0
