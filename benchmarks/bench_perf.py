"""Wall-clock perf bench: optimized kernels vs pinned reference.

Unlike the figure benches (which measure *simulated* outcomes), this
bench measures real machine throughput of the hot kernels and the
end-to-end evaluation against the in-repo reference implementations
(:mod:`repro.accel.reference`), asserting the speedup floors the
optimization work committed to:

* string-accelerator microbench ≥ 2.0× over the per-character matrix;
* hash-table kernel ≥ 1.0× — the optimized probe path must never be
  slower than the pinned reference (a 0.89× regression shipped once);
* ``full_evaluation`` end-to-end ≥ 1.5× over ``reference_mode`` (the
  seed repo's execution profile: reference kernels, no trace-stream /
  experiment / compiled-pattern caches).

CI runs only ``python -m repro perf --smoke`` (schema validation, no
ratio assertions) — shared runners make wall-clock ratios flaky there.
This bench is for real hardware: ``pytest benchmarks/bench_perf.py``.
"""

from __future__ import annotations

from repro.core.perf import (
    E2E_SPEEDUP_MIN,
    HASH_SPEEDUP_MIN,
    STRING_SPEEDUP_MIN,
    format_perf_report,
    run_perf,
    validate_perf_payload,
)


def bench_perf(benchmark, report_sink):
    payload = benchmark.pedantic(
        lambda: run_perf(smoke=False, check_speedups=False),
        rounds=1, iterations=1,
    )
    validate_perf_payload(payload)
    report_sink("perf", format_perf_report(payload))

    string_speedup = payload["metrics"]["string_accel"]["speedup"]
    hash_speedup = payload["metrics"]["hash_table"]["speedup"]
    e2e_speedup = payload["metrics"]["e2e_full_evaluation"]["speedup"]
    assert string_speedup >= STRING_SPEEDUP_MIN, (
        f"string-accel speedup {string_speedup:.2f}x below "
        f"{STRING_SPEEDUP_MIN}x"
    )
    assert hash_speedup >= HASH_SPEEDUP_MIN, (
        f"hash-table speedup {hash_speedup:.2f}x below "
        f"{HASH_SPEEDUP_MIN}x"
    )
    assert e2e_speedup >= E2E_SPEEDUP_MIN, (
        f"e2e speedup {e2e_speedup:.2f}x below {E2E_SPEEDUP_MIN}x"
    )
    # The harness itself asserted outcome equivalence inline; spot-check
    # the payload reflects a genuine measurement.
    assert payload["metrics"]["hash_table"]["ops_per_sec_optimized"] > 0
    assert payload["metrics"]["fleet"]["events_per_sec"] > 0
