"""Live serving path: the wall-clock smoke gate as a benchmark.

Unlike the figure benches, this one leaves the deterministic simulator
behind: a real asyncio HTTP/1.1 server renders the paper's three CMS
workloads on the accelerated backend while an open-loop driver holds
``SMOKE_MIN_CONNECTIONS`` keep-alive connections through a diurnal +
flash arrival schedule.  The acceptance bars are the PR's headline
claims: the connection floor is actually held, goodput clears the 95%
SLO, the stampede defenses engage (hit ratio well above cold), and
the served bytes match ``render_http_page`` byte-for-byte at the
pinned oracle cases.

Set ``REPRO_SERVE_FULL=1`` for the documented full-scale run (requests
10k connections; holds what the fd budget allows, ~9.9k here).
"""

from __future__ import annotations

import os

from repro.core.report import serve_report
from repro.serve.run import SMOKE_MIN_CONNECTIONS, run_serve

SEED = 23

FULL = os.environ.get("REPRO_SERVE_FULL", "") not in ("", "0")


def bench_serve_smoke(benchmark, report_sink, out_dir):
    def run():
        return run_serve(
            bench=True, smoke=not FULL, seed=SEED, out_dir=out_dir,
        )

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink("serve", serve_report(payload))

    # The connection floor was held, not just requested.
    assert payload["connections"] >= SMOKE_MIN_CONNECTIONS
    assert payload["peak_connections"] >= SMOKE_MIN_CONNECTIONS

    # Goodput SLO and the served-bytes oracle both passed (run_serve
    # raises otherwise, but the committed artifact should say so too).
    assert payload["slo_ok"]
    assert payload["oracle_ok"]
    assert payload["goodput_ratio"] >= 0.95

    # The fragment cache is doing the heavy lifting: with a small key
    # space and thousands of requests, most answers come from cache,
    # and misses for the same page coalesce instead of stampeding.
    assert payload["cache_hit_ratio"] >= 0.5
    assert payload["renders"] < payload["offered"]

    # Latency tail stayed sane for an in-process loopback server.
    assert 0.0 < payload["latency"]["p50"] <= payload["latency"]["p999"]
