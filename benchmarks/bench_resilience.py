"""Resilience under fault injection: availability and goodput.

Not a paper figure — this stresses the deployment story behind the
fleet-economics argument: a tier running hot only pays off if goodput
survives accelerator faults, stragglers, and worker crashes.  The
sweep runs the fault-scenario × resilience-policy matrix on measured
WordPress service-time distributions and checks the acceptance bar:
with retries + circuit breaker, goodput at a 10 % accelerator-fault
rate stays within 15 % of the fault-free baseline, while the
no-policy configuration degrades materially.
"""

from __future__ import annotations

from repro.core.latency import request_latency_report
from repro.core.report import resilience_report
from repro.resilience import (
    ResilientServerConfig,
    run_matrix,
    standard_policies,
    standard_scenarios,
)

SEED = 17


def bench_resilience_matrix(benchmark, report_sink):
    def run():
        rep = request_latency_report("wordpress", requests=25)
        cfg = ResilientServerConfig(
            workers=4, requests=2_500, warmup_requests=50,
            offered_load=0.6,
        )
        return run_matrix(
            rep.accelerated.samples, rep.software.samples,
            standard_scenarios(), standard_policies(), cfg, seed=SEED,
        )

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink("resilience", resilience_report(reports))

    by_cell = {(r.scenario, r.policy): r for r in reports}
    faultfree = by_cell[("fault-free", "retries+breaker")]
    no_policy = by_cell[("accel-faults-10pct", "no-policy")]
    full = by_cell[("accel-faults-10pct", "retries+breaker")]

    # Acceptance: the full policy holds goodput within 15 % of the
    # fault-free baseline at a 10 % accelerator-fault rate ...
    assert full.goodput_vs(faultfree) >= 0.85
    # ... while doing nothing loses availability and goodput.
    assert no_policy.availability < full.availability
    assert no_policy.goodput_per_kcycle < full.goodput_per_kcycle
    # The breaker actually tripped and re-routed work to software.
    assert full.breaker_trips > 0
    assert full.software_path_share > 0.0
