"""Shared infrastructure for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's figures (the data, in
the paper's own layout) and times the underlying simulation kernel
with pytest-benchmark.  Reports are printed (run with ``-s`` to see
them) and also written under ``benchmarks/out/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"

#: Trace length for the microarchitectural sweeps; override with
#: REPRO_UARCH_INSTRUCTIONS for higher-fidelity (slower) runs.
UARCH_INSTRUCTIONS = int(os.environ.get("REPRO_UARCH_INSTRUCTIONS", "400000"))

#: Shorter trace for the 15-configuration BTB × I-cache sweep.
SWEEP_INSTRUCTIONS = int(os.environ.get("REPRO_SWEEP_INSTRUCTIONS", "150000"))

#: Requests per application for the end-to-end evaluation benches.
EVAL_REQUESTS = int(os.environ.get("REPRO_EVAL_REQUESTS", "5"))


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def report_sink(out_dir):
    """Callable that prints a report and persists it to out/<name>.txt."""

    def sink(name: str, text: str) -> None:
        print()
        print(text)
        (out_dir / f"{name}.txt").write_text(text + "\n")

    return sink
