"""Section 3 mitigation mechanisms: measured vs assumed factors.

The figure pipeline re-weights profiles with the Section 3 mitigation
factors; this bench shows each factor is *achievable* by the mechanism
the paper cites — RC coalescing [46], checked loads [22], IC/HMI
[31, 32, 40], allocation tuning — measured on this repo's own models.
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.core.report import format_table, pct
from repro.optim import (
    HashMapInliner,
    measure_alloc_tuning,
    measure_rc_mitigation,
    measure_typecheck_mitigation,
)
from repro.workloads.hashops import HashOpGenerator, HashWorkloadSpec
from repro.workloads.profiles import Activity, MITIGATION_FACTORS


def bench_mitigation_mechanisms(benchmark, report_sink):
    def run():
        rc = measure_rc_mitigation()
        tc = measure_typecheck_mitigation()
        alloc = measure_alloc_tuning()
        # IC/HMI on a representative hash-op stream.
        gen = HashOpGenerator(HashWorkloadSpec(), DeterministicRng(DEFAULT_SEED))
        inliner = HashMapInliner()
        for _ in range(8):
            inliner.filter(list(gen.request_ops()))
        return rc, tc, alloc, inliner.specialized_fraction()

    rc, tc, alloc, hmi_fraction = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        ["reference counting [46]", "RC coalescing buffer",
         pct(rc["mitigation_factor"]),
         pct(MITIGATION_FACTORS[Activity.REFCOUNT])],
        ["type checking [22]", "checked loads",
         pct(tc["mitigation_factor"]),
         pct(MITIGATION_FACTORS[Activity.TYPECHECK])],
        ["kernel allocation calls", "chunk tuning + lazy return",
         pct(alloc["mitigation_factor"]),
         pct(MITIGATION_FACTORS[Activity.KERNEL_ALLOC])],
        ["IC dispatch [31,32,40]", "hidden classes + IC + HMI",
         f"{pct(hmi_fraction)} of hash accesses specialized "
         "(literal template reads only)",
         pct(MITIGATION_FACTORS[Activity.IC_DISPATCH])],
    ]
    report_sink(
        "mitigation_mechanisms",
        format_table(
            ["overhead", "mechanism", "measured", "factor used (§3)"],
            rows,
            title="Section 3 mitigations: mechanism measurements vs "
                  "the profile re-weighting factors",
        ),
    )
    assert rc["mitigation_factor"] >= \
        MITIGATION_FACTORS[Activity.REFCOUNT] - 0.05
    assert tc["mitigation_factor"] >= \
        MITIGATION_FACTORS[Activity.TYPECHECK] - 0.05
    assert alloc["mitigation_factor"] >= \
        MITIGATION_FACTORS[Activity.KERNEL_ALLOC] - 0.05
    assert hmi_fraction > 0.0
