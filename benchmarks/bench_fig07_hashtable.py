"""Figure 7: hardware hash-table hit rate vs entry count, plus the
Section 4.2 trace anchors (SET share, key lengths).

Paper: "Even a hash table with only 256 entries observes a high hit
rate of about 80%.  Since SET operations never miss in our design, a
hash table with very few entries (1, 2 or 4) shows such a decent hit
rate."
"""

from __future__ import annotations

from conftest import EVAL_REQUESTS

from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.core.experiment import hash_hit_rate_sweep
from repro.core.report import format_table, pct
from repro.workloads.apps import wordpress
from repro.workloads.hashops import trace_statistics
from repro.workloads.loadgen import LoadGenerator

SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def bench_fig07_hit_rate_sweep(benchmark, report_sink):
    sweep = benchmark.pedantic(
        lambda: hash_hit_rate_sweep(
            wordpress(), sizes=SIZES, requests=EVAL_REQUESTS
        ),
        rounds=1, iterations=1,
    )

    report_sink(
        "fig07_hashtable",
        format_table(
            ["entries", "hit rate"],
            [[str(s), pct(sweep[s])] for s in SIZES],
            title="Figure 7: hardware hash-table hit rate vs entries "
                  "(paper: ≈80 % at 256; tiny tables stay decent "
                  "because SETs never miss)",
        ),
    )

    rates = [sweep[s] for s in SIZES]
    assert all(a <= b + 0.02 for a, b in zip(rates, rates[1:]))
    assert sweep[256] >= 0.70
    assert sweep[1] >= 0.15


def bench_fig07_trace_anchors(benchmark, report_sink):
    """Section 4.2: SET share 15–25 %, ≥95 % of keys ≤ 24 bytes."""

    def collect():
        lg = LoadGenerator(
            wordpress(), DeterministicRng(DEFAULT_SEED), warmup_requests=0
        )
        ops = []
        for _ in range(EVAL_REQUESTS):
            ops.extend(lg.next_request().hash_ops)
        return trace_statistics(ops)

    stats = benchmark(collect)
    report_sink(
        "fig07_trace_anchors",
        format_table(
            ["metric", "measured", "paper"],
            [
                ["SET share (GET+SET)", pct(stats["set_share"]), "15–25 %"],
                ["keys ≤ 24 B", pct(stats["short_key_fraction"]), "≈95 %"],
            ],
            title="Section 4.2 trace anchors",
        ),
    )
    assert 0.15 <= stats["set_share"] <= 0.27
    assert stats["short_key_fraction"] >= 0.90
