"""Figure 1: CPU-cycle distribution over leaf functions.

Paper: SPECWeb2005 workloads concentrate ~90 % of cycles in a handful
of functions; the real PHP applications are flat — the hottest
function (JIT code) holds only 10–12 % and ~100 functions are needed
to reach ~65 %.
"""

from __future__ import annotations

from repro.core.experiment import leaf_distribution
from repro.core.report import format_table, pct


def bench_fig01_leaf_distribution(benchmark, report_sink):
    dist = benchmark(leaf_distribution)

    checkpoints = [1, 5, 10, 26, 50, 100]
    rows = []
    for name, cum in sorted(dist.items()):
        rows.append(
            [name]
            + [pct(cum[min(n, len(cum)) - 1], 1) for n in checkpoints]
        )
    report_sink(
        "fig01_leaf_distribution",
        format_table(
            ["workload"] + [f"top {n}" for n in checkpoints],
            rows,
            title="Figure 1: cumulative cycle share over ranked leaf "
                  "functions",
        ),
    )

    for name in ("wordpress", "drupal", "mediawiki"):
        assert 0.09 <= dist[name][0] <= 0.13
        assert 0.55 <= dist[name][99] <= 0.72
    for name in ("specweb-banking", "specweb-ecommerce"):
        assert dist[name][4] >= 0.88
