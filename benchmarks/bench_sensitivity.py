"""Design-space sensitivity benches (beyond the paper's figures).

Traces how the headline metrics move around the paper's sizing
choices: probe width (4), hint-vector segment size (32 B), reuse-table
content capacity (32 B) and entry count (32), and the predictor
landscape behind the Section 2 TAGE numbers.
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.core.report import format_table, pct
from repro.core.sensitivity import (
    sweep_probe_width,
    sweep_reuse_content_bytes,
    sweep_reuse_entries,
    sweep_segment_size,
)
from repro.uarch.predictors import compare_predictors
from repro.uarch.trace import TraceProfile


def bench_probe_width(benchmark, report_sink):
    sweep = benchmark.pedantic(sweep_probe_width, rounds=1, iterations=1)
    report_sink(
        "sens_probe_width",
        format_table(
            ["probe width", "hash-table hit rate"],
            [[str(w), pct(sweep[w])] for w in sorted(sweep)],
            title="Sensitivity: parallel probe width (paper: 4)",
        ),
    )
    assert sweep[4] >= sweep[8] - 0.01


def bench_segment_size(benchmark, report_sink):
    sweep = benchmark.pedantic(sweep_segment_size, rounds=1, iterations=1)
    report_sink(
        "sens_segment_size",
        format_table(
            ["segment bytes", "skip fraction", "HV bits"],
            [[str(s), pct(v["skip_fraction"]), f"{v['hv_bits']:.0f}"]
             for s, v in sorted(sweep.items())],
            title="Sensitivity: hint-vector segment size (paper: 32 B)",
        ),
    )
    sizes = sorted(sweep)
    skips = [sweep[s]["skip_fraction"] for s in sizes]
    assert all(a >= b - 0.02 for a, b in zip(skips, skips[1:]))


def bench_reuse_capacity(benchmark, report_sink):
    def run():
        return (sweep_reuse_content_bytes(), sweep_reuse_entries())

    content, entries = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["content bytes", str(k), pct(v)]
            for k, v in sorted(content.items())]
    rows += [["entries", str(k), pct(v)]
             for k, v in sorted(entries.items())]
    report_sink(
        "sens_reuse",
        format_table(
            ["knob", "value", "skip / jump rate"], rows,
            title="Sensitivity: content-reuse table sizing "
                  "(paper: 32 entries × 32 B)",
        ),
    )
    assert content[32] > content[8]
    assert entries[32] > entries[2]


def bench_predictor_landscape(benchmark, report_sink):
    profile = TraceProfile(instructions=150_000)

    def run():
        return compare_predictors(profile, DeterministicRng(DEFAULT_SEED))

    mpkis = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        "sens_predictors",
        format_table(
            ["predictor", "MPKI"],
            [[name, f"{v:.2f}"] for name, v in mpkis.items()],
            title="Predictor landscape on the PHP branch mix "
                  "(data-dependent branches defeat history — §2)",
        ),
    )
    # The §2 observation: nothing gets close to SPEC-like MPKI.
    assert all(v > 8.0 for v in mpkis.values())
