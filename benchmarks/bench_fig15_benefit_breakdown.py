"""Figure 15: per-accelerator benefit breakdown.

Paper (Section 5.3 averages): heap manager 7.29 %, hash table 6.45 %,
string accelerator 4.51 %, regexp accelerator 1.96 % — with WordPress
getting "considerable" regexp benefit, MediaWiki "modest", and
Drupal's high Figure-12 skippability not translating into gain.
"""

from __future__ import annotations

from conftest import EVAL_REQUESTS

from repro.core.experiment import full_evaluation
from repro.core.report import figure15_report


PAPER_AVG = {"heap": 0.0729, "hash": 0.0645, "string": 0.0451,
             "regex": 0.0196}


def bench_fig15_breakdown(benchmark, report_sink):
    results = benchmark.pedantic(
        lambda: full_evaluation(requests=EVAL_REQUESTS),
        rounds=1, iterations=1,
    )
    report_sink("fig15_benefit_breakdown", figure15_report(results))

    avg = {
        k: sum(r.benefits[k] for r in results) / len(results)
        for k in PAPER_AVG
    }
    # Ordering and rough magnitudes match the paper.
    assert avg["heap"] > avg["hash"] > avg["string"] > avg["regex"]
    for key, paper_value in PAPER_AVG.items():
        assert abs(avg[key] - paper_value) < 0.015, (key, avg[key])

    regex = {r.app: r.benefits["regex"] for r in results}
    assert regex["wordpress"] == max(regex.values())
    assert regex["drupal"] == min(regex.values())

    # Section 5.2: refcounting is the biggest mitigation (~4.42 %).
    refcount = sum(r.refcount_saving for r in results) / len(results)
    assert abs(refcount - 0.0442) < 0.01
