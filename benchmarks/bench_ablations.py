"""Ablation bench: quantify the design choices the paper argues for.

Not a paper figure — these runs back the paper's qualitative design
arguments with numbers from the model (DESIGN.md calls these out):

* §4.2: SET support matters (vs the GET-only memcached table [55]);
* §4.3: the pointer prefetcher hides software refill latency;
* §4.4: multi-byte processing beats the 1 B/cycle prior design [68]
  (which cannot even beat SSE software);
* §4.5: content sifting provides most of the regexp benefit on
  texturize-style sets; reuse adds the URL-scan tail.
"""

from __future__ import annotations

from conftest import EVAL_REQUESTS

from repro.core.ablation import run_ablations
from repro.core.report import format_table, pct


def bench_ablations(benchmark, report_sink):
    results = benchmark.pedantic(
        lambda: run_ablations(requests=EVAL_REQUESTS),
        rounds=1, iterations=1,
    )
    rows = [
        [r.name, pct(r.efficiency), pct(r.efficiency_loss),
         ", ".join(f"{k}={v:.3f}" for k, v in r.detail.items())]
        for r in results
    ]
    report_sink(
        "ablations",
        format_table(
            ["variant", "category efficiency", "benefit given up", "detail"],
            rows,
            title="Ablations: accelerator design choices (WordPress)",
        ),
    )

    by_name = {r.name: r for r in results}
    # §4.2: GET-only loses most of the hash benefit.
    assert by_name["hash: GET-only (memcached-style [55])"].efficiency_loss \
        > 0.25
    # §4.3: removing the prefetcher hurts (hit rate and efficiency).
    assert by_name["heap: no prefetcher"].efficiency_loss > 0.0
    # §4.4: a 1 B/cycle datapath cannot beat SSE software.
    assert by_name["string: 1 B/cycle (prior work [68])"].efficiency < 0.1
    # §4.5: sifting carries most of the regexp benefit.
    sift_loss = by_name["regex: no content sifting"].efficiency_loss
    reuse_loss = by_name["regex: no content reuse"].efficiency_loss
    assert sift_loss > reuse_loss
    assert by_name["regex: neither technique"].efficiency < 0.05
