"""Digital-twin calibration loop: the self-consistency gate as a bench.

The twin generates telemetry from known ground-truth parameters, the
calibration service fits that telemetry blind, and the fitted twin
re-predicts the stream.  The acceptance bars are the PR's headline
claims: the fitted model reproduces the measured tail (p99 MAPE) and
cache behaviour (hit-ratio MAPE) inside the pinned bounds, parameter
recovery lands near the generating truth, and the fitted what-if
capacity answer exists — the simulator priced against traffic instead
of assumptions.

Set ``REPRO_CALIBRATE_FULL=1`` for the full-scale stream (350 rps for
75 s vs the 200 rps / 30 s smoke run).
"""

from __future__ import annotations

import os

from repro.calibrate import (
    MAPE_HIT_RATIO_BOUND,
    MAPE_P99_BOUND,
    format_calibration_report,
    run_calibrate,
)
from repro.common.rng import DEFAULT_SEED

FULL = os.environ.get("REPRO_CALIBRATE_FULL", "") not in ("", "0")


def bench_calibrate_self_consistency(benchmark, report_sink, out_dir):
    def run():
        return run_calibrate(
            smoke=not FULL, seed=DEFAULT_SEED, out_dir=out_dir,
        )

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink("calibrate", format_calibration_report(payload))

    # The gate's own verdict, then the individual bars it summarizes.
    assert payload["ok"]
    assert payload["mape"]["p99"] <= MAPE_P99_BOUND
    assert payload["mape"]["hit_ratio"] <= MAPE_HIT_RATIO_BOUND
    assert payload["mape"]["overall"] <= 0.10

    # Blind parameter recovery stayed near the generating truth.
    recovery = payload["self_test"]["recovery"]
    assert recovery["service_mean_err"] <= 0.10
    assert recovery["amplitude_abs_err"] <= 0.10
    assert recovery["flash_multiplier_err"] <= 0.30

    # The what-if answered: capacity priced under fitted distributions.
    assert payload["what_if"]["nodes_fitted"] is not None
    assert payload["events"] > 1000
