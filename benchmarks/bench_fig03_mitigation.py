"""Figure 3: WordPress leaf functions before/after the Section 3
mitigations (inline caching + HMI, hardware type checks, hardware
reference counting, allocation tuning).

Paper: the mitigated categories shrink toward the tail, the remaining
functions' shares rise, and overall time drops to ≈88 % of unmodified
HHVM.
"""

from __future__ import annotations

from repro.core.experiment import mitigation_effect
from repro.core.report import format_table, pct
from repro.workloads.apps import wordpress
from repro.workloads.profiles import MITIGATION_FACTORS, Activity


def bench_fig03_mitigation(benchmark, report_sink):
    baseline, optimized, remaining = benchmark(
        lambda: mitigation_effect(wordpress())
    )

    rows = []
    for activity in Activity:
        before = baseline.category_share(activity)
        after = optimized.category_share(activity)
        arrow = "↓" if activity in MITIGATION_FACTORS else " "
        rows.append([activity.value, pct(before), pct(after), arrow])
    rows.append(["(total time vs unmodified)", "100.00%", pct(remaining), ""])
    report_sink(
        "fig03_mitigation",
        format_table(
            ["activity", "before", "after (share of remaining)", ""],
            rows,
            title="Figure 3: WordPress category shares before/after "
                  "mitigation (paper: remaining ≈ 88.15 % on average)",
        ),
    )

    assert 0.85 <= remaining <= 0.92
    for activity in MITIGATION_FACTORS:
        assert optimized.category_share(activity) < \
            baseline.category_share(activity)
