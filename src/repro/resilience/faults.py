"""Deterministic fault injection for the server/accelerator stack.

The paper's fleet-economics argument is about running tiers hot near
saturation — exactly where real deployments meet stragglers, failed
workers, and flaky accelerators.  This module generates *schedules* of
such faults: given a :class:`FaultScenario` and a seed, a
:class:`FaultInjector` lays out accelerator-degradation windows,
worker crash/restart events, and per-request straggler multipliers,
all derived from :class:`~repro.common.rng.DeterministicRng` so every
resilience experiment reproduces bit-for-bit.

Accelerator faults map onto the Section-4 hardware units and their
documented software fallbacks:

* ``hash_storm``        — hash-table entry invalidation storm
                          (stale-flag writebacks keep maps correct),
* ``heap_outage``       — heap manager offline (``hmflush`` + software
                          slab allocator),
* ``reuse_flush``       — regex reuse-table wipe (plain software FSM),
* ``string_config_loss``— matching-matrix state loss (reload path).

During a fault window the accelerated request path is degraded: an
attempt dispatched to the accelerators fails and must be retried or
re-routed to the software path by the resilience policies.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.common.rng import DeterministicRng

#: Accelerator fault kinds, cycled through deterministically when a
#: scenario does not pin one down.
ACCEL_FAULT_KINDS = (
    "hash_storm", "heap_outage", "reuse_flush", "string_config_loss",
)


@dataclass(frozen=True)
class FaultWindow:
    """One accelerator-degradation interval ``[start, end)`` in cycles."""

    start: float
    end: float
    kind: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class WorkerCrash:
    """A fail-stop worker crash at ``time``; back up after ``downtime``."""

    time: float
    worker: int
    downtime: float


@dataclass(frozen=True)
class FaultScenario:
    """Knobs describing how hostile the environment is.

    ``accel_fault_rate`` is the long-run fraction of *time* the
    accelerator complex spends degraded (the "10 % fault rate" of the
    acceptance experiments); windows are laid out with exponential
    gaps to hit that duty cycle.  All durations are expressed in
    multiples of the workload's *mean service time*, so one scenario
    means the same thing whether a request costs hundreds or millions
    of cycles; the simulator resolves them to cycles.
    """

    name: str = "baseline"
    #: fraction of time inside accelerator-fault windows (0 disables)
    accel_fault_rate: float = 0.0
    #: length of one accelerator-fault window, × mean service time
    accel_fault_window_services: float = 10.0
    #: mean gap between worker crashes, × mean service time (0 disables)
    crash_mtbf_services: float = 0.0
    #: time a crashed worker stays down, × mean service time
    crash_downtime_services: float = 100.0
    #: probability one service attempt is a straggler
    straggler_probability: float = 0.0
    #: service-time multiplier applied to straggler attempts
    straggler_multiplier: float = 6.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.accel_fault_rate < 1.0:
            raise ValueError(
                f"accel_fault_rate must be in [0, 1), got "
                f"{self.accel_fault_rate}"
            )
        if self.accel_fault_window_services <= 0:
            raise ValueError("accel_fault_window_services must be positive")
        if self.crash_mtbf_services < 0:
            raise ValueError("crash_mtbf_services cannot be negative")
        if self.crash_downtime_services <= 0:
            raise ValueError("crash_downtime_services must be positive")
        if not 0.0 <= self.straggler_probability <= 1.0:
            raise ValueError("straggler_probability must be in [0, 1]")
        if self.straggler_multiplier < 1.0:
            raise ValueError("straggler_multiplier must be >= 1")


#: Canonical scenarios used by the CLI and the resilience benchmark.
def standard_scenarios() -> list[FaultScenario]:
    return [
        FaultScenario("fault-free"),
        FaultScenario("accel-faults-10pct", accel_fault_rate=0.10),
        FaultScenario(
            "stragglers", straggler_probability=0.02,
            straggler_multiplier=6.0,
        ),
        FaultScenario(
            "crashes", crash_mtbf_services=250.0,
            crash_downtime_services=100.0,
        ),
        FaultScenario(
            "hostile", accel_fault_rate=0.10,
            straggler_probability=0.02, crash_mtbf_services=500.0,
        ),
    ]


@dataclass
class FaultSchedule:
    """A fully materialized, immutable-by-convention fault timeline."""

    scenario: FaultScenario
    horizon: float
    windows: list[FaultWindow] = field(default_factory=list)
    crashes: list[WorkerCrash] = field(default_factory=list)
    #: sorted window start times, for bisect in :meth:`faulted_at`
    _starts: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._starts = [w.start for w in self.windows]

    def faulted_at(self, time: float) -> FaultWindow | None:
        """The accelerator-fault window covering ``time``, if any."""
        i = bisect.bisect_right(self._starts, time) - 1
        if i >= 0 and self.windows[i].start <= time < self.windows[i].end:
            return self.windows[i]
        return None

    def degraded_time(self) -> float:
        """Total cycles inside fault windows (clipped to the horizon)."""
        return sum(
            max(0.0, min(w.end, self.horizon) - w.start)
            for w in self.windows
        )


class FaultInjector:
    """Deterministic generator of fault schedules and straggler draws.

    One injector serves one simulation run: :meth:`schedule` lays out
    the timeline up-front, and :meth:`straggler_multiplier` is drawn
    per service attempt from an independent child stream, so the
    arrival/service streams of the server simulator never shift when a
    scenario knob changes.  ``mean_service_cycles`` anchors the
    scenario's service-multiple durations to this workload's scale.
    """

    def __init__(
        self,
        scenario: FaultScenario,
        rng: DeterministicRng,
        mean_service_cycles: float = 1.0,
    ) -> None:
        if mean_service_cycles <= 0:
            raise ValueError("mean_service_cycles must be positive")
        self.scenario = scenario
        self.mean_service_cycles = mean_service_cycles
        self._window_rng = rng.fork("fault-windows")
        self._crash_rng = rng.fork("fault-crashes")
        self._straggle_rng = rng.fork("fault-stragglers")
        self._kind_cursor = 0

    # -- schedule construction ----------------------------------------------------

    def schedule(self, horizon: float, workers: int) -> FaultSchedule:
        """Materialize all fault events inside ``[0, horizon)`` cycles."""
        if horizon <= 0:
            raise ValueError("fault horizon must be positive")
        if workers < 1:
            raise ValueError("need at least one worker to crash")
        return FaultSchedule(
            scenario=self.scenario,
            horizon=horizon,
            windows=self._lay_out_windows(horizon),
            crashes=self._lay_out_crashes(horizon, workers),
        )

    def _lay_out_windows(self, horizon: float) -> list[FaultWindow]:
        s = self.scenario
        if s.accel_fault_rate <= 0.0:
            return []
        window = s.accel_fault_window_services * self.mean_service_cycles
        # Exponential gaps sized so windows cover accel_fault_rate of
        # the timeline: mean_gap = window * (1 - rate) / rate.
        mean_gap = window * (1.0 - s.accel_fault_rate) / s.accel_fault_rate
        windows: list[FaultWindow] = []
        t = self._exp(self._window_rng, mean_gap)
        while t < horizon:
            kind = ACCEL_FAULT_KINDS[
                self._kind_cursor % len(ACCEL_FAULT_KINDS)
            ]
            self._kind_cursor += 1
            windows.append(FaultWindow(t, t + window, kind))
            t += window + self._exp(self._window_rng, mean_gap)
        return windows

    def _lay_out_crashes(
        self, horizon: float, workers: int
    ) -> list[WorkerCrash]:
        s = self.scenario
        if s.crash_mtbf_services <= 0.0:
            return []
        mean_gap = s.crash_mtbf_services * self.mean_service_cycles
        downtime = s.crash_downtime_services * self.mean_service_cycles
        crashes: list[WorkerCrash] = []
        t = self._exp(self._crash_rng, mean_gap)
        while t < horizon:
            crashes.append(WorkerCrash(
                time=t,
                worker=self._crash_rng.randint(0, workers - 1),
                downtime=downtime,
            ))
            t += self._exp(self._crash_rng, mean_gap)
        return crashes

    # -- per-attempt draws ----------------------------------------------------------

    def straggler_multiplier(self) -> float:
        """Service-time multiplier for the next attempt (usually 1.0)."""
        s = self.scenario
        if s.straggler_probability <= 0.0:
            return 1.0
        if self._straggle_rng.random() < s.straggler_probability:
            return s.straggler_multiplier
        return 1.0

    @staticmethod
    def _exp(rng: DeterministicRng, mean: float) -> float:
        """Exponential deviate (inverse-CDF on a uniform)."""
        import math
        return -mean * math.log(max(rng.random(), 1e-12))
