"""Event-driven server model under fault injection and policies.

Extends the seed's M/G/c queueing view (``repro.workloads.server``)
with the failure modes of a hot production tier and the policies that
keep it available:

* arrivals are Poisson at a fraction of the *accelerated* tier's
  capacity; a bounded FIFO queue (admission control) feeds ``workers``
  parallel servers;
* an attempt dispatched on the **accelerated path** during one of the
  :class:`~repro.resilience.faults.FaultInjector`'s degradation
  windows fails: the fault is detected at completion (checksum/
  watchdog, pessimistic), the worker time is wasted, and the request
  must be retried;
* the **software path** is immune to accelerator faults (every
  Section-4 unit has a documented software fallback) but slower —
  service times are drawn from the software distribution, the
  re-costing of :mod:`repro.core.costs`'s software/accelerated split;
* the circuit breaker arbitrates between the two: consecutive
  accelerated failures trip dispatch to software (and, when a real
  :class:`~repro.isa.dispatch.AcceleratorComplex` is wired in, the
  trip is mirrored onto it so ``StatRegistry`` counters record the
  degraded mode);
* worker crashes kill the in-flight attempt and take the worker out
  of rotation for the scenario's downtime; stragglers multiply
  individual service times.

Everything is deterministic: same seed → identical schedules, event
order, and :class:`~repro.resilience.report.ResilienceReport`.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.common.rng import DeterministicRng
from repro.common.stats import StatRegistry, percentile
from repro.core.costs import CostModel, DEFAULT_COSTS
from repro.resilience.faults import FaultInjector, FaultScenario
from repro.resilience.policies import CircuitBreaker, ResiliencePolicy
from repro.resilience.report import ResilienceReport


@dataclass
class ResilientServerConfig:
    """Shape of one resilient-simulation run."""

    workers: int = 4
    #: measured requests (after warmup)
    requests: int = 2_000
    #: leading requests excluded from every report statistic
    warmup_requests: int = 0
    offered_load: float = 0.6

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(
                f"need at least one worker, got {self.workers}"
            )
        if self.requests < 1:
            raise ValueError(
                f"need at least one measured request, got {self.requests}"
            )
        if self.warmup_requests < 0:
            raise ValueError(
                f"warmup_requests cannot be negative, got "
                f"{self.warmup_requests}"
            )
        if self.offered_load <= 0.0:
            raise ValueError(
                f"offered load must be positive, got {self.offered_load}"
            )


@dataclass
class _Request:
    rid: int
    first_arrival: float
    is_warmup: bool
    retries_used: int = 0
    last_backoff: float = 0.0
    deadline: float = float("inf")
    enqueued_at: float = 0.0


@dataclass
class _Attempt:
    aid: int
    request: _Request
    worker: int
    start: float
    service: float
    path: str              # 'accelerated' | 'software'
    doomed_by: str = ""    # '' | fault-window kind


class ResilientServerSimulator:
    """M/G/c queue + faults + resilience policies, deterministically."""

    def __init__(
        self,
        service_times: list[float],
        software_service_times: list[float],
        scenario: FaultScenario,
        policy: ResiliencePolicy,
        config: ResilientServerConfig | None = None,
        rng: DeterministicRng | None = None,
        costs: CostModel = DEFAULT_COSTS,
        complex_: Optional[object] = None,
    ) -> None:
        for name, sample in (
            ("accelerated", service_times),
            ("software", software_service_times),
        ):
            if not sample:
                raise ValueError(f"need a {name} service-time sample")
            if any(s <= 0 for s in sample):
                raise ValueError(f"{name} service times must be positive")
        self.service_times = service_times
        self.software_service_times = software_service_times
        self.scenario = scenario
        self.policy = policy
        self.config = config or ResilientServerConfig()
        self.costs = costs
        #: optional AcceleratorComplex mirror for breaker trips
        self.complex_ = complex_
        rng = rng or DeterministicRng(17)
        self._arrival_rng = rng.fork("arrivals")
        self._service_rng = rng.fork("service")
        self._retry_rng = rng.fork("retry")
        self.injector = FaultInjector(
            scenario, rng.fork("faults"), self.mean_service()
        )
        self.stats = StatRegistry("resilience")

    # -- derived rates ------------------------------------------------------

    def mean_service(self) -> float:
        return sum(self.service_times) / len(self.service_times)

    def capacity_rps(self) -> float:
        """Saturation throughput of the *accelerated* tier."""
        return self.config.workers / self.mean_service()

    def timeout_cycles(self) -> float | None:
        mult = self.policy.timeout_service_multiple
        return None if mult is None else mult * self.mean_service()

    # -- the simulation -----------------------------------------------------

    def run(self) -> ResilienceReport:
        import math

        cfg = self.config
        arrival_rate = cfg.offered_load * self.capacity_rps()
        mean_gap = 1.0 / arrival_rate
        total = cfg.warmup_requests + cfg.requests

        # Pre-draw arrivals so retries/faults never shift the stream.
        arrivals: list[float] = []
        now = 0.0
        for _ in range(total):
            now += -mean_gap * math.log(
                max(self._arrival_rng.random(), 1e-12)
            )
            arrivals.append(now)
        # The fault schedule covers twice the arrival span plus slack
        # so late retries/drains stay inside scheduled territory.
        horizon = 2.0 * arrivals[-1] + 20.0 * self.mean_service()
        schedule = self.injector.schedule(horizon, cfg.workers)
        timeout = self.timeout_cycles()
        mean_service = self.mean_service()
        breaker = (
            CircuitBreaker(self.policy.breaker, mean_service)
            if self.policy.breaker else None
        )
        detect_cycles = self.costs.fault_detect_cycles()
        retry_cycles = self.costs.retry_dispatch_cycles()

        # Event heap: (time, seq, kind, payload).  The monotonic seq
        # breaks equal-time ties in insertion order, so heapq never
        # falls through to comparing kind strings or payloads — pop
        # order depends on the seed alone.
        events: list[tuple[float, int, str, object]] = []
        seq = 0

        def push(time: float, kind: str, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (time, seq, kind, payload))
            seq += 1

        for i, t in enumerate(arrivals):
            push(t, "arrival", _Request(
                rid=i, first_arrival=t,
                is_warmup=i < cfg.warmup_requests,
            ))
        for crash in schedule.crashes:
            push(crash.time, "crash", crash)

        queue: deque[_Request] = deque()
        free: set[int] = set(range(cfg.workers))
        down_until = [0.0] * cfg.workers
        running: dict[int, _Attempt] = {}   # worker -> attempt
        cancelled: set[int] = set()
        next_aid = 0

        report = ResilienceReport(
            scenario=self.scenario.name, policy=self.policy.name,
            offered=cfg.requests,
        )
        latencies: list[float] = []
        first_measured_arrival = arrivals[cfg.warmup_requests] \
            if cfg.warmup_requests < len(arrivals) else arrivals[-1]
        last_completion = first_measured_arrival

        def count(request: _Request) -> bool:
            return not request.is_warmup

        def handle_failure(request: _Request, at: float, reason: str) -> None:
            retry = self.policy.retry
            if retry is not None and request.retries_used < retry.max_retries:
                request.retries_used += 1
                backoff = retry.next_backoff(
                    request.last_backoff, self._retry_rng
                )
                request.last_backoff = backoff
                self.stats.bump("resilience.retries")
                push(
                    at + backoff * mean_service + retry_cycles,
                    "arrival", request,
                )
                return
            if count(request):
                report.failed += 1
            self.stats.bump(f"resilience.failed_{reason}")

        def dispatch(at: float) -> None:
            nonlocal next_aid, last_completion
            while free and queue:
                request = queue.popleft()
                if at > request.deadline:
                    # Abandoned in queue: the client's deadline passed.
                    if count(request):
                        report.timeouts += 1
                    self.stats.bump("resilience.queue_timeouts")
                    handle_failure(request, at, "timeout")
                    continue
                worker = min(free)
                free.discard(worker)
                accelerated = breaker is None or breaker.allow_accelerated(at)
                if accelerated:
                    base = self._service_rng.choice(self.service_times)
                    path = "accelerated"
                else:
                    base = self._service_rng.choice(
                        self.software_service_times
                    )
                    path = "software"
                    if self.complex_ is not None:
                        self.complex_.note_software_request()
                service = base * self.injector.straggler_multiplier()
                doomed_by = ""
                finish = at + service
                if path == "accelerated":
                    window = schedule.faulted_at(at)
                    if window is not None:
                        doomed_by = window.kind
                        finish += detect_cycles
                attempt = _Attempt(
                    aid=next_aid, request=request, worker=worker,
                    start=at, service=service, path=path,
                    doomed_by=doomed_by,
                )
                next_aid += 1
                running[worker] = attempt
                if count(request):
                    report.attempts += 1
                    if path == "software":
                        report.software_path_attempts += 1
                push(finish, "finish", attempt)

        while events:
            at, _, kind, payload = heapq.heappop(events)

            if kind == "arrival":
                request = payload
                if (
                    self.policy.max_queue is not None
                    and len(queue) >= self.policy.max_queue
                ):
                    if count(request):
                        report.shed += 1
                    self.stats.bump("resilience.shed")
                    continue
                request.enqueued_at = at
                request.deadline = (
                    at + timeout if timeout is not None else float("inf")
                )
                queue.append(request)
                dispatch(at)

            elif kind == "finish":
                attempt = payload
                if attempt.aid in cancelled:
                    continue
                worker = attempt.worker
                running.pop(worker, None)
                if down_until[worker] <= at:
                    free.add(worker)
                request = attempt.request
                if attempt.doomed_by:
                    if count(request):
                        report.faulted_attempts += 1
                        report.wasted_cycles += at - attempt.start
                    self.stats.bump("resilience.fault_failures")
                    self.stats.bump(
                        f"resilience.fault_{attempt.doomed_by}"
                    )
                    if breaker is not None and breaker.record_failure(at):
                        report.breaker_trips += 1
                        self.stats.bump("resilience.breaker_trips")
                        if self.complex_ is not None:
                            self.complex_.trip_to_software()
                    handle_failure(request, at, "fault")
                else:
                    if (
                        breaker is not None
                        and attempt.path == "accelerated"
                        and breaker.record_success(at)
                        and self.complex_ is not None
                    ):
                        self.complex_.restore_accelerated()
                    if count(request):
                        report.succeeded += 1
                        latencies.append(at - request.first_arrival)
                        last_completion = max(last_completion, at)
                    self.stats.bump("resilience.successes")
                dispatch(at)

            elif kind == "crash":
                crash = payload
                worker = crash.worker
                if down_until[worker] > at:
                    continue    # already down; rare double hit
                down_until[worker] = at + crash.downtime
                free.discard(worker)
                self.stats.bump("resilience.worker_crashes")
                attempt = running.pop(worker, None)
                if attempt is not None:
                    cancelled.add(attempt.aid)
                    if count(attempt.request):
                        report.faulted_attempts += 1
                        report.wasted_cycles += at - attempt.start
                    self.stats.bump("resilience.crash_kills")
                    handle_failure(attempt.request, at, "crash")
                push(at + crash.downtime, "repair", worker)

            elif kind == "repair":
                worker = payload
                if worker not in running and down_until[worker] <= at:
                    free.add(worker)
                self.stats.bump("resilience.worker_repairs")
                dispatch(at)

        # -- summarize ------------------------------------------------------
        if latencies:
            report.mean_latency = sum(latencies) / len(latencies)
            report.p99_latency = percentile(latencies, 99)
            report.p999_latency = percentile(latencies, 99.9)
        report.span_cycles = max(
            last_completion - first_measured_arrival, 1.0
        )
        report.goodput_per_kcycle = (
            1000.0 * report.succeeded / report.span_cycles
        )
        return report


def run_matrix(
    service_times: list[float],
    software_service_times: list[float],
    scenarios: list[FaultScenario],
    policies: list[ResiliencePolicy],
    config: ResilientServerConfig | None = None,
    seed: int = 17,
    costs: CostModel = DEFAULT_COSTS,
) -> list[ResilienceReport]:
    """Sweep scenarios × policies with one independent run each.

    Every scenario forks its own rng stream from ``seed``; all
    policies within a scenario share that stream's derivation, so they
    face *identical* arrival processes and fault schedules — the
    policy is the only variable in a row-to-row comparison — and
    adding a scenario never perturbs the others' results.
    """
    reports: list[ResilienceReport] = []
    for scenario in scenarios:
        for policy in policies:
            rng = DeterministicRng(seed).fork(
                f"resilience/{scenario.name}"
            )
            sim = ResilientServerSimulator(
                service_times, software_service_times,
                scenario, policy, config, rng, costs,
            )
            reports.append(sim.run())
    return reports
