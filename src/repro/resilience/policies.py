"""Resilience policies: timeouts, retries, circuit breaking, shedding.

The knobs an operator turns to keep goodput up when the environment of
:mod:`repro.resilience.faults` turns hostile:

* **per-request timeout** — a request that waits in queue past its
  deadline is abandoned (the client has already given up);
* **retry with exponential backoff + decorrelated jitter** — failed or
  timed-out requests re-enter after a randomized backoff (the AWS
  "decorrelated jitter" recurrence keeps retry storms from
  synchronizing);
* **circuit breaker** — consecutive accelerated-path failures trip the
  breaker, which routes requests to the *software* path (every
  Section-4 accelerator has a documented software fallback, so this
  trades throughput for availability instead of failing);
* **admission control** — a bounded queue sheds arrivals instead of
  letting latency grow without bound near saturation.

All policy state machines are deterministic given a
:class:`~repro.common.rng.DeterministicRng` stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import DeterministicRng


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with decorrelated jitter.

    Backoffs are expressed in multiples of the workload's mean service
    time (the simulator resolves them to cycles), so one policy tunes
    sensibly across workloads whose requests differ by orders of
    magnitude in cycle cost.
    """

    max_retries: int = 3
    base_backoff_services: float = 0.5
    max_backoff_services: float = 50.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if (
            self.base_backoff_services <= 0
            or self.max_backoff_services < self.base_backoff_services
        ):
            raise ValueError(
                "need 0 < base_backoff <= max_backoff, got "
                f"base={self.base_backoff_services} "
                f"max={self.max_backoff_services}"
            )

    def next_backoff(self, previous: float, rng: DeterministicRng) -> float:
        """Decorrelated jitter: ``min(cap, U(base, 3 * previous))``.

        ``previous`` is the last backoff used (pass 0.0 before the
        first retry); both are in service-time multiples.  The
        recurrence grows roughly exponentially in expectation while
        decorrelating concurrent clients.
        """
        upper = max(self.base_backoff_services, 3.0 * previous)
        return min(
            self.max_backoff_services,
            rng.uniform(self.base_backoff_services, upper),
        )


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Trip thresholds and recovery pacing for the breaker."""

    #: consecutive accelerated-path failures that open the breaker
    failure_threshold: int = 5
    #: how long the breaker stays open before probing (half-open),
    #: × mean service time
    cooldown_services: float = 5.0
    #: consecutive successes a half-open breaker needs to close
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_services <= 0:
            raise ValueError("cooldown_services must be positive")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")


class CircuitBreaker:
    """Runtime breaker state machine (closed → open → half-open).

    While open, :meth:`allow_accelerated` is False and the dispatcher
    must serve requests on the software path; after the cooldown the
    breaker goes half-open and lets accelerated probes through until
    ``probe_successes`` in a row close it (one failure re-opens it).
    """

    def __init__(
        self,
        policy: CircuitBreakerPolicy,
        mean_service_cycles: float = 1.0,
    ) -> None:
        if mean_service_cycles <= 0:
            raise ValueError("mean_service_cycles must be positive")
        self.policy = policy
        self.cooldown_cycles = policy.cooldown_services * mean_service_cycles
        self.state = "closed"
        self.trips = 0
        self._consecutive_failures = 0
        self._probe_streak = 0
        self._open_until = 0.0

    def allow_accelerated(self, now: float) -> bool:
        """May this attempt use the accelerated path at time ``now``?"""
        if self.state == "open":
            if now >= self._open_until:
                self.state = "half_open"
                self._probe_streak = 0
                return True
            return False
        return True

    def record_success(self, now: float) -> bool:
        """Note an accelerated-path success; True when the breaker closed."""
        self._consecutive_failures = 0
        if self.state == "half_open":
            self._probe_streak += 1
            if self._probe_streak >= self.policy.probe_successes:
                self.state = "closed"
                return True
        return False

    def record_failure(self, now: float) -> bool:
        """Note an accelerated-path failure; True when the breaker opened."""
        if self.state == "half_open":
            self._trip(now)
            return True
        self._consecutive_failures += 1
        if (
            self.state == "closed"
            and self._consecutive_failures >= self.policy.failure_threshold
        ):
            self._trip(now)
            return True
        return False

    def _trip(self, now: float) -> None:
        self.state = "open"
        self.trips += 1
        self._consecutive_failures = 0
        self._probe_streak = 0
        self._open_until = now + self.cooldown_cycles


@dataclass(frozen=True)
class RetryBudgetPolicy:
    """SRE-style retry budget: retries spend tokens successes earn.

    Every successful first attempt deposits ``ratio`` tokens; each
    retry withdraws one.  When the bucket is empty the retry is simply
    not sent — which caps the fleet-wide retry amplification at
    ``1 + ratio`` even when every client times out, breaking the
    retry-storm sustaining loop of a metastable failure.
    """

    #: tokens earned per successful request (≈ max retry fraction)
    ratio: float = 0.1
    #: bucket depth, in tokens (bounds the post-incident retry burst)
    burst: float = 10.0
    #: tokens the bucket starts with
    initial: float = 10.0

    def __post_init__(self) -> None:
        if self.ratio < 0:
            raise ValueError("ratio cannot be negative")
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        if not 0 <= self.initial <= self.burst:
            raise ValueError(
                f"initial must be in [0, burst], got {self.initial}"
            )


class RetryBudget:
    """Runtime token bucket for :class:`RetryBudgetPolicy`."""

    def __init__(self, policy: RetryBudgetPolicy) -> None:
        self.policy = policy
        self.tokens = policy.initial
        self.spent = 0
        self.denied = 0

    def record_success(self) -> None:
        """A first attempt succeeded: accrue ``ratio`` tokens."""
        self.tokens = min(
            self.policy.burst, self.tokens + self.policy.ratio
        )

    def try_spend(self) -> bool:
        """Withdraw one token for a retry; False → do not retry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False


@dataclass(frozen=True)
class AdaptiveConcurrencyPolicy:
    """AIMD concurrency limit driven by observed latency.

    The node-local analogue of TCP congestion control: every completed
    request whose latency stays under ``target_latency_services``
    grows the limit additively; one over-target completion cuts it
    multiplicatively.  The limit converges to the largest concurrency
    the backend can serve within the target — admission beyond it is
    shed at enqueue time, before any service capacity is wasted.
    """

    #: latency a completion must beat, × mean service time
    target_latency_services: float = 8.0
    #: additive increase per under-target completion
    increase: float = 0.1
    #: multiplicative decrease factor on an over-target completion
    decrease: float = 0.7
    #: limit bounds (min keeps the node from starving itself)
    min_limit: float = 1.0
    max_limit: float = 256.0

    def __post_init__(self) -> None:
        if self.target_latency_services <= 0:
            raise ValueError("target_latency_services must be positive")
        if self.increase <= 0:
            raise ValueError("increase must be positive")
        if not 0.0 < self.decrease < 1.0:
            raise ValueError(
                f"decrease must be in (0, 1), got {self.decrease}"
            )
        if not 1.0 <= self.min_limit <= self.max_limit:
            raise ValueError(
                "need 1 <= min_limit <= max_limit, got "
                f"min={self.min_limit} max={self.max_limit}"
            )


class AdaptiveConcurrencyLimit:
    """Runtime AIMD state for :class:`AdaptiveConcurrencyPolicy`."""

    def __init__(
        self,
        policy: AdaptiveConcurrencyPolicy,
        mean_service_cycles: float = 1.0,
    ) -> None:
        if mean_service_cycles <= 0:
            raise ValueError("mean_service_cycles must be positive")
        self.policy = policy
        self.target_cycles = (
            policy.target_latency_services * mean_service_cycles
        )
        self.limit = policy.max_limit
        self.decreases = 0

    def admit(self, outstanding: int) -> bool:
        """May a request enter with ``outstanding`` already in the node?"""
        return outstanding < self.limit

    def record(self, latency_cycles: float) -> None:
        """Feed one completion's latency into the AIMD loop."""
        p = self.policy
        if latency_cycles <= self.target_cycles:
            self.limit = min(p.max_limit, self.limit + p.increase)
        else:
            self.limit = max(p.min_limit, self.limit * p.decrease)
            self.decreases += 1


@dataclass(frozen=True)
class ResiliencePolicy:
    """One named bundle of the four mechanisms (None disables each)."""

    name: str = "no-policy"
    #: per-request deadline in units of the mean service time
    #: (None → clients wait forever)
    timeout_service_multiple: float | None = None
    retry: RetryPolicy | None = None
    breaker: CircuitBreakerPolicy | None = None
    #: admission control: queued requests beyond this are shed
    #: (None → unbounded FIFO, the seed model's behavior)
    max_queue: int | None = None

    def __post_init__(self) -> None:
        if (
            self.timeout_service_multiple is not None
            and self.timeout_service_multiple <= 0
        ):
            raise ValueError("timeout_service_multiple must be positive")
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")


def no_policy() -> ResiliencePolicy:
    """The seed model's behavior: fail once, wait forever, never shed."""
    return ResiliencePolicy(name="no-policy")


def retries_only() -> ResiliencePolicy:
    """Retries and timeouts without breaker or admission control."""
    return ResiliencePolicy(
        name="retries",
        timeout_service_multiple=20.0,
        retry=RetryPolicy(),
    )


def full_policy() -> ResiliencePolicy:
    """Timeout + retries + circuit breaker + bounded queue."""
    return ResiliencePolicy(
        name="retries+breaker",
        timeout_service_multiple=20.0,
        retry=RetryPolicy(),
        breaker=CircuitBreakerPolicy(),
        max_queue=256,
    )


def standard_policies() -> list[ResiliencePolicy]:
    """The policy axis the CLI and benchmark sweep."""
    return [no_policy(), retries_only(), full_policy()]
