"""Resilience policies: timeouts, retries, circuit breaking, shedding.

The knobs an operator turns to keep goodput up when the environment of
:mod:`repro.resilience.faults` turns hostile:

* **per-request timeout** — a request that waits in queue past its
  deadline is abandoned (the client has already given up);
* **retry with exponential backoff + decorrelated jitter** — failed or
  timed-out requests re-enter after a randomized backoff (the AWS
  "decorrelated jitter" recurrence keeps retry storms from
  synchronizing);
* **circuit breaker** — consecutive accelerated-path failures trip the
  breaker, which routes requests to the *software* path (every
  Section-4 accelerator has a documented software fallback, so this
  trades throughput for availability instead of failing);
* **admission control** — a bounded queue sheds arrivals instead of
  letting latency grow without bound near saturation.

All policy state machines are deterministic given a
:class:`~repro.common.rng.DeterministicRng` stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import DeterministicRng


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with decorrelated jitter.

    Backoffs are expressed in multiples of the workload's mean service
    time (the simulator resolves them to cycles), so one policy tunes
    sensibly across workloads whose requests differ by orders of
    magnitude in cycle cost.
    """

    max_retries: int = 3
    base_backoff_services: float = 0.5
    max_backoff_services: float = 50.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if (
            self.base_backoff_services <= 0
            or self.max_backoff_services < self.base_backoff_services
        ):
            raise ValueError(
                "need 0 < base_backoff <= max_backoff, got "
                f"base={self.base_backoff_services} "
                f"max={self.max_backoff_services}"
            )

    def next_backoff(self, previous: float, rng: DeterministicRng) -> float:
        """Decorrelated jitter: ``min(cap, U(base, 3 * previous))``.

        ``previous`` is the last backoff used (pass 0.0 before the
        first retry); both are in service-time multiples.  The
        recurrence grows roughly exponentially in expectation while
        decorrelating concurrent clients.
        """
        upper = max(self.base_backoff_services, 3.0 * previous)
        return min(
            self.max_backoff_services,
            rng.uniform(self.base_backoff_services, upper),
        )


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Trip thresholds and recovery pacing for the breaker."""

    #: consecutive accelerated-path failures that open the breaker
    failure_threshold: int = 5
    #: how long the breaker stays open before probing (half-open),
    #: × mean service time
    cooldown_services: float = 5.0
    #: consecutive successes a half-open breaker needs to close
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_services <= 0:
            raise ValueError("cooldown_services must be positive")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")


class CircuitBreaker:
    """Runtime breaker state machine (closed → open → half-open).

    While open, :meth:`allow_accelerated` is False and the dispatcher
    must serve requests on the software path; after the cooldown the
    breaker goes half-open and lets accelerated probes through until
    ``probe_successes`` in a row close it (one failure re-opens it).
    """

    def __init__(
        self,
        policy: CircuitBreakerPolicy,
        mean_service_cycles: float = 1.0,
    ) -> None:
        if mean_service_cycles <= 0:
            raise ValueError("mean_service_cycles must be positive")
        self.policy = policy
        self.cooldown_cycles = policy.cooldown_services * mean_service_cycles
        self.state = "closed"
        self.trips = 0
        self._consecutive_failures = 0
        self._probe_streak = 0
        self._open_until = 0.0

    def allow_accelerated(self, now: float) -> bool:
        """May this attempt use the accelerated path at time ``now``?"""
        if self.state == "open":
            if now >= self._open_until:
                self.state = "half_open"
                self._probe_streak = 0
                return True
            return False
        return True

    def record_success(self, now: float) -> bool:
        """Note an accelerated-path success; True when the breaker closed."""
        self._consecutive_failures = 0
        if self.state == "half_open":
            self._probe_streak += 1
            if self._probe_streak >= self.policy.probe_successes:
                self.state = "closed"
                return True
        return False

    def record_failure(self, now: float) -> bool:
        """Note an accelerated-path failure; True when the breaker opened."""
        if self.state == "half_open":
            self._trip(now)
            return True
        self._consecutive_failures += 1
        if (
            self.state == "closed"
            and self._consecutive_failures >= self.policy.failure_threshold
        ):
            self._trip(now)
            return True
        return False

    def _trip(self, now: float) -> None:
        self.state = "open"
        self.trips += 1
        self._consecutive_failures = 0
        self._probe_streak = 0
        self._open_until = now + self.cooldown_cycles


@dataclass(frozen=True)
class ResiliencePolicy:
    """One named bundle of the four mechanisms (None disables each)."""

    name: str = "no-policy"
    #: per-request deadline in units of the mean service time
    #: (None → clients wait forever)
    timeout_service_multiple: float | None = None
    retry: RetryPolicy | None = None
    breaker: CircuitBreakerPolicy | None = None
    #: admission control: queued requests beyond this are shed
    #: (None → unbounded FIFO, the seed model's behavior)
    max_queue: int | None = None

    def __post_init__(self) -> None:
        if (
            self.timeout_service_multiple is not None
            and self.timeout_service_multiple <= 0
        ):
            raise ValueError("timeout_service_multiple must be positive")
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")


def no_policy() -> ResiliencePolicy:
    """The seed model's behavior: fail once, wait forever, never shed."""
    return ResiliencePolicy(name="no-policy")


def retries_only() -> ResiliencePolicy:
    """Retries and timeouts without breaker or admission control."""
    return ResiliencePolicy(
        name="retries",
        timeout_service_multiple=20.0,
        retry=RetryPolicy(),
    )


def full_policy() -> ResiliencePolicy:
    """Timeout + retries + circuit breaker + bounded queue."""
    return ResiliencePolicy(
        name="retries+breaker",
        timeout_service_multiple=20.0,
        retry=RetryPolicy(),
        breaker=CircuitBreakerPolicy(),
        max_queue=256,
    )


def standard_policies() -> list[ResiliencePolicy]:
    """The policy axis the CLI and benchmark sweep."""
    return [no_policy(), retries_only(), full_policy()]
