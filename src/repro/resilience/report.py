"""Degraded-mode metrics: what a fault scenario did to the tier.

:class:`ResilienceReport` is the per-(scenario, policy) summary the
resilience simulator emits; :func:`repro.core.report.resilience_report`
renders lists of them in the repo's fixed-width table layout.  This
module deliberately imports nothing from :mod:`repro.core` so the
reporting layer can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ResilienceReport:
    """Availability/goodput/tail summary of one resilient run.

    All request counts exclude the warmup prefix (see
    ``warmup_requests`` on the run config); latency percentiles are
    over *successful* measured requests only, in cycles.
    """

    scenario: str
    policy: str
    #: measured requests offered (arrivals after warmup)
    offered: int = 0
    #: measured requests that completed successfully
    succeeded: int = 0
    #: exhausted their retry budget (or failed with none configured)
    failed: int = 0
    #: rejected by admission control (bounded queue full)
    shed: int = 0
    #: abandoned in queue past their deadline, all retries included
    timeouts: int = 0
    #: service attempts dispatched for measured requests
    attempts: int = 0
    #: attempts served on the software path (breaker open)
    software_path_attempts: int = 0
    #: attempts killed by accelerator faults or worker crashes
    faulted_attempts: int = 0
    #: times the circuit breaker opened
    breaker_trips: int = 0
    #: cycles of worker time wasted on attempts that did not succeed
    wasted_cycles: float = 0.0
    #: simulated horizon (first measured arrival → last completion)
    span_cycles: float = 0.0
    mean_latency: float = 0.0
    p99_latency: float = 0.0
    p999_latency: float = 0.0
    #: successful measured requests per kilocycle
    goodput_per_kcycle: float = 0.0

    @property
    def availability(self) -> float:
        """Fraction of measured offered requests that succeeded."""
        return self.succeeded / self.offered if self.offered else 0.0

    @property
    def retry_amplification(self) -> float:
        """Service attempts per admitted request (1.0 = no retries)."""
        admitted = self.offered - self.shed
        return self.attempts / admitted if admitted else 0.0

    @property
    def software_path_share(self) -> float:
        """Fraction of attempts re-costed onto the software path."""
        return (
            self.software_path_attempts / self.attempts
            if self.attempts else 0.0
        )

    def goodput_vs(self, baseline: "ResilienceReport") -> float:
        """This run's goodput as a fraction of a baseline run's."""
        if baseline.goodput_per_kcycle == 0.0:
            return 0.0
        return self.goodput_per_kcycle / baseline.goodput_per_kcycle


@dataclass
class ScenarioSweep:
    """All policy runs of one scenario, plus the fault-free reference."""

    scenario: str
    reports: list[ResilienceReport] = field(default_factory=list)
