"""Fault injection and resilience policies for the server model.

The north-star deployment runs the accelerated tier hot near
saturation; this subsystem models what production meets there —
accelerator faults, worker crashes, stragglers — and the policies
(timeouts, retries with decorrelated jitter, a circuit breaker onto
the software fallback path, admission control) that keep goodput and
tail latency acceptable while degraded.

* :mod:`repro.resilience.faults`    — deterministic fault schedules
* :mod:`repro.resilience.policies`  — retry/breaker/shedding knobs
* :mod:`repro.resilience.simulator` — the event-driven resilient tier
* :mod:`repro.resilience.report`    — degraded-mode metrics
"""

from repro.resilience.faults import (
    ACCEL_FAULT_KINDS,
    FaultInjector,
    FaultSchedule,
    FaultScenario,
    FaultWindow,
    WorkerCrash,
    standard_scenarios,
)
from repro.resilience.policies import (
    AdaptiveConcurrencyLimit,
    AdaptiveConcurrencyPolicy,
    CircuitBreaker,
    CircuitBreakerPolicy,
    ResiliencePolicy,
    RetryBudget,
    RetryBudgetPolicy,
    RetryPolicy,
    full_policy,
    no_policy,
    retries_only,
    standard_policies,
)
from repro.resilience.report import ResilienceReport, ScenarioSweep
from repro.resilience.simulator import (
    ResilientServerConfig,
    ResilientServerSimulator,
    run_matrix,
)

__all__ = [
    "ACCEL_FAULT_KINDS", "FaultInjector", "FaultSchedule", "FaultScenario",
    "FaultWindow", "WorkerCrash", "standard_scenarios",
    "AdaptiveConcurrencyLimit", "AdaptiveConcurrencyPolicy",
    "CircuitBreaker", "CircuitBreakerPolicy", "ResiliencePolicy",
    "RetryBudget", "RetryBudgetPolicy",
    "RetryPolicy", "full_policy", "no_policy", "retries_only",
    "standard_policies",
    "ResilienceReport", "ScenarioSweep",
    "ResilientServerConfig", "ResilientServerSimulator", "run_matrix",
]
