"""CalibrationReport: fitted knobs + twin prediction error, schema-checked.

``to_payload`` emits the ``repro-calibrate/1`` document (written to
``benchmarks/out/calibration.json`` and rendered as the CLI table):
the fitted per-route service/cache parameters and arrival shape, the
per-subsystem MAPE between twin-predicted and measured
goodput/p50/p99/hit-ratio, and the ``what_if`` capacity answer —
``min_nodes_for_slo`` re-run under the *fitted* service distribution
next to the textbook exponential assumption at the same mean.

:func:`append_calibrate_history` adds one ``repro-calibrate-history/1``
row to the shared append-only ``BENCH_history.jsonl`` trajectory, so
twin prediction error is tracked cross-PR next to kernel speedups and
serve goodput.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.core import clock
from repro.core.perf import HISTORY_PATH
from repro.core.report import format_table, pct

CALIBRATE_SCHEMA = "repro-calibrate/1"
CALIBRATE_HISTORY_SCHEMA = "repro-calibrate-history/1"

#: The acceptance bars the smoke gate (and the self-consistency
#: invariant) hold the twin to: predicted p99 and cache hit ratio
#: within 10% of measured on simulator-generated telemetry.
MAPE_P99_BOUND = 0.10
MAPE_HIT_RATIO_BOUND = 0.10

#: Calibration refuses telemetry whose ring dropped more than this
#: fraction of recorded events (the head of the run is gone — fitted
#: arrival shapes and tails would be silently biased).
MAX_DROPPED_FRACTION = 0.01

#: The four twin-predicted vs measured metrics every report carries.
MAPE_METRICS = ("goodput", "p50", "p99", "hit_ratio")


@dataclass
class CalibrationReport:
    """One calibration run, summarized."""

    mode: str = "smoke"
    seed: int = 0
    #: where the telemetry came from: ``twin-self`` (the simulator's
    #: own stream, the CI gate) or a telemetry JSONL path
    source: str = "twin-self"
    events: int = 0
    #: ring-dropped events the producer reported (0 = complete run)
    telemetry_dropped: int = 0
    fitted: dict[str, Any] = field(default_factory=dict)
    measured: dict[str, Any] = field(default_factory=dict)
    predicted: dict[str, Any] = field(default_factory=dict)
    mape: dict[str, float] = field(default_factory=dict)
    what_if: dict[str, Any] = field(default_factory=dict)
    #: present only for ``twin-self`` runs: generating params next to
    #: recovery errors, the self-consistency evidence
    self_test: Optional[dict[str, Any]] = None
    #: latest serve/fleet history context the run calibrated alongside
    history_context: Optional[dict[str, Any]] = None
    ok: bool = False

    def to_payload(self) -> dict[str, Any]:
        return {
            "schema": CALIBRATE_SCHEMA,
            "mode": self.mode,
            "seed": self.seed,
            "source": self.source,
            "events": self.events,
            "telemetry_dropped": self.telemetry_dropped,
            "fitted": self.fitted,
            "measured": self.measured,
            "predicted": self.predicted,
            "mape": self.mape,
            "what_if": self.what_if,
            "self_test": self.self_test,
            "history_context": self.history_context,
            "bounds": {
                "mape_p99": MAPE_P99_BOUND,
                "mape_hit_ratio": MAPE_HIT_RATIO_BOUND,
            },
            "ok": self.ok,
            "host": {
                "python": sys.version.split()[0],
                "platform": platform.platform(),
            },
        }


def validate_calibration_payload(payload: dict[str, Any]) -> None:
    """Schema check for one ``repro-calibrate/1`` document."""
    if payload.get("schema") != CALIBRATE_SCHEMA:
        raise ValueError(
            f"unexpected calibrate schema: {payload.get('schema')!r}"
        )
    if payload.get("mode") not in ("smoke", "full"):
        raise ValueError(
            f"calibrate payload ['mode'] must be smoke|full, "
            f"got {payload.get('mode')!r}"
        )
    if not isinstance(payload.get("seed"), int):
        raise ValueError("calibrate payload ['seed'] must be an int")
    source = payload.get("source")
    if not isinstance(source, str) or not source:
        raise ValueError(
            "calibrate payload ['source'] must be a non-empty string"
        )
    for name in ("events", "telemetry_dropped"):
        value = payload.get(name)
        if not isinstance(value, int) or value < 0:
            raise ValueError(
                f"calibrate payload [{name!r}] must be a non-negative "
                f"int, got {value!r}"
            )
    if payload["events"] < 1:
        raise ValueError("calibrate payload fitted zero events")
    fitted = payload.get("fitted")
    if not isinstance(fitted, dict) or not fitted.get("routes"):
        raise ValueError(
            "calibrate payload ['fitted']['routes'] must be non-empty"
        )
    for route, fit in fitted["routes"].items():
        service = fit.get("service", {})
        sample = service.get("sample_ms")
        if not isinstance(sample, list) or not sample:
            raise ValueError(
                f"calibrate payload: route {route!r} has no fitted "
                f"service sample"
            )
        if any(not isinstance(v, (int, float)) or v <= 0
               for v in sample):
            raise ValueError(
                f"calibrate payload: route {route!r} sample must be "
                f"positive numbers"
            )
        if sorted(sample) != sample:
            raise ValueError(
                f"calibrate payload: route {route!r} quantile sample "
                f"must be sorted"
            )
        mix = fit.get("cache", {})
        for name in ("hit", "stale", "miss", "coalesced"):
            ratio = mix.get(name)
            if not isinstance(ratio, (int, float)) \
                    or not 0.0 <= ratio <= 1.0:
                raise ValueError(
                    f"calibrate payload: route {route!r} cache "
                    f"[{name!r}] not in [0,1]"
                )
    arrivals = fitted.get("arrivals")
    if not isinstance(arrivals, dict):
        raise ValueError("calibrate payload ['fitted']['arrivals'] missing")
    for name in ("base_rps", "flash_multiplier"):
        value = arrivals.get(name)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(
                f"calibrate payload ['fitted']['arrivals'][{name!r}] "
                f"must be positive, got {value!r}"
            )
    amplitude = arrivals.get("diurnal_amplitude")
    if not isinstance(amplitude, (int, float)) \
            or not 0.0 <= amplitude < 1.0:
        raise ValueError(
            "calibrate payload fitted diurnal_amplitude not in [0,1)"
        )
    for side in ("measured", "predicted"):
        summary = payload.get(side)
        if not isinstance(summary, dict):
            raise ValueError(f"calibrate payload [{side!r}] missing")
        for name in ("goodput_rps", "p50_ms", "p99_ms", "hit_ratio"):
            value = summary.get(name)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"calibrate payload [{side!r}][{name!r}] must be "
                    f"a non-negative number, got {value!r}"
                )
        if not 0.0 <= summary["hit_ratio"] <= 1.0:
            raise ValueError(
                f"calibrate payload [{side!r}]['hit_ratio'] not in [0,1]"
            )
    mape = payload.get("mape")
    if not isinstance(mape, dict):
        raise ValueError("calibrate payload ['mape'] missing")
    for name in MAPE_METRICS + ("overall",):
        value = mape.get(name)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(
                f"calibrate payload ['mape'][{name!r}] must be a "
                f"non-negative number, got {value!r}"
            )
    what_if = payload.get("what_if")
    if not isinstance(what_if, dict):
        raise ValueError("calibrate payload ['what_if'] missing")
    for name in ("render_rps", "slo_latency_ms"):
        value = what_if.get(name)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(
                f"calibrate payload ['what_if'][{name!r}] must be "
                f"positive, got {value!r}"
            )
    for name in ("nodes_fitted", "nodes_assumed"):
        value = what_if.get(name)
        if value is not None and (
            not isinstance(value, int) or value < 1
        ):
            raise ValueError(
                f"calibrate payload ['what_if'][{name!r}] must be a "
                f"positive int or null, got {value!r}"
            )
    for name in ("self_test", "history_context"):
        value = payload.get(name)
        if value is not None and not isinstance(value, dict):
            raise ValueError(
                f"calibrate payload [{name!r}] must be an object or "
                f"null, got {value!r}"
            )
    bounds = payload.get("bounds")
    if not isinstance(bounds, dict):
        raise ValueError("calibrate payload ['bounds'] missing")
    for name in ("mape_p99", "mape_hit_ratio"):
        value = bounds.get(name)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(
                f"calibrate payload ['bounds'][{name!r}] must be "
                f"positive, got {value!r}"
            )
    if not isinstance(payload.get("ok"), bool):
        raise ValueError("calibrate payload ['ok'] must be a bool")
    host = payload.get("host")
    if not isinstance(host, dict) or not host.get("python"):
        raise ValueError("calibrate payload ['host'] must name the python")


def calibrate_history_row(payload: dict[str, Any]) -> dict[str, Any]:
    """The trajectory row for one calibration payload."""
    return {
        "schema": CALIBRATE_HISTORY_SCHEMA,
        "recorded_utc": clock.utc_stamp(),
        "mode": payload["mode"],
        "seed": payload["seed"],
        "source": payload["source"],
        "events": payload["events"],
        "telemetry_dropped": payload["telemetry_dropped"],
        "mape_goodput": payload["mape"]["goodput"],
        "mape_p50": payload["mape"]["p50"],
        "mape_p99": payload["mape"]["p99"],
        "mape_hit_ratio": payload["mape"]["hit_ratio"],
        "mape_overall": payload["mape"]["overall"],
        "what_if_nodes_fitted": payload["what_if"].get("nodes_fitted"),
        "ok": payload["ok"],
        "host": dict(payload["host"]),
    }


def validate_calibrate_history_row(row: dict[str, Any]) -> None:
    """Schema check for one ``repro-calibrate-history/1`` row."""
    if row.get("schema") != CALIBRATE_HISTORY_SCHEMA:
        raise ValueError(
            f"unexpected calibrate-history schema: {row.get('schema')!r}"
        )
    if row.get("mode") not in ("smoke", "full"):
        raise ValueError(
            "calibrate-history row ['mode'] must be smoke|full"
        )
    if not isinstance(row.get("seed"), int):
        raise ValueError("calibrate-history row ['seed'] must be an int")
    source = row.get("source")
    if not isinstance(source, str) or not source:
        raise ValueError(
            "calibrate-history row ['source'] must be a non-empty string"
        )
    for name in ("events", "telemetry_dropped"):
        value = row.get(name)
        if not isinstance(value, int) or value < 0:
            raise ValueError(
                f"calibrate-history row [{name!r}] must be a "
                f"non-negative int, got {value!r}"
            )
    if row["events"] < 1:
        raise ValueError("calibrate-history row fitted zero events")
    for name in ("mape_goodput", "mape_p50", "mape_p99",
                 "mape_hit_ratio", "mape_overall"):
        value = row.get(name)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(
                f"calibrate-history row [{name!r}] must be a "
                f"non-negative number, got {value!r}"
            )
    nodes = row.get("what_if_nodes_fitted")
    if nodes is not None and (not isinstance(nodes, int) or nodes < 1):
        raise ValueError(
            "calibrate-history row ['what_if_nodes_fitted'] must be a "
            "positive int or null"
        )
    if not isinstance(row.get("ok"), bool):
        raise ValueError("calibrate-history row ['ok'] must be a bool")
    host = row.get("host")
    if not isinstance(host, dict) or not host.get("python"):
        raise ValueError(
            "calibrate-history row ['host'] must name the python"
        )
    if not isinstance(row.get("recorded_utc"), str):
        raise ValueError(
            "calibrate-history row ['recorded_utc'] must be a string"
        )


def append_calibrate_history(
    payload: dict[str, Any], path: Optional[Path] = None
) -> Path:
    """Append one calibrate row to the shared trajectory file."""
    row = calibrate_history_row(payload)
    validate_calibrate_history_row(row)
    path = path or HISTORY_PATH
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def format_calibration_report(payload: dict[str, Any]) -> str:
    """Human-readable calibration summary (the CLI table)."""
    fitted = payload["fitted"]
    arrivals = fitted["arrivals"]
    measured = payload["measured"]
    predicted = payload["predicted"]
    mape = payload["mape"]
    what_if = payload["what_if"]
    rows = [
        ["mode", payload["mode"]],
        ["seed", str(payload["seed"])],
        ["telemetry source", payload["source"]],
        ["events fitted", str(payload["events"])],
        ["telemetry dropped", str(payload["telemetry_dropped"])],
    ]
    for name, fit in sorted(fitted["routes"].items()):
        service = fit["service"]
        mix = fit["cache"]
        rows.append([
            f"route {name}",
            f"w={fit['weight']:.2f} service {service['mean_ms']:.2f}ms "
            f"cv={service['cv']:.2f} p99={service['p99_ms']:.2f}ms "
            f"hit={pct(mix['hit'])}",
        ])
    rows.extend([
        ["arrivals",
         f"{arrivals['base_rps']:.1f} rps, diurnal "
         f"{arrivals['diurnal_amplitude']:.3f}, flash "
         f"x{arrivals['flash_multiplier']:.2f} "
         f"({arrivals['flash_duration_s']:.1f}s)"],
        ["measured",
         f"{measured['goodput_rps']:.1f} rps, p50 "
         f"{measured['p50_ms']:.2f}ms, p99 {measured['p99_ms']:.2f}ms, "
         f"hit {pct(measured['hit_ratio'])}"],
        ["twin predicted",
         f"{predicted['goodput_rps']:.1f} rps, p50 "
         f"{predicted['p50_ms']:.2f}ms, p99 {predicted['p99_ms']:.2f}ms, "
         f"hit {pct(predicted['hit_ratio'])}"],
        ["MAPE goodput/p50/p99/hit",
         f"{pct(mape['goodput'])} / {pct(mape['p50'])} / "
         f"{pct(mape['p99'])} / {pct(mape['hit_ratio'])}"],
        ["MAPE arrival curve", pct(mape.get("arrival_curve", 0.0))],
        ["what-if render load",
         f"{what_if['render_rps']:.1f} rps @ SLO p99 <= "
         f"{what_if['slo_latency_ms']:.1f}ms"],
        ["what-if nodes (fitted dist)",
         str(what_if["nodes_fitted"]) if what_if["nodes_fitted"]
         else f"> {what_if['max_nodes']}"],
        ["what-if nodes (exp. assumption)",
         str(what_if["nodes_assumed"]) if what_if["nodes_assumed"]
         else f"> {what_if['max_nodes']}"],
    ])
    if payload.get("self_test"):
        recovery = payload["self_test"]["recovery"]
        rows.append([
            "self-test recovery",
            f"service mean err {pct(recovery['service_mean_err'])}, "
            f"amplitude err {recovery['amplitude_abs_err']:.3f}, "
            f"flash err {pct(recovery['flash_multiplier_err'])}",
        ])
    bounds = payload["bounds"]
    rows.append([
        f"self-consistency (p99 <= {pct(bounds['mape_p99'], 0)}, "
        f"hit <= {pct(bounds['mape_hit_ratio'], 0)})",
        "PASS" if payload["ok"] else "FAIL",
    ])
    return format_table(
        ["metric", "value"], rows,
        title="digital-twin calibration (fitted vs measured)",
    )
