"""Fit the fleet twin's knobs to measured serve telemetry.

Pure functions from ``repro-serve-telemetry/1`` rows to fitted
parameters — no clocks, no I/O, no global state — so every fit is a
:func:`repro.core.parallel.map_cells` cell and a calibration run is
byte-identical at any ``--jobs`` count.  Three fit families:

* **service times** (per route): method of moments (mean + population
  variance → coefficient of variation) plus quantile matching — the
  fitted *distribution* is the equi-probable midpoint-quantile sample
  of the observed ``render_ms`` values, which is exactly the
  empirical-tuple shape :class:`repro.fleet.topology.NodeSpec`
  consumes (uniform draws from it reproduce the measurement);
* **cache mix** (per route): hit/stale/miss/coalesced ratios over the
  render-path requests;
* **arrival shape**: base rate, diurnal amplitude/phase (least-squares
  sinusoid at the fundamental period over flash-free buckets) and
  flash multiplier/window (longest contiguous super-threshold bucket
  run) recovered from bucketed request timestamps.

The conformance oracle (:func:`repro.conformance.oracles.run_calibrate_oracle`)
re-derives every one of these numbers with independent brute-force
shadows (grid minimizers, counting quantiles), so a silent regression
in this module is a fuzzable divergence, not a quiet drift.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

from repro.common.stats import percentile

#: Reporting grid (percent) for the per-route quantile summary.
QUANTILE_GRID: tuple[float, ...] = (
    1.0, 5.0, 10.0, 25.0, 40.0, 50.0, 60.0, 75.0,
    90.0, 95.0, 99.0, 99.5, 99.9,
)

#: Size of the fitted *equi-probable* sample: ``sample_ms[i]`` is the
#: midpoint quantile ``(i + 0.5) / SAMPLE_POINTS``, so drawing
#: uniformly from the sample (what the twin and ``NodeSpec`` do)
#: reproduces the measured distribution — a tail-heavy grid would
#: overweight its extreme points ~1/len(grid) each and inflate the
#: redrawn p99 far above the measured one.
SAMPLE_POINTS = 128

#: Cache outcomes that reached the render path (``none`` = parse
#: errors / sheds, excluded from cache-mix fits).
RENDER_PATH_OUTCOMES = ("hit", "stale", "miss", "coalesced")

#: Arrival-shape recovery: histogram resolution and the flash
#: detector's threshold over the robust (median) baseline.  1.5×
#: sits above any admissible diurnal peak (amplitude < 0.5 here)
#: and below any flash worth modelling.
ARRIVAL_BUCKETS = 48
FLASH_THRESHOLD = 1.5
#: Below this many events the shape fit degenerates to a flat rate.
MIN_SHAPE_EVENTS = 64


class CalibrationError(ValueError):
    """Telemetry that cannot be calibrated against (empty, truncated
    beyond the refusal bound, or malformed)."""


def mape(predicted: float, measured: float, floor: float = 1e-9) -> float:
    """Absolute percentage error of one prediction, as a fraction."""
    return abs(predicted - measured) / max(abs(measured), floor)


# -- service times: method of moments + quantile matching --------------------------


def fit_service(values: Sequence[float]) -> dict[str, Any]:
    """Moment + quantile fit of one service-time sample (ms).

    Raises :class:`CalibrationError` on an empty sample; a single
    observation (or an all-identical sample) fits exactly with cv 0.
    """
    if not values:
        raise CalibrationError("service fit needs at least one sample")
    n = len(values)
    if min(values) == max(values):
        # Degenerate sample: fit exactly (fsum/n would round).
        mean, var = float(values[0]), 0.0
    else:
        mean = math.fsum(values) / n
        # Method of moments, population variance (two-pass, fsum —
        # the conformance oracle holds this to statistics.pvariance).
        var = math.fsum((v - mean) ** 2 for v in values) / n
    std = math.sqrt(max(var, 0.0))
    cv = std / mean if mean > 0 else 0.0
    sample = tuple(
        percentile(values, (i + 0.5) * 100.0 / SAMPLE_POINTS)
        for i in range(SAMPLE_POINTS)
    )
    return {
        "count": n,
        "mean_ms": mean,
        "std_ms": std,
        "cv": cv,
        "p50_ms": percentile(values, 50),
        "p99_ms": percentile(values, 99),
        "quantiles": {
            f"{q:g}": percentile(values, q) for q in QUANTILE_GRID
        },
        "sample_ms": list(sample),
    }


def exponential_sample(mean: float) -> tuple[float, ...]:
    """The textbook-assumption counterpart of a fitted sample.

    Midpoint quantiles of Exp(mean) on the same equi-probable grid —
    what capacity planning would use if it *assumed* memoryless
    service instead of fitting the measured distribution; the
    ``what_if`` section prices both.
    """
    if mean <= 0:
        raise CalibrationError(f"mean must be positive, got {mean}")
    return tuple(
        max(mean * 1e-3,
            -mean * math.log(1.0 - (i + 0.5) / SAMPLE_POINTS))
        for i in range(SAMPLE_POINTS)
    )


# -- cache mix ---------------------------------------------------------------------


def fit_cache(rows: Sequence[dict]) -> dict[str, Any]:
    """Hit/stale/miss/coalesced ratios over render-path requests."""
    counts = {name: 0 for name in RENDER_PATH_OUTCOMES}
    for row in rows:
        outcome = row.get("cache")
        if outcome in counts:
            counts[outcome] += 1
    total = sum(counts.values())
    ratios = {
        name: (counts[name] / total if total else 0.0)
        for name in RENDER_PATH_OUTCOMES
    }
    ratios["requests"] = total
    return ratios


# -- per-route fit cell ------------------------------------------------------------


def fit_route(rows: Sequence[dict], total_events: int) -> dict[str, Any]:
    """One route's full fit: traffic share, service, cache, hit cost."""
    if not rows:
        raise CalibrationError("route fit needs at least one event")
    cache = fit_cache(rows)
    renders = [
        float(row["render_ms"]) for row in rows
        if row.get("cache") == "miss" and float(row["render_ms"]) > 0.0
    ]
    served_fast = sorted(
        float(row["total_ms"]) for row in rows
        if row.get("cache") in ("hit", "stale")
    )
    hit_ms = percentile(served_fast, 50) if served_fast else 0.1
    bytes_out = [int(row.get("bytes_out", 0)) for row in rows
                 if 200 <= int(row.get("status", 0)) < 300]
    fit = {
        "count": len(rows),
        "weight": len(rows) / max(total_events, 1),
        "cache": cache,
        "hit_ms": hit_ms,
        "bytes_out": (
            int(sum(bytes_out) / len(bytes_out)) if bytes_out else 0
        ),
    }
    # A route served entirely from cache has no service observations;
    # the twin then renders its (≈0 probability) misses at hit cost.
    fit["service"] = (
        fit_service(renders) if renders else fit_service([hit_ms])
    )
    fit["service"]["observed"] = bool(renders)
    return fit


# -- arrival shape -----------------------------------------------------------------


def _solve3(a: list[list[float]], b: list[float]) -> Optional[list[float]]:
    """Gaussian elimination for the 3×3 normal equations (None if
    singular — degenerate bucket layouts fall back to a flat fit)."""
    m = [row[:] + [bi] for row, bi in zip(a, b)]
    for col in range(3):
        pivot = max(range(col, 3), key=lambda r: abs(m[r][col]))
        if abs(m[pivot][col]) < 1e-12:
            return None
        m[col], m[pivot] = m[pivot], m[col]
        for row in range(3):
            if row == col:
                continue
            factor = m[row][col] / m[col][col]
            for k in range(col, 4):
                m[row][k] -= factor * m[col][k]
    return [m[i][3] / m[i][i] for i in range(3)]


def fit_arrivals(
    t_ms: Sequence[float],
    duration_s: Optional[float] = None,
    period_s: Optional[float] = None,
    buckets: int = ARRIVAL_BUCKETS,
) -> dict[str, Any]:
    """Recover (base rate, diurnal sinusoid, flash window) from
    bucketed request timestamps.

    Three passes over the bucket histogram:

    1. robust baseline = median bucket rate (the flash occupies a
       minority of buckets, so the median ignores it);
    2. flash = the longest contiguous run of buckets above
       ``FLASH_THRESHOLD × baseline``; its multiplier is the mean
       observed rate in the window over the diurnal model's rate
       there;
    3. least-squares sinusoid ``b + s·sin(ωt) + c·cos(ωt)`` at the
       fundamental period over the *flash-free* buckets.

    ``curve_mape`` is the fitted λ(t) vs observed bucket-rate error —
    the arrivals subsystem's measure-vs-model accuracy in the report.
    """
    n = len(t_ms)
    if duration_s is None:
        duration_s = (max(t_ms) / 1000.0) if n else 0.0
    if duration_s <= 0:
        raise CalibrationError("arrival fit needs a positive duration")
    flat = {
        "events": n,
        "duration_s": duration_s,
        "base_rps": n / duration_s,
        "diurnal_amplitude": 0.0,
        "diurnal_phase": 0.0,
        "diurnal_period_s": period_s or duration_s,
        "flash_multiplier": 1.0,
        "flash_start_s": 0.0,
        "flash_duration_s": 0.0,
        "buckets": 0,
        "curve_mape": 0.0,
    }
    if n < MIN_SHAPE_EVENTS:
        return flat
    buckets = max(8, min(buckets, n // 8))
    width = duration_s / buckets
    rates = [0.0] * buckets
    for t in t_ms:
        idx = min(buckets - 1, int((t / 1000.0) / width))
        rates[idx] += 1.0 / width
    centers = [(i + 0.5) * width for i in range(buckets)]
    baseline = percentile(rates, 50)
    if baseline <= 0:
        return flat
    # Pass 2: flash window = longest contiguous super-threshold run.
    hot = [r > FLASH_THRESHOLD * baseline for r in rates]
    best_start, best_len, i = 0, 0, 0
    while i < buckets:
        if hot[i]:
            j = i
            while j < buckets and hot[j]:
                j += 1
            if j - i > best_len:
                best_start, best_len = i, j - i
            i = j
        else:
            i += 1
    flash_idx = set(range(best_start, best_start + best_len))
    period = period_s or duration_s
    omega = 2.0 * math.pi / period
    # Pass 3: sinusoid over the flash-free buckets.
    calm = [i for i in range(buckets) if i not in flash_idx]
    design = [(1.0, math.sin(omega * centers[i]),
               math.cos(omega * centers[i])) for i in calm]
    ata = [[sum(r[p] * r[q] for r in design) for q in range(3)]
           for p in range(3)]
    atb = [sum(r[p] * rates[i] for r, i in zip(design, calm))
           for p in range(3)]
    solved = _solve3(ata, atb) if len(calm) >= 8 else None
    if solved is None or solved[0] <= 0:
        base, s_coef, c_coef = (
            sum(rates[i] for i in calm) / max(len(calm), 1), 0.0, 0.0,
        )
    else:
        base, s_coef, c_coef = solved
    amplitude = min(0.999, math.hypot(s_coef, c_coef) / base) \
        if base > 0 else 0.0
    phase = math.atan2(c_coef, s_coef) if amplitude > 1e-6 else 0.0

    def model(t: float, with_flash: bool = True) -> float:
        rate = base + s_coef * math.sin(omega * t) \
            + c_coef * math.cos(omega * t)
        if with_flash and best_len:
            start = best_start * width
            if start <= t < start + best_len * width:
                rate *= multiplier
        return max(rate, 1e-9)

    if best_len:
        observed_flash = sum(rates[i] for i in flash_idx) / best_len
        calm_model = sum(
            model(centers[i], with_flash=False) for i in flash_idx
        ) / best_len
        multiplier = max(1.0, observed_flash / max(calm_model, 1e-9))
    else:
        multiplier = 1.0
    populated = [i for i in range(buckets) if rates[i] > 0]
    curve = (
        sum(mape(model(centers[i]), rates[i]) for i in populated)
        / len(populated) if populated else 0.0
    )
    return {
        "events": n,
        "duration_s": duration_s,
        "base_rps": base,
        "diurnal_amplitude": amplitude,
        "diurnal_phase": phase,
        "diurnal_period_s": period,
        "flash_multiplier": multiplier,
        "flash_start_s": best_start * width,
        "flash_duration_s": best_len * width,
        "buckets": buckets,
        "curve_mape": curve,
    }


# -- measured-summary (the reference side of every MAPE) ---------------------------


def summarize_rows(rows: Sequence[dict]) -> dict[str, Any]:
    """What the telemetry *measured*: the reference for every MAPE.

    Hit ratio counts ``hit`` + ``stale`` as served-from-cache over the
    render-path requests (coalesced requests rode someone else's
    render, so they count toward the denominator only) — the same
    bookkeeping on both the measured and twin-predicted side, which is
    what makes the MAPE a model error rather than a definition error.
    """
    if not rows:
        raise CalibrationError("cannot summarize an empty telemetry stream")
    latencies = [
        float(row["total_ms"]) for row in rows
        if 200 <= int(row.get("status", 0)) < 300
    ]
    if not latencies:
        raise CalibrationError("telemetry holds no served (2xx) requests")
    outcomes: dict[str, int] = {}
    for row in rows:
        outcome = str(row.get("cache"))
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    render_path = sum(outcomes.get(o, 0) for o in RENDER_PATH_OUTCOMES)
    cached = outcomes.get("hit", 0) + outcomes.get("stale", 0)
    duration_s = max(float(row["t_ms"]) for row in rows) / 1000.0
    if duration_s <= 0:
        duration_s = 1e-3
    return {
        "events": len(rows),
        "duration_s": duration_s,
        "goodput_rps": len(latencies) / duration_s,
        "p50_ms": percentile(latencies, 50),
        "p99_ms": percentile(latencies, 99),
        "hit_ratio": cached / render_path if render_path else 0.0,
        "outcomes": dict(sorted(outcomes.items())),
    }
