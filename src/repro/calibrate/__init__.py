"""Digital-twin calibration: fit the fleet simulator to telemetry.

The loop (ROADMAP item 3): the serving path measures, the calibrator
fits per-route service-time distributions / fragment-cache ratios /
arrival-shape parameters from ``repro-serve-telemetry/1`` streams,
and the twin re-predicts under the fitted knobs so the prediction
error (MAPE) is a first-class, regression-tracked number.
"""

from repro.calibrate.fit import (
    CalibrationError,
    exponential_sample,
    fit_arrivals,
    fit_cache,
    fit_route,
    fit_service,
    mape,
    summarize_rows,
)
from repro.calibrate.report import (
    CALIBRATE_HISTORY_SCHEMA,
    CALIBRATE_SCHEMA,
    MAPE_HIT_RATIO_BOUND,
    MAPE_P99_BOUND,
    MAX_DROPPED_FRACTION,
    CalibrationReport,
    append_calibrate_history,
    calibrate_history_row,
    format_calibration_report,
    validate_calibrate_history_row,
    validate_calibration_payload,
)
from repro.calibrate.run import (
    calibrate_rows,
    history_context,
    run_calibrate,
    self_calibrate,
)
from repro.calibrate.twin import (
    RouteParams,
    TwinParams,
    ground_truth_params,
    simulate_twin,
)

__all__ = [
    "CALIBRATE_HISTORY_SCHEMA",
    "CALIBRATE_SCHEMA",
    "CalibrationError",
    "CalibrationReport",
    "MAPE_HIT_RATIO_BOUND",
    "MAPE_P99_BOUND",
    "MAX_DROPPED_FRACTION",
    "RouteParams",
    "TwinParams",
    "append_calibrate_history",
    "calibrate_history_row",
    "calibrate_rows",
    "exponential_sample",
    "fit_arrivals",
    "fit_cache",
    "fit_route",
    "fit_service",
    "format_calibration_report",
    "ground_truth_params",
    "history_context",
    "mape",
    "run_calibrate",
    "self_calibrate",
    "simulate_twin",
    "summarize_rows",
    "validate_calibrate_history_row",
    "validate_calibration_payload",
]
