"""Orchestrate one calibration run: fit cells → twin → MAPE → what-if.

``python -m repro calibrate`` lands here.  The flow:

1. obtain a telemetry stream — either a measured
   ``repro-serve-telemetry/1`` JSONL (``--telemetry``) or, by default,
   the *self-consistency* stream: the fleet twin run under pinned
   ground-truth parameters at the seed (the CI gate — calibration
   must recover what generated the data);
2. fan the fit cells (one per route, plus the pooled service fit and
   the arrival-shape fit) over :func:`repro.core.parallel.map_cells`
   — results return in submission order, so the payload is
   byte-identical at any ``--jobs`` count;
3. re-run the twin under the *fitted* parameters and report the
   per-subsystem MAPE (goodput / p50 / p99 / hit ratio) between the
   twin's prediction and the measured summary;
4. answer the ``what_if`` capacity question: ``min_nodes_for_slo`` at
   the fitted peak render load under the fitted service distribution
   next to the textbook exponential assumption at the same mean;
5. write ``benchmarks/out/calibration.json`` + ``calibration.txt``
   and append a ``repro-calibrate-history/1`` row to
   ``BENCH_history.jsonl``.

Calibration *refuses* truncated telemetry (ring-dropped events beyond
:data:`~repro.calibrate.report.MAX_DROPPED_FRACTION`) unless told
otherwise — a stream whose head was dropped silently biases the
arrival shape and the tail fits; ``ServeReport.telemetry_dropped``
carries the producer-side count this check consumes.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Optional

from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.calibrate.fit import (
    CalibrationError,
    exponential_sample,
    fit_arrivals,
    fit_route,
    fit_service,
    mape,
    summarize_rows,
)
from repro.calibrate.report import (
    MAPE_HIT_RATIO_BOUND,
    MAPE_P99_BOUND,
    MAX_DROPPED_FRACTION,
    CalibrationReport,
    append_calibrate_history,
    format_calibration_report,
    validate_calibration_payload,
)
from repro.calibrate.twin import (
    RouteParams,
    TwinParams,
    ground_truth_params,
    simulate_twin,
)
from repro.core.perf import HISTORY_PATH, OUT_DIR
from repro.serve.loadclient import ArrivalShape

#: Render workers the twin assumes (a structural knob, not fitted).
TWIN_WORKERS = 8

#: The what-if question: smallest fleet serving the fitted *peak*
#: render load with p99 within this multiple of the fitted mean.
WHAT_IF_SLO_MEANS = 4.0
WHAT_IF_MAX_NODES = 6


def _fit_cell(item: tuple) -> dict:
    """Module-level cell for process-pool fan-out (must pickle)."""
    kind, _key, data, extra = item
    if kind == "route":
        return fit_route(data, extra)
    if kind == "pooled":
        return fit_service(data)
    if kind == "arrivals":
        return fit_arrivals(
            data, duration_s=extra.get("duration_s"),
            period_s=extra.get("period_s"),
        )
    raise ValueError(f"unknown fit cell kind {kind!r}")


def _twin_params_from_fit(
    fitted: dict[str, Any], workers: int
) -> TwinParams:
    """Rebuild the twin under what calibration recovered."""
    routes = []
    for name in sorted(fitted["routes"]):
        fit = fitted["routes"][name]
        mix = fit["cache"]
        routes.append(RouteParams(
            name=name,
            weight=fit["weight"],
            service_ms=tuple(fit["service"]["sample_ms"]),
            hit_ratio=mix["hit"],
            stale_ratio=mix["stale"],
            coalesced_ratio=mix["coalesced"],
            hit_ms=max(fit["hit_ms"], 1e-3),
            bytes_out=max(fit["bytes_out"], 1),
        ))
    arrivals = fitted["arrivals"]
    shape = ArrivalShape(
        rate_rps=max(arrivals["base_rps"], 1e-3),
        duration_s=arrivals["duration_s"],
        flash_multiplier=max(1.0, arrivals["flash_multiplier"]),
        flash_start_s=arrivals["flash_start_s"],
        flash_duration_s=arrivals["flash_duration_s"],
        diurnal_amplitude=min(max(arrivals["diurnal_amplitude"], 0.0),
                              0.999),
        diurnal_period_s=arrivals["diurnal_period_s"],
    )
    return TwinParams(routes=tuple(routes), shape=shape,
                      workers=workers)


def _what_if(
    fitted: dict[str, Any], measured: dict[str, Any],
    seed: int, smoke: bool,
) -> dict[str, Any]:
    """``min_nodes_for_slo`` under fitted vs assumed distributions.

    Working units are milliseconds throughout (the fleet simulator is
    unitless); the arrival rate is the fitted *peak* render load —
    diurnal crest × flash multiplier × the measured miss share — so
    the capacity answer covers the worst traffic the fit saw.
    """
    from repro.fleet.simulator import FleetConfig, min_nodes_for_slo
    from repro.fleet.topology import homogeneous_fleet

    pooled = fitted["pooled_service"]
    arrivals = fitted["arrivals"]
    outcomes = measured["outcomes"]
    render_path = sum(
        outcomes.get(o, 0)
        for o in ("hit", "stale", "miss", "coalesced")
    )
    miss_share = (
        outcomes.get("miss", 0) / render_path if render_path else 0.0
    )
    peak_rps = (
        arrivals["base_rps"]
        * (1.0 + arrivals["diurnal_amplitude"])
        * arrivals["flash_multiplier"]
    )
    render_rps = max(peak_rps * miss_share, 1e-3)
    slo_ms = WHAT_IF_SLO_MEANS * pooled["mean_ms"]
    config = FleetConfig(
        requests=400 if smoke else 1_200,
        warmup_requests=24,
        key_population=512,
        max_queue=128,
    )
    fitted_sample = tuple(pooled["sample_ms"])
    assumed_sample = exponential_sample(pooled["mean_ms"])
    nodes = {}
    for label, sample in (("fitted", fitted_sample),
                          ("assumed", assumed_sample)):
        nodes[label] = min_nodes_for_slo(
            lambda n, s=sample, lb=label: homogeneous_fleet(
                f"calibrated-{lb}-{n}", s, nodes=n
            ),
            arrival_rate=render_rps / 1000.0,
            slo_latency=slo_ms,
            config=config,
            seed=seed,
            max_nodes=WHAT_IF_MAX_NODES,
        )
    return {
        "render_rps": render_rps,
        "miss_share": miss_share,
        "slo_latency_ms": slo_ms,
        "max_nodes": WHAT_IF_MAX_NODES,
        "nodes_fitted": nodes["fitted"],
        "nodes_assumed": nodes["assumed"],
    }


def calibrate_rows(
    rows: list[dict],
    *,
    seed: int = DEFAULT_SEED,
    smoke: bool = True,
    jobs: Optional[int] = None,
    source: str = "rows",
    telemetry_dropped: int = 0,
    allow_truncated: bool = False,
    duration_s: Optional[float] = None,
    period_s: Optional[float] = None,
    workers: int = TWIN_WORKERS,
    reference_rows: Optional[list[dict]] = None,
) -> CalibrationReport:
    """Fit one telemetry stream and score the twin against it.

    ``reference_rows`` (when given) is the measured summary the
    prediction is scored against — the superset-monotonicity
    invariant fits a subset while keeping the full stream as the
    reference.  Raises :class:`CalibrationError` for empty streams
    and for truncated ones unless ``allow_truncated``.
    """
    from repro.core.parallel import map_cells

    if not rows:
        raise CalibrationError("no telemetry events to calibrate against")
    recorded = len(rows) + telemetry_dropped
    if telemetry_dropped and not allow_truncated:
        fraction = telemetry_dropped / recorded
        if fraction > MAX_DROPPED_FRACTION:
            raise CalibrationError(
                f"telemetry ring dropped {telemetry_dropped} of "
                f"{recorded} events ({fraction:.1%} > "
                f"{MAX_DROPPED_FRACTION:.0%}); the head of the run is "
                f"gone — refusing to fit (pass allow_truncated=True "
                f"to override)"
            )
    measured = summarize_rows(reference_rows or rows)
    by_route: dict[str, list[dict]] = {}
    for row in rows:
        by_route.setdefault(str(row["route"]), []).append(row)
    renders = [
        float(row["render_ms"]) for row in rows
        if row.get("cache") == "miss" and float(row["render_ms"]) > 0.0
    ]
    if not renders:
        raise CalibrationError(
            "telemetry holds no rendered (miss) requests; nothing to "
            "fit service times from"
        )
    t_ms = [float(row["t_ms"]) for row in rows]
    shape_spec = {"duration_s": duration_s, "period_s": period_s}
    items: list[tuple] = [
        ("route", name, by_route[name], len(rows))
        for name in sorted(by_route)
    ]
    items.append(("pooled", "*", renders, None))
    items.append(("arrivals", "*", t_ms, shape_spec))
    cells = map_cells(_fit_cell, items, jobs=jobs,
                      label="calibrate-fit")
    fitted: dict[str, Any] = {"routes": {}, "workers": workers}
    for item, cell in zip(items, cells):
        kind, key = item[0], item[1]
        if kind == "route":
            fitted["routes"][key] = cell
        elif kind == "pooled":
            fitted["pooled_service"] = cell
        else:
            fitted["arrivals"] = cell
    params = _twin_params_from_fit(fitted, workers)
    predicted = summarize_rows(simulate_twin(
        params, DeterministicRng(seed).fork("calibrate/predict")
    ))
    errors = {
        "goodput": mape(predicted["goodput_rps"],
                        measured["goodput_rps"]),
        "p50": mape(predicted["p50_ms"], measured["p50_ms"]),
        "p99": mape(predicted["p99_ms"], measured["p99_ms"]),
        "hit_ratio": mape(predicted["hit_ratio"],
                          measured["hit_ratio"]),
        "arrival_curve": fitted["arrivals"]["curve_mape"],
    }
    errors["overall"] = (
        errors["goodput"] + errors["p50"] + errors["p99"]
        + errors["hit_ratio"]
    ) / 4.0
    report = CalibrationReport(
        mode="smoke" if smoke else "full",
        seed=seed,
        source=source,
        events=len(rows),
        telemetry_dropped=telemetry_dropped,
        fitted=fitted,
        measured=measured,
        predicted=predicted,
        mape=errors,
        what_if=_what_if(fitted, measured, seed, smoke),
    )
    report.ok = (
        math.isfinite(errors["overall"])
        and errors["p99"] <= MAPE_P99_BOUND
        and errors["hit_ratio"] <= MAPE_HIT_RATIO_BOUND
    )
    return report


def _self_test_section(
    truth: TwinParams, fitted: dict[str, Any]
) -> dict[str, Any]:
    """Generating params next to recovery errors (twin-self runs)."""
    mean_errs = []
    truth_by_name = {r.name: r for r in truth.routes}
    for name, fit in fitted["routes"].items():
        true_route = truth_by_name[name]
        true_mean = sum(true_route.service_ms) / len(true_route.service_ms)
        mean_errs.append(mape(fit["service"]["mean_ms"], true_mean))
    arrivals = fitted["arrivals"]
    return {
        "truth": {
            "base_rps": truth.shape.rate_rps,
            "diurnal_amplitude": truth.shape.diurnal_amplitude,
            "flash_multiplier": truth.shape.flash_multiplier,
            "routes": {
                r.name: {
                    "weight": r.weight,
                    "mean_ms": sum(r.service_ms) / len(r.service_ms),
                    "hit_ratio": r.hit_ratio,
                } for r in truth.routes
            },
        },
        "recovery": {
            "service_mean_err": max(mean_errs),
            "amplitude_abs_err": abs(
                arrivals["diurnal_amplitude"]
                - truth.shape.diurnal_amplitude
            ),
            "flash_multiplier_err": mape(
                arrivals["flash_multiplier"],
                truth.shape.flash_multiplier,
            ),
        },
    }


def self_calibrate(
    seed: int = DEFAULT_SEED,
    smoke: bool = True,
    jobs: Optional[int] = None,
) -> CalibrationReport:
    """The self-consistency loop: twin → telemetry → fit → twin.

    Generates telemetry from the twin under pinned ground truth, then
    calibrates against it — the fitted parameters must reproduce the
    stream they came from within the MAPE bounds.  This is the
    deterministic CI gate (`python -m repro calibrate --smoke`).
    """
    truth = ground_truth_params(smoke)
    rows = simulate_twin(
        truth, DeterministicRng(seed).fork("calibrate/truth")
    )
    report = calibrate_rows(
        rows, seed=seed, smoke=smoke, jobs=jobs, source="twin-self",
        duration_s=truth.shape.duration_s,
        period_s=truth.shape.diurnal_period_s,
        workers=truth.workers,
    )
    report.self_test = _self_test_section(truth, report.fitted)
    return report


def history_context(path: Optional[Path] = None) -> Optional[dict]:
    """The latest serve/perf history rows calibration ran alongside.

    The trajectory file is the ``FleetReport``/``ServeReport`` history
    the calibrator consumes for drift context: the newest serve row's
    goodput/p99/hit-ratio land in the payload so a reader can compare
    the twin's prediction error against what production measured.
    """
    path = path or HISTORY_PATH
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return None
    latest: dict[str, dict] = {}
    for line in lines:
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue
        schema = str(row.get("schema", ""))
        if schema == "repro-serve-history/1":
            latest["serve"] = {
                "recorded_utc": row.get("recorded_utc"),
                "goodput_rps": row.get("goodput_rps"),
                "p99_ms": row.get("p99_ms"),
                "cache_hit_ratio": row.get("cache_hit_ratio"),
            }
        elif schema == "repro-perf-history/1":
            latest["perf"] = {
                "recorded_utc": row.get("recorded_utc"),
                "e2e_speedup": row.get("e2e_speedup"),
            }
    return latest or None


def run_calibrate(
    smoke: bool = False,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
    telemetry: Optional[str | Path] = None,
    telemetry_dropped: int = 0,
    allow_truncated: bool = False,
    out_dir: Optional[Path] = None,
    history_path: Optional[Path] = None,
    append_history: bool = True,
) -> dict[str, Any]:
    """One full calibration run; returns the validated payload.

    Without ``telemetry`` this is the self-consistency gate (twin
    stream at the pinned seed); with it, a measured JSONL is fitted
    and the twin's prediction error against production is reported.
    ``telemetry_dropped`` carries the producer's ring-drop count
    (``ServeReport.telemetry_dropped``) into the refusal check.
    """
    from repro.serve.telemetry import TelemetryLog

    if telemetry is not None:
        telemetry = Path(telemetry)
        if not telemetry.is_file():
            raise CalibrationError(
                f"telemetry file not found: {telemetry}"
            )
        rows = TelemetryLog.read_jsonl(telemetry)
        report = calibrate_rows(
            rows, seed=seed, smoke=smoke, jobs=jobs,
            source=str(telemetry),
            telemetry_dropped=telemetry_dropped,
            allow_truncated=allow_truncated,
        )
    else:
        report = self_calibrate(seed=seed, smoke=smoke, jobs=jobs)
    report.history_context = history_context(history_path)
    payload = report.to_payload()
    validate_calibration_payload(payload)
    out = Path(out_dir) if out_dir is not None else OUT_DIR
    out.mkdir(parents=True, exist_ok=True)
    (out / "calibration.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    (out / "calibration.txt").write_text(
        format_calibration_report(payload) + "\n"
    )
    if append_history:
        append_calibrate_history(payload, path=history_path)
    return payload
