"""Shared utilities: deterministic randomness and statistics plumbing."""

from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.common.stats import (
    Counter,
    Histogram,
    StatRegistry,
    geometric_mean,
    weighted_mean,
)

__all__ = [
    "DEFAULT_SEED",
    "DeterministicRng",
    "Counter",
    "Histogram",
    "StatRegistry",
    "geometric_mean",
    "weighted_mean",
]
