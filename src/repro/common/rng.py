"""Deterministic random-number utilities.

Every stochastic component in this reproduction draws from a
:class:`DeterministicRng` so that all figures in the paper can be
regenerated bit-for-bit.  The class wraps :class:`random.Random` and
adds the handful of samplers the workload generators need (Zipf,
bounded geometric, weighted choice with stable ordering).
"""

from __future__ import annotations

import bisect
import hashlib
import math
import random
from typing import Sequence, TypeVar

T = TypeVar("T")

#: Seed used by every benchmark and example unless overridden.
DEFAULT_SEED = 0x15CA2017  # "ISCA 2017"


class DeterministicRng:
    """A seeded random source with the samplers used by the workloads.

    Parameters
    ----------
    seed:
        Any integer.  Two instances created with the same seed produce
        identical streams regardless of platform.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent, reproducible child stream.

        Child streams let independent generators (e.g. the allocation
        trace and the string-op trace of one application) evolve
        without perturbing each other when one of them is re-tuned.
        The derivation uses a *stable* hash (not Python's salted
        ``hash``) so results reproduce across processes and machines.
        """
        digest = hashlib.blake2b(
            label.encode("utf-8"),
            key=self.seed.to_bytes(16, "little", signed=False),
            digest_size=8,
        ).digest()
        child_seed = int.from_bytes(digest, "little") & 0x7FFFFFFFFFFFFFFF
        return DeterministicRng(child_seed)

    # -- thin pass-throughs -------------------------------------------------

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._random.randint(lo, hi)

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in ``[lo, hi]``."""
        return self._random.uniform(lo, hi)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Pick ``k`` distinct elements."""
        return self._random.sample(items, k)

    def shuffle(self, items: list[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal deviate."""
        return self._random.gauss(mu, sigma)

    # -- workload-specific samplers -----------------------------------------

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with the given (unnormalized) weights."""
        return self._random.choices(items, weights=weights, k=1)[0]

    def zipf(self, n: int, s: float = 1.1, q: float = 0.0) -> int:
        """Zipf-Mandelbrot-distributed rank in ``[0, n)``.

        Used to model the tail-heavy popularity of leaf functions and
        hash-map keys that the paper's Figure 1 characterizes.  The
        shift ``q`` flattens the head (popularity ∝ 1/(rank+1+q)^s) so
        no single element dominates — real branch-site and key
        popularity has a fat head, not a single spike.  The
        implementation inverts the CDF; CDFs are cached per (n, s, q).
        """
        if n <= 0:
            raise ValueError("zipf needs a positive population size")
        cache: dict[tuple[int, float, float], list[float]] = getattr(
            self, "_zipf_cache", None
        ) or {}
        if not hasattr(self, "_zipf_cache"):
            self._zipf_cache = cache
        cdf = cache.get((n, s, q))
        if cdf is None:
            weights = [1.0 / ((k + q) ** s) for k in range(1, n + 1)]
            total = sum(weights)
            cdf = []
            acc = 0.0
            for w in weights:
                acc += w / total
                cdf.append(acc)
            cache[(n, s, q)] = cdf
        u = self._random.random()
        return min(bisect.bisect_left(cdf, u), n - 1)

    def geometric(self, p: float, cap: int | None = None) -> int:
        """Geometric deviate (number of failures before first success).

        ``cap`` clamps the tail so that trace sizes stay bounded.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError("geometric needs p in (0, 1]")
        u = self._random.random()
        value = int(math.log(max(u, 1e-300)) / math.log(1.0 - p)) if p < 1.0 else 0
        if cap is not None:
            value = min(value, cap)
        return value

    def bytes(self, n: int) -> bytes:
        """``n`` reproducible pseudo-random bytes."""
        return self._random.randbytes(n)

    def ascii_word(self, lo: int = 3, hi: int = 10) -> str:
        """A lowercase pseudo-word; used for keys, attributes, slugs."""
        length = self._random.randint(lo, hi)
        letters = "abcdefghijklmnopqrstuvwxyz"
        return "".join(self._random.choice(letters) for _ in range(length))
