"""Event counters and derived statistics.

All simulator components (caches, predictors, accelerators, cost
models) report through a :class:`StatRegistry` so that experiments can
snapshot, diff, and pretty-print a consistent view of what happened
during a run.  This mirrors the role of gem5's stats framework in the
original study, at the granularity this behavioral model needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence


class Counter:
    """A single monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class StatRegistry:
    """A named collection of counters with snapshot/diff support."""

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self._counters: dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """Return (creating on first use) the counter called ``name``."""
        found = self._counters.get(name)
        if found is None:
            found = Counter(name)
            self._counters[name] = found
        return found

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (creates the counter)."""
        self.counter(name).add(amount)

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never bumped)."""
        found = self._counters.get(name)
        return found.value if found else 0

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` guarding divide-by-zero."""
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0

    def per_kilo(self, numerator: str, denominator: str) -> float:
        """Events per thousand of ``denominator`` (e.g. MPKI)."""
        return 1000.0 * self.ratio(numerator, denominator)

    def snapshot(self) -> dict[str, int]:
        """Immutable view of all counter values."""
        return {name: c.value for name, c in self._counters.items()}

    def diff(self, earlier: dict[str, int]) -> dict[str, int]:
        """Counter deltas since an earlier :meth:`snapshot`."""
        return {
            name: value - earlier.get(name, 0)
            for name, value in self.snapshot().items()
            if value != earlier.get(name, 0)
        }

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()

    def merge(self, other: "StatRegistry") -> None:
        """Accumulate another registry's counters into this one."""
        for name, c in other._counters.items():
            self.bump(name, c.value)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self.snapshot().items()))

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self)
        return f"StatRegistry({self.owner}: {body})"


@dataclass
class Histogram:
    """Fixed-bucket histogram for size/latency distributions.

    ``edges`` are the inclusive upper bounds of each bucket; values
    above the last edge fall into an overflow bucket.  This mirrors the
    slab-size distributions of the paper's Figure 8(a).
    """

    edges: list[int]
    counts: list[int] = field(default_factory=list)
    overflow: int = 0
    total_weight: int = 0

    def __post_init__(self) -> None:
        if sorted(self.edges) != list(self.edges):
            raise ValueError("histogram edges must be sorted ascending")
        if not self.counts:
            self.counts = [0] * len(self.edges)
        if len(self.counts) != len(self.edges):
            raise ValueError("counts/edges length mismatch")

    def record(self, value: int, weight: int = 1) -> None:
        """Add ``weight`` observations of ``value``."""
        self.total_weight += weight
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[i] += weight
                return
        self.overflow += weight

    def fraction_at_or_below(self, edge: int) -> float:
        """Cumulative fraction of observations ``<= edge``."""
        if self.total_weight == 0:
            return 0.0
        acc = 0
        for e, c in zip(self.edges, self.counts):
            if e <= edge:
                acc += c
        return acc / self.total_weight

    def cumulative(self) -> list[float]:
        """Cumulative fractions per bucket (excluding overflow)."""
        if self.total_weight == 0:
            return [0.0] * len(self.edges)
        out: list[float] = []
        acc = 0
        for c in self.counts:
            acc += c
            out.append(acc / self.total_weight)
        return out


def percentile(values: Sequence[float], p: float) -> float:
    """Classic nearest-rank percentile of a non-empty sample.

    ``p`` is in percent (``p=99`` → p99).  This is the single
    percentile implementation every latency summary in the repo uses
    (request latencies, queueing curves, resilience and fleet tails);
    nearest-rank keeps it exact on small samples, which matters for
    byte-identical reports under a fixed seed.
    """
    if not values:
        raise ValueError("no samples")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    rank = math.ceil(p / 100.0 * len(ordered)) - 1
    return ordered[max(0, min(len(ordered) - 1, rank))]


@dataclass(frozen=True)
class LatencySummary:
    """Mean + the standard tail percentiles of one latency sample."""

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p99: float = 0.0
    p999: float = 0.0


def summarize_latencies(values: Sequence[float]) -> LatencySummary:
    """The :class:`LatencySummary` of ``values`` (zeros when empty)."""
    if not values:
        return LatencySummary()
    return LatencySummary(
        count=len(values),
        mean=sum(values) / len(values),
        p50=percentile(values, 50),
        p99=percentile(values, 99),
        p999=percentile(values, 99.9),
    )


def weighted_mean(pairs: list[tuple[float, float]]) -> float:
    """Mean of ``value`` weighted by ``weight`` over (value, weight) pairs."""
    total = sum(w for _, w in pairs)
    if total == 0:
        return 0.0
    return sum(v * w for v, w in pairs) / total


def geometric_mean(values: list[float]) -> float:
    """Geometric mean; the conventional summary for speedup ratios."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
