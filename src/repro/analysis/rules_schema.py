"""Schema-contract rules (SCH0xx).

Every JSONL/JSON artifact this repo persists is self-describing via a
``repro-<family>/N`` tag, produced by one function and re-checked by a
``validate_*`` sibling.  Those two key sets are maintained by hand, so
they drift: a producer grows a field the validator never looks at
(silent corruption passes the gate), or a validator demands a field
the producer stopped emitting (every artifact fails).  These rules
extract both sides statically and diff them:

=======  ==========================================================
SCH001   producer omits key(s) the paired validator requires —
         every artifact it writes will fail validation
SCH002   producer emits key(s) the paired validator never checks —
         unvalidated payload surface, corruption passes the gate
SCH003   producer's schema version drifts from the only validator
         in its family (``repro-serve/2`` vs ``repro-serve/1``)
=======  ==========================================================

**Validator** = a function body containing
``if <row>.get("schema") != <CONST>: raise ...`` where ``CONST``
resolves to a ``repro-*/N`` string.  Required keys are ``.get(k)``
with no default and ``row[k]`` subscript reads; optional keys are
``.get(k, default)`` and ``"k" in row`` membership tests; keys read
in ``for name in (<tuple of strings>)`` loops — including module
tuple constants and ``TUPLE + ("extra",)`` concatenations — are
expanded.  Only reads on the compared receiver count: nested
sub-object checks are out of scope.

**Producer** = a dict literal carrying a resolvable
``"schema": <CONST>`` entry.  Its key set is the literal's constant
keys plus statement-level follow-ups on the binding
(``payload["host"] = ...``, ``payload.update({...})``) and
``dataclasses.asdict(self)`` expansions resolved against the
enclosing dataclass's fields.  A producer with any key the analyzer
cannot resolve to a constant string is skipped silently — the
documented precision limit: prefer missed findings over false alarms.

Producers whose schema family has no validator at all (e.g. the
conformance fuzzer's summary document) are not findings; the contract
only exists once somebody validates.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.astcore import (
    ModuleInfo,
    dotted_name,
    enclosing_symbol,
    iter_own_nodes,
    parent_of,
)
from repro.analysis.callgraph import CallGraph
from repro.analysis.reporting import Finding

SCHEMA_RE = re.compile(r"\Arepro-[a-z0-9-]+/\d+\Z")

_ASDICT = "dataclasses.asdict"


def _finding(module: ModuleInfo, node: ast.AST, rule: str,
             message: str) -> Finding:
    return Finding(
        file=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        symbol=enclosing_symbol(node),
        message=message,
    )


# -- constant resolution ----------------------------------------------------


def _const_str(module: ModuleInfo, node: ast.AST,
               modules: dict[str, ModuleInfo]) -> Optional[str]:
    """Resolve an expression to a string constant, cross-module."""
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else None
    name = dotted_name(node)
    qual = module.resolve(name)
    if qual is None:
        return None
    mod, _, attr = qual.rpartition(".")
    target = modules.get(mod)
    if target is not None and attr in target.str_constants:
        return target.str_constants[attr]
    return None


def _const_str_tuple(
    module: ModuleInfo, node: ast.AST, modules: dict[str, ModuleInfo]
) -> Optional[tuple[str, ...]]:
    """Resolve an expression to a tuple of string constants."""
    if isinstance(node, ast.Tuple):
        out: list[str] = []
        for elt in node.elts:
            value = _const_str(module, elt, modules)
            if value is None:
                return None
            out.append(value)
        return tuple(out)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _const_str_tuple(module, node.left, modules)
        right = _const_str_tuple(module, node.right, modules)
        if left is not None and right is not None:
            return left + right
        return None
    name = dotted_name(node)
    qual = module.resolve(name)
    if qual is None:
        return None
    mod, _, attr = qual.rpartition(".")
    target = modules.get(mod)
    if target is not None and attr in target.tuple_constants:
        return target.tuple_constants[attr]
    return None


# -- validator extraction ---------------------------------------------------


@dataclass
class ValidatorInfo:
    schema: str
    qualname: str
    module: ModuleInfo
    required: set[str] = field(default_factory=set)
    optional: set[str] = field(default_factory=set)


def _schema_guard(
    fn: ast.FunctionDef, module: ModuleInfo,
    modules: dict[str, ModuleInfo],
) -> Optional[tuple[str, str]]:
    """``(receiver_name, schema)`` for the validator entry guard."""
    for node in iter_own_nodes(fn):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.NotEq)):
            continue
        left = test.left
        if not (isinstance(left, ast.Call)
                and isinstance(left.func, ast.Attribute)
                and left.func.attr == "get"
                and isinstance(left.func.value, ast.Name)
                and left.args
                and isinstance(left.args[0], ast.Constant)
                and left.args[0].value == "schema"):
            continue
        if not any(isinstance(n, ast.Raise)
                   for n in ast.walk(node)):
            continue
        schema = _const_str(module, test.comparators[0], modules)
        if schema is not None and SCHEMA_RE.match(schema):
            return left.func.value.id, schema
    return None


def _loop_values_for(
    node: ast.Name, module: ModuleInfo,
    modules: dict[str, ModuleInfo],
) -> Optional[tuple[str, ...]]:
    """Constant string tuple the nearest enclosing ``for`` binding
    this name iterates (``for name in ("a", "b"): row.get(name)``).

    Resolved by ancestry, not a function-wide map: validators routinely
    reuse one loop variable for several key tuples.
    """
    cursor = parent_of(node)
    while cursor is not None:
        if isinstance(cursor, ast.For) and \
                isinstance(cursor.target, ast.Name) and \
                cursor.target.id == node.id:
            return _const_str_tuple(module, cursor.iter, modules)
        cursor = parent_of(cursor)
    return None


def _extract_validator(
    fn: ast.FunctionDef, qualname: str, module: ModuleInfo,
    modules: dict[str, ModuleInfo],
) -> Optional[ValidatorInfo]:
    guard = _schema_guard(fn, module, modules)
    if guard is None:
        return None
    receiver, schema = guard
    info = ValidatorInfo(schema=schema, qualname=qualname,
                         module=module)

    def keys_of(node: ast.AST) -> tuple[str, ...]:
        if isinstance(node, ast.Constant) and \
                isinstance(node.value, str):
            return (node.value,)
        if isinstance(node, ast.Name):
            values = _loop_values_for(node, module, modules)
            if values is not None:
                return values
        return ()

    for node in iter_own_nodes(fn):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "get" and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == receiver and node.args:
            bucket = info.required if len(node.args) == 1 \
                else info.optional
            bucket.update(keys_of(node.args[0]))
        elif isinstance(node, ast.Subscript) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == receiver and \
                isinstance(node.ctx, ast.Load):
            info.required.update(keys_of(node.slice))
        elif isinstance(node, ast.Compare) and \
                len(node.ops) == 1 and \
                isinstance(node.ops[0], (ast.In, ast.NotIn)) and \
                isinstance(node.comparators[0], ast.Name) and \
                node.comparators[0].id == receiver:
            info.optional.update(keys_of(node.left))
    info.optional -= info.required
    return info


def collect_validators(
    modules: dict[str, ModuleInfo],
) -> dict[str, ValidatorInfo]:
    """schema string -> its validator (first by qualname wins)."""
    out: dict[str, ValidatorInfo] = {}
    for modname in sorted(modules):
        module = modules[modname]
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            symbol = enclosing_symbol(node)
            prefix = modname if symbol == "<module>" \
                else f"{modname}.{symbol}"
            info = _extract_validator(node, f"{prefix}.{node.name}",
                                      module, modules)
            if info is not None and info.schema not in out:
                out[info.schema] = info
    return out


# -- producer extraction ----------------------------------------------------


@dataclass
class ProducerInfo:
    schema: str
    module: ModuleInfo
    node: ast.Dict
    keys: set[str] = field(default_factory=set)
    #: False when any key escaped static resolution — skip silently
    closed: bool = True


def _dataclass_fields(cls: ast.ClassDef) -> Optional[set[str]]:
    decorated = any(
        (isinstance(d, ast.Name) and d.id == "dataclass")
        or (isinstance(d, ast.Call) and isinstance(d.func, ast.Name)
            and d.func.id == "dataclass")
        or dotted_name(d) == "dataclasses.dataclass"
        or (isinstance(d, ast.Call)
            and dotted_name(d.func) == "dataclasses.dataclass")
        for d in cls.decorator_list
    )
    if not decorated:
        return None
    return {
        item.target.id for item in cls.body
        if isinstance(item, ast.AnnAssign)
        and isinstance(item.target, ast.Name)
    }


def _enclosing(node: ast.AST, kinds: tuple) -> Optional[ast.AST]:
    cursor = parent_of(node)
    while cursor is not None:
        if isinstance(cursor, kinds):
            return cursor
        cursor = parent_of(cursor)
    return cursor


def _asdict_self_fields(
    module: ModuleInfo, call: ast.Call, origin: ast.AST,
) -> Optional[set[str]]:
    """Fields added by ``asdict(self)`` inside a dataclass method."""
    if module.resolve_call(call) != _ASDICT:
        return None
    if not (len(call.args) == 1
            and isinstance(call.args[0], ast.Name)
            and call.args[0].id == "self"):
        return None
    cls = _enclosing(origin, (ast.ClassDef,))
    if cls is None:
        return None
    return _dataclass_fields(cls)


def _absorb_update_arg(
    producer: ProducerInfo, arg: ast.AST, origin: ast.AST,
    modules: dict[str, ModuleInfo],
) -> None:
    if isinstance(arg, ast.Dict):
        _absorb_dict(producer, arg, origin, modules)
        return
    if isinstance(arg, ast.Call):
        fields = _asdict_self_fields(producer.module, arg, origin)
        if fields is not None:
            producer.keys.update(fields)
            return
    producer.closed = False


def _absorb_dict(
    producer: ProducerInfo, node: ast.Dict, origin: ast.AST,
    modules: dict[str, ModuleInfo],
) -> None:
    for key, value in zip(node.keys, node.values):
        if key is None:  # ``**expansion``
            _absorb_update_arg(producer, value, origin, modules)
        elif isinstance(key, ast.Constant) and \
                isinstance(key.value, str):
            producer.keys.add(key.value)
        else:
            producer.closed = False


def _enclosing_stmt(node: ast.AST) -> Optional[ast.stmt]:
    cursor: Optional[ast.AST] = node
    while cursor is not None and not isinstance(cursor, ast.stmt):
        cursor = parent_of(cursor)
    return cursor


def _follow_mutations(
    producer: ProducerInfo, modules: dict[str, ModuleInfo],
) -> None:
    """Absorb ``payload[...] = ...`` / ``payload.update(...)`` after
    the binding statement, within the same function frame."""
    stmt = _enclosing_stmt(producer.node)
    if stmt is None or not isinstance(stmt, (ast.Assign,
                                             ast.AnnAssign)):
        return
    targets = stmt.targets if isinstance(stmt, ast.Assign) \
        else [stmt.target]
    if len(targets) != 1 or not isinstance(targets[0], ast.Name):
        return
    name = targets[0].id
    frame = _enclosing(producer.node,
                       (ast.FunctionDef, ast.AsyncFunctionDef))
    if frame is None:
        return
    origin = (stmt.lineno, stmt.col_offset)
    for node in iter_own_nodes(frame):
        if (getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0)) <= origin:
            continue
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == name:
                    if isinstance(target.slice, ast.Constant) and \
                            isinstance(target.slice.value, str):
                        producer.keys.add(target.slice.value)
                    else:
                        producer.closed = False
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "update" and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == name and node.args:
            _absorb_update_arg(producer, node.args[0],
                               producer.node, modules)


def collect_producers(
    modules: dict[str, ModuleInfo],
) -> list[ProducerInfo]:
    out: list[ProducerInfo] = []
    for modname in sorted(modules):
        module = modules[modname]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Dict):
                continue
            schema = None
            for key, value in zip(node.keys, node.values):
                if isinstance(key, ast.Constant) and \
                        key.value == "schema":
                    schema = _const_str(module, value, modules)
            if schema is None or not SCHEMA_RE.match(schema):
                continue
            producer = ProducerInfo(schema=schema, module=module,
                                    node=node)
            _absorb_dict(producer, node, node, modules)
            _follow_mutations(producer, modules)
            out.append(producer)
    return out


# -- the diff ---------------------------------------------------------------


def _family(schema: str) -> str:
    return schema.partition("/")[0]


def check(modules: dict[str, ModuleInfo],
          graph: CallGraph) -> list[Finding]:
    del graph  # schema pairing is by tag, not by call edge
    validators = collect_validators(modules)
    by_family: dict[str, list[str]] = {}
    for schema in validators:
        by_family.setdefault(_family(schema), []).append(schema)
    out: list[Finding] = []
    for producer in collect_producers(modules):
        validator = validators.get(producer.schema)
        if validator is None:
            siblings = sorted(by_family.get(
                _family(producer.schema), ()
            ))
            if siblings:
                out.append(_finding(
                    producer.module, producer.node, "SCH003",
                    f"producer emits schema "
                    f"`{producer.schema}` but the only validator in "
                    f"this family checks `{siblings[0]}` "
                    f"(`{validators[siblings[0]].qualname}`) — "
                    f"version drift",
                ))
            continue
        if not producer.closed:
            continue  # dynamically-built key set: out of scope
        missing = sorted(validator.required - producer.keys)
        if missing:
            out.append(_finding(
                producer.module, producer.node, "SCH001",
                f"producer omits required key(s) "
                f"{', '.join(repr(k) for k in missing)} checked by "
                f"`{validator.qualname}` — every `{producer.schema}` "
                f"artifact it writes will fail validation",
            ))
        extras = sorted(
            producer.keys - validator.required - validator.optional
        )
        if extras:
            out.append(_finding(
                producer.module, producer.node, "SCH002",
                f"producer emits key(s) "
                f"{', '.join(repr(k) for k in extras)} that "
                f"`{validator.qualname}` never checks — extend the "
                f"validator or drop them from the `{producer.schema}` "
                f"payload",
            ))
    return sorted(out)
