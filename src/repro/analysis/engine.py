"""Rule engine: discovery, orchestration, waivers, public API.

``run(paths)`` loads every ``.py`` file under ``paths`` (default: the
installed ``repro`` package), builds the intra-package call graph
once, runs the five rule families (determinism, pool purity, cache
keys, async safety, schema contracts), and filters the raw findings
through the in-source waiver directives.  The CLI layers the baseline,
the ``--rule`` selector, and output formats on top (see
``python -m repro lint``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.analysis import (
    rules_async,
    rules_det,
    rules_key,
    rules_pool,
    rules_schema,
)
from repro.analysis.astcore import ModuleInfo, load_module
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.reporting import Finding

#: Rule catalog: id -> one-line description (mirrored in DESIGN.md).
RULES: dict[str, str] = {
    "DET001": "wall-clock read (time.time, datetime.now, ...)",
    "DET002": "module-level random.* or unseeded random.Random()",
    "DET003": "entropy source (os.urandom, uuid.*, secrets.*)",
    "DET004": "order-dependent iteration over an unordered collection",
    "DET005": "PYTHONHASHSEED-salted builtin hash()",
    "POOL001": "pool payload is not a top-level picklable function",
    "POOL002": "pool payload call graph mutates module-level state",
    "POOL003": "pool payload call graph reads unsanctioned os.environ",
    "KEY001": "cache-keyed cell reads an input its key does not cover",
    "KEY002": "stale cache-key-covers waiver entry",
    "KEY003": "keyed fan-out call site without a sweep label",
    "ASY001": "blocking or heavy call reachable from a coroutine",
    "ASY002": "shared state re-assigned across an await without "
              "claim/re-check/lock",
    "ASY003": "coroutine or task result dropped without await, "
              "gather, or done-callback",
    "ASY004": "external await with no asyncio.wait_for deadline on "
              "some path",
    "SCH001": "schema producer omits key(s) its validator requires",
    "SCH002": "schema producer emits key(s) its validator never checks",
    "SCH003": "producer/validator schema version drift",
}

#: Default baseline location, resolved against the working directory.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_FAMILIES: tuple[Callable[[dict[str, ModuleInfo], CallGraph],
                          list[Finding]], ...] = (
    rules_det.check,
    rules_pool.check,
    rules_key.check,
    rules_async.check,
    rules_schema.check,
)


def default_paths() -> list[Path]:
    """The installed ``repro`` package (what CI lints)."""
    import repro

    return [Path(repro.__file__).parent]


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


def _modname_for(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def _display_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def load_modules(
    paths: Optional[Iterable[str | Path]] = None,
) -> dict[str, ModuleInfo]:
    files = discover_files(paths if paths is not None
                           else default_paths())
    modules: dict[str, ModuleInfo] = {}
    for path in files:
        modname = _modname_for(path)
        modules[modname] = load_module(
            modname, _display_path(path), path.read_text()
        )
    return modules


def analyze_modules(modules: dict[str, ModuleInfo]) -> list[Finding]:
    """Run every rule family and apply in-source waivers."""
    graph = build_call_graph(modules)
    by_path = {m.path: m for m in modules.values()}
    raw: list[Finding] = []
    for family in _FAMILIES:
        raw.extend(family(modules, graph))
    kept = [
        f for f in raw
        if not (f.file in by_path
                and by_path[f.file].waived(f.rule, f.line))
    ]
    return sorted(kept)


def run(paths: Optional[Iterable[str | Path]] = None) -> list[Finding]:
    """The library entry point: lint ``paths`` (default: src/repro)."""
    return analyze_modules(load_modules(paths))


def match_rules(selector: str) -> set[str]:
    """Rule ids selected by ``--rule`` (exact id or family prefix).

    Raises ``ValueError`` for a selector matching nothing — the CLI
    maps that to exit code 2 (usage error), distinct from findings.
    """
    wanted = selector.strip().upper()
    if wanted in RULES:
        return {wanted}
    matched = {r for r in RULES if r.rstrip("0123456789") == wanted}
    if not matched:
        known = sorted({r.rstrip("0123456789") for r in RULES})
        raise ValueError(
            f"unknown rule or family {selector!r} — expected one of "
            f"{', '.join(sorted(RULES))} or a family prefix "
            f"({', '.join(known)})"
        )
    return matched


def analyze_sources(sources: dict[str, str]) -> list[Finding]:
    """Lint in-memory sources (tests): ``{modname: source}``."""
    modules = {
        modname: load_module(
            modname, modname.replace(".", "/") + ".py", source
        )
        for modname, source in sources.items()
    }
    return analyze_modules(modules)


def fix_waivers(
    paths: Optional[Iterable[str | Path]] = None,
) -> list[str]:
    """Rewrite stale/missing ``cache-key-covers`` waivers on disk.

    Returns the display paths of the files changed.
    """
    files = discover_files(paths if paths is not None
                           else default_paths())
    by_display: dict[str, Path] = {}
    modules: dict[str, ModuleInfo] = {}
    for path in files:
        modname = _modname_for(path)
        display = _display_path(path)
        by_display[display] = path
        modules[modname] = load_module(modname, display,
                                       path.read_text())
    graph = build_call_graph(modules)
    updates = rules_key.compute_waiver_updates(modules, graph)
    changed: list[str] = []
    by_path = {m.path: m for m in modules.values()}
    for display, payload_updates in sorted(updates.items()):
        module = by_path[display]
        new_source = rules_key.rewrite_waivers(module, payload_updates)
        if new_source != module.source:
            by_display[display].write_text(new_source)
            changed.append(display)
    return changed
