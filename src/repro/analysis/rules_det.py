"""Determinism rules (DET0xx).

Every figure in this reproduction must be a pure function of its seed:
``same seed -> byte-identical report`` is asserted by the conformance
invariants and assumed by the experiment cache and the process-pool
fan-out.  These rules reject the ways nondeterminism classically leaks
into such a codebase:

=======  ==========================================================
DET001   wall-clock reads (``time.time``, ``datetime.now``, ...)
DET002   module-level ``random.*`` / unseeded ``random.Random()``
DET003   entropy sources (``os.urandom``, ``uuid.*``, ``secrets.*``)
DET004   order-dependent iteration over unordered collections
         (``set``/``frozenset``/``os.listdir``/``glob``) where the
         order reaches an ordered accumulator, yield, or return
DET005   builtin ``hash()`` — salted per process by PYTHONHASHSEED
         for ``str``/``bytes``, so values must never mix into
         results that cross process boundaries
=======  ==========================================================

Sanctioned exceptions carry a visible ``# repro: allow(DETxxx)``
waiver (or ``allow-file`` for whole modules like the wall-clock perf
harness, whose *output* is wall-clock time by design).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.astcore import (
    ModuleInfo,
    dotted_name,
    enclosing_symbol,
    iter_calls,
)
from repro.analysis.callgraph import CallGraph
from repro.analysis.reporting import Finding

WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "time.strftime", "time.ctime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

ENTROPY_PREFIXES = ("uuid.", "secrets.")
ENTROPY_CALLS = frozenset({"os.urandom", "os.getrandom"})

#: Callables that consume an iterable without exposing its order.
ORDER_FREE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all",
    "len",
})

#: Calls that produce filesystem-order (i.e. arbitrary-order) listings.
FS_ORDER_CALLS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})

#: Mutating-call names that make a loop body order-sensitive.
ORDERED_SINK_METHODS = frozenset({"append", "extend", "insert",
                                  "appendleft", "write"})


def _finding(module: ModuleInfo, node: ast.AST, rule: str,
             message: str) -> Finding:
    return Finding(
        file=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        symbol=enclosing_symbol(node),
        message=message,
    )


def _check_calls(module: ModuleInfo) -> list[Finding]:
    out: list[Finding] = []
    for call in iter_calls(module.tree):
        resolved = module.resolve_call(call)
        if resolved is None:
            continue
        if resolved in WALL_CLOCK:
            out.append(_finding(
                module, call, "DET001",
                f"wall-clock read `{resolved}` — results must be a "
                f"pure function of the seed",
            ))
        elif resolved == "random.Random":
            if not call.args and not call.keywords:
                out.append(_finding(
                    module, call, "DET002",
                    "unseeded `random.Random()` — construct "
                    "`DeterministicRng(seed)` (common/rng) instead",
                ))
        elif resolved == "random.SystemRandom" or (
            resolved.startswith("random.") and resolved.count(".") == 1
        ):
            out.append(_finding(
                module, call, "DET002",
                f"module-level `{resolved}` draws from the shared, "
                f"implicitly-seeded stream — use DeterministicRng",
            ))
        elif resolved in ENTROPY_CALLS or \
                resolved.startswith(ENTROPY_PREFIXES):
            out.append(_finding(
                module, call, "DET003",
                f"entropy source `{resolved}` can never reproduce "
                f"under a fixed seed",
            ))
        elif resolved == "hash":
            arg = call.args[0] if call.args else None
            if not _is_plain_number(arg):
                out.append(_finding(
                    module, call, "DET005",
                    "builtin `hash()` is PYTHONHASHSEED-salted for "
                    "str/bytes — use a stable hash (blake2b, FNV) for "
                    "anything that reaches results",
                ))
    return out


def _is_plain_number(node: Optional[ast.AST]) -> bool:
    """Numeric literals hash unsalted; anything else is suspect."""
    return isinstance(node, ast.Constant) and \
        isinstance(node.value, (int, float))


# -- DET004: unordered-iteration analysis -----------------------------------


def _set_typed_names(scope: ast.AST, module: ModuleInfo) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        _is_set_expr(node.value, names, module):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation):
                names.add(node.target.id)
    return names


def _is_set_annotation(node: ast.AST) -> bool:
    base = node.value if isinstance(node, ast.Subscript) else node
    name = dotted_name(base) or (
        base.value if isinstance(base, ast.Constant) else None
    )
    return name in {"set", "frozenset", "Set", "FrozenSet",
                    "typing.Set", "typing.FrozenSet"}


def _is_set_expr(node: ast.AST, set_names: set[str],
                 module: ModuleInfo) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return (_is_set_expr(node.left, set_names, module)
                or _is_set_expr(node.right, set_names, module))
    if isinstance(node, ast.Call):
        resolved = module.resolve_call(node)
        if resolved in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "union", "intersection", "difference",
            "symmetric_difference",
        }:
            return _is_set_expr(node.func.value, set_names, module)
    return False


def _is_unordered_iterable(node: ast.AST, set_names: set[str],
                           module: ModuleInfo) -> Optional[str]:
    """Why this expression iterates in nondeterministic order, or None."""
    if _is_set_expr(node, set_names, module):
        return "set/frozenset"
    if isinstance(node, ast.Call):
        resolved = module.resolve_call(node)
        if resolved in FS_ORDER_CALLS:
            return resolved
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in {"iterdir", "glob", "rglob"}:
            return f"Path.{node.func.attr}()"
    return None


def _loop_is_order_sensitive(loop: ast.For) -> Optional[ast.AST]:
    """First ordered sink in the loop body, if any."""
    for node in ast.walk(loop):
        if node is loop:
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Return)):
            return node
        if isinstance(node, ast.AugAssign) and isinstance(node.op,
                                                          ast.Add):
            return node
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in ORDERED_SINK_METHODS:
            return node
    return None


def _comp_is_order_free(comp: ast.AST, module: ModuleInfo) -> bool:
    from repro.analysis.astcore import parent_of

    if isinstance(comp, ast.SetComp):
        return True
    parent = parent_of(comp)
    if isinstance(parent, ast.Call) and comp in parent.args:
        resolved = module.resolve_call(parent)
        if resolved in ORDER_FREE_CONSUMERS:
            return True
    return False


def _check_unordered_iteration(module: ModuleInfo) -> list[Finding]:
    out: list[Finding] = []
    scopes: list[ast.AST] = [module.tree]
    scopes.extend(
        node for node in ast.walk(module.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    flagged: set[int] = set()
    for scope in scopes:
        set_names = _set_typed_names(scope, module)
        for node in ast.walk(scope):
            if isinstance(node, ast.For):
                why = _is_unordered_iterable(node.iter, set_names,
                                             module)
                if why is None:
                    continue
                sink = _loop_is_order_sensitive(node)
                if sink is None or id(node) in flagged:
                    continue
                flagged.add(id(node))
                out.append(_finding(
                    module, node, "DET004",
                    f"iteration over {why} feeds an ordered "
                    f"accumulator (line {sink.lineno}) — wrap the "
                    f"iterable in sorted(...)",
                ))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                for gen in node.generators:
                    why = _is_unordered_iterable(gen.iter, set_names,
                                                 module)
                    if why is None:
                        continue
                    if _comp_is_order_free(node, module):
                        continue
                    if id(node) in flagged:
                        continue
                    flagged.add(id(node))
                    out.append(_finding(
                        module, node, "DET004",
                        f"comprehension over {why} produces an "
                        f"ordered result in nondeterministic order — "
                        f"wrap the iterable in sorted(...)",
                    ))
    return out


def check(modules: dict[str, ModuleInfo],
          graph: CallGraph) -> list[Finding]:
    del graph  # determinism rules are local to each module
    out: list[Finding] = []
    for modname in sorted(modules):
        module = modules[modname]
        out.extend(_check_calls(module))
        out.extend(_check_unordered_iteration(module))
    return out
