"""Pool-purity rules (POOL0xx).

``core/parallel.map_cells`` promises byte-identical sweep results at
any ``--jobs``.  That only holds if every submitted cell is
shared-nothing: a top-level picklable function whose transitive call
graph neither mutates module-level state (worker-side mutations are
silently discarded with ``jobs > 1`` and kept with ``jobs == 1`` —
the classic "works serially, drifts in the pool" bug) nor reads
ambient configuration beyond the sanctioned ``REPRO_*`` knobs.

=======  ==========================================================
POOL001  pool payload is not a resolvable top-level function
         (lambda, nested def, bound method, partial, ...)
POOL002  payload call graph mutates a module-level singleton or
         rebinds a module global
POOL003  payload call graph reads ``os.environ`` outside ``REPRO_*``
=======  ==========================================================
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.astcore import (
    ModuleInfo,
    dotted_name,
    enclosing_symbol,
    iter_calls,
)
from repro.analysis.callgraph import CallGraph, FunctionNode
from repro.analysis.reporting import Finding

#: Fully-qualified fan-out entry points whose first argument is a
#: callable shipped to worker processes.
POOL_ENTRYPOINTS = frozenset({
    "repro.core.parallel.map_cells",
    "repro.core.parallel.parallel_map",
})

#: Method names that mutate their receiver (conservative list tuned
#: to the registries/caches/containers this repo actually uses).
MUTATOR_METHODS = frozenset({
    "bump", "add", "append", "extend", "insert", "update", "clear",
    "store", "merge", "reset", "record", "remove", "discard", "pop",
    "popitem", "setdefault", "push",
})

#: Environment keys the runtime may read anywhere (observability and
#: execution-shape knobs that must never change simulated results).
SANCTIONED_ENV_PREFIX = "REPRO_"


def _finding(module: ModuleInfo, node: ast.AST, rule: str,
             message: str) -> Finding:
    return Finding(
        file=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        symbol=enclosing_symbol(node),
        message=message,
    )


def iter_pool_sites(
    modules: dict[str, ModuleInfo],
) -> Iterator[tuple[ModuleInfo, ast.Call, str]]:
    """Every ``map_cells``/``parallel_map`` call site in the tree."""
    for modname in sorted(modules):
        module = modules[modname]
        if modname in POOL_ENTRYPOINTS or any(
            e.startswith(modname + ".") for e in POOL_ENTRYPOINTS
        ):
            # Skip the definitions themselves (parallel.py's internal
            # delegation would read as a payload named ``fn``).
            continue
        for call in iter_calls(module.tree):
            resolved = module.resolve_call(call)
            if resolved in POOL_ENTRYPOINTS:
                yield module, call, resolved


def resolve_payload(
    module: ModuleInfo, call: ast.Call, graph: CallGraph
) -> tuple[Optional[FunctionNode], Optional[str]]:
    """``(payload function, problem)`` for a fan-out call site."""
    if not call.args:
        return None, "fan-out call has no payload argument"
    payload = call.args[0]
    if isinstance(payload, ast.Lambda):
        return None, "payload is a lambda (unpicklable under jobs > 1)"
    if isinstance(payload, ast.Call):
        return None, ("payload is constructed at the call site "
                      "(partial/factory) — submit a plain top-level "
                      "function")
    name = dotted_name(payload)
    if name is None:
        return None, "payload is not a plain function reference"
    resolved = module.resolve(name)
    node = graph.lookup(resolved)
    if node is None:
        if "." in name and name.split(".", 1)[0] not in module.imports:
            return None, (f"payload `{name}` looks like a bound "
                          f"method — pool cells must be top-level "
                          f"functions")
        return None, (f"payload `{name}` does not resolve to a "
                      f"top-level function in the analyzed tree")
    if node.cls is not None:
        return None, (f"payload `{name}` is a method of "
                      f"`{node.cls}` — pool cells must be top-level "
                      f"functions")
    return node, None


def _mutations(fn: FunctionNode,
               singletons: set[str]) -> Iterator[tuple[ast.AST, str]]:
    """Module-global mutations inside one function body."""
    declared_global: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and \
                        target.id in declared_global:
                    yield node, (f"rebinds module global "
                                 f"`{target.id}`")
                elif isinstance(target, ast.Attribute):
                    base = dotted_name(target.value)
                    resolved = fn.module.resolve(base)
                    if resolved in singletons:
                        yield node, (f"writes attribute on module "
                                     f"singleton `{base}`")
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in MUTATOR_METHODS:
            base = dotted_name(node.func.value)
            if base is None:
                continue
            resolved = fn.module.resolve(base)
            if resolved in singletons:
                yield node, (f"calls mutator `.{node.func.attr}()` on "
                             f"module singleton `{base}`")


def singleton_qualnames(modules: dict[str, ModuleInfo]) -> set[str]:
    """Every module-level name bound to a call expression, qualified."""
    return {
        f"{modname}.{name}"
        for modname, module in modules.items()
        for name in module.singletons
    }


def env_reads(fn: FunctionNode) -> Iterator[tuple[ast.AST, str]]:
    """``(node, key_description)`` for each os.environ/getenv read."""
    for node in ast.walk(fn.node):
        key_node: Optional[ast.AST] = None
        if isinstance(node, ast.Call):
            resolved = fn.module.resolve_call(node)
            if resolved == "os.getenv":
                key_node = node.args[0] if node.args else None
            elif isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "get" and \
                    fn.module.resolve(dotted_name(node.func.value)) \
                    == "os.environ":
                key_node = node.args[0] if node.args else None
            else:
                continue
        elif isinstance(node, ast.Subscript) and \
                fn.module.resolve(dotted_name(node.value)) \
                == "os.environ":
            key_node = node.slice
        else:
            continue
        if isinstance(key_node, ast.Constant) and \
                isinstance(key_node.value, str):
            yield node, key_node.value
        else:
            yield node, "<dynamic>"


def check(modules: dict[str, ModuleInfo],
          graph: CallGraph) -> list[Finding]:
    singletons = singleton_qualnames(modules)
    out: list[Finding] = []
    for module, call, entry in iter_pool_sites(modules):
        payload, problem = resolve_payload(module, call, graph)
        if problem is not None:
            out.append(_finding(
                module, call, "POOL001",
                f"{entry.rsplit('.', 1)[1]} {problem}",
            ))
            continue
        assert payload is not None
        for fn in graph.transitive(payload.qualname):
            for node, what in _mutations(fn, singletons):
                out.append(_finding(
                    fn.module, node, "POOL002",
                    f"pool payload `{payload.name}` transitively "
                    f"{what} in `{fn.qualname}` — worker-side state "
                    f"diverges from jobs=1",
                ))
            for node, key in env_reads(fn):
                if key.startswith(SANCTIONED_ENV_PREFIX):
                    continue
                out.append(_finding(
                    fn.module, node, "POOL003",
                    f"pool payload `{payload.name}` transitively "
                    f"reads env `{key}` in `{fn.qualname}` — only "
                    f"REPRO_* knobs are sanctioned in cells",
                ))
    return _dedupe(out)


def _dedupe(findings: list[Finding]) -> list[Finding]:
    """Two call sites sharing a payload report each defect once."""
    seen: set[tuple] = set()
    out: list[Finding] = []
    for f in sorted(findings):
        key = (f.file, f.line, f.col, f.rule)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    return out
