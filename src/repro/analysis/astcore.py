"""AST groundwork for the static-analysis suite.

One :class:`ModuleInfo` per source file: the parsed tree (with parent
links), an import table mapping local aliases to fully-qualified
names, the module-level bindings (functions, classes, singletons,
constants), and the ``# repro:`` waiver directives found in comments.

Name resolution is deliberately syntactic: ``resolve`` follows the
import table and module-level ``def``/``class`` bindings, so
``t.time()`` after ``import time as t`` resolves to ``time.time`` and
``map_cells(...)`` after ``from repro.core.parallel import map_cells``
resolves to ``repro.core.parallel.map_cells``.  Anything dynamic
(``getattr``, re-bound names, instance attributes) resolves to
``None`` and the rules stay silent about it — the analyzers prefer
missed findings over false alarms on code they cannot see through.
"""

from __future__ import annotations

import ast
import bisect
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterator, Optional

#: ``# repro: allow(DET001) reason`` / ``# repro: allow-file(...)`` /
#: ``# repro: cache-key-covers(NAME, env:OTHER)``
DIRECTIVE_RE = re.compile(
    r"#\s*repro:\s*(allow|allow-file|cache-key-covers)\(([^)]*)\)"
)

PARENT_ATTR = "_repro_parent"


def annotate_parents(tree: ast.AST) -> None:
    """Attach a parent pointer to every node (``_repro_parent``)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, PARENT_ATTR, node)


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, PARENT_ATTR, None)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class KeyWaiver:
    """One ``# repro: cache-key-covers(...)`` directive."""

    line: int                      # physical line of the comment
    func: str                      # module-level def it annotates
    names: tuple[str, ...]         # covered-input names, as written


@dataclass
class ModuleInfo:
    """Everything the rule families need to know about one module."""

    modname: str
    path: str
    source: str
    tree: ast.Module
    #: local alias -> fully qualified name ("np" -> "numpy")
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level def/class names
    defs: dict[str, str] = field(default_factory=dict)
    #: module-level names bound to call expressions (live singletons)
    singletons: dict[str, int] = field(default_factory=dict)
    #: module-level names bound to literal-ish constants
    constants: set[str] = field(default_factory=set)
    #: module-level names bound to string literals, with their values
    #: (schema tags like ``PERF_SCHEMA = "repro-perf/2"``)
    str_constants: dict[str, str] = field(default_factory=dict)
    #: module-level names bound to tuples of string literals
    #: (key lists like ``MAPE_METRICS = ("p50", "p99", ...)``)
    tuple_constants: dict[str, tuple[str, ...]] = field(
        default_factory=dict
    )
    #: physical line -> waived rule ids
    line_waivers: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids waived for the whole file
    file_waivers: set[str] = field(default_factory=set)
    #: payload function name -> its cache-key-covers directive
    key_waivers: dict[str, KeyWaiver] = field(default_factory=dict)

    # -- name resolution ----------------------------------------------------

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Fully-qualified name for a dotted reference, best effort."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        if head in self.defs or head in self.singletons \
                or head in self.constants:
            return f"{self.modname}.{dotted}"
        # Unknown head: a builtin or a local — return as written so
        # rules can still match builtins like ``hash``.
        return dotted

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        return self.resolve(dotted_name(call.func))

    def waived(self, rule: str, line: int) -> bool:
        if rule in self.file_waivers:
            return True
        return rule in self.line_waivers.get(line, set())

    def toplevel_functions(self) -> Iterator[ast.FunctionDef]:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


def _is_constant_expr(node: ast.AST) -> bool:
    """Literal or composition of literals (immutable-ish constant)."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return all(_is_constant_expr(e) for e in node.elts)
    if isinstance(node, ast.Dict):
        return all(
            k is not None and _is_constant_expr(k) and _is_constant_expr(v)
            for k, v in zip(node.keys, node.values)
        )
    if isinstance(node, ast.BinOp):
        return _is_constant_expr(node.left) and _is_constant_expr(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_constant_expr(node.operand)
    return False


def _collect_imports(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.partition(".")[0]
                info.imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = info.modname.split(".")
                # level 1 = current package, 2 = its parent, ...
                anchor = parts[:len(parts) - node.level]
                base = ".".join(anchor + ([node.module]
                                          if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                info.imports[bound] = f"{base}.{alias.name}" if base \
                    else alias.name


def _collect_bindings(info: ModuleInfo) -> None:
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.defs[node.name] = "function"
        elif isinstance(node, ast.ClassDef):
            info.defs[node.name] = "class"
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            value = node.value
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(value, ast.Call):
                    info.singletons[target.id] = node.lineno
                elif _is_constant_expr(value):
                    info.constants.add(target.id)
                    if isinstance(value, ast.Constant) and \
                            isinstance(value.value, str):
                        info.str_constants[target.id] = value.value
                    elif isinstance(value, ast.Tuple) and all(
                        isinstance(e, ast.Constant)
                        and isinstance(e.value, str)
                        for e in value.elts
                    ):
                        info.tuple_constants[target.id] = tuple(
                            e.value for e in value.elts
                        )


def _stmt_lines(tree: ast.Module) -> list[int]:
    lines = sorted({
        node.lineno for node in ast.walk(tree)
        if isinstance(node, ast.stmt)
    })
    return lines


def _collect_directives(info: ModuleInfo) -> None:
    stmt_lines = _stmt_lines(info.tree)
    toplevel_defs = sorted(
        (node.lineno, node.name)
        for node in info.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(info.source).readline
        ))
    except tokenize.TokenError:
        return
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = DIRECTIVE_RE.search(tok.string)
        if match is None:
            continue
        kind, body = match.group(1), match.group(2)
        names = tuple(
            n.strip() for n in body.split(",") if n.strip()
        )
        line = tok.start[0]
        standalone = tok.line[:tok.start[1]].strip() == ""
        if kind == "allow-file":
            info.file_waivers.update(names)
        elif kind == "allow":
            target_line = line
            if standalone:
                # A comment on its own line waives the next statement.
                i = bisect.bisect_left(stmt_lines, line)
                if i < len(stmt_lines):
                    target_line = stmt_lines[i]
            info.line_waivers.setdefault(target_line, set()).update(names)
        else:  # cache-key-covers: annotates the next module-level def
            for def_line, def_name in toplevel_defs:
                if def_line > line:
                    info.key_waivers[def_name] = KeyWaiver(
                        line=line, func=def_name, names=names
                    )
                    break


def load_module(modname: str, path: str, source: str) -> ModuleInfo:
    """Parse one file into a fully-annotated :class:`ModuleInfo`."""
    tree = ast.parse(source, filename=path)
    annotate_parents(tree)
    info = ModuleInfo(modname=modname, path=path, source=source, tree=tree)
    _collect_imports(info)
    _collect_bindings(info)
    _collect_directives(info)
    return info


def local_names(fn: ast.FunctionDef) -> set[str]:
    """Parameter and locally-bound names of a function body.

    Used to tell a read of a module-level singleton from a read of a
    local that happens to share its name.
    """
    names: set[str] = set()
    args = fn.args
    for a in (list(args.posonlyargs) + list(args.args)
              + list(args.kwonlyargs)):
        names.add(a.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx,
                                                     (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not fn:
            names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.partition(".")[0])
    return names


def enclosing_symbol(node: ast.AST) -> str:
    """Dotted def/class chain containing ``node`` ('<module>' at top)."""
    parts: list[str] = []
    cursor = parent_of(node)
    while cursor is not None:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            parts.append(cursor.name)
        cursor = parent_of(cursor)
    return ".".join(reversed(parts)) if parts else "<module>"


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def iter_own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs.

    The async-safety rules reason about one coroutine frame at a
    time: an ``await`` inside a nested ``async def`` belongs to the
    nested coroutine, not to the enclosing one.
    """
    queue: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while queue:
        node = queue.pop(0)
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        queue.extend(ast.iter_child_nodes(node))
