"""Static-analysis suite: determinism, pool purity, cache soundness.

The reproduction's core disciplines — seeded RNG everywhere,
byte-identical ``map_cells`` fan-out at any ``--jobs``, experiment
cache keys that cover every input a cell reads — are enforced
dynamically by the conformance suite.  This package enforces them
*statically*: an AST-based pass over ``src/repro`` with three rule
families (DET0xx determinism, POOL0xx pool purity, KEY0xx cache
soundness), in-source waiver directives, and a grandfathering
baseline, gated in CI via ``python -m repro lint``.

Library use::

    from repro import analysis
    findings = analysis.run(["src/repro"])   # -> list[Finding]

See DESIGN.md ("Static analysis") for the rule catalog and waiver
syntax.
"""

from repro.analysis.engine import (
    DEFAULT_BASELINE_NAME,
    RULES,
    analyze_sources,
    default_paths,
    fix_waivers,
    run,
)
from repro.analysis.reporting import (
    BASELINE_SCHEMA,
    REPORT_SCHEMA,
    Finding,
    apply_baseline,
    fingerprints,
    load_baseline,
    render_json,
    render_text,
    save_baseline,
    to_json_payload,
)

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "RULES",
    "analyze_sources",
    "default_paths",
    "fix_waivers",
    "run",
    "BASELINE_SCHEMA",
    "REPORT_SCHEMA",
    "Finding",
    "apply_baseline",
    "fingerprints",
    "load_baseline",
    "render_json",
    "render_text",
    "save_baseline",
    "to_json_payload",
]
