"""Static-analysis suite: determinism, purity, async safety, schemas.

The reproduction's core disciplines — seeded RNG everywhere,
byte-identical ``map_cells`` fan-out at any ``--jobs``, experiment
cache keys that cover every input a cell reads, a live event loop no
coroutine may stall or race, and ``repro-*/N`` artifacts whose
producers and validators agree key-for-key — are enforced dynamically
by the conformance suite.  This package enforces them *statically*:
an AST-based interprocedural pass over ``src/repro`` with five rule
families (DET0xx determinism, POOL0xx pool purity, KEY0xx cache
soundness, ASY0xx async safety, SCH0xx schema contracts), in-source
waiver directives, and a grandfathering baseline, gated in CI via
``python -m repro lint``.

Library use::

    from repro import analysis
    findings = analysis.run(["src/repro"])   # -> list[Finding]

See DESIGN.md ("Static analysis" and "Async safety & schema
contracts") for the rule catalog and waiver syntax.
"""

from repro.analysis.engine import (
    DEFAULT_BASELINE_NAME,
    RULES,
    analyze_sources,
    default_paths,
    fix_waivers,
    match_rules,
    run,
)
from repro.analysis.reporting import (
    BASELINE_SCHEMA,
    REPORT_SCHEMA,
    Finding,
    apply_baseline,
    fingerprints,
    load_baseline,
    render_json,
    render_text,
    rule_family,
    save_baseline,
    to_json_payload,
    validate_lint_payload,
)

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "RULES",
    "analyze_sources",
    "default_paths",
    "fix_waivers",
    "match_rules",
    "run",
    "BASELINE_SCHEMA",
    "REPORT_SCHEMA",
    "Finding",
    "apply_baseline",
    "fingerprints",
    "load_baseline",
    "render_json",
    "render_text",
    "rule_family",
    "save_baseline",
    "to_json_payload",
    "validate_lint_payload",
]
