"""Findings, text/JSON rendering, and the grandfathering baseline.

A :class:`Finding` pins a rule violation to ``file:line:col`` plus the
enclosing def/class chain (its *symbol*).  Fingerprints — used by the
baseline — deliberately omit the line number so that unrelated edits
above a grandfathered finding do not resurrect it; they include an
occurrence index so two identical violations in one function stay
distinct.

The JSON payload is a stable schema (``repro-lint/2``) consumed by CI
artifact tooling and locked by ``tests/test_analysis.py``; ``/2``
added the ``families`` per-family count block next to the per-rule
``counts``.  :func:`validate_lint_payload` is the consumer-side
contract — the same producer/validator pairing the SCH rules enforce
for every other ``repro-*/N`` document applies to the linter's own
output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Optional

#: JSON schema tags (bump on incompatible change, never silently).
REPORT_SCHEMA = "repro-lint/2"
BASELINE_SCHEMA = "repro-lint-baseline/1"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    file: str
    line: int
    col: int
    rule: str
    symbol: str
    message: str
    severity: str = "error"

    def to_dict(self) -> dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "symbol": self.symbol,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        return (f"{self.file}:{self.line}:{self.col}: "
                f"{self.rule} [{self.symbol}] {self.message}")


def fingerprints(findings: Iterable[Finding]) -> list[str]:
    """Line-independent identity per finding (baseline keys).

    ``file::symbol::rule::n`` where ``n`` numbers repeated violations
    of the same rule inside the same symbol.
    """
    counts: dict[tuple[str, str, str], int] = {}
    out: list[str] = []
    for f in sorted(findings):
        key = (f.file, f.symbol, f.rule)
        n = counts.get(key, 0)
        counts[key] = n + 1
        out.append(f"{f.file}::{f.symbol}::{f.rule}::{n}")
    return out


def render_text(findings: list[Finding],
                suppressed: int = 0) -> str:
    lines = [f.render() for f in sorted(findings)]
    tail = (f"{len(findings)} finding(s)"
            + (f", {suppressed} baselined" if suppressed else ""))
    if not findings:
        tail = "clean: no findings" + (
            f" ({suppressed} baselined)" if suppressed else ""
        )
    lines.append(tail)
    return "\n".join(lines)


def rule_family(rule: str) -> str:
    """``ASY002`` -> ``ASY``: the rule's family prefix."""
    return rule.rstrip("0123456789")


def to_json_payload(
    findings: list[Finding],
    suppressed: int = 0,
    baseline_path: Optional[str] = None,
) -> dict[str, Any]:
    ordered = sorted(findings)
    counts: dict[str, int] = {}
    families: dict[str, int] = {}
    for f in ordered:
        counts[f.rule] = counts.get(f.rule, 0) + 1
        fam = rule_family(f.rule)
        families[fam] = families.get(fam, 0) + 1
    return {
        "schema": REPORT_SCHEMA,
        "ok": not ordered,
        "counts": {k: counts[k] for k in sorted(counts)},
        "families": {k: families[k] for k in sorted(families)},
        "findings": [f.to_dict() for f in ordered],
        "baseline": {
            "path": baseline_path,
            "suppressed": suppressed,
        },
    }


def validate_lint_payload(payload: dict[str, Any]) -> None:
    """Schema check for one ``repro-lint/2`` document."""
    if payload.get("schema") != REPORT_SCHEMA:
        raise ValueError(
            f"unexpected lint schema: {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("ok"), bool):
        raise ValueError("lint payload ['ok'] must be a bool")
    findings = payload.get("findings")
    if not isinstance(findings, list):
        raise ValueError("lint payload ['findings'] must be a list")
    for row in findings:
        if not isinstance(row, dict):
            raise ValueError("lint payload finding must be an object")
        for name in ("file", "rule", "symbol", "message", "severity"):
            if not isinstance(row.get(name), str) or not row.get(name):
                raise ValueError(
                    f"lint finding [{name!r}] must be a non-empty "
                    f"string, got {row.get(name)!r}"
                )
        for name in ("line", "col"):
            if not isinstance(row.get(name), int) or row[name] < 0:
                raise ValueError(
                    f"lint finding [{name!r}] must be a non-negative "
                    f"int, got {row.get(name)!r}"
                )
    if payload["ok"] and findings:
        raise ValueError("lint payload ok=true but has findings")
    for name in ("counts", "families"):
        block = payload.get(name)
        if not isinstance(block, dict) or any(
            not isinstance(v, int) or v < 1 for v in block.values()
        ):
            raise ValueError(
                f"lint payload [{name!r}] must map names to positive "
                f"ints"
            )
        if sum(block.values()) != len(findings):
            raise ValueError(
                f"lint payload [{name!r}] totals disagree with the "
                f"findings list"
            )
    baseline = payload.get("baseline")
    if not isinstance(baseline, dict) or \
            not isinstance(baseline.get("suppressed"), int):
        raise ValueError(
            "lint payload ['baseline']['suppressed'] must be an int"
        )


def render_json(findings: list[Finding],
                suppressed: int = 0,
                baseline_path: Optional[str] = None) -> str:
    return json.dumps(
        to_json_payload(findings, suppressed, baseline_path),
        indent=2, sort_keys=False,
    ) + "\n"


# -- baseline ---------------------------------------------------------------


def save_baseline(findings: Iterable[Finding],
                  path: str | Path) -> Path:
    payload = {
        "schema": BASELINE_SCHEMA,
        "fingerprints": sorted(fingerprints(findings)),
    }
    out = Path(path)
    out.write_text(json.dumps(payload, indent=1) + "\n")
    return out


def load_baseline(path: str | Path) -> set[str]:
    """Grandfathered fingerprints (empty set if the file is absent)."""
    p = Path(path)
    if not p.exists():
        return set()
    payload = json.loads(p.read_text())
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"unrecognized baseline schema in {p}: "
            f"{payload.get('schema')!r}"
        )
    return set(payload.get("fingerprints", []))


def apply_baseline(
    findings: list[Finding], grandfathered: set[str]
) -> tuple[list[Finding], int]:
    """``(fresh_findings, suppressed_count)`` after grandfathering."""
    if not grandfathered:
        return findings, 0
    fresh: list[Finding] = []
    suppressed = 0
    for f, fp in zip(sorted(findings), fingerprints(findings)):
        if fp in grandfathered:
            suppressed += 1
        else:
            fresh.append(f)
    return fresh, suppressed
