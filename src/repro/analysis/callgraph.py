"""Intra-package call graph over functions *and* methods.

The pool-purity and cache-soundness rules reason about everything a
sweep cell *transitively* executes, and the async-safety rules reason
about everything a coroutine can reach before its next ``await``.
This module builds the part of that picture that is statically
resolvable:

* module-level functions, following import aliases
  (``from repro.core.experiment import run_app_experiment``);
* methods of module-level classes, reachable three ways — as
  ``ClassName.method`` references, as ``self.method(...)`` /
  ``cls.method(...)`` calls from a sibling method, and as
  ``instance.method(...)`` only when the receiver is a module-level
  singleton whose constructor class is known.

Each node records whether it is a coroutine (``is_async``) and its
``await`` points, so the async rules never re-walk the tree.

Dynamically dispatched callables (``getattr``, callables stored in
containers, instance attributes rebound at runtime) remain out of
scope — a documented precision limit (see DESIGN.md): the analyzers
prefer missed findings over false alarms on code they cannot see
through.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.astcore import ModuleInfo, iter_calls, iter_own_nodes


@dataclass
class FunctionNode:
    """One function or method in the analyzed tree."""

    qualname: str                  # "repro.serve.httpd.MiniPhpServer.stop"
    module: ModuleInfo
    node: ast.FunctionDef
    #: class name when this is a method of a module-level class
    cls: Optional[str] = None
    is_async: bool = False
    callees: set[str] = field(default_factory=set)
    #: ``await`` expressions in *this* frame (nested defs excluded)
    awaits: list[ast.Await] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class CallGraph:
    """Functions plus resolved intra-package call edges."""

    functions: dict[str, FunctionNode] = field(default_factory=dict)

    def lookup(self, qualname: Optional[str]) -> Optional[FunctionNode]:
        if qualname is None:
            return None
        return self.functions.get(qualname)

    def transitive(self, qualname: str) -> list[FunctionNode]:
        """``qualname`` plus every function it can statically reach."""
        seen: list[str] = []
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen or current not in self.functions:
                continue
            seen.append(current)
            # Sorted for deterministic finding order.
            stack.extend(sorted(self.functions[current].callees,
                                reverse=True))
        return [self.functions[q] for q in seen]

    def resolve_callee(self, caller: FunctionNode,
                       call: ast.Call) -> Optional[FunctionNode]:
        """Best-effort target of one call expression from ``caller``."""
        resolved = caller.module.resolve_call(call)
        node = self.lookup(resolved)
        if node is not None:
            return node
        return self.lookup(self._method_candidate(caller, call))

    def _method_candidate(self, caller: FunctionNode,
                          call: ast.Call) -> Optional[str]:
        """``self.foo()`` / ``cls.foo()`` -> sibling-method qualname."""
        if caller.cls is None:
            return None
        func = call.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id in ("self", "cls"):
            return (f"{caller.module.modname}.{caller.cls}"
                    f".{func.attr}")
        return None


def _iter_defs(
    module: ModuleInfo,
) -> Iterator[tuple[Optional[str], ast.FunctionDef]]:
    """``(class_name_or_None, def)`` for every analyzable def."""
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    yield node.name, item


def build_call_graph(modules: dict[str, ModuleInfo]) -> CallGraph:
    graph = CallGraph()
    for modname, module in modules.items():
        for cls, fn in _iter_defs(module):
            qualname = f"{modname}.{cls}.{fn.name}" if cls \
                else f"{modname}.{fn.name}"
            is_async = isinstance(fn, ast.AsyncFunctionDef)
            node = FunctionNode(
                qualname=qualname, module=module, node=fn, cls=cls,
                is_async=is_async,
            )
            if is_async:
                node.awaits = [
                    n for n in iter_own_nodes(fn)
                    if isinstance(n, ast.Await)
                ]
            graph.functions[qualname] = node
    for node in graph.functions.values():
        for call in iter_calls(node.node):
            callee = graph.resolve_callee(node, call)
            if callee is not None:
                node.callees.add(callee.qualname)
    return graph
