"""Intra-package call graph over module-level functions.

The pool-purity and cache-soundness rules reason about everything a
sweep cell *transitively* executes.  This module builds the part of
that picture that is statically resolvable: direct calls between
module-level functions of the analyzed package, following import
aliases (``from repro.core.experiment import run_app_experiment``).

Method bodies and dynamically dispatched callables are out of scope —
a documented precision limit (see DESIGN.md): objects *constructed
inside* a cell are per-cell state and cannot smuggle unkeyed inputs
across cells, which is the failure mode these rules exist to catch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.astcore import ModuleInfo, iter_calls


@dataclass
class FunctionNode:
    """One module-level function in the analyzed tree."""

    qualname: str                  # "repro.core.experiment._evaluate_app_cell"
    module: ModuleInfo
    node: ast.FunctionDef
    callees: set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class CallGraph:
    """Functions plus resolved intra-package call edges."""

    functions: dict[str, FunctionNode] = field(default_factory=dict)

    def lookup(self, qualname: Optional[str]) -> Optional[FunctionNode]:
        if qualname is None:
            return None
        return self.functions.get(qualname)

    def transitive(self, qualname: str) -> list[FunctionNode]:
        """``qualname`` plus every function it can statically reach."""
        seen: list[str] = []
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen or current not in self.functions:
                continue
            seen.append(current)
            # Sorted for deterministic finding order.
            stack.extend(sorted(self.functions[current].callees,
                                reverse=True))
        return [self.functions[q] for q in seen]


def _function_defs(module: ModuleInfo) -> Iterator[ast.FunctionDef]:
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def build_call_graph(modules: dict[str, ModuleInfo]) -> CallGraph:
    graph = CallGraph()
    for modname, module in modules.items():
        for fn in _function_defs(module):
            qualname = f"{modname}.{fn.name}"
            graph.functions[qualname] = FunctionNode(
                qualname=qualname, module=module, node=fn
            )
    for node in graph.functions.values():
        for call in iter_calls(node.node):
            resolved = node.module.resolve_call(call)
            if resolved in graph.functions:
                node.callees.add(resolved)
    return graph
