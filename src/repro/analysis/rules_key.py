"""Cache-soundness rules (KEY0xx).

``core/expcache`` serves memoized experiment cells keyed on
``cache_key(label, *key_parts(item))``.  The memoization is only sound
if the key covers *every* input the cell actually reads: one unkeyed
module singleton and a sweep silently returns stale results after the
singleton changes.  These rules run a reaching-inputs analysis over
each keyed cell's transitive call graph:

=======  ==========================================================
KEY001   keyed cell (transitively) reads an input that is not
         represented in its cache key and not covered by a
         ``# repro: cache-key-covers(...)`` waiver
KEY002   a ``cache-key-covers`` waiver lists an input the cell no
         longer reads (stale waiver — must shrink with the code)
KEY003   keyed ``map_cells`` call site without a non-empty ``label``
         (cross-sweep key collisions)
=======  ==========================================================

The waiver is an *assertion with teeth*: ``cache-key-covers(X)``
claims X is a deterministic function of the keyed parts (a trace
cache keyed by app+seed, a frozen cost model covered by CODE_SALT).
The checker recomputes the reaching-input set on every run and fails
when the waiver drifts from the code, in either direction.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.astcore import (
    ModuleInfo,
    enclosing_symbol,
    local_names,
)
from repro.analysis.callgraph import CallGraph, FunctionNode
from repro.analysis.reporting import Finding
from repro.analysis.rules_pool import (
    SANCTIONED_ENV_PREFIX,
    env_reads,
    iter_pool_sites,
    resolve_payload,
    singleton_qualnames,
)


def _finding(module: ModuleInfo, node: ast.AST, rule: str,
             message: str) -> Finding:
    return Finding(
        file=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        symbol=enclosing_symbol(node),
        message=message,
    )


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def is_keyed_site(call: ast.Call) -> bool:
    """Does this fan-out call store results in the experiment cache?"""
    cache = _keyword(call, "cache")
    keyer = _keyword(call, "key_parts") or _keyword(call, "key_fn")
    if cache is None or keyer is None:
        return False
    if isinstance(cache, ast.Constant) and cache.value is None:
        return False
    return True


def _body_names(fn: ast.FunctionDef) -> Iterator[ast.Name]:
    """Name loads in executable positions (annotations excluded)."""
    skip: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.AnnAssign) and node.annotation:
            skip.update(id(n) for n in ast.walk(node.annotation))
        elif isinstance(node, ast.arg) and node.annotation:
            skip.update(id(n) for n in ast.walk(node.annotation))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.returns:
            skip.update(id(n) for n in ast.walk(node.returns))
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and \
                isinstance(node.ctx, ast.Load) and id(node) not in skip:
            yield node


def reaching_inputs(
    payload: FunctionNode, graph: CallGraph, singletons: set[str]
) -> dict[str, tuple[FunctionNode, int]]:
    """Inputs the cell reads beyond its arguments.

    Maps a display name (``TRACE_CACHE``, ``env:HOME``) to the
    function and line where the read happens.  Covers the payload and
    every statically-reachable module-level callee: reads of
    module-level singletons and non-``REPRO_*`` environment keys.
    Constants (literal module bindings) and classes/functions are by
    construction covered by ``CODE_SALT`` and excluded.
    """
    out: dict[str, tuple[FunctionNode, int]] = {}
    for fn in graph.transitive(payload.qualname):
        locals_ = local_names(fn.node)
        for name in _body_names(fn.node):
            if name.id in locals_:
                continue
            resolved = fn.module.resolve(name.id)
            if resolved in singletons:
                out.setdefault(name.id, (fn, name.lineno))
        for node, key in env_reads(fn):
            if key.startswith(SANCTIONED_ENV_PREFIX):
                continue
            out.setdefault(f"env:{key}", (fn, node.lineno))
    return out


def check(modules: dict[str, ModuleInfo],
          graph: CallGraph) -> list[Finding]:
    singletons = singleton_qualnames(modules)
    out: list[Finding] = []
    checked_payloads: set[str] = set()
    for module, call, _entry in iter_pool_sites(modules):
        if not is_keyed_site(call):
            continue
        label = _keyword(call, "label")
        if label is None or (
            isinstance(label, ast.Constant) and not label.value
        ):
            out.append(_finding(
                module, call, "KEY003",
                "keyed fan-out without a non-empty `label` — keys "
                "from different sweeps sharing an item shape collide",
            ))
        payload, _problem = resolve_payload(module, call, graph)
        if payload is None or payload.qualname in checked_payloads:
            continue  # unresolvable payloads are POOL001's problem
        checked_payloads.add(payload.qualname)
        out.extend(_check_payload(payload, graph, singletons))
    return out


def _check_payload(
    payload: FunctionNode, graph: CallGraph, singletons: set[str]
) -> list[Finding]:
    out: list[Finding] = []
    inputs = reaching_inputs(payload, graph, singletons)
    waiver = payload.module.key_waivers.get(payload.name)
    covered = set(waiver.names) if waiver else set()
    for display in sorted(set(inputs) - covered):
        fn, line = inputs[display]
        out.append(Finding(
            file=fn.module.path, line=line, col=1, rule="KEY001",
            symbol=payload.name,
            message=(
                f"cache-keyed cell `{payload.name}` reads `{display}` "
                f"(via `{fn.qualname}`) which the cache key does not "
                f"name — key it, or assert coverage with "
                f"`# repro: cache-key-covers({display}, ...)` above "
                f"the cell"
            ),
        ))
    if waiver is not None:
        for stale in sorted(covered - set(inputs)):
            out.append(Finding(
                file=payload.module.path, line=waiver.line, col=1,
                rule="KEY002", symbol=payload.name,
                message=(
                    f"stale waiver: `{payload.name}` no longer reads "
                    f"`{stale}` — drop it from cache-key-covers "
                    f"(or run lint --fix-waivers)"
                ),
            ))
    return out


# -- --fix-waivers ----------------------------------------------------------


def compute_waiver_updates(
    modules: dict[str, ModuleInfo], graph: CallGraph
) -> dict[str, dict[str, Optional[list[str]]]]:
    """Per-module corrected ``cache-key-covers`` lists.

    ``{module_path: {payload_name: names | None}}`` — ``None`` means
    the payload needs no waiver (delete any existing one).  Only
    payloads of keyed fan-out sites appear.
    """
    singletons = singleton_qualnames(modules)
    updates: dict[str, dict[str, Optional[list[str]]]] = {}
    seen: set[str] = set()
    for module, call, _entry in iter_pool_sites(modules):
        if not is_keyed_site(call):
            continue
        payload, _problem = resolve_payload(module, call, graph)
        if payload is None or payload.qualname in seen:
            continue
        seen.add(payload.qualname)
        inputs = sorted(reaching_inputs(payload, graph, singletons))
        waiver = payload.module.key_waivers.get(payload.name)
        current = sorted(waiver.names) if waiver else None
        wanted: Optional[list[str]] = inputs if inputs else None
        if wanted != current:
            updates.setdefault(payload.module.path, {})[
                payload.name
            ] = wanted
    return updates


def rewrite_waivers(
    module: ModuleInfo, updates: dict[str, Optional[list[str]]]
) -> str:
    """Source with corrected waiver comments for the given payloads."""
    lines = module.source.splitlines()
    def_lines = {
        node.name: node.lineno
        for node in module.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    # Apply bottom-up so earlier line numbers stay valid.
    for name in sorted(updates,
                       key=lambda n: def_lines.get(n, 0),
                       reverse=True):
        if name not in def_lines:
            continue
        wanted = updates[name]
        existing = module.key_waivers.get(name)
        comment = None if wanted is None else \
            f"# repro: cache-key-covers({', '.join(wanted)})"
        if existing is not None:
            if comment is None:
                del lines[existing.line - 1]
            else:
                lines[existing.line - 1] = comment
        elif comment is not None:
            lines.insert(def_lines[name] - 1, comment)
    return "\n".join(lines) + ("\n" if module.source.endswith("\n")
                               else "")
