"""Async-safety rules (ASY0xx).

The serving path (PRs 7–9) runs a real asyncio event loop: one stalled
or racy coroutine degrades every in-flight request, and the failure
modes are exactly the ones that never show up in unit tests — a
blocking call that is fast on a dev laptop, a check-then-act race that
needs two interleaved connections, a task whose exception nobody ever
observes, a read that hangs forever on a half-dead peer.  These rules
reject each of those shapes statically:

=======  ==========================================================
ASY001   blocking call (``time.sleep``, sync socket/file I/O,
         ``subprocess``, heavy accel kernels) transitively reachable
         from a coroutine — stalls the shared event loop
ASY002   shared mutable state (``self.attr`` / module global) read
         before and re-assigned after an intervening ``await``
         without re-validation — a check-then-act race window
ASY003   coroutine or ``create_task``/``ensure_future`` result that
         is never awaited, gathered, or given a done-callback — its
         exceptions vanish
ASY004   ``await`` of an external operation (socket connect/read/
         drain) with no ``asyncio.wait_for`` deadline on any path
         from its task root
=======  ==========================================================

Sanctioned idioms the analyzer recognizes (see DESIGN.md):

* **claim-before-await** — move the shared value into a local and
  overwrite the attribute *before* the first ``await``
  (``writer, self._writer = self._writer, None``); later awaits
  operate on the claimed local, so no cross-await write remains.
* **fresh re-read** — re-validate the attribute between the last
  ``await`` and the write (double-checked publish); ASY002 stays
  silent when a read of the same location sits in that window.
* **lock discipline** — reads and the write share an enclosing
  ``async with`` block.
* **single-flight** — publishing a future into a shared dict
  *synchronously* (the FragmentCache stampede defense) never spans
  an await and is therefore never flagged.
* **read-modify-write** — ``self.counter += 1`` (AugAssign) reads at
  the write site by construction and is not a stale publish.

The analysis is position-based (textual order approximates execution
order within one frame) and syntactic — a documented precision limit
shared with the rest of the suite.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.astcore import (
    ModuleInfo,
    dotted_name,
    enclosing_symbol,
    iter_own_nodes,
    parent_of,
)
from repro.analysis.callgraph import CallGraph, FunctionNode
from repro.analysis.reporting import Finding

#: Synchronous calls that park the whole event loop while they run.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.wait", "os.waitpid",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname", "socket.gethostbyaddr",
    "urllib.request.urlopen",
    "open",
})

#: In-tree kernels heavy enough to stall a request loop; coroutines
#: must ship them through ``run_in_executor`` instead.
HEAVY_CALLS = frozenset({
    "repro.workloads.templates.render_http_page",
    "repro.core.experiment.full_evaluation",
    "repro.core.experiment.run_app_experiment",
})

#: Awaited attribute calls that depend on a remote peer making
#: progress — these hang forever without a deadline.
EXTERNAL_AWAIT_METHODS = frozenset({
    "readline", "readexactly", "readuntil", "read", "drain",
})

#: Awaited module-level calls that depend on a remote peer.
EXTERNAL_AWAIT_CALLS = frozenset({
    "asyncio.open_connection",
})

#: Task-spawn entry points: the coroutine argument runs as a new task
#: root, outside any caller deadline.
TASK_SPAWNERS = frozenset({
    "asyncio.create_task", "asyncio.ensure_future",
})

_WAIT_FOR = "asyncio.wait_for"


def _finding(module: ModuleInfo, node: ast.AST, rule: str,
             message: str) -> Finding:
    return Finding(
        file=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        symbol=enclosing_symbol(node),
        message=message,
    )


def _pos(node: ast.AST) -> tuple[int, int]:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def _dedupe(findings: list[Finding]) -> list[Finding]:
    """Two coroutines reaching one defect report it once."""
    seen: set[tuple] = set()
    out: list[Finding] = []
    for f in sorted(findings):
        key = (f.file, f.line, f.col, f.rule)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    return out


# -- ASY001: blocking calls reachable from coroutines -----------------------


def _blocking_calls_in(fn: FunctionNode) -> Iterator[tuple[ast.Call, str]]:
    for node in iter_own_nodes(fn.node):
        if not isinstance(node, ast.Call):
            continue
        resolved = fn.module.resolve_call(node)
        if resolved in BLOCKING_CALLS or resolved in HEAVY_CALLS:
            yield node, resolved


def _sync_reachable(root: FunctionNode,
                    graph: CallGraph) -> list[FunctionNode]:
    """``root`` plus transitively-called *sync* functions.

    Async callees are skipped: each coroutine is its own ASY001
    root, so a blocking call inside one is reported exactly once.
    """
    out: list[FunctionNode] = [root]
    seen = {root.qualname}
    stack = sorted(root.callees, reverse=True)
    while stack:
        qual = stack.pop()
        node = graph.lookup(qual)
        if node is None or qual in seen or node.is_async:
            continue
        seen.add(qual)
        out.append(node)
        stack.extend(sorted(node.callees, reverse=True))
    return out


def _check_blocking(graph: CallGraph) -> list[Finding]:
    out: list[Finding] = []
    for qual in sorted(graph.functions):
        coro = graph.functions[qual]
        if not coro.is_async:
            continue
        for fn in _sync_reachable(coro, graph):
            for call, resolved in _blocking_calls_in(fn):
                kind = "heavy kernel" if resolved in HEAVY_CALLS \
                    else "blocking call"
                via = "" if fn is coro \
                    else f" via `{fn.qualname}`"
                out.append(_finding(
                    fn.module, call, "ASY001",
                    f"{kind} `{resolved}` reachable from coroutine "
                    f"`{coro.qualname}`{via} — stalls the event loop; "
                    f"use an async equivalent or run_in_executor",
                ))
    return _dedupe(out)


# -- ASY002: check-then-act races across awaits -----------------------------


def _shared_key(node: ast.AST,
                global_names: set[str]) -> Optional[tuple[str, str]]:
    """Identity of a shared location: ``self.attr`` or module global."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and \
            node.value.id == "self":
        return ("self", node.attr)
    if isinstance(node, ast.Name) and node.id in global_names:
        return ("global", node.id)
    return None


def _assign_targets(stmt: ast.stmt) -> list[ast.AST]:
    if isinstance(stmt, ast.Assign):
        out: list[ast.AST] = []
        for target in stmt.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                out.extend(target.elts)
            else:
                out.append(target)
        return out
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return [stmt.target]
    return []


def _async_with_ancestors(node: ast.AST, frame: ast.AST) -> set[int]:
    out: set[int] = set()
    cursor = parent_of(node)
    while cursor is not None and cursor is not frame:
        if isinstance(cursor, ast.AsyncWith):
            out.add(id(cursor))
        cursor = parent_of(cursor)
    return out


def _check_races(graph: CallGraph) -> list[Finding]:
    out: list[Finding] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if not fn.is_async or not fn.awaits:
            continue
        global_names: set[str] = set()
        for node in iter_own_nodes(fn.node):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
        await_positions = sorted(_pos(a) for a in fn.awaits)
        loads: dict[tuple[str, str], list[ast.AST]] = {}
        for node in iter_own_nodes(fn.node):
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            key = _shared_key(node, global_names)
            if key is not None:
                loads.setdefault(key, []).append(node)
        for stmt in iter_own_nodes(fn.node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            for target in _assign_targets(stmt):
                key = _shared_key(target, global_names)
                if key is None:
                    continue
                # The store completes when the whole statement does:
                # ``self._server = await start_server(...)`` publishes
                # *after* its own await, so the window closes at the
                # statement's end, not its first token.
                w = (getattr(stmt, "end_lineno", stmt.lineno),
                     getattr(stmt, "end_col_offset", stmt.col_offset))
                before = [p for p in await_positions if p < w]
                if not before:
                    continue  # claim-before-await: publish is sync
                last_await = before[-1]
                # The race needs a read of the same location with an
                # await between it and the write (check-then-act).
                race_reads = [
                    n for n in loads.get(key, ())
                    if _pos(n) < w
                    and any(_pos(n) < a < w for a in await_positions)
                ]
                if not race_reads:
                    continue
                # Fresh re-read between the last await and the write
                # re-validates the check: the double-checked publish.
                if any(last_await < _pos(n) < w
                       for n in loads.get(key, ())):
                    continue
                # Lock discipline: a shared ``async with`` block
                # covering both the read and the write.
                w_locks = _async_with_ancestors(stmt, fn.node)
                if w_locks and any(
                    w_locks & _async_with_ancestors(n, fn.node)
                    for n in race_reads
                ):
                    continue
                where = f"self.{key[1]}" if key[0] == "self" \
                    else f"global `{key[1]}`"
                out.append(_finding(
                    fn.module, stmt, "ASY002",
                    f"`{where}` read at line "
                    f"{race_reads[0].lineno} and re-assigned here "
                    f"across an await — another task can interleave; "
                    f"claim it before the first await or re-validate "
                    f"after the last one",
                ))
    return _dedupe(out)


# -- ASY003: dropped coroutines and tasks -----------------------------------


def _is_task_spawn(module: ModuleInfo, call: ast.Call) -> bool:
    resolved = module.resolve_call(call)
    if resolved in TASK_SPAWNERS:
        return True
    # ``loop.create_task(...)`` on an unresolvable receiver.
    return isinstance(call.func, ast.Attribute) and \
        call.func.attr in ("create_task", "ensure_future")


def _check_dropped(graph: CallGraph) -> list[Finding]:
    out: list[Finding] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        name_loads: dict[str, int] = {}
        for node in iter_own_nodes(fn.node):
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load):
                name_loads[node.id] = name_loads.get(node.id, 0) + 1
        for stmt in iter_own_nodes(fn.node):
            if isinstance(stmt, ast.Expr) and \
                    isinstance(stmt.value, ast.Call):
                call = stmt.value
                callee = graph.resolve_callee(fn, call)
                if callee is not None and callee.is_async:
                    out.append(_finding(
                        fn.module, call, "ASY003",
                        f"coroutine `{callee.qualname}` created but "
                        f"never awaited — it will not run and its "
                        f"exceptions vanish",
                    ))
                elif _is_task_spawn(fn.module, call):
                    out.append(_finding(
                        fn.module, call, "ASY003",
                        "task result dropped — keep a reference and "
                        "await/gather it or attach add_done_callback, "
                        "or its exceptions vanish",
                    ))
            elif isinstance(stmt, ast.Assign) and \
                    isinstance(stmt.value, ast.Call) and \
                    _is_task_spawn(fn.module, stmt.value):
                targets = [
                    t for t in stmt.targets if isinstance(t, ast.Name)
                ]
                if targets and all(
                    name_loads.get(t.id, 0) == 0 for t in targets
                ):
                    out.append(_finding(
                        fn.module, stmt.value, "ASY003",
                        f"task bound to `{targets[0].id}` is never "
                        f"awaited, gathered, or given a "
                        f"done-callback — its exceptions vanish",
                    ))
    return _dedupe(out)


# -- ASY004: external awaits without a deadline -----------------------------


def _external_name(fn: FunctionNode,
                   call: ast.Call) -> Optional[str]:
    resolved = fn.module.resolve_call(call)
    if resolved in EXTERNAL_AWAIT_CALLS:
        return resolved
    if isinstance(call.func, ast.Attribute) and \
            call.func.attr in EXTERNAL_AWAIT_METHODS:
        base = dotted_name(call.func.value)
        return f"{base}.{call.func.attr}" if base \
            else f".{call.func.attr}"
    return None


def _awaited_call(awaitexpr: ast.Await) -> Optional[ast.Call]:
    return awaitexpr.value if isinstance(awaitexpr.value, ast.Call) \
        else None


def _call_sites(
    graph: CallGraph,
) -> dict[str, list[tuple[FunctionNode, str]]]:
    """callee qualname -> [(caller, kind)] with kind in
    ``guarded`` (wait_for-wrapped await), ``awaited`` (bare await,
    inherits the caller's deadline state), ``spawned`` (task root,
    no ambient deadline)."""
    sites: dict[str, list[tuple[FunctionNode, str]]] = {}

    def record(callee: Optional[FunctionNode], caller: FunctionNode,
               kind: str) -> None:
        if callee is not None and callee.is_async:
            sites.setdefault(callee.qualname, []).append(
                (caller, kind)
            )

    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        awaited_ids: set[int] = set()
        for awaitexpr in fn.awaits:
            call = _awaited_call(awaitexpr)
            if call is None:
                continue
            awaited_ids.add(id(call))
            if fn.module.resolve_call(call) == _WAIT_FOR:
                inner = call.args[0] if call.args else None
                if isinstance(inner, ast.Call):
                    awaited_ids.add(id(inner))
                    record(graph.resolve_callee(fn, inner), fn,
                           "guarded")
            else:
                record(graph.resolve_callee(fn, call), fn, "awaited")
        for node in iter_own_nodes(fn.node):
            if not isinstance(node, ast.Call) or \
                    id(node) in awaited_ids:
                continue
            if _is_task_spawn(fn.module, node) and node.args and \
                    isinstance(node.args[0], ast.Call):
                record(graph.resolve_callee(fn, node.args[0]), fn,
                       "spawned")
            elif fn.module.resolve_call(node) == "asyncio.run" and \
                    node.args and isinstance(node.args[0], ast.Call):
                record(graph.resolve_callee(fn, node.args[0]), fn,
                       "spawned")
    return sites


def _deadline_coverage(graph: CallGraph) -> dict[str, bool]:
    """True iff every path that awaits the coroutine carries a
    ``wait_for`` deadline.  Greatest fixpoint: start optimistic,
    demote until stable — roots (no await sites: server callbacks,
    spawned tasks, ``asyncio.run`` arguments) start uncovered."""
    sites = _call_sites(graph)
    covered: dict[str, bool] = {}
    for qual in sorted(graph.functions):
        if graph.functions[qual].is_async:
            covered[qual] = bool(sites.get(qual))
    changed = True
    while changed:
        changed = False
        for qual in sorted(covered):
            if not covered[qual]:
                continue
            for caller, kind in sites.get(qual, ()):
                ok = kind == "guarded" or (
                    kind == "awaited"
                    and covered.get(caller.qualname, False)
                )
                if not ok:
                    covered[qual] = False
                    changed = True
                    break
    return covered


def _check_deadlines(graph: CallGraph) -> list[Finding]:
    covered = _deadline_coverage(graph)
    out: list[Finding] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if not fn.is_async or covered.get(qual, False):
            continue
        for awaitexpr in fn.awaits:
            call = _awaited_call(awaitexpr)
            if call is None:
                continue
            if fn.module.resolve_call(call) == _WAIT_FOR:
                continue
            external = _external_name(fn, call)
            if external is None:
                continue
            out.append(_finding(
                fn.module, awaitexpr, "ASY004",
                f"external await `{external}` has no deadline on "
                f"some path into `{fn.qualname}` — a stalled peer "
                f"parks this task forever; wrap it (or a caller) in "
                f"asyncio.wait_for",
            ))
    return _dedupe(out)


def check(modules: dict[str, ModuleInfo],
          graph: CallGraph) -> list[Finding]:
    del modules  # the call graph already spans every module
    out: list[Finding] = []
    out.extend(_check_blocking(graph))
    out.extend(_check_races(graph))
    out.extend(_check_dropped(graph))
    out.extend(_check_deadlines(graph))
    return sorted(out)
