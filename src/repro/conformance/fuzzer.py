"""Seeded generative fuzzing, greedy shrinking, and the conform driver.

The grammars here produce *valid-by-construction* op scripts for the
differential oracles in :mod:`repro.conformance.oracles` — every case
is a plain JSON value, so failures can be persisted verbatim under
``tests/corpus/`` and replayed forever by ``tests/test_conformance.py``.
When a case fails, :func:`shrink_case` greedily deletes op spans and
truncates string arguments until nothing smaller still fails, which is
what lands in the report and the CI artifact.

Everything is derived from one seed through
:class:`~repro.common.rng.DeterministicRng` forks, so
``python -m repro conform --seed N`` renders byte-identical output on
every run — including under ``--jobs`` fan-out, because
:func:`repro.core.parallel.map_cells` preserves submission order.
"""

from __future__ import annotations

import json
import traceback
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.conformance.invariants import INVARIANTS, run_invariant
from repro.conformance.oracles import (
    ConformanceFailure,
    run_calibrate_oracle,
    run_checksum_oracle,
    run_hash_oracle,
    run_heap_oracle,
    run_regex_oracle,
    run_reuse_oracle,
    run_serve_oracle,
    run_string_oracle,
)

#: Fuzzed base domains, one differential oracle each (reuse rides on
#: the regex stack but has its own script shape, hence its own domain;
#: checksum pins the process-stable result mixing that DET005 and the
#: pool-identity invariants rely on; serve pins the live HTTP path's
#: bytes to the direct interpreter render; calibrate pins the
#: digital-twin fitters to brute-force shadow fits).
BASE_DOMAINS: tuple[str, ...] = (
    "hash", "heap", "string", "regex", "reuse", "checksum", "serve",
    "calibrate",
)

#: Base domains whose oracles exercise registry-swappable kernels;
#: each grows one ``{base}@{backend}`` variant domain per non-default
#: backend, so every registered backend is fuzzed against the same
#: differential oracles with zero edits here.
_VARIANT_BASES: tuple[str, ...] = ("hash", "string", "regex", "reuse")


def split_domain(domain: str) -> tuple[str, Optional[str]]:
    """``"string@bulk"`` → ``("string", "bulk")``; no suffix → None."""
    base, sep, backend = domain.partition("@")
    return base, (backend if sep else None)


def _variant_domains() -> tuple[str, ...]:
    from repro.accel.registry import DEFAULT_BACKEND, REGISTRY

    return tuple(
        f"{base}@{backend}"
        for backend in REGISTRY.measured_backends()
        if backend != DEFAULT_BACKEND
        for base in _VARIANT_BASES
    )


#: All fuzzed domains: the bases plus one variant per (swappable
#: domain, available non-default backend) pair.
DOMAINS: tuple[str, ...] = BASE_DOMAINS + _variant_domains()

#: Cases per domain: smoke keeps ``scripts/check.sh`` fast.
SMOKE_CASES = 40
FULL_CASES = 250

#: At most this many failures are shrunk and reported per domain; the
#: rest are counted only (one root cause usually fails many cases).
MAX_SHRUNK_PER_DOMAIN = 5


# -- generation grammars -----------------------------------------------------------

_HASH_KEYS = tuple(f"k{i}" for i in range(12))
_LONG_KEY = "key-" + "x" * 24          # > max_key_bytes -> software path
_STRING_ALPHABET = "abcXYZ 012_\t,<&é"
_REGEX_TEXT_ALPHABET = "aabbc x01Z."
_REUSE_PATTERNS = (
    "https://[a-z]+/\\?author=[a-z]+",
    "[0-9]+-[0-9]+",
    "abc[a-z]*",
)


def _gen_hash(rng: DeterministicRng) -> list:
    ops: list = []
    for _ in range(rng.randint(1, 40)):
        roll = rng.random()
        key = _LONG_KEY if rng.random() < 0.05 else rng.choice(_HASH_KEYS)
        base = rng.randint(0, 2)
        if roll < 0.40:
            ops.append(["set", key, base, rng.randint(0, 999)])
        elif roll < 0.75:
            ops.append(["get", key, base])
        elif roll < 0.85:
            ops.append(["foreach", base])
        elif roll < 0.92:
            ops.append(["free", base])
        elif roll < 0.97:
            ops.append(["flush", base])
        else:
            ops.append(["storm"])
    return ops


def _gen_heap(rng: DeterministicRng) -> list:
    ops: list = []
    for _ in range(rng.randint(1, 50)):
        roll = rng.random()
        if roll < 0.50:
            # 1..160 straddles max_request_bytes=128 -> oversize path.
            ops.append(["malloc", rng.randint(1, 160)])
        elif roll < 0.85:
            ops.append(["free", rng.randint(0, 63)])
        elif roll < 0.92:
            ops.append(["flush"])
        elif roll < 0.97:
            ops.append(["outage"])
        else:
            ops.append(["repair"])
    return ops


def _gen_text(rng: DeterministicRng, alphabet: str, lo: int, hi: int) -> str:
    return "".join(
        rng.choice(alphabet) for _ in range(rng.randint(lo, hi))
    )


def _gen_string(rng: DeterministicRng) -> list:
    ops: list = []
    for _ in range(rng.randint(1, 12)):
        subject = _gen_text(rng, _STRING_ALPHABET, 0, 60)
        kind = rng.choice((
            "find", "find_unicode", "compare", "upper", "lower",
            "trim", "replace", "translate", "html_escape",
            "charclass", "configloss",
        ))
        if kind == "find":
            pattern = _gen_text(rng, _STRING_ALPHABET, 1, 8)
            ops.append(["find", subject, pattern,
                        rng.randint(0, max(0, len(subject)))])
        elif kind == "find_unicode":
            # UTF-8 pattern budget is 16 bytes; é costs 2.
            ops.append(["find_unicode", subject,
                        _gen_text(rng, _STRING_ALPHABET, 1, 6)])
        elif kind == "compare":
            ops.append(["compare", subject,
                        _gen_text(rng, _STRING_ALPHABET, 0, 60)])
        elif kind in ("upper", "lower"):
            ops.append([kind, subject])
        elif kind == "trim":
            ops.append(["trim", subject, rng.choice((" \t", " ,", "abc"))])
        elif kind == "replace":
            ops.append(["replace", subject,
                        _gen_text(rng, _STRING_ALPHABET, 1, 4),
                        _gen_text(rng, _STRING_ALPHABET, 0, 4)])
        elif kind == "translate":
            pairs = [[rng.choice(_STRING_ALPHABET),
                      rng.choice(_STRING_ALPHABET)]
                     for _ in range(rng.randint(1, 6))]
            ops.append(["translate", subject, pairs])
        elif kind == "html_escape":
            ops.append(["html_escape", subject,
                        [["<", "&lt;"], ["&", "&amp;"]]])
        elif kind == "charclass":
            ops.append(["charclass", subject,
                        _gen_text(rng, _STRING_ALPHABET, 1, 5),
                        rng.choice((4, 8, 16))])
        else:
            ops.append(["configloss"])
    return ops


def _gen_regex_atom(rng: DeterministicRng) -> str:
    roll = rng.random()
    if roll < 0.45:
        return rng.choice("abcx01")
    if roll < 0.60:
        return rng.choice(("[ab]", "[a-c]", "[^a]", "[0-9x]"))
    if roll < 0.70:
        return "."
    if roll < 0.80:
        return rng.choice(("\\d", "\\w", "\\s"))
    return rng.choice(("\\.", "\\?"))


def _gen_regex_piece(rng: DeterministicRng) -> str:
    atom = _gen_regex_atom(rng)
    roll = rng.random()
    if roll < 0.55:
        return atom
    if roll < 0.70:
        return atom + rng.choice("*+?")
    if roll < 0.80:
        m = rng.randint(0, 2)
        return f"{atom}{{{m},{m + rng.randint(0, 2)}}}"
    # One unquantified group, possibly an alternation — never a
    # quantifier on a quantified subexpression, which keeps the O(n²)
    # re.fullmatch oracle clear of catastrophic backtracking.
    arm = lambda: "".join(_gen_regex_atom(rng)
                          for _ in range(rng.randint(1, 2)))
    if roll < 0.90:
        return f"({arm()}|{arm()})"
    return f"(?:{arm()}|{arm()})" + rng.choice(("", "?"))


def _gen_regex(rng: DeterministicRng) -> list:
    body = "".join(_gen_regex_piece(rng)
                   for _ in range(rng.randint(1, 5)))
    text = _gen_text(rng, _REGEX_TEXT_ALPHABET, 0, 32)
    return [
        body,
        rng.random() < 0.25,          # ignore_case
        rng.random() < 0.20,          # anchor_start
        rng.random() < 0.20,          # anchor_end
        text,
    ]


def _gen_reuse(rng: DeterministicRng) -> list:
    pattern = rng.choice(_REUSE_PATTERNS)
    stems = ("https://site/?author=bob", "https://blog/?author=al",
             "12-345", "0-0", "abcdef", "abz", "no match here")
    script = [
        [rng.randint(0, 3), rng.choice(stems)]
        for _ in range(rng.randint(1, 20))
    ]
    return [pattern, script]


def _gen_checksum_value(rng: DeterministicRng, depth: int = 0):
    roll = rng.random()
    if roll < 0.40:
        return _gen_text(rng, _STRING_ALPHABET, 0, 12)
    if roll < 0.70:
        return rng.randint(-1_000_000, 1_000_000)
    if roll < 0.80 or depth >= 2:
        # The shapes execute.py actually mixes: "key#seq" strings and
        # (key, value) pairs — JSON keeps lists, repr keeps order.
        return f"{rng.choice(_HASH_KEYS)}#{rng.randint(0, 99)}"
    return [_gen_checksum_value(rng, depth + 1)
            for _ in range(rng.randint(0, 3))]


def _gen_checksum(rng: DeterministicRng) -> list:
    from repro.conformance.oracles import shadow_checksum

    values = [_gen_checksum_value(rng)
              for _ in range(rng.randint(1, 12))]
    ops: list = [["mix", v] for v in values]
    # Pin the digest at generation time: replaying this case later
    # fails if checksum mixing ever stops being canonical.
    ops.append(["expect", format(shadow_checksum(values), "016x")])
    return ops


_SERVE_APPS = ("wordpress", "drupal", "mediawiki")


def _gen_serve(rng: DeterministicRng) -> list:
    # Small case sizes: every op costs two real HTTP round trips plus
    # a direct render, and each case boots its own transient server.
    return [
        [rng.choice(_SERVE_APPS), rng.randint(0, 9), rng.randint(0, 2)]
        for _ in range(rng.randint(1, 3))
    ]


_CAL_ROUTES = ("wordpress", "drupal", "mediawiki")


def _gen_calibrate(rng: DeterministicRng) -> list:
    """Seeded telemetry scripts for the fitter-vs-shadow oracle.

    Rows are ``[t_ms, route, cache, queue_ms, render_ms]``.  Most
    cases stay under MIN_SHAPE_EVENTS (the exactly-checkable flat
    arrival path); a dense flavor crosses into the sinusoid fit, and
    degenerate flavors (all-identical renders, single route, all
    cache hits) pin the fitters' edge cases.
    """
    flavor = rng.random()
    if flavor < 0.10:
        n = rng.randint(64, 160)            # dense: sinusoid-fit path
    else:
        n = rng.randint(1, 50)
    identical = rng.random() < 0.15
    single_route = rng.random() < 0.15
    all_hits = rng.random() < 0.08
    fixed_render = round(rng.uniform(0.5, 20.0), 3)
    route = rng.choice(_CAL_ROUTES)
    rows: list = []
    t = 0.0
    for _ in range(n):
        t += rng.uniform(0.1, 50.0)
        roll = rng.random()
        if all_hits or roll >= 0.45:
            cache = ("hit" if roll < 0.75 or all_hits
                     else "stale" if roll < 0.90 else "coalesced")
            queue, render = 0.0, 0.0
        else:
            cache = "miss"
            queue = round(rng.uniform(0.0, 5.0), 3)
            render = (fixed_render if identical
                      else round(rng.uniform(0.2, 25.0), 3))
        rows.append([
            round(t, 3),
            route if single_route else rng.choice(_CAL_ROUTES),
            cache, queue, render,
        ])
    return rows


_GENERATORS = {
    "hash": _gen_hash,
    "heap": _gen_heap,
    "string": _gen_string,
    "regex": _gen_regex,
    "reuse": _gen_reuse,
    "checksum": _gen_checksum,
    "serve": _gen_serve,
    "calibrate": _gen_calibrate,
}


def generate_case(domain: str, rng: DeterministicRng) -> list:
    """One valid-by-construction JSON-able case for ``domain``.

    Variant domains (``string@bulk``) share their base's grammar: the
    whole point is replaying identical scripts on another backend.
    """
    base, _ = split_domain(domain)
    try:
        gen = _GENERATORS[base]
    except KeyError:
        raise ValueError(f"unknown fuzz domain {domain!r}") from None
    return gen(rng)


def run_case(domain: str, case: list) -> None:
    """Replay one case through its oracle; raise on any divergence.

    A ``{base}@{backend}`` domain runs the base oracle inside
    ``backend_mode(backend)`` — the differential check then proves the
    backend byte-identical to the same pinned shadow model.  Unknown
    backends raise (a stale corpus file should fail loudly).

    Unexpected exceptions (an accelerator crashing on a valid script)
    are conformance failures too, wrapped with their traceback tail.
    """
    from repro.accel.registry import REGISTRY, backend_mode

    base, backend = split_domain(domain)
    if backend is not None and backend not in REGISTRY.backend_names():
        raise ValueError(
            f"unknown backend in fuzz domain {domain!r}; registered: "
            + ", ".join(REGISTRY.backend_names())
        )
    try:
        with backend_mode(backend) if backend else nullcontext():
            if base == "hash":
                run_hash_oracle(case)
            elif base == "heap":
                run_heap_oracle(case)
            elif base == "string":
                run_string_oracle(case)
            elif base == "regex":
                run_regex_oracle(case)
            elif base == "reuse":
                pattern, script = case
                run_reuse_oracle(script, pattern)
            elif base == "checksum":
                run_checksum_oracle(case)
            elif base == "serve":
                run_serve_oracle(case)
            elif base == "calibrate":
                run_calibrate_oracle(case)
            else:
                raise ValueError(f"unknown fuzz domain {domain!r}")
    except ConformanceFailure:
        raise
    except Exception as exc:  # any oracle crash is a finding, not a bug here
        tail = traceback.format_exc().strip().splitlines()[-1]
        raise ConformanceFailure(
            domain, f"oracle crashed: {tail}"
        ) from exc


# -- greedy shrinking --------------------------------------------------------------

#: Hard cap on shrink probes so a pathological case cannot stall a run.
SHRINK_BUDGET = 400


def _still_fails(domain: str, case: list) -> bool:
    try:
        run_case(domain, case)
    except ConformanceFailure:
        return True
    return False


def _shrink_script(domain: str, script: list, budget: list) -> list:
    """Delete op spans (halves down to singles), front to back."""
    current = list(script)
    chunk = max(1, len(current) // 2)
    while chunk >= 1 and budget[0] > 0:
        i = 0
        while i < len(current) and budget[0] > 0:
            candidate = current[:i] + current[i + chunk:]
            budget[0] -= 1
            if candidate and _still_fails(domain, candidate):
                current = candidate
            else:
                i += chunk
        chunk //= 2
    return current


def _shrink_strings(domain: str, case: list, budget: list) -> list:
    """Truncate string args one char at a time, keeping validity.

    Only shrinks to length ≥ 1 — grammar validity (non-empty find
    patterns, non-empty replace search) must be preserved so a shrunk
    repro exercises the same code path as the original failure.
    """
    current = [list(op) for op in case]
    for oi, op in enumerate(current):
        for ai, arg in enumerate(op):
            while isinstance(arg, str) and len(arg) > 1 and budget[0] > 0:
                for candidate_arg in (arg[1:], arg[:-1]):
                    probe = [list(o) for o in current]
                    probe[oi][ai] = candidate_arg
                    budget[0] -= 1
                    if _still_fails(domain, probe):
                        current = probe
                        arg = candidate_arg
                        break
                else:
                    break
    return current


def _shrink_regex(domain: str, case: list, budget: list) -> list:
    """Shrink text from both ends and clear flags; never touch the
    body (an edited body may leave the supported pattern subset)."""
    body, ic, a_start, a_end, text = case
    current = [body, ic, a_start, a_end, text]
    for flag_idx in (1, 2, 3):
        if current[flag_idx] and budget[0] > 0:
            probe = list(current)
            probe[flag_idx] = False
            budget[0] -= 1
            if _still_fails(domain, probe):
                current = probe
    progress = True
    while progress and budget[0] > 0:
        progress = False
        for candidate_text in (current[4][1:], current[4][:-1]):
            if candidate_text == current[4]:
                continue
            probe = list(current)
            probe[4] = candidate_text
            budget[0] -= 1
            if _still_fails(domain, probe):
                current = probe
                progress = True
                break
    return current


def shrink_case(domain: str, case: list) -> list:
    """Greedily minimize a failing case; returns a still-failing case.

    Not a global minimum — a 1-minimal neighborhood under span
    deletion + string truncation, which in practice turns 40-op fuzz
    scripts into 1–3 op repros.
    """
    if not _still_fails(domain, case):
        return case
    base, _ = split_domain(domain)
    budget = [SHRINK_BUDGET]
    if base == "regex":
        return _shrink_regex(domain, case, budget)
    if base == "reuse":
        pattern, script = case
        chunk = max(1, len(script) // 2)
        current = list(script)
        while chunk >= 1 and budget[0] > 0:
            i = 0
            while i < len(current) and budget[0] > 0:
                candidate = current[:i] + current[i + chunk:]
                budget[0] -= 1
                if candidate and _still_fails(
                    domain, [pattern, candidate]
                ):
                    current = candidate
                else:
                    i += chunk
            chunk //= 2
        return [pattern, current]
    current = _shrink_script(domain, case, budget)
    if base == "string":
        current = _shrink_strings(domain, current, budget)
    return current


# -- results and the top-level driver ----------------------------------------------


@dataclass
class DomainResult:
    """Outcome of fuzzing one domain."""

    domain: str
    cases: int
    failures: int
    #: shrunk repros (capped at MAX_SHRUNK_PER_DOMAIN), each
    #: ``{"case_index", "error", "case", "shrunk"}`` — JSON-able
    shrunk: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failures == 0

    def to_dict(self) -> dict:
        return {
            "domain": self.domain,
            "cases": self.cases,
            "failures": self.failures,
            "shrunk": self.shrunk,
        }


@dataclass
class ConformanceReport:
    """One ``python -m repro conform`` run, fully JSON-able."""

    seed: int
    smoke: bool
    domains: list[DomainResult] = field(default_factory=list)
    #: per-invariant ``{"name", "ok", "detail"}`` rows
    invariants: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            all(d.ok for d in self.domains)
            and all(row["ok"] for row in self.invariants)
        )

    @property
    def total_cases(self) -> int:
        return sum(d.cases for d in self.domains)

    @property
    def total_failures(self) -> int:
        return sum(d.failures for d in self.domains) + sum(
            0 if row["ok"] else 1 for row in self.invariants
        )

    def to_dict(self) -> dict:
        return {
            "schema": "repro-conformance/1",
            "seed": self.seed,
            "smoke": self.smoke,
            "ok": self.ok,
            "domains": [d.to_dict() for d in self.domains],
            "invariants": self.invariants,
        }


def fuzz_domain(domain: str, seed: int, cases: int) -> DomainResult:
    """Generate + run ``cases`` scripts; shrink what fails."""
    rng = DeterministicRng(seed).fork(f"conformance/fuzz/{domain}")
    result = DomainResult(domain=domain, cases=cases, failures=0)
    for index in range(cases):
        case = generate_case(domain, rng)
        try:
            run_case(domain, case)
        except ConformanceFailure as failure:
            result.failures += 1
            if len(result.shrunk) < MAX_SHRUNK_PER_DOMAIN:
                small = shrink_case(domain, case)
                error = str(failure)
                try:
                    run_case(domain, small)
                except ConformanceFailure as shrunk_failure:
                    error = str(shrunk_failure)
                result.shrunk.append({
                    "case_index": index,
                    "error": error,
                    "case": case,
                    "shrunk": small,
                })
    return result


def _fuzz_cell(item: tuple) -> dict:
    """Module-level cell for process-pool fan-out (must pickle)."""
    domain, seed, cases = item
    return fuzz_domain(domain, seed, cases).to_dict()


def _invariant_cell(item: tuple) -> dict:
    name, seed, smoke = item
    try:
        detail = run_invariant(name, seed=seed, smoke=smoke)
        return {"name": name, "ok": True, "detail": detail}
    except ConformanceFailure as failure:
        return {"name": name, "ok": False, "detail": str(failure)}


def run_conformance(
    smoke: bool = False,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> ConformanceReport:
    """Fuzz every domain + run every invariant; one report.

    Domains and invariants are independent cells fanned out over
    :func:`repro.core.parallel.map_cells`; results come back in
    submission order, so the report is identical for any ``jobs``.
    The experiment cache is deliberately *not* used here — conformance
    must re-execute the code under test every time.
    """
    from repro.core.parallel import map_cells

    cases = SMOKE_CASES if smoke else FULL_CASES
    fuzz_items = [(domain, seed, cases) for domain in DOMAINS]
    invariant_items = [(name, seed, smoke) for name in INVARIANTS]
    domain_dicts = map_cells(_fuzz_cell, fuzz_items, jobs=jobs,
                             label="conformance-fuzz")
    invariant_rows = map_cells(_invariant_cell, invariant_items,
                               jobs=jobs, label="conformance-invariant")
    return ConformanceReport(
        seed=seed,
        smoke=smoke,
        domains=[DomainResult(**d) for d in domain_dicts],
        invariants=invariant_rows,
    )


def write_failure_artifacts(
    report: ConformanceReport,
    out_dir: str | Path = "benchmarks/out/conformance",
) -> Optional[Path]:
    """Persist shrunk repros for CI artifact upload.

    Returns the path written, or None when the report is clean (no
    file is written so ``if-no-files-found: ignore`` keeps CI quiet).
    """
    if report.ok:
        return None
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "failures.json"
    path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    return path
