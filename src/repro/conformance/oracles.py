"""Differential oracles: accelerators vs trivially-correct shadows.

Each ``run_*_oracle`` replays a JSON-serializable *op script* through a
hardware model and a shadow implementation side by side and raises
:class:`ConformanceFailure` on the first observable divergence.  The
scripts are plain lists of lists so the fuzzer can generate, shrink,
pickle (for process-pool fan-out), and persist them under
``tests/corpus/`` without any custom encoding.

The shadows are deliberately naive — a ``dict`` with insertion order, a
live-interval set, ``str``/``bytes`` builtins, an O(n²) ``re``-backed
leftmost-longest matcher — because the whole point is independence from
the code under test.  HashMem (arXiv:2306.17721) and the SIMD HTML
scanner (arXiv:2503.01662) validate their accelerated paths the same
way: scalar software oracle first, speed second.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.accel.hash_table import HardwareHashTable, HashTableConfig
from repro.accel.heap_manager import HardwareHeapManager, HeapManagerConfig
from repro.accel.regex_accel import ContentSifter, pattern_starts_special
from repro.accel.string_accel import StringAccelerator
from repro.regex.charset import CharSet
from repro.regex.engine import CompiledRegex
from repro.runtime.phparray import PhpArray
from repro.runtime.slab import SlabAllocator


class ConformanceFailure(AssertionError):
    """An accelerator observably diverged from its shadow oracle."""

    def __init__(self, domain: str, message: str, step: Optional[int] = None):
        where = f" at step {step}" if step is not None else ""
        super().__init__(f"[{domain}]{where}: {message}")
        self.domain = domain
        self.message = message
        self.step = step


def _fail(domain: str, message: str, step: Optional[int] = None) -> None:
    raise ConformanceFailure(domain, message, step)


# -- hash table vs dict shadow -----------------------------------------------------

#: Map base addresses the hash scripts may reference (index into this).
HASH_BASES: tuple[int, ...] = (0x6800_0000, 0x6800_0200, 0x6800_0400)

#: Small geometry so fuzz scripts hit evictions, wraps, and writebacks.
FUZZ_HASH_CONFIG = HashTableConfig(entries=16, probe_width=4,
                                   rtt_pointers_per_map=8)


def hash_ops_outcomes(table: HardwareHashTable, ops: list) -> list:
    """Drive ``[kind, key, base, value]`` ops; return the outcome stream.

    The shared driver for equivalence tests (optimized vs reference
    table) and benchmarks: two tables fed the same ops must produce
    ``repr``-identical outcome lists.
    """
    outcomes = []
    for kind, key, base, value in ops:
        if kind == "get":
            outcomes.append(table.get(key, base))
        elif kind == "set":
            outcomes.append(table.set(key, base, value))
        elif kind == "insert":
            outcomes.append(table.insert_clean(key, base, value))
        else:
            raise ValueError(f"unknown hash op {kind!r}")
    return outcomes


def run_hash_oracle(
    script: list,
    config: HashTableConfig | None = None,
) -> HardwareHashTable:
    """Hardware hash table + software maps vs a plain dict shadow.

    Ops: ``["set", key, base_idx, value]``, ``["get", key, base_idx]``,
    ``["free", base_idx]``, ``["foreach", base_idx]``,
    ``["flush", base_idx]``, ``["storm"]``.

    Checked: GET values (hit and fallback paths), Free bulk-invalidate,
    foreach insertion order (PHP's iteration-order invariant across
    mixed hardware/software inserts, evictions, and fault storms), and
    a final full-flush settlement of every software map against the
    shadow dict.
    """
    domain = "hash"
    ht = HardwareHashTable(config or FUZZ_HASH_CONFIG)
    arrays = {b: PhpArray(base_address=b) for b in HASH_BASES}
    ht.writeback_handler = (
        lambda b, k, v: arrays[b].hardware_writeback(k, v)
    )
    shadow: dict[tuple[int, str], Any] = {}
    #: per-base first-entry order of keys the RTT currently tracks —
    #: cleared by Free (map dies) and by storms (RTT forgets)
    rtt_order: dict[int, list[str]] = {b: [] for b in HASH_BASES}

    def note_order(base: int, key: str) -> None:
        if key not in rtt_order[base]:
            rtt_order[base].append(key)

    for step, op in enumerate(script):
        kind = op[0]
        if kind == "set":
            _, key, base_idx, value = op
            base = HASH_BASES[base_idx % len(HASH_BASES)]
            outcome = ht.set(key, base, value)
            if outcome.software_fallback:
                arrays[base].set(key, value)
            shadow[(base, key)] = value
            note_order(base, key)
        elif kind == "get":
            _, key, base_idx = op[:3]
            base = HASH_BASES[base_idx % len(HASH_BASES)]
            outcome = ht.get(key, base)
            expected = shadow.get((base, key))
            if outcome.hit:
                if outcome.value_ptr != expected:
                    _fail(domain,
                          f"GET({key!r}) hit returned "
                          f"{outcome.value_ptr!r}, shadow has "
                          f"{expected!r}", step)
            else:
                got = arrays[base].get_default(key)
                if got != expected:
                    _fail(domain,
                          f"GET({key!r}) software fallback returned "
                          f"{got!r}, shadow has {expected!r}", step)
                if expected is not None:
                    fill = ht.insert_clean(key, base, expected)
                    # Oversized keys are noted in the RTT even on the
                    # software path (foreach still needs their slot);
                    # the RTT-full refusal is the one unnoted fallback.
                    if (not fill.software_fallback
                            or len(key) > ht.config.max_key_bytes):
                        note_order(base, key)
        elif kind == "free":
            base = HASH_BASES[op[1] % len(HASH_BASES)]
            ht.free_map(base)
            arrays[base] = PhpArray(base_address=base)
            shadow = {
                (b, k): v for (b, k), v in shadow.items() if b != base
            }
            rtt_order[base] = []
        elif kind == "foreach":
            base = HASH_BASES[op[1] % len(HASH_BASES)]
            order, _synced = ht.foreach_sync(base)
            if order != rtt_order[base]:
                _fail(domain,
                      f"foreach order {order!r} != expected "
                      f"{rtt_order[base]!r}", step)
            view = dict(arrays[base].items())
            for (b, k), v in shadow.items():
                if b == base and view.get(k) != v:
                    _fail(domain,
                          f"foreach: software map has "
                          f"{view.get(k)!r} for {k!r}, shadow has "
                          f"{v!r}", step)
        elif kind == "flush":
            base = HASH_BASES[op[1] % len(HASH_BASES)]
            ht.flush_map(base)
            rtt_order[base] = []
        elif kind == "storm":
            ht.inject_invalidation_storm()
            for b in HASH_BASES:
                rtt_order[b] = []
        else:
            _fail(domain, f"unknown op {kind!r}", step)

    # Final settlement: flush everything, software maps == shadow.
    for base, array in arrays.items():
        ht.flush_map(base)
        expected = {k: v for (b, k), v in shadow.items() if b == base}
        got = dict(array.items())
        if got != expected:
            _fail(domain,
                  f"settlement for base {base:#x}: map {got!r} != "
                  f"shadow {expected!r}")
    return ht


# -- heap manager vs interval shadow -----------------------------------------------

FUZZ_HEAP_CONFIG = HeapManagerConfig(entries_per_class=8)


def run_heap_oracle(
    script: list,
    config: HeapManagerConfig | None = None,
) -> HardwareHeapManager:
    """Hardware heap manager vs a live-interval shadow allocator.

    Ops: ``["malloc", size]``, ``["free", pick]`` (frees the
    ``pick % live``-th outstanding block), ``["flush"]``,
    ``["outage"]``, ``["repair"]``.

    Checked: no address handed out twice, no overlap between live
    blocks, hardware-served allocations respect their size-class bound,
    ``hmflush``/``inject_outage`` leave zero cached blocks (alloc/free
    balance — lazy coherence may defer, never leak), and the hardware
    never caches more blocks than its lists can hold.
    """
    domain = "heap"
    cfg = config or FUZZ_HEAP_CONFIG
    hm = HardwareHeapManager(SlabAllocator(), cfg)
    live: dict[int, tuple[int, str]] = {}   # addr -> (size, path)
    order: list[int] = []

    for step, op in enumerate(script):
        kind = op[0]
        if kind == "malloc":
            size = op[1]
            outcome = hm.hmmalloc(size)
            if outcome.address is not None:
                addr, path = outcome.address, "hw"
                cls = cfg.class_for(size)
                if not outcome.software_fallback and cls is not None \
                        and cfg.class_bytes(cls) < size:
                    _fail(domain,
                          f"malloc({size}) served from class "
                          f"{cls} bound {cfg.class_bytes(cls)}", step)
            else:
                # Comparator gate or outage: software allocator path.
                addr, path = hm.slab.malloc(size), "sw"
            if addr in live:
                _fail(domain,
                      f"malloc({size}) returned live address "
                      f"{addr:#x} (double allocation)", step)
            for other, (osize, _) in live.items():
                if addr < other + osize and other < addr + size:
                    _fail(domain,
                          f"malloc({size}) at {addr:#x} overlaps "
                          f"live block {other:#x}+{osize}", step)
            live[addr] = (size, path)
            order.append(addr)
        elif kind == "free":
            if not order:
                continue
            addr = order.pop(op[1] % len(order))
            size, path = live.pop(addr)
            if path == "hw":
                hm.hmfree(addr, size)
            else:
                hm.slab.free(addr)
        elif kind == "flush":
            hm.hmflush()
            if hm.cached_blocks() != 0:
                _fail(domain,
                      f"hmflush left {hm.cached_blocks()} cached "
                      f"blocks", step)
        elif kind == "outage":
            hm.inject_outage()
            if hm.cached_blocks() != 0:
                _fail(domain, "outage flush leaked cached blocks", step)
        elif kind == "repair":
            hm.repair()
        else:
            _fail(domain, f"unknown op {kind!r}", step)

        capacity = cfg.size_classes * cfg.entries_per_class
        if hm.cached_blocks() > capacity:
            _fail(domain,
                  f"{hm.cached_blocks()} cached blocks exceed list "
                  f"capacity {capacity}", step)
    return hm


# -- string accelerator vs str/bytes builtins --------------------------------------


def run_string_oracle(
    script: list,
    accel: StringAccelerator | None = None,
) -> StringAccelerator:
    """String accelerator ops vs their ``str``/``bytes`` equivalents.

    Ops (all shareable across one accelerator instance, as on a real
    core serving a request stream):

    * ``["find", subject, pattern, start]`` vs ``str.find``
    * ``["find_unicode", subject, pattern]`` vs ``str.find`` (char idx)
    * ``["compare", a, b]`` vs the sign of ``(a > b) - (a < b)``
    * ``["upper"|"lower", subject]`` vs ``str.upper``/``str.lower``
    * ``["trim", subject, chars]`` vs ``str.strip``
    * ``["replace", subject, search, repl]`` vs ``str.replace``
    * ``["translate", subject, mapping]`` vs a per-char dict walk
    * ``["html_escape", subject, escapes]`` vs a per-char dict walk
    * ``["charclass", subject, chars, seg]`` vs per-segment ``any``
    * ``["configloss"]`` — fault hook; must not change any result

    Cost accounting sanity rides along: every outcome must report
    positive cycles and at least one block.
    """
    domain = "string"
    accel = accel or StringAccelerator()
    for step, op in enumerate(script):
        kind = op[0]
        outcome = None
        expected: Any = None
        if kind == "find":
            _, subject, pattern, start = op
            outcome = accel.find(subject, pattern, start)
            expected = subject.find(pattern, start)
        elif kind == "find_unicode":
            _, subject, pattern = op
            outcome = accel.find_unicode(subject, pattern)
            expected = subject.find(pattern)
        elif kind == "compare":
            _, a, b = op
            outcome = accel.compare(a, b)
            expected = (a > b) - (a < b)
        elif kind == "upper":
            outcome = accel.to_upper(op[1])
            expected = op[1].upper()
        elif kind == "lower":
            outcome = accel.to_lower(op[1])
            expected = op[1].lower()
        elif kind == "trim":
            _, subject, chars = op
            outcome = accel.trim(subject, chars)
            expected = subject.strip(chars)
        elif kind == "replace":
            _, subject, search, repl = op
            outcome = accel.replace(subject, search, repl)
            expected = subject.replace(search, repl)
        elif kind == "translate":
            _, subject, mapping = op
            outcome = accel.translate(subject, dict(mapping))
            expected = "".join(dict(mapping).get(ch, ch) for ch in subject)
        elif kind == "html_escape":
            _, subject, escapes = op
            escapes = dict(escapes)
            outcome = accel.html_escape(subject, escapes)
            expected = "".join(escapes.get(ch, ch) for ch in subject)
        elif kind == "charclass":
            _, subject, chars, seg = op
            cls = CharSet.of(chars)
            outcome = accel.char_class_bitmap(subject, cls, seg)
            expected = [
                any(cls.contains(c) for c in subject[i:i + seg])
                for i in range(0, len(subject), seg)
            ]
        elif kind == "configloss":
            accel.inject_config_loss()
            continue
        else:
            _fail(domain, f"unknown op {kind!r}", step)
        if outcome.value != expected:
            _fail(domain,
                  f"{kind}{op[1:]!r} returned {outcome.value!r}, "
                  f"oracle says {expected!r}", step)
        if outcome.cycles <= 0 or outcome.blocks < 1:
            _fail(domain,
                  f"{kind} accounting invalid: cycles="
                  f"{outcome.cycles} blocks={outcome.blocks}", step)
    return accel


# -- regex engine vs Python re -----------------------------------------------------


def _oracle_spans(
    body: str, text: str, ignore_case: bool,
    anchor_start: bool, anchor_end: bool,
) -> list[tuple[int, int]]:
    """Non-overlapping leftmost-longest spans, straight from ``re``.

    Python's ``re`` is leftmost-*greedy* (backtracking), our engine is
    leftmost-*longest* (POSIX DFA); the two disagree on alternations
    like ``a|ab``.  A trivially-correct longest-match oracle avoids the
    gap: for each start, try every end from the longest down with
    ``re.fullmatch`` — O(n²) per candidate, fine at fuzz sizes.
    """
    flags = re.ASCII | (re.IGNORECASE if ignore_case else 0)
    cre = re.compile(body, flags)
    n = len(text)

    def leftmost_longest(start: int) -> Optional[tuple[int, int]]:
        starts = [start] if anchor_start else range(start, n + 1)
        for s in starts:
            ends = [n] if anchor_end else range(n, s - 1, -1)
            for e in ends:
                if cre.fullmatch(text, s, e) is not None:
                    return s, e
        return None

    spans: list[tuple[int, int]] = []
    pos = 0
    while pos <= n:
        found = leftmost_longest(pos)
        if found is None:
            break
        spans.append(found)
        s, e = found
        pos = e if e > s else pos + 1     # empty match: force progress
        if anchor_start:
            break
    return spans


def run_regex_oracle(case: list) -> None:
    """One pattern/text pair: engine vs ``re``, sieve vs full scan.

    ``case`` is ``[body, ignore_case, anchor_start, anchor_end, text]``
    where ``body`` is the anchor-free pattern body.  Checked:

    * ``search`` returns exactly the oracle's leftmost-longest span;
    * ``findall`` returns exactly the oracle's non-overlapping spans;
    * content sifting: ``shadow_findall`` through a hint vector returns
      the same matches as the unsifted ``findall`` — shadow-skip
      decisions must never change match results — and only claims
      ``used_sifting`` when :func:`pattern_starts_special` holds.
    """
    domain = "regex"
    body, ignore_case, anchor_start, anchor_end, text = case
    pattern = (
        ("(?i)" if ignore_case else "")
        + ("^" if anchor_start else "")
        + body
        + ("$" if anchor_end else "")
    )
    regex = CompiledRegex(pattern)
    spans = _oracle_spans(body, text, ignore_case, anchor_start, anchor_end)

    got = regex.search(text)
    want = spans[0] if spans else None
    got_span = (got.match.start, got.match.end) if got.match else None
    if got_span != want:
        _fail(domain,
              f"search({pattern!r}, {text!r}) = {got_span}, "
              f"re oracle says {want}")

    matches, _ = regex.findall(text)
    got_all = [(m.start, m.end) for m in matches]
    if got_all != spans:
        _fail(domain,
              f"findall({pattern!r}, {text!r}) = {got_all}, "
              f"re oracle says {spans}")

    # Sieve/shadow agreement over the string accelerator's hint vector.
    sifter = ContentSifter(StringAccelerator())
    hv, _cycles = sifter.build_hint_vector(text)
    shadow = sifter.shadow_findall(regex, text, hv)
    shadow_spans = [(m.start, m.end) for m in shadow.matches]
    if shadow_spans != spans:
        _fail(domain,
              f"shadow_findall({pattern!r}, {text!r}) = "
              f"{shadow_spans}, unsifted scan says {spans}")
    if shadow.used_sifting and not pattern_starts_special(regex):
        _fail(domain,
              f"sifting used for {pattern!r} although the pattern may "
              f"start at a regular character")
    if shadow.chars_skipped < 0 or shadow.chars_examined < 0:
        _fail(domain,
              f"shadow accounting negative: examined="
              f"{shadow.chars_examined} skipped={shadow.chars_skipped}")


def run_reuse_oracle(script: list, pattern: str, entries: int = 4) -> None:
    """Content-reuse matcher vs direct anchored matching.

    ``script`` is a list of ``[pc, content]`` pairs replayed through
    one :class:`~repro.accel.regex_accel.ContentReuseTable` of
    ``entries`` slots; every outcome must equal a fresh
    ``match_prefix`` (memoization may skip work, never change
    answers).
    """
    from repro.accel.regex_accel import (
        ContentReuseTable,
        ReuseAcceleratedMatcher,
        ReuseTableConfig,
    )

    domain = "regex"
    table = ContentReuseTable(ReuseTableConfig(entries=entries))
    matcher = ReuseAcceleratedMatcher(table)
    regex = CompiledRegex(pattern)
    oracle = CompiledRegex(pattern)
    for step, (pc, content) in enumerate(script):
        got = matcher.match(regex, content, pc=pc)
        want = oracle.match_prefix(content).match
        want_end = want.end if want else None
        if got.match_end != want_end:
            _fail(domain,
                  f"reuse match({pattern!r}, {content!r}, pc={pc}) = "
                  f"{got.match_end} ({got.scenario}), direct match "
                  f"says {want_end}", step)


# -- checksum mixer vs independent FNV shadow --------------------------------------

#: FNV-1a constants, duplicated from core/execute on purpose: the
#: oracle must drift-detect, not share, the implementation.
_SHADOW_FNV_OFFSET = 0xCBF29CE484222325
_SHADOW_FNV_PRIME = 0x100000001B3
_SHADOW_MIX_PRIME = 1099511628211
_SHADOW_MASK = (1 << 64) - 1


def shadow_checksum(values: list) -> int:
    """Independent reimplementation of ``CategoryRun`` checksum mixing."""
    acc = 0
    for value in values:
        h = _SHADOW_FNV_OFFSET
        for byte in repr(value).encode("utf-8"):
            h = ((h ^ byte) * _SHADOW_FNV_PRIME) & _SHADOW_MASK
        acc = (acc * _SHADOW_MIX_PRIME + h) & _SHADOW_MASK
    return acc


def run_checksum_oracle(case: list) -> None:
    """Replay ``["mix", value]`` / ``["expect", hex]`` checksum scripts.

    The run-vs-run checksums that prove software/accelerated
    equivalence must be *process-stable* (the analyzer's DET005 rule:
    no PYTHONHASHSEED-salted ``hash()`` in results), so this oracle
    checks :meth:`~repro.core.execute.CategoryRun.mix_checksum` against
    an independent FNV shadow after every mix, and ``expect`` ops pin
    digests recorded in the corpus — a value drifting on any machine,
    process, or code revision is a conformance failure.
    """
    from repro.core.execute import CategoryRun

    domain = "checksum"
    run = CategoryRun(category="checksum", mode="software")
    mixed: list = []
    for step, op in enumerate(case):
        kind = op[0]
        if kind == "mix":
            run.mix_checksum(op[1])
            mixed.append(op[1])
            want = shadow_checksum(mixed)
            if run.checksum != want:
                _fail(domain,
                      f"mix_checksum({op[1]!r}) -> "
                      f"{run.checksum:016x}, independent FNV shadow "
                      f"says {want:016x}", step)
        elif kind == "expect":
            got = format(run.checksum, "016x")
            if got != op[1]:
                _fail(domain,
                      f"checksum after {len(mixed)} mixes is {got}, "
                      f"corpus pins {op[1]} — checksum mixing is no "
                      f"longer process-stable/canonical", step)
        else:
            _fail(domain, f"unknown checksum op {kind!r}", step)


# -- live serving path vs direct interpreter render --------------------------------


def run_serve_oracle(case: list) -> None:
    """Served-bytes differential oracle for the live HTTP path.

    ``case`` is a list of ``[app, seed, vary]`` requests.  Each is
    fetched over a real HTTP connection from a transient
    :class:`~repro.serve.httpd.MiniPhpServer` — twice, so both the
    fresh render and the fragment-cached copy are checked — and must
    be byte-identical to a direct
    :func:`~repro.workloads.templates.render_http_page` render.  This
    pins the whole serving stack (request parsing, routing, the
    thread-pool handoff, the value-carrying cache shards, response
    framing) to the interpreter's output: the server may shed or
    delay under load, but it may never serve *different bytes*.
    """
    from repro.serve.run import serve_oracle_mismatches

    domain = "serve"
    triples = []
    for step, op in enumerate(case):
        if len(op) != 3 or not isinstance(op[0], str):
            _fail(domain, f"malformed case op {op!r}", step)
        triples.append((op[0], int(op[1]), int(op[2])))
    mismatches = serve_oracle_mismatches(triples)
    if mismatches:
        first = mismatches[0]
        _fail(
            domain,
            f"GET /{first['app']}?seed={first['seed']}"
            f"&vary={first['vary']} ({first['pass']} pass): "
            f"{first['error']}"
            + (f" (+{len(mismatches) - 1} more)"
               if len(mismatches) > 1 else ""),
        )


# -- calibration fitters vs brute-force shadow fits --------------------------------


def _calibrate_case_rows(case: list) -> list[dict]:
    """Expand ``[t_ms, route, cache, queue_ms, render_ms]`` ops into
    schema-valid telemetry rows (the fitters' real input shape)."""
    from repro.serve.telemetry import TELEMETRY_SCHEMA, validate_event_row

    domain = "calibrate"
    rows = []
    for step, op in enumerate(case):
        if len(op) != 5:
            _fail(domain, f"malformed case op {op!r}", step)
        t_ms, route, cache, queue_ms, render_ms = op
        row = {
            "schema": TELEMETRY_SCHEMA,
            "t_ms": float(t_ms),
            "route": str(route),
            "status": 200,
            "cache": str(cache),
            "queue_wait_ms": float(queue_ms),
            "render_ms": float(render_ms),
            "total_ms": round(float(queue_ms) + float(render_ms) + 0.1, 3),
            "bytes_out": 1_024,
            "shed": "",
            "ops": {},
        }
        try:
            validate_event_row(row)
        except ValueError as exc:
            _fail(domain, f"case op expands to invalid row: {exc}", step)
        rows.append(row)
    return rows


def _counting_quantile(values: list[float], p: float) -> float:
    """Independent nearest-rank quantile: no sort, O(n²) counting.

    The smallest value whose ≤-count reaches ``ceil(p/100 · n)`` — by
    definition the nearest-rank percentile, computed without sharing
    any code with :func:`repro.common.stats.percentile`.
    """
    import math as _math

    rank = max(1, _math.ceil(p / 100.0 * len(values)))
    best = None
    for v in values:
        count = sum(1 for w in values if w <= v)
        if count >= rank and (best is None or v < best):
            best = v
    return best


def _grid_argmin(lo: float, hi: float, cost, points: int = 2_001) -> float:
    """Brute-force 1-D minimizer on an even grid (the shadow fit)."""
    if hi <= lo:
        return lo
    best_x, best_c = lo, cost(lo)
    for i in range(1, points):
        x = lo + (hi - lo) * i / (points - 1)
        c = cost(x)
        if c < best_c:
            best_x, best_c = x, c
    return best_x


def run_calibrate_oracle(case: list) -> None:
    """Calibration fitters vs independent brute-force shadow fits.

    ``case`` is a list of ``[t_ms, route, cache, queue_ms, render_ms]``
    rows.  Checked against shadows that share no code with
    :mod:`repro.calibrate.fit`:

    * **moments**: fitted mean/std vs :func:`statistics.fmean` /
      :func:`statistics.pvariance`, plus a 2001-point grid minimizer
      of the squared-deviation cost (whose argmin is the mean) — the
      fitted mean must sit within one grid step of the brute-force
      optimum;
    * **quantiles**: every reported quantile and sampled point vs an
      O(n²) counting-loop nearest-rank quantile — exact equality;
    * **cache mix**: fitted ratios vs brute counts and vs a 1/2048
      ratio-grid minimizer of ``|r·total − count|``;
    * **summary**: goodput/p50/p99/hit-ratio vs independent loops;
    * **arrival flat path** (< MIN_SHAPE_EVENTS events): exact
      ``n / duration`` base rate, zero amplitude, unit flash;
      dense streams get structural bounds (the sinusoid path's
      recovery accuracy is the self-consistency invariant's job).
    """
    import math as _math
    import statistics

    from repro.calibrate.fit import (
        MIN_SHAPE_EVENTS,
        QUANTILE_GRID,
        SAMPLE_POINTS,
        fit_arrivals,
        fit_cache,
        fit_route,
        fit_service,
        summarize_rows,
    )

    domain = "calibrate"
    rows = _calibrate_case_rows(case)

    # -- service moments + quantiles vs shadows --
    renders = [r["render_ms"] for r in rows
               if r["cache"] == "miss" and r["render_ms"] > 0.0]
    if renders:
        fit = fit_service(renders)
        mean = statistics.fmean(renders)
        std = _math.sqrt(statistics.pvariance(renders))
        if abs(fit["mean_ms"] - mean) > 1e-9 * max(1.0, abs(mean)):
            _fail(domain, f"fitted mean {fit['mean_ms']} != "
                          f"statistics.fmean {mean}")
        if abs(fit["std_ms"] - std) > 1e-9 * max(1.0, std):
            _fail(domain, f"fitted std {fit['std_ms']} != "
                          f"statistics shadow {std}")
        lo, hi = min(renders), max(renders)
        if hi > lo:
            step = (hi - lo) / 2_000
            shadow_mean = _grid_argmin(
                lo, hi,
                lambda m: sum((v - m) ** 2 for v in renders),
            )
            if abs(fit["mean_ms"] - shadow_mean) > step + 1e-12:
                _fail(domain,
                      f"fitted mean {fit['mean_ms']} is {abs(fit['mean_ms'] - shadow_mean)} "
                      f"from the grid-minimizer optimum {shadow_mean} "
                      f"(> one grid step {step})")
        elif fit["mean_ms"] != lo:
            _fail(domain, f"all-identical sample fitted mean "
                          f"{fit['mean_ms']} != value {lo}")
        if fit["cv"] < 0:
            _fail(domain, f"negative fitted cv {fit['cv']}")
        sample = fit["sample_ms"]
        if len(sample) != SAMPLE_POINTS:
            _fail(domain, f"sample_ms has {len(sample)} points, "
                          f"expected {SAMPLE_POINTS}")
        if sample != sorted(sample):
            _fail(domain, "sample_ms is not sorted ascending")
        for i in (0, SAMPLE_POINTS // 2, SAMPLE_POINTS - 1):
            p = (i + 0.5) * 100.0 / SAMPLE_POINTS
            shadow = _counting_quantile(renders, p)
            if sample[i] != shadow:
                _fail(domain,
                      f"sample_ms[{i}] (p{p:.2f}) = {sample[i]} != "
                      f"counting-loop quantile {shadow}")
        for q in QUANTILE_GRID:
            shadow = _counting_quantile(renders, q)
            if fit["quantiles"][f"{q:g}"] != shadow:
                _fail(domain,
                      f"fitted p{q:g} {fit['quantiles'][f'{q:g}']} != "
                      f"counting-loop quantile {shadow}")
        if not (min(renders) <= fit["mean_ms"] <= max(renders)):
            _fail(domain, f"fitted mean {fit['mean_ms']} outside the "
                          f"sample range")

    # -- cache mix vs brute counts + ratio-grid minimizer --
    mix = fit_cache(rows)
    counts = {}
    for r in rows:
        counts[r["cache"]] = counts.get(r["cache"], 0) + 1
    total = sum(counts.get(o, 0)
                for o in ("hit", "stale", "miss", "coalesced"))
    if mix["requests"] != total:
        _fail(domain, f"cache fit saw {mix['requests']} render-path "
                      f"requests, shadow counted {total}")
    if total:
        ratio_sum = 0.0
        for outcome in ("hit", "stale", "miss", "coalesced"):
            count = counts.get(outcome, 0)
            exact = count / total
            if abs(mix[outcome] - exact) > 1e-12:
                _fail(domain, f"cache ratio [{outcome}] {mix[outcome]} "
                              f"!= {count}/{total}")
            shadow = _grid_argmin(
                0.0, 1.0,
                lambda g, c=count: abs(g * total - c),
                points=2_049,
            )
            if abs(mix[outcome] - shadow) > 1.0 / 2_048 + 1e-12:
                _fail(domain,
                      f"cache ratio [{outcome}] {mix[outcome]} is "
                      f"off the 1/2048-grid minimizer {shadow}")
            ratio_sum += mix[outcome]
        if abs(ratio_sum - 1.0) > 1e-9:
            _fail(domain, f"cache ratios sum to {ratio_sum}, not 1")

    # -- per-route fit: weights + hit cost vs counting shadows --
    by_route = {}
    for r in rows:
        by_route.setdefault(r["route"], []).append(r)
    for name, route_rows in sorted(by_route.items()):
        fit = fit_route(route_rows, len(rows))
        if abs(fit["weight"] - len(route_rows) / len(rows)) > 1e-12:
            _fail(domain, f"route {name}: weight {fit['weight']} != "
                          f"{len(route_rows)}/{len(rows)}")
        fast = [r["total_ms"] for r in route_rows
                if r["cache"] in ("hit", "stale")]
        if fast:
            shadow = _counting_quantile(fast, 50)
            if fit["hit_ms"] != shadow:
                _fail(domain, f"route {name}: hit_ms {fit['hit_ms']} "
                              f"!= counting-loop median {shadow}")
        route_renders = [r["render_ms"] for r in route_rows
                         if r["cache"] == "miss" and r["render_ms"] > 0]
        if fit["service"]["observed"] != bool(route_renders):
            _fail(domain, f"route {name}: service.observed "
                          f"{fit['service']['observed']} but shadow "
                          f"saw {len(route_renders)} renders")
        if not route_renders and set(fit["service"]["sample_ms"]) \
                != {fit["hit_ms"]}:
            _fail(domain, f"route {name}: unobserved service must "
                          f"fall back to hit_ms exactly")

    # -- stream summary vs independent loops --
    summary = summarize_rows(rows)
    latencies = [r["total_ms"] for r in rows
                 if 200 <= r["status"] < 300]
    duration = max(r["t_ms"] for r in rows) / 1000.0
    duration = duration if duration > 0 else 1e-3
    if abs(summary["goodput_rps"] - len(latencies) / duration) > 1e-9:
        _fail(domain, f"goodput {summary['goodput_rps']} != "
                      f"{len(latencies)}/{duration}")
    for p, key in ((50, "p50_ms"), (99, "p99_ms")):
        shadow = _counting_quantile(latencies, p)
        if summary[key] != shadow:
            _fail(domain, f"summary {key} {summary[key]} != "
                          f"counting-loop quantile {shadow}")
    cached = counts.get("hit", 0) + counts.get("stale", 0)
    expected_hit = cached / total if total else 0.0
    if abs(summary["hit_ratio"] - expected_hit) > 1e-12:
        _fail(domain, f"hit ratio {summary['hit_ratio']} != "
                      f"{cached}/{total}")

    # -- arrival shape --
    t_ms = [r["t_ms"] for r in rows]
    shape = fit_arrivals(t_ms)
    if len(rows) < MIN_SHAPE_EVENTS:
        expected = len(rows) / duration
        if abs(shape["base_rps"] - expected) > 1e-9 * max(1.0, expected):
            _fail(domain, f"flat-path base rate {shape['base_rps']} "
                          f"!= {len(rows)}/{duration}")
        if shape["diurnal_amplitude"] != 0.0 \
                or shape["flash_multiplier"] != 1.0:
            _fail(domain, "flat path must fit zero amplitude and "
                          "unit flash multiplier")
    else:
        if shape["base_rps"] <= 0:
            _fail(domain, f"dense fit base rate {shape['base_rps']}")
        if not 0.0 <= shape["diurnal_amplitude"] < 1.0:
            _fail(domain, f"amplitude {shape['diurnal_amplitude']} "
                          f"outside [0, 1)")
        if shape["flash_multiplier"] < 1.0:
            _fail(domain, f"flash multiplier "
                          f"{shape['flash_multiplier']} < 1")
        if not (0.0 <= shape["flash_start_s"] <= duration + 1e-9):
            _fail(domain, f"flash start {shape['flash_start_s']} "
                          f"outside the run")
        if not (_math.isfinite(shape["curve_mape"])
                and shape["curve_mape"] >= 0):
            _fail(domain, f"curve MAPE {shape['curve_mape']}")
