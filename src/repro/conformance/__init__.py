"""Conformance subsystem: differential oracles + metamorphic fuzzing.

The paper's claims rest on the four accelerator models faithfully
implementing the semantics of the software structures they replace.
PR 3's kernel rewrites were proven equivalent to the *seed* kernels;
this package checks them against independent ground truth:

* :mod:`repro.conformance.oracles` — differential oracles driving each
  accelerator next to a trivially-correct Python shadow (``dict``,
  interval allocator, ``str``/``bytes``, :mod:`re`);
* :mod:`repro.conformance.invariants` — metamorphic invariants over
  the simulators (same-seed byte-identity, latency conservation,
  accounting balances, SLO-capacity monotonicity);
* :mod:`repro.conformance.fuzzer` — seeded generative input grammars,
  greedy shrinking of failing cases, and the ``python -m repro
  conform`` entry point;
* a persisted regression corpus under ``tests/corpus/`` replayed by
  ``tests/test_conformance.py``.
"""

from repro.conformance.oracles import (
    ConformanceFailure,
    HASH_BASES,
    hash_ops_outcomes,
    run_checksum_oracle,
    run_hash_oracle,
    run_heap_oracle,
    run_regex_oracle,
    run_reuse_oracle,
    run_string_oracle,
    shadow_checksum,
)
from repro.conformance.invariants import (
    INVARIANTS,
    run_invariant,
)
from repro.conformance.fuzzer import (
    BASE_DOMAINS,
    DOMAINS,
    ConformanceReport,
    DomainResult,
    fuzz_domain,
    generate_case,
    run_case,
    run_conformance,
    shrink_case,
    split_domain,
    write_failure_artifacts,
)

__all__ = [
    "BASE_DOMAINS",
    "ConformanceFailure",
    "ConformanceReport",
    "DomainResult",
    "DOMAINS",
    "HASH_BASES",
    "INVARIANTS",
    "fuzz_domain",
    "generate_case",
    "hash_ops_outcomes",
    "run_case",
    "run_conformance",
    "run_checksum_oracle",
    "run_hash_oracle",
    "run_heap_oracle",
    "run_invariant",
    "run_regex_oracle",
    "run_reuse_oracle",
    "run_string_oracle",
    "shadow_checksum",
    "shrink_case",
    "split_domain",
    "write_failure_artifacts",
]
