"""Metamorphic invariants over the event-driven simulators.

The oracles (:mod:`repro.conformance.oracles`) compare accelerators
against independent reimplementations; the simulators have no such
shadow — a second queueing simulator would share the first one's
blind spots.  What they *do* have are properties any correct
implementation must satisfy regardless of parameters:

* **same-seed identity** — a run is a pure function of (config, seed);
* **conservation** — per-request latency decomposes exactly into
  queueing + service, and no request is created or destroyed
  (offered = completed + shed, attempt counts balance);
* **bounds** — utilizations and hit ratios live in [0, 1];
* **monotonicity** — adding identical nodes never shrinks the
  absolute SLO-compliant capacity of a fleet.

Each invariant is a named entry in :data:`INVARIANTS`; the fuzzer and
``python -m repro conform`` iterate that registry.  Checks raise
:class:`~repro.conformance.oracles.ConformanceFailure` and return a
one-line detail string for the report.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.conformance.oracles import ConformanceFailure


def _fail(name: str, message: str) -> None:
    raise ConformanceFailure(f"invariant:{name}", message)


def _service_times(seed: int, label: str, n: int = 64) -> list[float]:
    """Synthetic right-skewed request costs (cycles), seed-derived.

    Cheap stand-in for the measured per-request samples the CLI feeds
    the simulators; the invariants must hold for *any* positive
    service-time distribution, so synthetic is the stronger choice.
    """
    rng = DeterministicRng(seed).fork(f"conformance/{label}")
    return [
        max(50.0, rng.gauss(2_000.0, 600.0)) * (4.0 if rng.random() < 0.05 else 1.0)
        for _ in range(n)
    ]


# -- server ------------------------------------------------------------------------


def check_server_latency_conservation(seed: int, smoke: bool) -> str:
    """latency == queueing + service, component-wise, per request."""
    from repro.workloads.server import ServerConfig, WebServerSimulator

    name = "server-latency-conservation"
    times = _service_times(seed, "server")
    cfg = ServerConfig(workers=4, requests=200 if smoke else 1_000)
    rng = DeterministicRng(seed).fork("conformance/server-run")
    served = WebServerSimulator(times, cfg, rng).run(offered_load=0.8)
    if len(served) != cfg.requests:
        _fail(name, f"served {len(served)} of {cfg.requests} requests")
    for i, r in enumerate(served):
        service = r.finish - r.start
        if r.queueing < 0 or service <= 0:
            _fail(name,
                  f"request {i}: queueing={r.queueing} service={service}")
        if abs(r.latency - (r.queueing + service)) > 1e-9:
            _fail(name,
                  f"request {i}: latency {r.latency} != queueing "
                  f"{r.queueing} + service {service}")
        if r.start < r.arrival:
            _fail(name, f"request {i}: started before it arrived")
    return f"{len(served)} requests decompose exactly"


# -- fleet -------------------------------------------------------------------------


def _fleet_fixture(seed: int, smoke: bool):
    from repro.fleet.cache_tier import CacheTierConfig
    from repro.fleet.simulator import FleetConfig
    from repro.fleet.topology import homogeneous_fleet

    topology = homogeneous_fleet(
        "conform-accel-3", _service_times(seed, "fleet"), nodes=3,
        cache=CacheTierConfig(shards=2, shard_capacity=64),
    )
    config = FleetConfig(
        requests=250 if smoke else 1_500,
        warmup_requests=20,
        offered_load=0.8,
        key_population=256,
        max_queue=32,
    )
    return topology, config


def check_fleet_same_seed_identity(seed: int, smoke: bool) -> str:
    """Two runs with identical (topology, config, seed) are identical."""
    from repro.fleet.simulator import run_fleet

    name = "fleet-determinism"
    topology, config = _fleet_fixture(seed, smoke)
    first = run_fleet(topology, config, seed=seed)
    second = run_fleet(topology, config, seed=seed)
    if repr(first) != repr(second):
        _fail(name, "same-seed fleet runs diverged:\n"
              f"  first:  {first!r}\n  second: {second!r}")
    return f"2 runs, {first.offered} requests, repr-identical"


def check_fleet_accounting(seed: int, smoke: bool) -> str:
    """Request conservation + [0, 1] bounds on ratios and utilization."""
    from repro.fleet.simulator import run_fleet

    name = "fleet-accounting"
    topology, base_config = _fleet_fixture(seed, smoke)
    # Second cell overloads a tiny admission queue so the shed leg of
    # the conservation law is actually exercised, not vacuously true.
    overloaded = replace(base_config, offered_load=1.3, max_queue=4)
    shed_seen = 0
    rep = None
    for config in (base_config, overloaded):
        rep = run_fleet(topology, config, seed=seed)
        shed_seen += rep.shed
        _check_fleet_balance(name, rep, config)
    if shed_seen == 0:
        _fail(name, "overloaded cell shed nothing; check is vacuous")
    return (f"offered={rep.offered} completed={rep.completed} "
            f"shed={rep.shed} balance holds (2 load points)")


def _check_fleet_balance(name: str, rep, config) -> None:
    if rep.offered != config.requests:
        _fail(name, f"offered {rep.offered} != configured "
              f"{config.requests}")
    if rep.completed + rep.shed != rep.offered:
        _fail(name,
              f"completed {rep.completed} + shed {rep.shed} != "
              f"offered {rep.offered}")
    renders = sum(n.completed for n in rep.per_node)
    if rep.cache_hits + renders != rep.completed:
        _fail(name,
              f"cache hits {rep.cache_hits} + node renders {renders} "
              f"!= completed {rep.completed}")
    if rep.cache_misses + rep.cache_coalesced != renders + rep.shed:
        _fail(name,
              f"cache misses {rep.cache_misses} + coalesced "
              f"{rep.cache_coalesced} != renders {renders} "
              f"+ shed {rep.shed}")
    if not 0.0 <= rep.cache_hit_ratio <= 1.0:
        _fail(name, f"cache hit ratio {rep.cache_hit_ratio} not in [0,1]")
    if not 0.0 <= rep.availability <= 1.0:
        _fail(name, f"availability {rep.availability} not in [0,1]")
    for node in rep.per_node:
        if not 0.0 <= node.utilization <= 1.0 + 1e-9:
            _fail(name,
                  f"node {node.name} utilization {node.utilization} "
                  f"not in [0,1]")
    if rep.latency.p50 > rep.latency.p99 or rep.latency.p99 > rep.latency.p999:
        _fail(name,
              f"latency percentiles not monotone: p50={rep.latency.p50} "
              f"p99={rep.latency.p99} p999={rep.latency.p999}")


def check_fleet_slo_capacity_monotone(seed: int, smoke: bool) -> str:
    """Absolute SLO capacity never shrinks when identical nodes join.

    ``fleet_slo_capacity`` returns load as a *fraction of aggregate
    backend capacity*, so the fraction itself may dip as nodes join;
    the physical claim is about fraction × aggregate capacity.  A
    coarse resolution plus one resolution step of slack keeps the
    check robust to bisection noise at small run sizes.
    """
    from repro.fleet.simulator import FleetConfig, fleet_slo_capacity
    from repro.fleet.topology import homogeneous_fleet

    name = "fleet-slo-monotonicity"
    times = _service_times(seed, "fleet-slo")
    config = FleetConfig(requests=200 if smoke else 800,
                         warmup_requests=10, key_population=256)
    resolution = 0.2
    mean = sum(times) / len(times)
    slo = 8.0 * mean
    absolute = []
    for nodes in (1, 2):
        topo = homogeneous_fleet(f"conform-mono-{nodes}", times,
                                 nodes=nodes)
        fraction = fleet_slo_capacity(
            topo, slo, config, seed=seed, resolution=resolution,
            max_load=1.2,
        )
        absolute.append(fraction * topo.capacity_rps)
    slack = resolution * absolute[-1]
    if absolute[1] + slack < absolute[0]:
        _fail(name,
              f"capacity shrank when doubling nodes: "
              f"{absolute[0]:.6f} -> {absolute[1]:.6f} rps")
    return (f"capacity 1 node {absolute[0] * 1e3:.3f} -> 2 nodes "
            f"{absolute[1] * 1e3:.3f} req/kcycle")


# -- resilience --------------------------------------------------------------------


def _resilience_reports(seed: int, smoke: bool):
    from repro.resilience.faults import FaultScenario
    from repro.resilience.policies import (
        full_policy,
        no_policy,
        retries_only,
    )
    from repro.resilience.simulator import (
        ResilientServerConfig,
        run_matrix,
    )

    times = _service_times(seed, "resilience")
    soft = [t * 3.0 for t in times]
    scenarios = [
        FaultScenario("conform-faults", accel_fault_rate=0.10,
                      accel_fault_window_services=5.0),
    ]
    policies = [no_policy(), retries_only(), full_policy()]
    cfg = ResilientServerConfig(
        workers=4, requests=200 if smoke else 1_000, offered_load=0.6,
    )
    return run_matrix(times, soft, scenarios, policies, cfg, seed=seed)


def check_resilience_same_seed_identity(seed: int, smoke: bool) -> str:
    name = "resilience-determinism"
    first = _resilience_reports(seed, smoke)
    second = _resilience_reports(seed, smoke)
    if repr(first) != repr(second):
        _fail(name, "same-seed resilience matrices diverged")
    return f"{len(first)} cells repr-identical across 2 runs"


def check_resilience_retry_accounting(seed: int, smoke: bool) -> str:
    """Requests and attempts balance under faults and retries.

    Terminal states partition the offered requests; every dispatched
    attempt either succeeds or is killed by a fault, so retry
    amplification is fully explained by ``faulted_attempts`` (timeouts
    abandon *queued* work and consume no attempt).
    """
    name = "resilience-retry-accounting"
    for rep in _resilience_reports(seed, smoke):
        label = f"{rep.scenario}/{rep.policy}"
        if rep.succeeded + rep.failed + rep.shed != rep.offered:
            _fail(name,
                  f"{label}: succeeded {rep.succeeded} + failed "
                  f"{rep.failed} + shed {rep.shed} != offered "
                  f"{rep.offered}")
        if rep.attempts != rep.succeeded + rep.faulted_attempts:
            _fail(name,
                  f"{label}: attempts {rep.attempts} != succeeded "
                  f"{rep.succeeded} + faulted {rep.faulted_attempts}")
        if rep.software_path_attempts > rep.attempts:
            _fail(name,
                  f"{label}: software-path attempts exceed attempts")
        if not 0.0 <= rep.availability <= 1.0:
            _fail(name, f"{label}: availability {rep.availability}")
        if rep.attempts and rep.retry_amplification < 1.0 - 1e-9:
            _fail(name,
                  f"{label}: retry amplification "
                  f"{rep.retry_amplification} < 1")
        if rep.wasted_cycles < 0 or rep.span_cycles <= 0:
            _fail(name,
                  f"{label}: wasted={rep.wasted_cycles} "
                  f"span={rep.span_cycles}")
    return "request and attempt balances hold across 3 policies"


def check_overload_retry_budget_monotone(seed: int, smoke: bool) -> str:
    """Disabling the retry budget never *reduces* retries sent.

    Metamorphic pair at one seed: the defended overload scenario with
    and without its :class:`~repro.resilience.policies.RetryBudget`.
    The budget is a pure gate — it can only withhold retries clients
    wanted to send — so ``retries_sent`` without it must be >= with
    it, and a run with no budget can never record a denial.
    """
    from repro.fleet.overload import (
        defended_config,
        overload_topology,
        run_overload,
    )

    name = "overload-retry-budget-monotonicity"
    topology = overload_topology()
    on_cfg = defended_config(smoke=True)
    off_cfg = replace(on_cfg, retry_budget=None)
    on = run_overload(topology, on_cfg, seed=seed)
    off = run_overload(topology, off_cfg, seed=seed)
    if off.retries_denied != 0:
        _fail(name,
              f"budget-free run denied {off.retries_denied} retries")
    if off.retries_sent < on.retries_sent:
        _fail(name,
              f"budget off sent {off.retries_sent} retries < budget "
              f"on {on.retries_sent}")
    return (f"retries: budget off {off.retries_sent} >= on "
            f"{on.retries_sent} ({on.retries_denied} denied)")


def check_fleet_warmup_exclusion(seed: int, smoke: bool) -> str:
    """Warmup traffic shapes cache state but never report counts."""
    from repro.fleet.simulator import run_fleet

    name = "fleet-warmup-exclusion"
    topology, config = _fleet_fixture(seed, smoke)
    for warmup in (0, 40):
        rep = run_fleet(
            topology, replace(config, warmup_requests=warmup), seed=seed
        )
        if rep.offered != config.requests:
            _fail(name,
                  f"warmup={warmup}: offered {rep.offered} != "
                  f"measured target {config.requests}")
    return "offered count independent of warmup prefix"


def check_calibrate_self_consistency(seed: int, smoke: bool) -> str:
    """Calibrating the twin's own telemetry recovers the generator.

    The metamorphic core of the calibration loop: a stream generated
    by the simulator under pinned ground truth, fitted and re-predicted,
    must land within the report's MAPE bounds *and* recover the
    generating parameters themselves (service means, diurnal
    amplitude, flash multiplier) within tolerance.
    """
    from repro.calibrate.report import (
        MAPE_HIT_RATIO_BOUND,
        MAPE_P99_BOUND,
    )
    from repro.calibrate.run import self_calibrate

    name = "calibrate-self-consistency"
    report = self_calibrate(seed=seed, smoke=True, jobs=1)
    if report.mape["p99"] > MAPE_P99_BOUND:
        _fail(name, f"p99 MAPE {report.mape['p99']:.1%} > "
                    f"{MAPE_P99_BOUND:.0%}")
    if report.mape["hit_ratio"] > MAPE_HIT_RATIO_BOUND:
        _fail(name, f"hit-ratio MAPE {report.mape['hit_ratio']:.1%} > "
                    f"{MAPE_HIT_RATIO_BOUND:.0%}")
    recovery = report.self_test["recovery"]
    if recovery["service_mean_err"] > 0.10:
        _fail(name, f"worst service-mean recovery error "
                    f"{recovery['service_mean_err']:.1%} > 10%")
    if recovery["amplitude_abs_err"] > 0.10:
        _fail(name, f"diurnal amplitude off by "
                    f"{recovery['amplitude_abs_err']:.3f} (> 0.10)")
    if recovery["flash_multiplier_err"] > 0.30:
        _fail(name, f"flash multiplier recovery error "
                    f"{recovery['flash_multiplier_err']:.1%} > 30%")
    return (f"p99 MAPE {report.mape['p99']:.1%}, hit MAPE "
            f"{report.mape['hit_ratio']:.1%}, mean err "
            f"{recovery['service_mean_err']:.1%}")


def check_calibrate_superset_monotonicity(seed: int, smoke: bool) -> str:
    """More telemetry never worsens the self-consistency fit.

    Fit a strict subset (every other event) and the full stream, score
    both predictions against the *same* full-stream measurement;
    the superset fit must be at least as good (small slack absorbs
    redraw noise).  A fitter that gets worse with more data is broken
    even when each individual fit looks plausible.
    """
    from repro.calibrate.run import calibrate_rows
    from repro.calibrate.twin import ground_truth_params, simulate_twin

    name = "calibrate-superset-monotonicity"
    slack = 0.02
    truth = ground_truth_params(True)
    rows = simulate_twin(
        truth, DeterministicRng(seed).fork("calibrate/truth")
    )
    subset = rows[::2]
    if not len(subset) < len(rows):
        _fail(name, "subset is not strict")
    kwargs = dict(
        seed=seed, smoke=True, jobs=1,
        duration_s=truth.shape.duration_s,
        period_s=truth.shape.diurnal_period_s,
        workers=truth.workers,
    )
    sub = calibrate_rows(subset, source="twin-subset",
                         reference_rows=rows, **kwargs)
    full = calibrate_rows(rows, source="twin-self", **kwargs)

    def score(report) -> float:
        return 0.5 * (report.mape["p99"] + report.mape["hit_ratio"])

    if score(full) > score(sub) + slack:
        _fail(name,
              f"superset fit scored {score(full):.4f}, worse than the "
              f"{len(subset)}-event subset {score(sub):.4f} + "
              f"slack {slack}")
    return (f"superset {score(full):.4f} <= subset {score(sub):.4f} "
            f"+ {slack} ({len(rows)} vs {len(subset)} events)")


#: Registry the fuzzer and CLI iterate: name -> check(seed, smoke).
INVARIANTS = {
    "server-latency-conservation": check_server_latency_conservation,
    "fleet-determinism": check_fleet_same_seed_identity,
    "fleet-accounting": check_fleet_accounting,
    "fleet-warmup-exclusion": check_fleet_warmup_exclusion,
    "fleet-slo-monotonicity": check_fleet_slo_capacity_monotone,
    "resilience-determinism": check_resilience_same_seed_identity,
    "resilience-retry-accounting": check_resilience_retry_accounting,
    "overload-retry-budget-monotonicity":
        check_overload_retry_budget_monotone,
    "calibrate-self-consistency": check_calibrate_self_consistency,
    "calibrate-superset-monotonicity":
        check_calibrate_superset_monotonicity,
}


def run_invariant(
    name: str, seed: int = DEFAULT_SEED, smoke: bool = True,
) -> str:
    """Run one named invariant; raises ConformanceFailure on violation."""
    try:
        check = INVARIANTS[name]
    except KeyError:
        raise ConformanceFailure(
            "invariant", f"unknown invariant {name!r}"
        ) from None
    return check(seed, smoke)
