"""repro — behavioral reproduction of *Architectural Support for
Server-Side PHP Processing* (Gope, Schlais, Lipasti; ISCA 2017).

The package is organized bottom-up:

* :mod:`repro.common`    — deterministic RNG, stat counters
* :mod:`repro.runtime`   — HHVM-like software substrate (values, PHP
  arrays, slab allocator, string library, symbol tables)
* :mod:`repro.regex`     — PCRE-subset engine (parser/NFA/DFA/FSM)
* :mod:`repro.uarch`     — trace-driven microarchitecture models
  (TAGE, BTB, caches, core timing)
* :mod:`repro.workloads` — WordPress/Drupal/MediaWiki/SPECWeb-like
  operation-trace generators and the load driver
* :mod:`repro.optim`     — the four prior-work abstraction-overhead
  mitigations (Section 3)
* :mod:`repro.accel`     — the paper's contribution: the four
  accelerators (Section 4)
* :mod:`repro.isa`       — ISA extensions and dispatch (Section 4.6)
* :mod:`repro.power`     — CACTI/McPAT-like energy & area models
* :mod:`repro.core`      — experiment harness reproducing Sections 2,
  3, and 5 (every figure)
"""

__version__ = "1.0.0"
