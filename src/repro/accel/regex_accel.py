"""Regular-expression accelerator: content sifting + content reuse
(Section 4.5).

Neither technique is a regexp engine; both *skip work* for the
software FSM by exploiting content locality:

* **Content sifting** — the first regexp of a consecutive set (the
  *sieve*) scans the content once; the string accelerator concurrently
  emits a **hint vector** (HV) with one bit per 32-byte segment
  marking segments that may contain special characters.  The following
  *shadow* regexps consult the HV and only run the FSM inside marked
  segments (count-leading-zeros hops between them), because every
  texturize/sanitize-class pattern begins with a special character.
  When a mutating set rewrites content, whitespace padding keeps the
  segment boundaries aligned to the existing HV (the HTML spec allows
  arbitrary linear whitespace in the response body).

* **Content reuse** — a 32-entry table indexed by regexp PC + ASID
  memoizes up to 32 bytes of previously seen content, the matched
  size, and the FSM state the automaton reached; a later scan whose
  content shares that prefix jumps straight to the memoized state and
  resumes after the prefix (Figure 13's author-URL example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.stats import StatRegistry
from repro.regex.charset import SPECIAL_CHARS, CharSet
from repro.regex.dfa import DEAD
from repro.regex.engine import CompiledRegex, MatchResult
from repro.accel.string_accel import StringAccelerator

#: Hint-vector segment granularity (bytes).
SEGMENT_BYTES = 32


@dataclass
class HintVector:
    """One bit per content segment: may the segment contain specials?"""

    segment_bytes: int
    bits: list[bool]
    content_length: int

    def special_segments(self) -> list[int]:
        return [i for i, b in enumerate(self.bits) if b]

    def skippable_chars(self) -> int:
        """Characters inside clean segments (the Figure 12 numerator)."""
        total = 0
        for i, bit in enumerate(self.bits):
            if not bit:
                start = i * self.segment_bytes
                end = min(self.content_length, start + self.segment_bytes)
                total += end - start
        return total

    def scan_spans(self) -> list[tuple[int, int]]:
        """Merged [start, end) spans of marked segments.

        The shadow regexp uses count-leading-zeros over the HV to hop
        straight to the next marked segment; adjacent marked segments
        coalesce into one span.
        """
        spans: list[tuple[int, int]] = []
        for i in self.special_segments():
            start = i * self.segment_bytes
            end = min(self.content_length, start + self.segment_bytes)
            if spans and spans[-1][1] == start:
                spans[-1] = (spans[-1][0], end)
            else:
                spans.append((start, end))
        return spans


def pattern_starts_special(regex: CompiledRegex) -> bool:
    """Safety check: can this pattern only begin with a special char?

    Sifting is sound for a shadow regexp only when no match can start
    inside an all-regular segment.  The FSM makes this decidable: if
    every character with a transition out of the start state is
    special, matches must begin at special characters.  (Texturize,
    shortcode, sanitize, and wikitext patterns all satisfy this.)
    """
    cached = getattr(regex, "_starts_special", None)
    if cached is not None:
        return cached
    fsm = regex.fsm
    start_row = fsm.transitions[fsm.start]
    # A nullable pattern (accepting start state) matches empty at any
    # position, including inside skipped segments — never sift it.
    result = not fsm.is_accepting(fsm.start)
    if result:
        for code in range(128):
            cls = fsm.class_of[code]
            if start_row[cls] != DEAD and not SPECIAL_CHARS.contains_code(code):
                result = False
                break
    # The answer is a pure function of the (immutable) FSM: memoize it
    # on the compiled regex so shadow scans decide in O(1).
    regex._starts_special = result
    return result


@dataclass
class SiftScanResult:
    """Shadow scan outcome: matches plus the work bookkeeping."""

    matches: list[MatchResult]
    chars_examined: int
    chars_skipped: int
    used_sifting: bool


class ContentSifter:
    """Sieve/shadow orchestration over the string accelerator."""

    def __init__(
        self,
        string_accel: StringAccelerator,
        segment_bytes: int = SEGMENT_BYTES,
    ) -> None:
        self.string_accel = string_accel
        self.segment_bytes = segment_bytes
        self.stats = StatRegistry("sifter")

    # -- sieve ---------------------------------------------------------------------

    def build_hint_vector(self, content: str) -> tuple[HintVector, int]:
        """Generate the HV via the string accelerator's class scan.

        Returns (hv, cycles).  Runs concurrently with the sieve
        regexp's own matching in hardware, so the cycles are the string
        accelerator's block cost, not an extra FSM pass.
        """
        outcome = self.string_accel.char_class_bitmap(
            content, SPECIAL_CHARS, self.segment_bytes
        )
        hv = HintVector(self.segment_bytes, list(outcome.value), len(content))
        self.stats.bump("sifter.hvs_built")
        return hv, outcome.cycles

    # -- shadow scans ----------------------------------------------------------------

    def shadow_findall(
        self, regex: CompiledRegex, content: str, hv: HintVector
    ) -> SiftScanResult:
        """All matches of a shadow regexp, scanning only marked spans.

        Falls back to a full scan (and says so) when the pattern could
        legally start at a regular character.
        """
        if not pattern_starts_special(regex):
            self.stats.bump("sifter.unsafe_full_scans")
            matches, examined = regex.findall(content)
            return SiftScanResult(matches, examined, 0, used_sifting=False)

        self.stats.bump("sifter.shadow_scans")
        matches: list[MatchResult] = []
        examined = 0
        pos = 0
        for span_start, span_end in hv.scan_spans():
            # Count-leading-zeros hop: candidate starts are confined to
            # the marked span; matches may extend beyond it.
            pos = max(pos, span_start)
            while pos < span_end:
                outcome = regex.search(content, pos, start_limit=span_end)
                examined += outcome.chars_examined
                if outcome.match is None:
                    break
                matches.append(outcome.match)
                pos = (
                    outcome.match.end
                    if outcome.match.end > outcome.match.start
                    else pos + 1
                )
        skipped = max(0, len(content) - examined)
        self.stats.bump("sifter.chars_skipped", skipped)
        return SiftScanResult(matches, examined, skipped, used_sifting=True)

    # -- mutation with whitespace padding -----------------------------------------------

    def replace_with_padding(
        self,
        content: str,
        matches: list[MatchResult],
        replacement: str,
        hv: HintVector,
    ) -> tuple[str, HintVector, int]:
        """Apply replacements, padding segments to preserve HV alignment.

        Each segment is rewritten independently; when the rewritten
        segment's length changes, linear whitespace pads it back up to
        a multiple of the segment size (HTML permits this), so all
        *following* segment boundaries — and hence the already-built
        HV — stay valid.  Returns (new_content, new_hv, pad_chars).
        """
        seg = self.segment_bytes
        n_segments = (len(content) + seg - 1) // seg
        by_segment: dict[int, list[MatchResult]] = {}
        for m in matches:
            by_segment.setdefault(m.start // seg, []).append(m)

        out: list[str] = []
        new_bits: list[bool] = []
        pad_chars = 0
        for i in range(n_segments):
            start, end = i * seg, min(len(content), (i + 1) * seg)
            piece = content[start:end]
            seg_matches = by_segment.get(i, [])
            if seg_matches:
                rebuilt: list[str] = []
                cursor = start
                for m in sorted(seg_matches, key=lambda m: m.start):
                    clipped_end = min(m.end, end)
                    rebuilt.append(content[cursor:m.start])
                    rebuilt.append(replacement)
                    cursor = clipped_end
                rebuilt.append(content[cursor:end])
                piece = "".join(rebuilt)
            if len(piece) == seg or i == n_segments - 1:
                padded = piece
            elif len(piece) < seg:
                pad_chars += seg - len(piece)
                padded = piece + " " * (seg - len(piece))
            else:
                # Growth: pad to the next multiple of the segment size;
                # the extra segments inherit the marked bit.
                target = ((len(piece) + seg - 1) // seg) * seg
                pad_chars += target - len(piece)
                padded = piece + " " * (target - len(piece))
            out.append(padded)
            extra_segments = max(1, (len(padded) + seg - 1) // seg)
            bit = hv.bits[i] if i < len(hv.bits) else True
            new_bits.extend([bit] * extra_segments)

        new_content = "".join(out)
        self.stats.bump("sifter.pad_chars", pad_chars)
        new_hv = HintVector(seg, new_bits, len(new_content))
        return new_content, new_hv, pad_chars


# -- content reuse ---------------------------------------------------------------------


@dataclass
class _ReuseEntry:
    content: str                 # up to 32 bytes of last-seen content
    size: int = 0                # matched prefix size (0 = cleared)
    next_state: Optional[int] = None
    last_accept: Optional[int] = None
    last_access: int = 0


@dataclass
class ReuseOutcome:
    """One scan through the reuse table + FSM."""

    match_end: Optional[int]
    chars_examined: int
    chars_skipped: int
    scenario: str  # 'jump' | 'learn' | 'install'


@dataclass
class ReuseTableConfig:
    entries: int = 32
    content_bytes: int = 32     # "limited to a maximum of 32 bytes"
    lookup_cycles: int = 1


class ContentReuseTable:
    """The Section 4.5 / Figure 13 hardware reuse table."""

    def __init__(self, config: ReuseTableConfig | None = None) -> None:
        self.config = config or ReuseTableConfig()
        self.stats = StatRegistry("reuse")
        self._entries: dict[tuple[int, int], _ReuseEntry] = {}
        self._clock = 0

    # -- the regexlookup / regexset instructions -----------------------------------------

    def regexlookup(self, pc: int, asid: int, content: str) -> tuple[str, int]:
        """Search the table; returns (scenario, matching_size).

        Scenarios follow the paper exactly:
        * ``jump``   — PC, ASID and content match the stored size:
          software may jump to the stored FSM state.
        * ``install``— PC/ASID miss or first content byte differs:
          entry (re)installed, size and FSM state cleared.
        * ``learn``  — PC+ASID hit with a different non-zero matching
          size: content/size updated; software traverses and then
          writes the state back with ``regexset``.
        """
        self._clock += 1
        self.stats.bump("reuse.lookups")
        key = (pc, asid)
        entry = self._entries.get(key)
        prefix = content[: self.config.content_bytes]
        if entry is None or not entry.content or not prefix or \
                entry.content[0] != prefix[0]:
            self._install(key, prefix)
            self.stats.bump("reuse.installs")
            return "install", 0
        entry.last_access = self._clock
        matching = self._common_prefix_len(entry.content, prefix)
        if matching == entry.size and entry.size > 0 and entry.next_state is not None:
            self.stats.bump("reuse.jumps")
            return "jump", matching
        entry.content = prefix
        entry.size = matching
        entry.next_state = None
        entry.last_accept = None
        self.stats.bump("reuse.learns")
        return "learn", matching

    def regexset(
        self, pc: int, asid: int, state: int, last_accept: Optional[int]
    ) -> None:
        """Software hands back the FSM state for the learned size."""
        entry = self._entries.get((pc, asid))
        if entry is None:
            return
        entry.next_state = state
        entry.last_accept = last_accept
        self.stats.bump("reuse.sets")

    def stored_state(self, pc: int, asid: int) -> tuple[int, Optional[int], int]:
        """(state, last_accept, size) of a jump-ready entry."""
        entry = self._entries[(pc, asid)]
        assert entry.next_state is not None
        return entry.next_state, entry.last_accept, entry.size

    # -- fault injection -------------------------------------------------------------------

    def inject_flush(self) -> int:
        """Fault hook: the whole reuse table is cleared at once.

        The table is a pure memoization cache, so the documented
        fallback is simply the software regex path: every later
        ``regexlookup`` reinstalls from scratch (more FSM traversal,
        never a wrong match).  Returns the entries dropped.
        """
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.bump("reuse.fault_flushes")
        self.stats.bump("reuse.fault_dropped", dropped)
        return dropped

    # -- helpers ---------------------------------------------------------------------------

    def _install(self, key: tuple[int, int], prefix: str) -> None:
        if key not in self._entries and \
                len(self._entries) >= self.config.entries:
            lru_key = min(self._entries, key=lambda k: self._entries[k].last_access)
            del self._entries[lru_key]
            self.stats.bump("reuse.evictions")
        self._entries[key] = _ReuseEntry(content=prefix, last_access=self._clock)

    @staticmethod
    def _common_prefix_len(a: str, b: str) -> int:
        n = min(len(a), len(b))
        for i in range(n):
            if a[i] != b[i]:
                return i
        return n


class ReuseAcceleratedMatcher:
    """Anchored matching through the reuse table (the Figure 13 flow)."""

    def __init__(self, table: ContentReuseTable) -> None:
        self.table = table

    def match(
        self, regex: CompiledRegex, content: str, pc: int, asid: int = 0
    ) -> ReuseOutcome:
        """Match ``content`` against an anchored regexp with reuse.

        On a jump, the FSM resumes from the memoized state after the
        shared prefix; otherwise the software traverses normally and
        teaches the table.
        """
        scenario, size = self.table.regexlookup(pc, asid, content)
        if scenario == "jump":
            state, last_accept, size = self.table.stored_state(pc, asid)
            end, examined = regex.resume(state, last_accept, content, size)
            return ReuseOutcome(end, examined, size, "jump")
        # Software path: full traverse; learn the state when asked to.
        state, last_accept = regex.state_after(content, 0, size if size else None)
        if scenario == "learn" and size > 0 and state != DEAD:
            self.table.regexset(pc, asid, state, last_accept)
        # state_after above consumed min(size, len) chars when learning,
        # or nothing extra when installing (size == 0 → full run below).
        if size > 0 and state != DEAD:
            end, examined = regex.resume(state, last_accept, content, size)
            examined += size  # the prefix was traversed in software too
        else:
            full_state, full_accept = regex.state_after(content, 0)
            end = full_accept
            if regex.anchored_end:
                ok = full_state != DEAD and regex.fsm.is_accepting(full_state)
                end = len(content) if ok else None
            examined = len(content)
        return ReuseOutcome(end, examined, 0, scenario)
