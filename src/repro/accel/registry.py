"""Pluggable accelerator-backend registry.

Every hot kernel the paper models (string scan/membership, hash probe,
regex DFA stepping, heap management) exists in more than one software
realization: the pinned seed-era ``reference`` kernels
(:mod:`repro.accel.reference`), the hand-``optimized`` defaults living
on the accelerator classes, and bulk/vectorized variants under
:mod:`repro.accel.backends`.  This module names each patchable kernel
as a *binding point* — ``(owner class, attribute)`` — and resolves an
implementation per ``(kernel, backend)`` pair, so the conformance
oracles, perf harness, fuzzer, and CLI can enumerate backends instead
of hard-coding module pairs.

Key properties:

* **Zero-edit extension.**  A new backend is one module under
  ``repro.accel.backends/`` that calls :func:`register` at import
  time; discovery walks the package, so nothing else in the repo
  needs touching.
* **Fallback resolution.**  A backend that registers only some
  kernels shares the ``optimized`` implementation for the rest (the
  heap manager, for example, has a single implementation that every
  backend uses).
* **Nestable patching.**  :func:`backend_mode` swaps every binding
  point process-wide for the duration of a ``with`` block, restoring
  whatever was active before — nesting ``backend_mode("reference")``
  inside ``backend_mode("bulk")`` works and unwinds correctly.
* **Mode hooks.**  A backend may attach context managers entered for
  the duration of its mode; the ``reference`` backend uses one to
  restore the seed repo's cache profile (trace/experiment/pattern
  caches off), exactly what the old ``reference_mode()`` did.

Results must be byte-identical across backends on every input; the
conformance suite and the perf harness both assert that.
"""

from __future__ import annotations

import importlib
import pkgutil
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

#: The backend the accelerator classes ship with: the attribute values
#: captured from the classes themselves at first use.
DEFAULT_BACKEND = "optimized"

#: The pinned seed-era baseline backend (never perf-measured against
#: itself; everything else is reported as a speedup over it).
REFERENCE_BACKEND = "reference"


@dataclass(frozen=True)
class KernelPoint:
    """One patchable kernel: ``setattr(owner, attr, impl)``."""

    name: str
    owner: type
    attr: str


class BackendRegistry:
    """Backend name → kernel implementations, plus the mode switch."""

    def __init__(self) -> None:
        self._points: dict[str, KernelPoint] = {}
        #: kernel name → backend name → implementation
        self._impls: dict[str, dict[str, Callable]] = {}
        #: backend name → context-manager factories entered in-mode
        self._hooks: dict[str, list[Callable[[], Any]]] = {}
        #: backend name → callable returning why it is unavailable
        #: (None when it can run at full strength here)
        self._degraded: dict[str, Callable[[], Optional[str]]] = {}
        self._backends: list[str] = [DEFAULT_BACKEND]
        self._stack: list[str] = []
        self._loaded = False

    # -- registration (import-time API for backend modules) ------------------

    def register_backend(
        self,
        name: str,
        *,
        unavailable_reason: Callable[[], Optional[str]] | None = None,
    ) -> None:
        """Declare a backend; idempotent.

        ``unavailable_reason`` reports (as a string) why the backend
        cannot run at full strength in this environment — e.g. a
        missing optional dependency.  Such a backend stays selectable:
        its kernels are expected to degrade gracefully to the
        ``optimized`` implementations per call.
        """
        if name not in self._backends:
            self._backends.append(name)
        if unavailable_reason is not None:
            self._degraded[name] = unavailable_reason

    def register(self, kernel: str, backend: str, impl: Callable) -> None:
        """Bind ``impl`` as backend ``backend``'s ``kernel``."""
        self.register_backend(backend)
        self._impls.setdefault(kernel, {})[backend] = impl

    def add_mode_hook(
        self, backend: str, hook: Callable[[], Any]
    ) -> None:
        """Enter ``hook()`` (a context manager) while in this mode."""
        self.register_backend(backend)
        self._hooks.setdefault(backend, []).append(hook)

    # -- lazy core binding ----------------------------------------------------

    def _bind(self, kernel: str, owner: type, attr: str) -> None:
        self._points[kernel] = KernelPoint(kernel, owner, attr)
        # The class attribute *is* the optimized implementation.
        self._impls.setdefault(kernel, {})[DEFAULT_BACKEND] = (
            owner.__dict__[attr]
        )

    def _ensure_loaded(self) -> None:
        """Bind the core kernel points, then import every backend.

        Runs once, before any resolution or patching, so the captured
        ``optimized`` implementations are always the unpatched class
        attributes.  Backend discovery walks
        ``repro.accel.backends/`` — adding a variant there requires no
        edits anywhere else.
        """
        if self._loaded:
            return
        self._loaded = True
        from repro.accel.hash_table import HardwareHashTable
        from repro.accel.heap_manager import HardwareHeapManager
        from repro.accel.string_accel import StringAccelerator
        from repro.regex.engine import CompiledRegex

        self._bind("string.find", StringAccelerator, "find")
        self._bind("string.compare", StringAccelerator, "compare")
        self._bind("string.html_escape", StringAccelerator, "html_escape")
        self._bind("string.char_class_bitmap", StringAccelerator,
                   "char_class_bitmap")
        self._bind("string.matrix_for_block", StringAccelerator,
                   "_matrix_for_block")
        self._bind("hash.probe_window", HardwareHashTable, "_probe_window")
        self._bind("regex.search", CompiledRegex, "search")
        self._bind("regex.state_after", CompiledRegex, "state_after")
        self._bind("regex.resume", CompiledRegex, "resume")
        self._bind("heap.hmmalloc", HardwareHeapManager, "hmmalloc")
        self._bind("heap.hmfree", HardwareHeapManager, "hmfree")

        import repro.accel.backends as backends_pkg
        import repro.accel.reference  # noqa: F401  registers "reference"
        for info in sorted(pkgutil.iter_modules(backends_pkg.__path__),
                           key=lambda m: m.name):
            importlib.import_module(
                f"{backends_pkg.__name__}.{info.name}"
            )

    # -- resolution -----------------------------------------------------------

    def backend_names(self) -> tuple[str, ...]:
        """Registered backend names, registration order."""
        self._ensure_loaded()
        return tuple(self._backends)

    def kernel_names(self) -> tuple[str, ...]:
        """All bound kernel binding points, sorted."""
        self._ensure_loaded()
        return tuple(sorted(self._points))

    def current_backend(self) -> str:
        """The innermost active :func:`backend_mode`, or the default."""
        return self._stack[-1] if self._stack else DEFAULT_BACKEND

    def resolve(self, kernel: str, backend: str) -> Callable:
        """Implementation for ``(kernel, backend)``, with fallback.

        A backend that does not register ``kernel`` shares the
        ``optimized`` implementation.  Unknown kernels and unknown
        backends raise :class:`ValueError`.
        """
        self._ensure_loaded()
        if backend not in self._backends:
            raise ValueError(
                f"unknown backend {backend!r}; registered: "
                f"{', '.join(self._backends)}"
            )
        if kernel not in self._points:
            raise ValueError(
                f"unknown kernel {kernel!r}; bound: "
                f"{', '.join(sorted(self._points))}"
            )
        impls = self._impls[kernel]
        impl = impls.get(backend)
        if impl is None:
            impl = impls[DEFAULT_BACKEND]
        return impl

    def available_backends(self) -> list[dict[str, Any]]:
        """One report row per registered backend.

        Each row: ``{"name", "available", "reason", "kernels"}`` —
        ``available`` is False when the backend would degrade to the
        optimized kernels here (e.g. numpy missing), ``reason`` says
        why, and ``kernels`` lists the binding points the backend
        registers its own implementation for.
        """
        self._ensure_loaded()
        rows: list[dict[str, Any]] = []
        for name in self._backends:
            probe = self._degraded.get(name)
            reason = probe() if probe is not None else None
            kernels = sorted(
                kernel for kernel, impls in self._impls.items()
                if name in impls and kernel in self._points
            )
            rows.append({
                "name": name,
                "available": reason is None,
                "reason": reason,
                "kernels": kernels,
            })
        return rows

    def measured_backends(self) -> tuple[str, ...]:
        """Backends the perf harness should time against reference.

        Every registered backend except ``reference`` itself (the
        baseline), skipping ones that would silently degrade to
        ``optimized`` here — timing the fallback would report the
        wrong backend's number.
        """
        return tuple(
            row["name"] for row in self.available_backends()
            if row["name"] != REFERENCE_BACKEND and row["available"]
        )

    # -- the mode switch ------------------------------------------------------

    @contextmanager
    def backend_mode(self, name: str) -> Iterator[None]:
        """Run the process on backend ``name``'s kernels.

        Patches every binding point, enters the backend's mode hooks,
        and restores the previously active implementations on exit —
        whatever they were, so nesting works.
        """
        self._ensure_loaded()
        if name not in self._backends:
            raise ValueError(
                f"unknown backend {name!r}; registered: "
                f"{', '.join(self._backends)}"
            )
        points = [self._points[kernel]
                  for kernel in sorted(self._points)]
        saved = [(pt, pt.owner.__dict__[pt.attr]) for pt in points]
        self._stack.append(name)
        try:
            with ExitStack() as stack:
                for hook in self._hooks.get(name, ()):
                    stack.enter_context(hook())
                for pt in points:
                    setattr(pt.owner, pt.attr,
                            self.resolve(pt.name, name))
                try:
                    yield
                finally:
                    for pt, impl in saved:
                        setattr(pt.owner, pt.attr, impl)
        finally:
            self._stack.pop()


#: The process-wide registry every accelerator kernel resolves through.
REGISTRY = BackendRegistry()


def backend_mode(name: str):
    """Module-level convenience for ``REGISTRY.backend_mode``."""
    return REGISTRY.backend_mode(name)


def available_backends() -> list[dict[str, Any]]:
    """Module-level convenience for ``REGISTRY.available_backends``."""
    return REGISTRY.available_backends()


def backend_names() -> tuple[str, ...]:
    """Module-level convenience for ``REGISTRY.backend_names``."""
    return REGISTRY.backend_names()


def current_backend() -> str:
    """Module-level convenience for ``REGISTRY.current_backend``."""
    return REGISTRY.current_backend()


def measured_backends() -> tuple[str, ...]:
    """Module-level convenience for ``REGISTRY.measured_backends``."""
    return REGISTRY.measured_backends()
