"""The paper's contribution: four tightly-coupled accelerators.

* :mod:`repro.accel.hash_table`   — hardware hash table + RTT (§4.2)
* :mod:`repro.accel.heap_manager` — hardware heap manager (§4.3)
* :mod:`repro.accel.string_accel` — matching-matrix string unit (§4.4)
* :mod:`repro.accel.regex_accel`  — content sifting + reuse (§4.5)

All four follow the §4.1 design principles: VM/OS-agnostic (software
data structures stay authoritative in memory), cache-coherent (dirty
state is written back on evictions/flushes and software sees a stale
flag), common-path-only (zero-flag fallbacks hand anything unusual to
software handlers).
"""

from repro.accel.hash_table import (
    HardwareHashTable,
    HashOpOutcome,
    HashTableConfig,
    ReverseTranslationTable,
    simplified_hash,
)
from repro.accel.heap_manager import (
    HardwareHeapManager,
    HeapManagerConfig,
    HeapOpOutcome,
)
from repro.accel.regex_accel import (
    ContentReuseTable,
    ContentSifter,
    HintVector,
    ReuseAcceleratedMatcher,
    ReuseOutcome,
    ReuseTableConfig,
    SEGMENT_BYTES,
    SiftScanResult,
    pattern_starts_special,
)
from repro.accel.string_accel import (
    MatrixConfigState,
    StringAccelConfig,
    StringAccelerator,
    StringOpOutcome,
)

__all__ = [
    "HardwareHashTable", "HashTableConfig", "HashOpOutcome",
    "ReverseTranslationTable", "simplified_hash",
    "HardwareHeapManager", "HeapManagerConfig", "HeapOpOutcome",
    "StringAccelerator", "StringAccelConfig", "StringOpOutcome",
    "MatrixConfigState",
    "ContentSifter", "HintVector", "SiftScanResult",
    "ContentReuseTable", "ReuseTableConfig", "ReuseOutcome",
    "ReuseAcceleratedMatcher", "pattern_starts_special", "SEGMENT_BYTES",
]
