"""Hardware heap manager (Section 4.3).

A comparator gates requests at 128 bytes; a size-class table selects
one of 8 hardware free lists (32 entries each) whose head serves
pops/pushes in a single cycle; a pointer prefetcher refills lists from
the software slab allocator in the background so the common case never
waits on software.

Coherence is *lazy* (contrast with Mallacc [48], which eagerly updates
memory): the software heap's data structures are updated only on free-
list overflow (a single store rewires the memory free list) and on
context switches (``hmflush``), "not causing any correctness errors or
memory leaks."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.stats import StatRegistry
from repro.runtime.slab import SlabAllocator


@dataclass
class HeapManagerConfig:
    """Geometry/latency of the accelerator (paper defaults)."""

    max_request_bytes: int = 128
    size_classes: int = 8          # 16-byte granularity up to 128 B
    entries_per_class: int = 32
    access_cycles: int = 1
    #: prefetcher refills a list up to this level when it drops below half
    refill_low_water: int = 8
    refill_target: int = 24
    #: ablation: without the pointer prefetcher every empty-list malloc
    #: waits on the software heap manager (§4.3 argues the prefetcher
    #: "can hide the latency of software involvement")
    prefetch_enabled: bool = True

    def class_bytes(self, cls_index: int) -> int:
        """Upper bound of hardware size class ``cls_index``."""
        step = self.max_request_bytes // self.size_classes
        return (cls_index + 1) * step

    def class_for(self, size: int) -> int | None:
        """Hardware size class for a request, None when too large."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if size > self.max_request_bytes:
            return None
        step = self.max_request_bytes // self.size_classes
        return (size + step - 1) // step - 1


@dataclass
class HeapOpOutcome:
    """Result of one hmmalloc/hmfree."""

    address: int | None = None
    cycles: int = 0
    software_fallback: bool = False
    #: software stores issued by the overflow handler (hmfree path)
    overflow_stores: int = 0


class HardwareHeapManager:
    """The Section 4.3 accelerator over a software slab allocator."""

    def __init__(
        self,
        slab: SlabAllocator,
        config: HeapManagerConfig | None = None,
    ) -> None:
        self.config = config or HeapManagerConfig()
        self.slab = slab
        self.stats = StatRegistry("hwheap")
        #: fault-injection flag: while True every request raises the
        #: zero flag and software allocation takes over
        self.faulted = False
        self._free_lists: list[deque[int]] = [
            deque() for _ in range(self.config.size_classes)
        ]
        #: hardware class index -> software slab class for refills
        self._slab_class: list[int] = []
        from repro.runtime.slab import slab_class_for
        for i in range(self.config.size_classes):
            sw = slab_class_for(self.config.class_bytes(i))
            assert sw is not None
            self._slab_class.append(sw)

    # -- the ISA-visible operations ------------------------------------------------

    def hmmalloc(self, size: int) -> HeapOpOutcome:
        """Allocate; zero flag (fallback) when gated or list empty."""
        self.stats.bump("hwheap.mallocs")
        if self.faulted:
            self.stats.bump("hwheap.fault_bypasses")
            return HeapOpOutcome(software_fallback=True, cycles=1)
        cls = self.config.class_for(size)
        if cls is None:
            # Comparator rejects: software handles large requests.
            self.stats.bump("hwheap.oversize_bypass")
            return HeapOpOutcome(software_fallback=True, cycles=1)
        free_list = self._free_lists[cls]
        if not free_list:
            # Zero flag: software refills and completes the allocation.
            self.stats.bump("hwheap.malloc_misses")
            address = self.slab.pop_free_block(self._slab_class[cls])
            self._prefetch(cls)
            return HeapOpOutcome(
                address=address, software_fallback=True,
                cycles=self.config.access_cycles,
            )
        address = free_list.popleft()
        self.stats.bump("hwheap.malloc_hits")
        self._prefetch(cls)
        return HeapOpOutcome(address=address, cycles=self.config.access_cycles)

    def hmfree(self, address: int, size: int) -> HeapOpOutcome:
        """Free; on overflow, one block spills to memory (one store)."""
        self.stats.bump("hwheap.frees")
        if self.faulted:
            self.stats.bump("hwheap.fault_bypasses")
            return HeapOpOutcome(software_fallback=True, cycles=1)
        cls = self.config.class_for(size)
        if cls is None:
            self.stats.bump("hwheap.oversize_bypass")
            return HeapOpOutcome(software_fallback=True, cycles=1)
        free_list = self._free_lists[cls]
        overflow_stores = 0
        fallback = False
        if len(free_list) >= self.config.entries_per_class:
            # Zero flag: software appends the evicted tail block to the
            # memory free list ("a single str instruction").
            victim = free_list.pop()
            self.slab.push_free_block(self._slab_class[cls], victim)
            self.stats.bump("hwheap.free_overflows")
            overflow_stores = 1
            fallback = True
        free_list.appendleft(address)
        self.stats.bump("hwheap.free_hits")
        return HeapOpOutcome(
            cycles=self.config.access_cycles,
            software_fallback=fallback,
            overflow_stores=overflow_stores,
        )

    def hmflush(self) -> int:
        """Context switch: flush every cached block back to memory.

        Resumable in hardware (page faults mid-flush restart where they
        left off); here it returns the number of blocks flushed.
        """
        self.stats.bump("hwheap.flushes")
        flushed = 0
        for cls, free_list in enumerate(self._free_lists):
            while free_list:
                self.slab.push_free_block(self._slab_class[cls], free_list.pop())
                flushed += 1
        self.stats.bump("hwheap.flushed_blocks", flushed)
        return flushed

    # -- fault injection ------------------------------------------------------------

    def inject_outage(self) -> int:
        """Fault hook: the unit goes offline until :meth:`repair`.

        The documented fallback is the lazy-coherence escape hatch:
        ``hmflush`` returns every cached block to the software slab
        (no leaks), then the zero flag routes all traffic to the
        software allocator.  Returns blocks flushed on the way down.
        """
        self.stats.bump("hwheap.fault_outages")
        flushed = self.hmflush()
        self.faulted = True
        return flushed

    def repair(self) -> None:
        """Fault hook: bring the unit back (lists refill on demand)."""
        if self.faulted:
            self.stats.bump("hwheap.fault_repairs")
        self.faulted = False

    # -- prefetcher -----------------------------------------------------------------

    def _prefetch(self, cls: int) -> None:
        """Pointer prefetcher: refill toward target below low water.

        Prefetches run off the critical path (the tail pointer side);
        they are counted for energy but charge no core cycles.
        """
        if not self.config.prefetch_enabled:
            return
        free_list = self._free_lists[cls]
        capacity = self.config.entries_per_class
        low_water = min(self.config.refill_low_water, capacity // 2)
        target = min(self.config.refill_target, capacity)
        if len(free_list) >= max(1, low_water):
            return
        while len(free_list) < target:
            block = self.slab.pop_free_block(self._slab_class[cls])
            if block is None:
                break
            free_list.append(block)
            self.stats.bump("hwheap.prefetches")

    # -- derived metrics ----------------------------------------------------------------

    def hit_rate(self) -> float:
        """Fraction of in-range mallocs served without software."""
        hits = self.stats.get("hwheap.malloc_hits")
        misses = self.stats.get("hwheap.malloc_misses")
        total = hits + misses
        return hits / total if total else 0.0

    def cached_blocks(self) -> int:
        return sum(len(fl) for fl in self._free_lists)
