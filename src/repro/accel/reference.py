"""Reference (pre-optimization) kernel implementations.

The hot kernels in :mod:`repro.accel.string_accel`,
:mod:`repro.accel.hash_table`, and :mod:`repro.regex.engine` were
rewritten for wall-clock speed (byte-level ``bytes.translate`` tables,
cached probe windows, localized FSM loops).  This module preserves the
original straight-line implementations so that

* equivalence tests can assert the optimized kernels are byte-identical
  to the originals on randomized inputs, and
* the perf harness (:mod:`repro.core.perf`) can measure real speedups
  against a pinned in-repo baseline on the same machine.

Nothing here is exported through the package ``__init__``; it is test
and benchmark infrastructure, not part of the accelerator model.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.accel.hash_table import HardwareHashTable
from repro.accel.registry import REGISTRY, backend_mode
from repro.accel.string_accel import (
    MatrixConfigState,
    StringAccelerator,
    StringOpOutcome,
)
from repro.regex.charset import CharSet
from repro.regex.dfa import DEAD
from repro.regex.engine import CompiledRegex, MatchResult, ScanOutcome


# ---------------------------------------------------------------------------
# String accelerator (original per-character matrix construction)
# ---------------------------------------------------------------------------


def reference_matrix_for_block(self, block, rows):
    """Original ASCII-compare sub-block: rows × block-bytes bools."""
    matrix = []
    for lo, hi in rows:
        matrix.append([lo <= ord(ch) <= hi for ch in block])
    return matrix


def reference_find(self, subject: str, pattern: str, start: int = 0) -> StringOpOutcome:
    """Original string_find with per-block ``sorted(pending)``."""
    if not pattern:
        raise ValueError("empty pattern")
    if len(pattern) > self.config.pattern_rows:
        raise ValueError("pattern exceeds matching-matrix rows")
    rows = MatrixConfigState.exact(pattern).rows
    cfg = self.config
    m = len(pattern)
    found = -1
    scanned_to = len(subject)
    pending: dict[int, int] = {}  # start position -> rows matched so far
    pos = start
    while pos < len(subject):
        block = subject[pos:pos + cfg.block_bytes]
        matrix = reference_matrix_for_block(self, block, rows)
        for cand_start in sorted(pending):
            matched = pending[cand_start]
            i = 0
            while matched < m and i < len(block) and matrix[matched][i]:
                matched += 1
                i += 1
            if matched == m:
                found = cand_start
                break
            if i >= len(block):
                pending[cand_start] = matched
            else:
                del pending[cand_start]
        if found >= 0:
            scanned_to = pos + len(block)
            break
        pending = {
            s: r for s, r in pending.items()
            if r + len(block) >= m
        }
        for col in range(len(block)):
            if not matrix[0][col]:
                continue
            r = 0
            c = col
            while r < m and c < len(block) and matrix[r][c]:
                r += 1
                c += 1
            if r == m:
                found = pos + col
                break
            if c >= len(block):
                pending[pos + col] = r
        if found >= 0:
            scanned_to = pos + len(block)
            break
        pos += cfg.block_bytes
    nbytes = max(0, min(scanned_to, len(subject)) - start)
    cycles, blocks = self._charge("find", nbytes)
    return StringOpOutcome(found, cycles, blocks, nbytes)


def reference_compare(self, a: str, b: str) -> StringOpOutcome:
    """Original per-character divergence scan."""
    limit = min(len(a), len(b))
    diverge = limit
    for i in range(limit):
        if a[i] != b[i]:
            diverge = i
            break
    value = (a > b) - (a < b)
    cycles, blocks = self._charge("compare", diverge + 1)
    return StringOpOutcome(value, cycles, blocks, diverge + 1)


def reference_html_escape(self, subject: str, escapes: dict[str, str]) -> StringOpOutcome:
    """Original per-character dict-get escape loop."""
    if len(escapes) > self.config.pattern_rows:
        raise ValueError("escape map exceeds matrix rows")
    out: list[str] = []
    for ch in subject:
        out.append(escapes.get(ch, ch))
    value = "".join(out)
    read_cycles, read_blocks = self._charge("htmlescape", len(subject))
    write_cycles, write_blocks = self._charge("htmlescape", len(value))
    return StringOpOutcome(
        value, read_cycles + write_cycles,
        read_blocks + write_blocks, len(subject) + len(value),
    )


def reference_char_class_bitmap(
    self, subject: str, char_class: CharSet, segment_bytes: int
) -> StringOpOutcome:
    """Original per-character hint-vector scan."""
    bits: list[bool] = []
    for seg_start in range(0, len(subject), segment_bytes):
        chunk = subject[seg_start:seg_start + segment_bytes]
        bits.append(any(char_class.contains(c) for c in chunk))
    cycles, blocks = self._charge("charclass", len(subject))
    return StringOpOutcome(bits, cycles, blocks, len(subject))


class ReferenceStringAccelerator(StringAccelerator):
    """A string accelerator running the original kernels."""

    find = reference_find
    compare = reference_compare
    html_escape = reference_html_escape
    char_class_bitmap = reference_char_class_bitmap
    _matrix_for_block = reference_matrix_for_block


# ---------------------------------------------------------------------------
# Hardware hash table (original hash fold + per-call window build)
# ---------------------------------------------------------------------------


def reference_simplified_hash(key: str, base_address: int) -> int:
    """Original per-character xor-fold over 4-byte groups."""
    h = (base_address >> 6) & 0xFFFF_FFFF
    for i in range(0, len(key), 4):
        chunk = 0
        for ch in key[i:i + 4]:
            chunk = (chunk << 8) | (ord(ch) & 0xFF)
        h ^= chunk + (h << 3)
        h &= 0xFFFF_FFFF
    return h


def reference_probe_window(self, key: str, base_address: int) -> list[int]:
    """Original probe window: rehash + rebuild the list on every call."""
    start = reference_simplified_hash(key, base_address) % self.config.entries
    return [
        (start + i) % self.config.entries
        for i in range(min(self.config.probe_width, self.config.entries))
    ]


class ReferenceHardwareHashTable(HardwareHashTable):
    """A hash-table accelerator running the original probe path."""

    _probe_window = reference_probe_window


# ---------------------------------------------------------------------------
# Regex engine (original method-call-per-character FSM loops)
# ---------------------------------------------------------------------------


def reference_state_after(
    self, text: str, start: int = 0, length: Optional[int] = None
) -> tuple[int, Optional[int]]:
    """Original anchored prefix run via ``fsm.step`` per character."""
    fsm = self.fsm
    state = fsm.start
    last_accept = start if fsm.is_accepting(state) else None
    stop = len(text) if length is None else min(len(text), start + length)
    for pos in range(start, stop):
        state = fsm.step(state, text[pos])
        self._count(1)
        if state == DEAD:
            return DEAD, last_accept
        if fsm.is_accepting(state):
            last_accept = pos + 1
    return state, last_accept


def reference_resume(
    self, state: int, last_accept: Optional[int], text: str, pos: int
) -> tuple[Optional[int], int]:
    """Original memoized-state continuation loop."""
    fsm = self.fsm
    examined = 0
    best = last_accept
    current = state
    while pos < len(text) and fsm.is_live(current):
        current = fsm.step(current, text[pos])
        examined += 1
        pos += 1
        if current == DEAD:
            break
        if fsm.is_accepting(current):
            best = pos
    self._count(examined)
    if self.anchored_end and best is not None and best != len(text):
        best = None if not fsm.is_accepting(current) or pos != len(text) else best
    return best, examined


def reference_search(
    self, text: str, start: int = 0, start_limit: Optional[int] = None
) -> ScanOutcome:
    """Original leftmost-longest scan via ``fsm.step`` per character."""
    self.stats.bump("regex.calls")
    fsm = self.fsm
    total_examined = 0
    limit = len(text) + 1 if start_limit is None else min(start_limit, len(text) + 1)
    positions = [start] if self.anchored_start else range(start, limit)
    for s in positions:
        state = fsm.start
        best: Optional[int] = s if fsm.is_accepting(state) else None
        pos = s
        while pos < len(text) and fsm.is_live(state):
            state = fsm.step(state, text[pos])
            total_examined += 1
            pos += 1
            if state == DEAD:
                break
            if fsm.is_accepting(state):
                best = pos
        if self.anchored_end and best is not None and best != len(text):
            best = None
        if best is not None:
            self._count(total_examined)
            return ScanOutcome(MatchResult(s, best), total_examined)
    self._count(total_examined)
    return ScanOutcome(None, total_examined)


# ---------------------------------------------------------------------------
# registration + reference_mode
# ---------------------------------------------------------------------------


@contextmanager
def _seed_cache_profile():
    """Restore the seed repo's cache profile while in reference mode.

    Disables the trace-stream cache, the experiment cache, and the
    compiled-pattern memo — so end-to-end speedups are measured
    against a faithful pre-optimization execution profile, not one
    that still benefits from the caches added later.
    """
    import repro.regex.engine as engine_mod
    from repro.core import expcache
    from repro.workloads.loadgen import TRACE_CACHE

    saved_tables = engine_mod._compile_tables
    saved_trace = TRACE_CACHE.enabled
    engine_mod._compile_tables = getattr(
        saved_tables, "__wrapped__", saved_tables
    )
    TRACE_CACHE.enabled = False
    TRACE_CACHE.clear()
    try:
        with expcache.disabled():
            yield
    finally:
        engine_mod._compile_tables = saved_tables
        TRACE_CACHE.enabled = saved_trace
        TRACE_CACHE.clear()


REGISTRY.register_backend("reference")
REGISTRY.register("string.find", "reference", reference_find)
REGISTRY.register("string.compare", "reference", reference_compare)
REGISTRY.register("string.html_escape", "reference",
                  reference_html_escape)
REGISTRY.register("string.char_class_bitmap", "reference",
                  reference_char_class_bitmap)
REGISTRY.register("string.matrix_for_block", "reference",
                  reference_matrix_for_block)
REGISTRY.register("hash.probe_window", "reference",
                  reference_probe_window)
REGISTRY.register("regex.search", "reference", reference_search)
REGISTRY.register("regex.state_after", "reference",
                  reference_state_after)
REGISTRY.register("regex.resume", "reference", reference_resume)
REGISTRY.add_mode_hook("reference", _seed_cache_profile)


@contextmanager
def reference_mode():
    """Temporarily run the simulator on pre-optimization kernels.

    Now a thin alias for ``backend_mode("reference")``: the registry
    patches the optimized methods back to their reference versions,
    and the mode hook above disables the trace-stream cache, the
    experiment cache, and the compiled-pattern memo — i.e. restores
    the seed repo's execution profile — so end-to-end speedups can be
    measured in-process against a faithful baseline.  Results must be
    byte-identical either way; the perf harness asserts that too.
    """
    with backend_mode("reference"):
        yield
