"""Multi-byte string accelerator (Section 4.4).

One generalized datapath supports the whole string-function family by
composing shared sub-blocks (Figure 10):

* **ASCII compare** — a matching matrix whose rows hold pattern bytes
  (or, for 6 rows, *inequality* bounds for ranges) and whose columns
  are the bytes of the current subject block; populated combinationally
  each cycle.
* **Diagonal AND** — multi-character matches are found by ANDing the
  matrix along diagonals (position i matches pattern byte r at row r).
* **Priority encoder** — index of the first valid match.
* **Output logic / shifting** — substituted characters are written to
  the aligned result string.
* **Glue buffering** — the previous block's matrix tail is carried
  across block boundaries so matches spanning blocks are not lost.

The model processes ``block_bytes`` (64) of subject per invocation in
``cycles_per_block`` (3) cycles at 2 GHz, the paper's synthesized
figure, and computes *real* results — every operation is checked
against Python string semantics in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.common.stats import StatRegistry
from repro.regex.charset import CharSet


@lru_cache(maxsize=256)
def _byte_view(subject: str) -> bytes | None:
    """latin-1 view of ``subject`` (ord(ch) == byte), or None.

    Code points above 255 cannot appear in the matching matrix's byte
    rows; such subjects fall back to the per-character path, which is
    bit-for-bit the original implementation.
    """
    try:
        return subject.encode("latin-1")
    except UnicodeEncodeError:
        return None


@lru_cache(maxsize=1024)
def _row_tables(rows: tuple[tuple[int, int], ...]) -> tuple[bytes, ...]:
    """Per-row 256-entry membership tables for ``bytes.translate``.

    ``table[b] == 1`` iff ``lo <= b <= hi`` — translating a block
    through a row's table yields that row of the matching matrix as a
    bytes object (the hardware populates the row combinationally; the
    model now does it in one C-level call instead of a Python loop).
    """
    tables = []
    for lo, hi in rows:
        table = bytearray(256)
        for b in range(max(0, lo), min(hi, 255) + 1):
            table[b] = 1
        tables.append(bytes(table))
    return tuple(tables)


@lru_cache(maxsize=1024)
def _class_table(mask: int) -> bytes:
    """256-entry membership table for a :class:`CharSet` bitmask."""
    return bytes(1 if (mask >> b) & 1 else 0 for b in range(256))


@lru_cache(maxsize=1024)
def _exact_rows(pattern: str) -> tuple[tuple[int, int], ...]:
    """Memoized pattern → matrix-row compilation (exact-match rows)."""
    return MatrixConfigState.exact(pattern).rows


@lru_cache(maxsize=64)
def _escape_transtable(escapes_items: tuple[tuple[str, str], ...]):
    """Memoized ``str.maketrans`` table for an escape map."""
    return str.maketrans(dict(escapes_items))


@dataclass
class StringAccelConfig:
    """Geometry/latency of the accelerator (paper defaults)."""

    block_bytes: int = 64       # subject bytes per invocation
    pattern_rows: int = 16      # matching-matrix rows (max pattern bytes)
    inequality_rows: int = 6    # rows supporting <=/>= compare (ranges)
    cycles_per_block: int = 3   # synthesis result @2 GHz
    setup_cycles: int = 1


@dataclass
class MatrixConfigState:
    """The strreadconfig/strwriteconfig-visible accelerator state.

    ``rows`` holds per-row predicates: either an exact byte or an
    inclusive (lo, hi) range for the inequality-capable rows.
    """

    rows: tuple[tuple[int, int], ...] = ()
    op_label: str = ""

    @staticmethod
    def exact(pattern: str, label: str = "") -> "MatrixConfigState":
        return MatrixConfigState(
            rows=tuple((ord(c), ord(c)) for c in pattern), op_label=label
        )

    @staticmethod
    def ranges(bounds: list[tuple[int, int]], label: str = "") -> "MatrixConfigState":
        return MatrixConfigState(rows=tuple(bounds), op_label=label)


@dataclass
class StringOpOutcome:
    """Result value plus the hardware cost of producing it."""

    value: object
    cycles: int
    blocks: int
    bytes_processed: int


class StringAccelerator:
    """The Section 4.4 accelerator."""

    def __init__(self, config: StringAccelConfig | None = None) -> None:
        self.config = config or StringAccelConfig()
        self.stats = StatRegistry("hwstring")
        #: current matrix configuration (context-switch save/restore)
        self._config_state = MatrixConfigState()

    # -- strreadconfig / strwriteconfig -------------------------------------------------

    def strreadconfig(self, state: MatrixConfigState) -> int:
        """Load a matrix configuration (returns cycles spent).

        No-op (1 cycle) when the requested configuration is already
        loaded — the paper populates the matrix "if it is not already
        configured."
        """
        if state == self._config_state:
            self.stats.bump("hwstring.config_reuse")
            return 1
        if len(state.rows) > self.config.pattern_rows:
            raise ValueError(
                f"pattern needs {len(state.rows)} rows; matrix has "
                f"{self.config.pattern_rows}"
            )
        ranges = sum(1 for lo, hi in state.rows if lo != hi)
        if ranges > self.config.inequality_rows:
            raise ValueError(
                f"{ranges} range rows requested; only "
                f"{self.config.inequality_rows} support inequality"
            )
        self._config_state = state
        self.stats.bump("hwstring.config_loads")
        # One cycle per 4 rows loaded from memory.
        return 1 + (len(state.rows) + 3) // 4

    def strwriteconfig(self) -> MatrixConfigState:
        """Save current configuration (before a context switch)."""
        self.stats.bump("hwstring.config_saves")
        return self._config_state

    # -- fault injection ----------------------------------------------------------------

    def inject_config_loss(self) -> None:
        """Fault hook: the matching matrix forgets its configuration.

        Results stay correct — the matrix is re-populated from memory
        by the next ``strreadconfig`` (the same path a context switch
        uses), the fault only costs the reload cycles.
        """
        self._config_state = MatrixConfigState()
        self.stats.bump("hwstring.fault_config_losses")

    # -- the matching matrix ------------------------------------------------------------

    def _matrix_for_block(
        self, block: str, rows: tuple[tuple[int, int], ...]
    ) -> list[list[bool]]:
        """ASCII-compare sub-block: rows × block-bytes match bits."""
        matrix: list[list[bool]] = []
        for lo, hi in rows:
            matrix.append([lo <= ord(ch) <= hi for ch in block])
        return matrix

    def _charge(self, op: str, nbytes: int, per_block_extra: int = 0) -> tuple[int, int]:
        """Cycle cost of scanning ``nbytes`` of subject."""
        cfg = self.config
        blocks = max(1, (nbytes + cfg.block_bytes - 1) // cfg.block_bytes)
        cycles = cfg.setup_cycles + blocks * (cfg.cycles_per_block + per_block_extra)
        self.stats.bump("hwstring.ops")
        self.stats.bump(f"hwstring.{op}.ops")
        self.stats.bump("hwstring.blocks", blocks)
        self.stats.bump("hwstring.cycles", cycles)
        self.stats.bump("hwstring.bytes", nbytes)
        return cycles, blocks

    # -- operations ----------------------------------------------------------------------

    def find(self, subject: str, pattern: str, start: int = 0) -> StringOpOutcome:
        """string_find: first index of ``pattern`` in ``subject``.

        Implemented literally on the matrix: per block, pattern rows are
        compared against the block (ASCII compare), diagonals are ANDed
        (with the previous block's tail buffered for wrap-around), and
        the priority encoder picks the first full-diagonal match.
        """
        if not pattern:
            raise ValueError("empty pattern")
        if len(pattern) > self.config.pattern_rows:
            raise ValueError("pattern exceeds matching-matrix rows")
        rows = _exact_rows(pattern)
        cfg = self.config
        m = len(pattern)
        found = -1
        scanned_to = len(subject)
        # Candidates are inserted with strictly increasing start
        # positions, so dict insertion order *is* ascending start order
        # — no per-block re-sort needed for the glue logic.
        pending: dict[int, int] = {}  # start position -> rows matched so far
        pos = start
        data = _byte_view(subject)
        tables = _row_tables(rows) if data is not None else None
        while pos < len(subject):
            block_end = pos + cfg.block_bytes
            if data is not None:
                # Byte path: each matrix row is one translate() call;
                # matrix[r][c] is 1/0, truth-equivalent to the bools.
                block = data[pos:block_end]
                matrix = [block.translate(t) for t in tables]
            else:
                block = subject[pos:block_end]
                matrix = self._matrix_for_block(block, rows)
            blen = len(block)
            # Continue candidates from the previous block (glue logic).
            for cand_start in list(pending):
                matched = pending[cand_start]
                i = 0
                while matched < m and i < blen and matrix[matched][i]:
                    matched += 1
                    i += 1
                if matched == m:
                    found = cand_start
                    break
                if i >= blen:
                    pending[cand_start] = matched  # still alive
                else:
                    del pending[cand_start]
            if found >= 0:
                scanned_to = pos + blen
                break
            pending = {
                s: r for s, r in pending.items()
                if r + blen >= m  # can never complete otherwise
            }
            # New candidates starting in this block (diagonal AND).
            row0 = matrix[0]
            if data is not None:
                # bytes.find hops between row-0 hits at C speed.
                col = row0.find(1)
                while col != -1:
                    r = 0
                    c = col
                    while r < m and c < blen and matrix[r][c]:
                        r += 1
                        c += 1
                    if r == m:
                        found = pos + col
                        break
                    if c >= blen:
                        pending[pos + col] = r
                    col = row0.find(1, col + 1)
            else:
                for col in range(blen):
                    if not row0[col]:
                        continue
                    r = 0
                    c = col
                    while r < m and c < blen and matrix[r][c]:
                        r += 1
                        c += 1
                    if r == m:
                        found = pos + col
                        break
                    if c >= blen:
                        pending[pos + col] = r
            if found >= 0:
                scanned_to = pos + blen
                break
            pos += cfg.block_bytes
        nbytes = max(0, min(scanned_to, len(subject)) - start)
        cycles, blocks = self._charge("find", nbytes)
        return StringOpOutcome(found, cycles, blocks, nbytes)

    def compare(self, a: str, b: str) -> StringOpOutcome:
        """string_compare: three-way compare, block-parallel."""
        limit = min(len(a), len(b))
        diverge = limit
        if a[:limit] != b[:limit]:
            # Chunked divergence scan: slice-compare 64 B at a time
            # (block-parallel, like the hardware), then pinpoint the
            # first differing character inside the unequal chunk.
            step = 64
            base = 0
            while base < limit:
                end = min(base + step, limit)
                if a[base:end] != b[base:end]:
                    for i in range(base, end):
                        if a[i] != b[i]:
                            diverge = i
                            break
                    break
                base = end
        value = (a > b) - (a < b)
        cycles, blocks = self._charge("compare", diverge + 1)
        return StringOpOutcome(value, cycles, blocks, diverge + 1)

    def translate(self, subject: str, mapping: dict[str, str]) -> StringOpOutcome:
        """string_translate (strtr): substitute single characters.

        Each mapped source character occupies a matrix row; output
        logic forwards the substituted byte on a row match, the
        original byte otherwise.
        """
        if len(mapping) > self.config.pattern_rows:
            raise ValueError("translate map exceeds matrix rows")
        table = str.maketrans(mapping)
        value = subject.translate(table)
        cycles, blocks = self._charge("translate", len(subject))
        return StringOpOutcome(value, cycles, blocks, len(subject))

    def _case_convert(self, subject: str, to_upper: bool) -> StringOpOutcome:
        """Case conversion via two inequality rows (the a–z / A–Z range).

        This is the paper's example of a *complex* function requiring
        ``strreadconfig``: the range bounds are not derivable from the
        source operands.
        """
        lo, hi = ("a", "z") if to_upper else ("A", "Z")
        state = MatrixConfigState.ranges(
            [(ord(lo), ord(hi))], label="toupper" if to_upper else "tolower"
        )
        config_cycles = self.strreadconfig(state)
        value = subject.upper() if to_upper else subject.lower()
        op = "toupper" if to_upper else "tolower"
        cycles, blocks = self._charge(op, len(subject))
        return StringOpOutcome(value, cycles + config_cycles, blocks, len(subject))

    def to_upper(self, subject: str) -> StringOpOutcome:
        return self._case_convert(subject, to_upper=True)

    def to_lower(self, subject: str) -> StringOpOutcome:
        return self._case_convert(subject, to_upper=False)

    def trim(self, subject: str, chars: str = " \t\n\r\0\x0b") -> StringOpOutcome:
        """string_trim: strip boundary characters (matrix row per char)."""
        if len(chars) > self.config.pattern_rows:
            raise ValueError("trim set exceeds matrix rows")
        value = subject.strip(chars)
        # Hardware scans only the stripped margins (plus one probe each).
        scanned = (len(subject) - len(value)) + 2
        cycles, blocks = self._charge("trim", scanned)
        return StringOpOutcome(value, cycles, blocks, scanned)

    def replace(self, subject: str, search: str, replacement: str) -> StringOpOutcome:
        """string_replace built on find + shifted copy-through."""
        if not search:
            raise ValueError("empty search string")
        pieces: list[str] = []
        cursor = 0
        total_cycles = 0
        total_blocks = 0
        total_bytes = 0
        while True:
            outcome = self.find(subject, search, cursor)
            total_cycles += outcome.cycles
            total_blocks += outcome.blocks
            total_bytes += outcome.bytes_processed
            idx = outcome.value
            if idx < 0:
                break
            pieces.append(subject[cursor:idx])
            pieces.append(replacement)
            cursor = idx + len(search)
        pieces.append(subject[cursor:])
        value = "".join(pieces)
        # Output shifting: one extra pass over the written bytes.
        write_cycles, write_blocks = self._charge("replace", len(value))
        return StringOpOutcome(
            value, total_cycles + write_cycles,
            total_blocks + write_blocks, total_bytes + len(value),
        )

    def find_unicode(self, subject: str, pattern: str) -> StringOpOutcome:
        """string_find over UTF-8 text (Section 4.4's Unicode note).

        "Multi-byte character sets (Unicode) can be handled by grouping
        the single-byte characters comparisons": the pattern is encoded
        to UTF-8 and matched byte-wise — a multi-byte code point simply
        occupies several adjacent matrix rows — then the byte offset is
        mapped back to a character index.  UTF-8's self-synchronization
        guarantees a byte-level match of a whole-character pattern
        always lands on a character boundary.
        """
        subject_bytes = subject.encode("utf-8")
        pattern_bytes = pattern.encode("utf-8")
        if not pattern_bytes:
            raise ValueError("empty pattern")
        if len(pattern_bytes) > self.config.pattern_rows:
            raise ValueError(
                f"UTF-8 pattern needs {len(pattern_bytes)} rows; matrix "
                f"has {self.config.pattern_rows}"
            )
        subject_latin = subject_bytes.decode("latin-1")
        pattern_latin = pattern_bytes.decode("latin-1")
        outcome = self.find(subject_latin, pattern_latin)
        byte_index = outcome.value
        if byte_index < 0:
            return outcome
        char_index = len(subject_bytes[:byte_index].decode("utf-8"))
        return StringOpOutcome(
            char_index, outcome.cycles, outcome.blocks,
            outcome.bytes_processed,
        )

    def copy(self, subject: str) -> StringOpOutcome:
        """Aligned block copy through the shifting logic.

        Backs ``substr`` extraction and concatenation writes: the
        shifting sub-block aligns the subject to the destination
        offset, one block per cycle group.
        """
        cycles, blocks = self._charge("copy", len(subject))
        return StringOpOutcome(subject, cycles, blocks, len(subject))

    def html_escape(self, subject: str, escapes: dict[str, str]) -> StringOpOutcome:
        """htmlspecialchars: matrix rows match the metacharacters,
        output logic emits the (multi-byte) entity expansions.

        Expansion makes the write side longer than the read side; the
        model charges a second pass over the written bytes.
        """
        if len(escapes) > self.config.pattern_rows:
            raise ValueError("escape map exceeds matrix rows")
        if all(len(k) == 1 for k in escapes):
            table = _escape_transtable(tuple(escapes.items()))
            value = subject.translate(table)
        else:
            # Multi-character "match" keys can never fire on a
            # per-character scan; keep the original loop for them.
            out: list[str] = []
            for ch in subject:
                out.append(escapes.get(ch, ch))
            value = "".join(out)
        read_cycles, read_blocks = self._charge("htmlescape", len(subject))
        write_cycles, write_blocks = self._charge("htmlescape", len(value))
        return StringOpOutcome(
            value, read_cycles + write_cycles,
            read_blocks + write_blocks, len(subject) + len(value),
        )

    def char_class_bitmap(
        self, subject: str, char_class: CharSet, segment_bytes: int
    ) -> StringOpOutcome:
        """Hint-vector generation for the regexp accelerator.

        Marks each ``segment_bytes`` segment that contains at least one
        character of ``char_class`` — the "may have some special
        characters" bit of Section 4.5.  Character classes wider than
        the matrix rows use the inequality rows as range comparators
        (the class is the *complement* of a few ranges, which is how
        {A-Za-z0-9_.,-} fits 6 range rows).
        """
        bits: list[bool] = []
        data = _byte_view(subject)
        if data is not None:
            # One translate() marks every special byte; per segment a
            # C-level find(1, lo, hi) answers "any special here?".
            marked = data.translate(_class_table(char_class.mask))
            n = len(subject)
            find = marked.find
            for seg_start in range(0, n, segment_bytes):
                bits.append(
                    find(1, seg_start, min(n, seg_start + segment_bytes)) != -1
                )
        else:
            for seg_start in range(0, len(subject), segment_bytes):
                chunk = subject[seg_start:seg_start + segment_bytes]
                bits.append(any(char_class.contains(c) for c in chunk))
        cycles, blocks = self._charge("charclass", len(subject))
        return StringOpOutcome(bits, cycles, blocks, len(subject))
