"""Hardware hash table with reverse translation table (Section 4.2).

The accelerator caches key→value-pointer bindings of software hash
maps.  Requests carry ``(base_address, key)``; the table hashes the
pair with a simplified hardware hash, probes ``probe_width``
consecutive entries in parallel (bounding work per lookup), and serves
GET and SET entirely in hardware on a hit.  The reverse translation
table (RTT) tracks, per map, which hardware entries belong to it — so
``Free`` invalidates a whole map in one shot, ``foreach`` can
reconstruct insertion order, and remote coherence requests can flush
exactly the affected map.

Replacement policy (paper, GET/SET description): prefer an invalid
entry, then a *clean* entry (no software involvement), then the LRU
dirty entry (requires a software writeback).

Coherence (paper, "Ensure coherence"): dirty state lives only in the
accelerator; the software map is updated on dirty evictions, on
``foreach`` flushes, and on remote-request/L2-eviction flushes, after
which a *stale flag* on the software map forces bucket-array
reconstruction on the next software access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.stats import StatRegistry


def simplified_hash(key: str, base_address: int) -> int:
    """The cheap hardware hash over (base address, key).

    The paper replaces HHVM's "overly complex" hash with a simplified
    one "without compromising its hit rate"; this xor-fold over 4-byte
    groups is the kind of function that fits one cycle of logic.

    The fold is computed over the key's latin-1 bytes with
    ``int.from_bytes`` (big-endian, exactly the per-character shift-or
    of the original loop); keys with code points above 255 take the
    equivalent slow path, since ``ord(ch) & 0xFF`` is the low byte.
    """
    h = (base_address >> 6) & 0xFFFF_FFFF
    try:
        data = key.encode("latin-1")
    except UnicodeEncodeError:
        data = bytes(ord(ch) & 0xFF for ch in key)
    for i in range(0, len(data), 4):
        h ^= int.from_bytes(data[i:i + 4], "big") + (h << 3)
        h &= 0xFFFF_FFFF
    return h


@dataclass
class _HwEntry:
    valid: bool = False
    dirty: bool = False
    key: str = ""
    base_address: int = 0
    value_ptr: Any = None
    last_access: int = 0
    insert_seq: int = 0


@dataclass
class _RttEntry:
    """Per-map tracking: back pointers + insertion order.

    ``back_pointers`` is the circular buffer of hardware entry indices
    described in the paper; ``insertion_order`` records first-insert
    sequence of keys so foreach can guarantee PHP's iteration-order
    invariant even across evictions and re-insertions.
    """

    back_pointers: list[int] = field(default_factory=list)
    write_ptr: int = 0
    insertion_order: list[str] = field(default_factory=list)
    order_index: dict[str, int] = field(default_factory=dict)


@dataclass
class HashTableConfig:
    """Geometry/latency of the accelerator (paper defaults)."""

    entries: int = 512
    probe_width: int = 4        # consecutive entries probed in parallel
    max_key_bytes: int = 24     # longer keys always fall back to software
    hash_cycles: int = 1        # simplified hash computation
    access_cycles: int = 1      # parallel probe of probe_width entries
    rtt_maps: int = 128         # maps the RTT can track concurrently
    rtt_pointers_per_map: int = 64
    #: ablation: a GET-only table (the memcached prior work [55]) sends
    #: every SET to software — §4.2 argues PHP needs SETs in hardware
    support_sets: bool = True


@dataclass
class HashOpOutcome:
    """Result of one accelerator request."""

    hit: bool
    value_ptr: Any = None
    cycles: int = 0
    #: True when the zero flag was raised and software must take over
    software_fallback: bool = False
    #: software writebacks this op forced (dirty LRU evictions)
    dirty_writebacks: int = 0


class ReverseTranslationTable:
    """RTT: map base address → hardware entries + insertion order."""

    def __init__(self, config: HashTableConfig, stats: StatRegistry) -> None:
        self.config = config
        self.stats = stats
        self._maps: dict[int, _RttEntry] = {}

    def track(self, base_address: int, entry_index: int, key: str) -> Optional[int]:
        """Record a newly inserted hardware entry for a map.

        Returns the index of a hardware entry that must be force-evicted
        because the circular buffer wrapped onto it, or None.
        """
        rtt = self._maps.get(base_address)
        if rtt is None:
            if len(self._maps) >= self.config.rtt_maps:
                # Untracked map: accelerator refuses the insert upstream.
                return -1
            rtt = _RttEntry()
            self._maps[base_address] = rtt
        victim: Optional[int] = None
        if len(rtt.back_pointers) < self.config.rtt_pointers_per_map:
            rtt.back_pointers.append(entry_index)
        else:
            victim = rtt.back_pointers[rtt.write_ptr]
            rtt.back_pointers[rtt.write_ptr] = entry_index
            self.stats.bump("rtt.wraps")
        rtt.write_ptr = (rtt.write_ptr + 1) % self.config.rtt_pointers_per_map
        if key not in rtt.order_index:
            rtt.order_index[key] = len(rtt.insertion_order)
            rtt.insertion_order.append(key)
        return victim

    def note_key(self, base_address: int, key: str) -> bool:
        """Record a software-path insert in the map's insertion order.

        The zero-flag fallback handler calls this when a SET bypasses
        the hardware (oversized key): the RTT still needs the key's
        position so ``foreach`` can reproduce PHP's iteration order.
        Returns False when the map is not (and cannot become) tracked.
        """
        rtt = self._maps.get(base_address)
        if rtt is None:
            if len(self._maps) >= self.config.rtt_maps:
                return False
            rtt = _RttEntry()
            self._maps[base_address] = rtt
        if key not in rtt.order_index:
            rtt.order_index[key] = len(rtt.insertion_order)
            rtt.insertion_order.append(key)
        return True

    def untrack(self, base_address: int, entry_index: int) -> None:
        """Invalidate one back pointer (entry evicted)."""
        rtt = self._maps.get(base_address)
        if rtt is None:
            return
        try:
            pos = rtt.back_pointers.index(entry_index)
        except ValueError:
            return
        rtt.back_pointers[pos] = -1

    def entries_of(self, base_address: int) -> list[int]:
        rtt = self._maps.get(base_address)
        if rtt is None:
            return []
        return [bp for bp in rtt.back_pointers if bp >= 0]

    def insertion_order(self, base_address: int) -> list[str]:
        rtt = self._maps.get(base_address)
        return list(rtt.insertion_order) if rtt else []

    def drop_map(self, base_address: int) -> None:
        self._maps.pop(base_address, None)

    def drop_all(self) -> int:
        """Forget every tracked map (fault-injection storms)."""
        dropped = len(self._maps)
        self._maps.clear()
        return dropped

    @property
    def tracked_maps(self) -> int:
        return len(self._maps)


class HardwareHashTable:
    """The Section 4.2 accelerator."""

    def __init__(self, config: HashTableConfig | None = None) -> None:
        self.config = config or HashTableConfig()
        self.stats = StatRegistry("hwhash")
        self._entries = [_HwEntry() for _ in range(self.config.entries)]
        self.rtt = ReverseTranslationTable(self.config, self.stats)
        self._clock = 0
        self._seq = 0
        #: start slot → probe window; a window is a pure function of
        #: the start slot and the (fixed) geometry, so there are only
        #: ``entries`` possible windows and the list objects are safe
        #: to share — no caller mutates them.  Keying by slot (not by
        #: (key, base) pair) keeps the cache effective even when every
        #: request carries a distinct key.
        self._windows: list[list[int] | None] = [None] * self.config.entries

    # -- probing ------------------------------------------------------------------

    def _probe_window(self, key: str, base_address: int) -> list[int]:
        # Inlined simplified_hash: the fold below is byte-identical to
        # the module-level function (and to the reference per-char
        # loop), hoisted here to avoid a call on the hottest path.
        h = (base_address >> 6) & 0xFFFF_FFFF
        try:
            data = key.encode("latin-1")
        except UnicodeEncodeError:
            data = bytes(ord(ch) & 0xFF for ch in key)
        for i in range(0, len(data), 4):
            h ^= int.from_bytes(data[i:i + 4], "big") + (h << 3)
            h &= 0xFFFF_FFFF
        entries = self.config.entries
        start = h % entries
        window = self._windows[start]
        if window is None:
            window = [
                (start + i) % entries
                for i in range(min(self.config.probe_width, entries))
            ]
            self._windows[start] = window
        return window

    def _find(self, key: str, base_address: int) -> Optional[int]:
        for idx in self._probe_window(key, base_address):
            e = self._entries[idx]
            if e.valid and e.base_address == base_address and e.key == key:
                return idx
        return None

    # -- GET / SET ------------------------------------------------------------------

    def get(self, key: str, base_address: int) -> HashOpOutcome:
        """GET request: hardware lookup, zero flag on miss."""
        self._clock += 1
        self.stats.bump("hwhash.gets")
        cycles = self.config.hash_cycles + self.config.access_cycles
        if len(key) > self.config.max_key_bytes:
            self.stats.bump("hwhash.long_key_bypass")
            return HashOpOutcome(False, cycles=cycles, software_fallback=True)
        idx = self._find(key, base_address)
        if idx is None:
            self.stats.bump("hwhash.get_misses")
            return HashOpOutcome(False, cycles=cycles, software_fallback=True)
        entry = self._entries[idx]
        entry.last_access = self._clock
        self.stats.bump("hwhash.get_hits")
        return HashOpOutcome(True, value_ptr=entry.value_ptr, cycles=cycles)

    def set(self, key: str, base_address: int, value_ptr: Any) -> HashOpOutcome:
        """SET request: silent hardware update; never misses.

        A SET updates the hardware table without touching memory; the
        entry is marked dirty.  The zero flag (software fallback) rises
        only for oversized keys or when the RTT cannot track the map.
        Bypassed keys are still noted in the RTT so ``foreach`` keeps
        PHP's iteration-order invariant across mixed hw/sw inserts.
        """
        self._clock += 1
        self.stats.bump("hwhash.sets")
        cycles = self.config.hash_cycles + self.config.access_cycles
        if not self.config.support_sets:
            # GET-only ablation: the zero flag sends SETs to software,
            # and the software-updated value supersedes any cached one.
            self.stats.bump("hwhash.set_bypass")
            idx = self._find(key, base_address)
            if idx is not None:
                self._entries[idx] = _HwEntry()
            self.rtt.note_key(base_address, key)
            return HashOpOutcome(False, cycles=cycles, software_fallback=True)
        if len(key) > self.config.max_key_bytes:
            self.stats.bump("hwhash.long_key_bypass")
            self.rtt.note_key(base_address, key)
            return HashOpOutcome(False, cycles=cycles, software_fallback=True)
        idx = self._find(key, base_address)
        if idx is not None:
            entry = self._entries[idx]
            entry.value_ptr = value_ptr
            entry.dirty = True
            entry.last_access = self._clock
            self.stats.bump("hwhash.set_hits")
            return HashOpOutcome(True, cycles=cycles)
        outcome = self._insert(key, base_address, value_ptr, dirty=True)
        if outcome.software_fallback:
            return outcome
        self.stats.bump("hwhash.set_inserts")
        return outcome

    def insert_clean(self, key: str, base_address: int, value_ptr: Any) -> HashOpOutcome:
        """Software places a freshly fetched pair after a GET miss."""
        self._clock += 1
        if len(key) > self.config.max_key_bytes:
            self.stats.bump("hwhash.long_key_bypass")
            self.rtt.note_key(base_address, key)
            return HashOpOutcome(False, cycles=1, software_fallback=True)
        outcome = self._insert(key, base_address, value_ptr, dirty=False)
        if not outcome.software_fallback:
            self.stats.bump("hwhash.fill_inserts")
        return outcome

    def _insert(
        self, key: str, base_address: int, value_ptr: Any, dirty: bool
    ) -> HashOpOutcome:
        window = self._probe_window(key, base_address)
        cycles = self.config.hash_cycles + self.config.access_cycles
        dirty_writebacks = 0

        # Priority: invalid entry, then clean entry, then LRU dirty.
        target: Optional[int] = None
        for idx in window:
            if not self._entries[idx].valid:
                target = idx
                break
        if target is None:
            clean = [i for i in window if not self._entries[i].dirty]
            if clean:
                target = min(clean, key=lambda i: self._entries[i].last_access)
                self.stats.bump("hwhash.clean_evictions")
                self.rtt.untrack(
                    self._entries[target].base_address, target
                )
            else:
                target = min(window, key=lambda i: self._entries[i].last_access)
                self.stats.bump("hwhash.dirty_evictions")
                dirty_writebacks = 1
                self._writeback(target)
                self.rtt.untrack(
                    self._entries[target].base_address, target
                )

        victim = self.rtt.track(base_address, target, key)
        if victim == -1:
            # RTT cannot track this map: refuse, fall back to software.
            self.stats.bump("hwhash.rtt_full_bypass")
            return HashOpOutcome(False, cycles=cycles, software_fallback=True)
        if victim is not None:
            # Circular buffer wrapped: evict the overwritten entry.
            if self._entries[victim].valid:
                if self._entries[victim].dirty:
                    dirty_writebacks += 1
                    self._writeback(victim)
                self._entries[victim] = _HwEntry()

        self._seq += 1
        self._entries[target] = _HwEntry(
            valid=True, dirty=dirty, key=key, base_address=base_address,
            value_ptr=value_ptr, last_access=self._clock, insert_seq=self._seq,
        )
        return HashOpOutcome(
            True, cycles=cycles + 1, dirty_writebacks=dirty_writebacks
        )

    # -- writeback plumbing -------------------------------------------------------------

    #: callback(base_address, key, value_ptr) installed by the dispatcher;
    #: applies a dirty value to the software map and marks it stale.
    writeback_handler = None

    def _writeback(self, idx: int) -> None:
        entry = self._entries[idx]
        self.stats.bump("hwhash.writebacks")
        if self.writeback_handler is not None and entry.valid:
            self.writeback_handler(entry.base_address, entry.key, entry.value_ptr)

    # -- Free / foreach / coherence -------------------------------------------------------

    def free_map(self, base_address: int) -> int:
        """Free request: RTT-driven bulk invalidate, no writebacks.

        Short-lived maps die here "without ever being written back to
        the memory."  Returns invalidated entry count (≈ RTT cycles).
        """
        self.stats.bump("hwhash.frees")
        indices = self.rtt.entries_of(base_address)
        invalidated = 0
        for idx in indices:
            entry = self._entries[idx]
            if entry.valid and entry.base_address == base_address:
                self._entries[idx] = _HwEntry()
                invalidated += 1
        self.rtt.drop_map(base_address)
        self.stats.bump("hwhash.free_invalidated", invalidated)
        return invalidated

    def flush_map(self, base_address: int) -> int:
        """Write back and invalidate one map (coherence / foreach).

        Used for remote coherence requests forwarded via the RTT and
        for L2-eviction inclusion enforcement.  Returns entries flushed.
        """
        self.stats.bump("hwhash.coherence_flushes")
        indices = self.rtt.entries_of(base_address)
        flushed = 0
        for idx in indices:
            entry = self._entries[idx]
            if entry.valid and entry.base_address == base_address:
                if entry.dirty:
                    self._writeback(idx)
                self._entries[idx] = _HwEntry()
                flushed += 1
        self.rtt.drop_map(base_address)
        return flushed

    def foreach_sync(self, base_address: int) -> tuple[list[str], int]:
        """Prepare a foreach: write back dirty values, report order.

        Returns ``(insertion_order, dirty_entries_synced)``.  The
        insertion order comes from the RTT; the values remain cached
        (entries become clean, not invalid).
        """
        self.stats.bump("hwhash.foreach_syncs")
        synced = 0
        for idx in self.rtt.entries_of(base_address):
            entry = self._entries[idx]
            if entry.valid and entry.base_address == base_address and entry.dirty:
                self._writeback(idx)
                entry.dirty = False
                synced += 1
        return self.rtt.insertion_order(base_address), synced

    # -- fault injection ---------------------------------------------------------------------

    def inject_invalidation_storm(self) -> int:
        """Fault hook: every entry is invalidated at once.

        Models a soft-error scrub or power-glitch recovery that wipes
        the accelerator array.  Correctness rides on the Section 4.2
        coherence fallback: dirty entries are written back through the
        normal stale-flag path before invalidation, so the software
        maps stay authoritative and service continues (slower) in
        software.  Returns the number of entries invalidated.
        """
        self.stats.bump("hwhash.fault_storms")
        invalidated = 0
        for idx, entry in enumerate(self._entries):
            if not entry.valid:
                continue
            if entry.dirty:
                self._writeback(idx)
                self.stats.bump("hwhash.fault_dirty_writebacks")
            self._entries[idx] = _HwEntry()
            invalidated += 1
        self.rtt.drop_all()
        self.stats.bump("hwhash.fault_invalidated", invalidated)
        return invalidated

    # -- derived metrics ---------------------------------------------------------------------

    def hit_rate(self) -> float:
        """GET hits + absorbed SETs over all GET/SET requests (Fig 7)."""
        gets = self.stats.get("hwhash.gets")
        sets = self.stats.get("hwhash.sets")
        if gets + sets == 0:
            return 0.0
        get_hits = self.stats.get("hwhash.get_hits")
        absorbed_sets = (
            self.stats.get("hwhash.set_hits")
            + self.stats.get("hwhash.set_inserts")
        )
        return (get_hits + absorbed_sets) / (gets + sets)

    def occupancy(self) -> int:
        return sum(1 for e in self._entries if e.valid)
