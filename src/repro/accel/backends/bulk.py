"""``bulk``: numpy-vectorized scanning kernels.

"Scanning HTML at Tens of Gigabytes per Second on ARM Processors"
shows the classifier/DFA technique the paper's string and regex
accelerators model can be realized in software as *batched table
lookups*: translate every input byte through a precomputed 256-entry
table in one wide operation, then combine the per-byte classifications
with shifted ANDs instead of walking characters in a loop.  This
backend applies that idea with numpy as the vector unit:

* ``find`` classifies geometrically growing batches of the subject
  (one 64-byte accelerator block up to 16) through the first and last
  pattern rows' 256-entry membership tables; the shifted AND yields a
  candidate mask whose survivors feed the exact match confirmer.
* ``char_class_bitmap`` / ``html_escape`` / ``compare`` reduce whole
  subjects through one table lookup + segment reduction.
* the hash probe folds long keys 4 bytes at a time via
  ``np.frombuffer`` big-endian word views (the fold itself is
  sequential in ``h``, so only the byte→word regrouping is batched;
  keys below 32 bytes take the optimized loop, which wins there).
* ``search`` / ``state_after`` classify the text once
  (``class_of[bytes]`` in one vector op) and prune candidate starts
  whose first character maps the start state to DEAD without entering
  the per-candidate loop.

Every kernel is byte-identical to the reference implementation on
every input — including cycle/block charges, examined-character
counts, and stats bumps — and degrades per call to the ``optimized``
implementation when numpy is absent or the input has code points
above latin-1 (the registry keeps the backend selectable either way).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from repro.accel.registry import DEFAULT_BACKEND, REGISTRY
from repro.accel.string_accel import (
    StringOpOutcome,
    _byte_view,
    _class_table,
    _escape_transtable,
    _exact_rows,
    _row_tables,
)
from repro.regex.dfa import DEAD
from repro.regex.engine import MatchResult, ScanOutcome

try:
    import numpy as np
except ImportError:  # pragma: no cover — exercised by monkeypatching
    np = None

#: Candidate-mask batch: this many accelerator blocks per vector pass.
#: Large enough to amortize per-call numpy overhead on miss-heavy
#: scans, small enough to keep early matches from paying for the tail.
_BATCH_BLOCKS = 16


def _numpy_missing() -> Optional[str]:
    """Why the backend would degrade here (None = full strength)."""
    return None if np is not None else "numpy is not installed"


@lru_cache(maxsize=None)
def _optimized(kernel: str):
    """The graceful-degradation target for one kernel.

    Cached: the ``optimized`` implementations are captured from the
    class dicts once at registry load and never change, and this
    lookup sits on per-call delegation paths (e.g. every short-key
    hash probe).
    """
    return REGISTRY.resolve(kernel, DEFAULT_BACKEND)


# -- precomputed vector tables -----------------------------------------------------


@lru_cache(maxsize=1024)
def _np_row_tables(rows: tuple[tuple[int, int], ...]):
    """Per-row 256-entry membership tables as one (rows, 256) array."""
    return np.frombuffer(
        b"".join(_row_tables(rows)), dtype=np.uint8
    ).reshape(len(rows), 256)


@lru_cache(maxsize=1024)
def _np_class_table(mask: int):
    """256-entry CharSet membership table as a vector."""
    return np.frombuffer(_class_table(mask), dtype=np.uint8)


@lru_cache(maxsize=64)
def _escape_gate_table(keys: tuple[str, ...]) -> bytes:
    """256-entry "is an escaped metacharacter" translate table."""
    table = bytearray(256)
    for key in keys:
        code = ord(key)
        if code < 256:
            table[code] = 1
    return bytes(table)


@lru_cache(maxsize=1024)
def _np_find_tables(pattern: str):
    """Head/tail row tables + confirm bytes, prepared per pattern.

    ``None`` when the pattern has code points above latin-1 (it can
    never occur in a byte-viewable subject; the caller delegates to
    keep the charge accounting on one code path).
    """
    try:
        pbytes = pattern.encode("latin-1")
    except UnicodeEncodeError:
        return None
    tables = _np_row_tables(_exact_rows(pattern))
    return tables[0], tables[len(pattern) - 1], pbytes


class _FsmVectors:
    """Per-FSM vector tables, cached on the FsmTable instance."""

    __slots__ = ("class_of", "start_row")

    def __init__(self, fsm) -> None:
        self.class_of = np.array(fsm.class_of, dtype=np.intp)
        self.start_row = np.array(
            fsm.transitions[fsm.start], dtype=np.intp
        )


def _fsm_vectors(fsm) -> _FsmVectors:
    cached = getattr(fsm, "_bulk_vectors", None)
    if cached is None:
        cached = _FsmVectors(fsm)
        fsm._bulk_vectors = cached
    return cached


# -- string kernels ----------------------------------------------------------------


def bulk_find(
    self, subject: str, pattern: str, start: int = 0
) -> StringOpOutcome:
    """string_find on a vectorized candidate mask.

    The first and last pattern rows' 256-entry membership tables
    classify a batch of subject bytes in one lookup each; ANDing the
    last row shifted by ``m - 1`` leaves candidate starts, which the
    match confirmer checks exactly against the pattern bytes.  Batches
    grow geometrically from one 64-byte block so early matches stay
    cheap while miss-heavy scans amortize the vector calls.  The cycle
    charge reproduces the reference block accounting in closed form:
    the scan stops with the 64-byte block containing the match's last
    character.
    """
    if np is None:
        return _optimized("string.find")(self, subject, pattern, start)
    data = _byte_view(subject)
    if data is None:
        return _optimized("string.find")(self, subject, pattern, start)
    if not pattern:
        raise ValueError("empty pattern")
    if len(pattern) > self.config.pattern_rows:
        raise ValueError("pattern exceeds matching-matrix rows")
    cfg = self.config
    m = len(pattern)
    n = len(subject)
    found = -1
    last = n - m + 1  # exclusive bound on candidate starts
    if start < last:
        prepared = _np_find_tables(pattern)
        if prepared is None:
            return _optimized("string.find")(self, subject, pattern, start)
        head, tail, pbytes = prepared
        arr = np.frombuffer(data, dtype=np.uint8)
        # Geometric batch growth: early matches cost one small batch;
        # miss-heavy scans quickly reach wide batches where the vector
        # lookups amortize.
        step = cfg.block_bytes * 4
        max_step = cfg.block_bytes * _BATCH_BLOCKS
        pos = start
        while pos < last:
            stop = min(pos + step, last)
            span = stop - pos
            # Candidate mask from the first and last pattern rows
            # (one np.take through each 256-entry table); survivors
            # are confirmed exactly against the pattern bytes.
            valid = head[arr[pos:pos + span]]
            if m > 1:
                valid = valid & tail[arr[pos + m - 1:pos + m - 1 + span]]
            for hit in np.flatnonzero(valid).tolist():
                if data.startswith(pbytes, pos + hit):
                    found = pos + hit
                    break
            if found >= 0:
                break
            pos = stop
            step = min(step * 4, max_step)
    if found < 0:
        nbytes = max(0, n - start)
    else:
        # The reference scans whole blocks from ``start`` and stops
        # with the block holding the match's last character.
        block_index = (found + m - 1 - start) // cfg.block_bytes
        nbytes = min((block_index + 1) * cfg.block_bytes, n - start)
    cycles, blocks = self._charge("find", nbytes)
    return StringOpOutcome(found, cycles, blocks, nbytes)


def bulk_compare(self, a: str, b: str) -> StringOpOutcome:
    """string_compare: whole-subject vector divergence scan."""
    if np is None:
        return _optimized("string.compare")(self, a, b)
    da = _byte_view(a)
    db = _byte_view(b)
    if da is None or db is None:
        return _optimized("string.compare")(self, a, b)
    limit = min(len(a), len(b))
    diverge = limit
    if a[:limit] != b[:limit]:
        xa = np.frombuffer(da, dtype=np.uint8)[:limit]
        xb = np.frombuffer(db, dtype=np.uint8)[:limit]
        diverge = int(np.flatnonzero(xa != xb)[0])
    value = (a > b) - (a < b)
    cycles, blocks = self._charge("compare", diverge + 1)
    return StringOpOutcome(value, cycles, blocks, diverge + 1)


def bulk_html_escape(
    self, subject: str, escapes: dict[str, str]
) -> StringOpOutcome:
    """htmlspecialchars: bulk "any metacharacter?" gate + translate.

    One pass through a 256-entry translate table answers whether any
    byte needs escaping; clean subjects (the common case for cached
    fragments) skip the per-character escape pass entirely.
    """
    if len(escapes) > self.config.pattern_rows:
        raise ValueError("escape map exceeds matrix rows")
    data = _byte_view(subject) if np is not None else None
    if np is None or data is None or any(len(k) != 1 for k in escapes):
        return _optimized("string.html_escape")(self, subject, escapes)
    gate = _escape_gate_table(tuple(sorted(escapes)))
    # Geometric gate: typical dirty subjects reveal a metacharacter in
    # the first few blocks; clean subjects pay a few C-level table
    # passes instead of the per-character escape pass.
    dirty = False
    pos, step = 0, 256
    while pos < len(data):
        if 1 in data[pos:pos + step].translate(gate):
            dirty = True
            break
        pos += step
        step *= 4
    if dirty:
        value = subject.translate(
            _escape_transtable(tuple(escapes.items()))
        )
    else:
        value = subject
    read_cycles, read_blocks = self._charge("htmlescape", len(subject))
    write_cycles, write_blocks = self._charge("htmlescape", len(value))
    return StringOpOutcome(
        value, read_cycles + write_cycles,
        read_blocks + write_blocks, len(subject) + len(value),
    )


def bulk_char_class_bitmap(
    self, subject: str, char_class, segment_bytes: int
) -> StringOpOutcome:
    """Hint-vector generation as one lookup + segment reduction."""
    if np is None:
        return _optimized("string.char_class_bitmap")(
            self, subject, char_class, segment_bytes
        )
    data = _byte_view(subject)
    if data is None:
        return _optimized("string.char_class_bitmap")(
            self, subject, char_class, segment_bytes
        )
    n = len(subject)
    if n == 0:
        bits: list[bool] = []
    else:
        marked = _np_class_table(char_class.mask)[
            np.frombuffer(data, dtype=np.uint8)
        ]
        pad = (-n) % segment_bytes
        if pad:
            marked = np.concatenate(
                [marked, np.zeros(pad, dtype=np.uint8)]
            )
        bits = marked.reshape(-1, segment_bytes).any(axis=1).tolist()
    cycles, blocks = self._charge("charclass", n)
    return StringOpOutcome(bits, cycles, blocks, n)


# -- hash kernel -------------------------------------------------------------------


#: Keys shorter than this fold faster in the plain-python loop; the
#: vector regrouping engages only where it amortizes its call cost.
#: (With the default 24-byte hardware key cap this means the probe
#: path effectively runs the optimized fold; configs that raise
#: ``max_key_bytes`` get the batched fold for their long keys.)
_HASH_VECTOR_MIN_BYTES = 32


def bulk_probe_window(
    self, key: str, base_address: int
) -> list[int]:
    """Probe window with the key fold regrouped via ``np.frombuffer``.

    The xor-fold is sequential in ``h`` (each group's addend depends
    on the previous fold), so the vector unit batches the byte→word
    regrouping: all full big-endian 4-byte groups come from one
    ``>u4`` view, the tail group from ``int.from_bytes`` (zero-padding
    the tail would change the fold).
    """
    if np is None or len(key) < _HASH_VECTOR_MIN_BYTES:
        return _optimized("hash.probe_window")(self, key, base_address)
    h = (base_address >> 6) & 0xFFFF_FFFF
    try:
        data = key.encode("latin-1")
    except UnicodeEncodeError:
        data = bytes(ord(ch) & 0xFF for ch in key)
    full = len(data) & ~3
    groups = (
        np.frombuffer(data[:full], dtype=">u4").tolist() if full else []
    )
    if full < len(data):
        groups.append(int.from_bytes(data[full:], "big"))
    for group in groups:
        h ^= group + (h << 3)
        h &= 0xFFFF_FFFF
    entries = self.config.entries
    start = h % entries
    window = self._windows[start]
    if window is None:
        window = [
            (start + i) % entries
            for i in range(min(self.config.probe_width, entries))
        ]
        self._windows[start] = window
    return window


# -- regex kernels -----------------------------------------------------------------


def bulk_search(
    self, text: str, start: int = 0, start_limit: Optional[int] = None
) -> ScanOutcome:
    """Leftmost-longest search with vectorized candidate pruning.

    The text is classified once (``class_of[bytes]`` in one vector
    lookup); candidate starts whose first character maps the start
    state to DEAD are skipped with exactly one examined-character
    charge, without entering the per-candidate loop.  Anchored
    patterns, accepting start states, and dead start states take the
    optimized path — pruning cannot help them, and delegating keeps
    the examined-character accounting trivially identical.
    """
    fsm = self.fsm
    if (
        np is None
        or self.anchored_start
        or fsm.is_accepting(fsm.start)
        or not fsm.is_live(fsm.start)
    ):
        return _optimized("regex.search")(self, text, start, start_limit)
    data = _byte_view(text)
    if data is None:
        return _optimized("regex.search")(self, text, start, start_limit)
    self.stats.bump("regex.calls")
    n = len(text)
    limit = n + 1 if start_limit is None else min(start_limit, n + 1)
    stop_cand = min(limit, n)
    total_examined = 0
    if start < stop_cand:
        vectors = _fsm_vectors(fsm)
        cls = vectors.class_of[
            np.frombuffer(data, dtype=np.uint8)[start:]
        ]
        cls_list = cls.tolist()
        first_list = vectors.start_row[cls[:stop_cand - start]].tolist()
        transitions = fsm.transitions
        accepting = fsm.accepting
        live = fsm.live
        anchored_end = self.anchored_end
        for s in range(start, stop_cand):
            state = first_list[s - start]
            total_examined += 1
            if state == DEAD:
                continue
            pos = s + 1
            best: Optional[int] = pos if state in accepting else None
            while pos < n and live[state]:
                state = transitions[state][cls_list[pos - start]]
                total_examined += 1
                pos += 1
                if state == DEAD:
                    break
                if state in accepting:
                    best = pos
            if anchored_end and best is not None and best != n:
                best = None
            if best is not None:
                self._count(total_examined)
                return ScanOutcome(
                    MatchResult(s, best), total_examined
                )
    self._count(total_examined)
    return ScanOutcome(None, total_examined)


def bulk_state_after(
    self, text: str, start: int = 0, length: Optional[int] = None
) -> tuple[int, Optional[int]]:
    """Anchored prefix run over a pre-classified character vector."""
    if np is None:
        return _optimized("regex.state_after")(self, text, start, length)
    data = _byte_view(text)
    if data is None:
        return _optimized("regex.state_after")(self, text, start, length)
    fsm = self.fsm
    transitions = fsm.transitions
    accepting = fsm.accepting
    state = fsm.start
    last_accept = start if state in accepting else None
    stop = len(text) if length is None else min(len(text), start + length)
    examined = 0
    if start < stop:
        cls_list = _fsm_vectors(fsm).class_of[
            np.frombuffer(data, dtype=np.uint8)[start:stop]
        ].tolist()
        for pos in range(start, stop):
            state = transitions[state][cls_list[pos - start]]
            examined += 1
            if state == DEAD:
                self._count(examined)
                return DEAD, last_accept
            if state in accepting:
                last_accept = pos + 1
    self._count(examined)
    return state, last_accept


# -- registration ------------------------------------------------------------------

REGISTRY.register_backend("bulk", unavailable_reason=_numpy_missing)
REGISTRY.register("string.find", "bulk", bulk_find)
REGISTRY.register("string.compare", "bulk", bulk_compare)
REGISTRY.register("string.html_escape", "bulk", bulk_html_escape)
REGISTRY.register("string.char_class_bitmap", "bulk",
                  bulk_char_class_bitmap)
REGISTRY.register("hash.probe_window", "bulk", bulk_probe_window)
REGISTRY.register("regex.search", "bulk", bulk_search)
REGISTRY.register("regex.state_after", "bulk", bulk_state_after)
# regex.resume and the heap kernels are intentionally unregistered:
# the registry falls back to the optimized implementations for them.
