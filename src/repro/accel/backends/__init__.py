"""Pluggable accelerator backends, one module per variant.

Every module in this package self-registers with
:data:`repro.accel.registry.REGISTRY` at import time;
``BackendRegistry._ensure_loaded`` imports the whole package via
``pkgutil``, so dropping a new variant here (PIM-batched,
tiered-memory, ...) requires zero edits anywhere else — the
conformance fuzzer, perf harness, and CLI enumerate backends through
the registry.
"""
