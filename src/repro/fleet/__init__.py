"""Multi-node cluster simulator with a sharded object-cache tier.

The paper argues fleet economics — "even small improvements in
performance or utilization will translate into immense cost savings" —
and this subsystem is where the repo asks fleet-scale questions: N
per-node server models (mixing accelerated and software-only boxes)
behind a pluggable load balancer, shielded by a consistent-hashed
object cache, under deterministic invalidation storms.

* :mod:`repro.fleet.topology`   — node specs and fleet shapes
* :mod:`repro.fleet.balancer`   — round-robin / least-outstanding / p2c
* :mod:`repro.fleet.cache_tier` — consistent hashing, LRU, TTL, storms
* :mod:`repro.fleet.simulator`  — the event-driven composition
* :mod:`repro.fleet.overload`   — flash crowds, retry storms, recovery
* :mod:`repro.fleet.report`     — fleet-level metrics
"""

from repro.fleet.balancer import (
    BALANCERS,
    BalancerPolicy,
    LeastOutstanding,
    PowerOfTwoChoices,
    RoundRobin,
    make_balancer,
)
from repro.fleet.cache_tier import (
    CacheShard,
    CacheTierConfig,
    ObjectCacheTier,
    ShardRing,
    stable_hash64,
)
from repro.fleet.overload import (
    OverloadConfig,
    OverloadReport,
    OverloadSimulator,
    defended_config,
    headline_scenarios,
    min_nodes_to_survive,
    overload_topology,
    run_overload,
    run_overload_matrix,
    undefended_config,
)
from repro.fleet.report import FleetReport, NodeUtilization
from repro.fleet.simulator import (
    FleetConfig,
    FleetSimulator,
    fleet_slo_capacity,
    min_nodes_for_slo,
    run_fleet,
    run_fleet_matrix,
)
from repro.fleet.topology import (
    FleetTopology,
    NodeSpec,
    homogeneous_fleet,
    mixed_fleet,
)

__all__ = [
    "BALANCERS", "BalancerPolicy", "LeastOutstanding",
    "PowerOfTwoChoices", "RoundRobin", "make_balancer",
    "CacheShard", "CacheTierConfig", "ObjectCacheTier", "ShardRing",
    "stable_hash64",
    "OverloadConfig", "OverloadReport", "OverloadSimulator",
    "defended_config", "headline_scenarios", "min_nodes_to_survive",
    "overload_topology", "run_overload", "run_overload_matrix",
    "undefended_config",
    "FleetReport", "NodeUtilization",
    "FleetConfig", "FleetSimulator", "fleet_slo_capacity",
    "min_nodes_for_slo", "run_fleet", "run_fleet_matrix",
    "FleetTopology", "NodeSpec", "homogeneous_fleet", "mixed_fleet",
]
