"""Sharded object-cache tier: consistent hashing + per-shard LRU.

Production PHP fleets put a memcached-style object cache between the
load balancer and the render tier; a hit skips the whole PHP render
(the work the paper accelerates) and costs only a network round trip.
This module models that tier:

* **Consistent hashing** (:class:`ShardRing`): keys map to shards via
  a ring of virtual points (a stable blake2b hash, so placement
  reproduces across processes).  Adding or removing one of ``M``
  shards remaps only ~``1/M`` of the key space — the property that
  makes cache scale-out cheap, and which ``tests/test_fleet.py``
  asserts.
* **Per-shard LRU with TTL** (:class:`CacheShard`): bounded capacity,
  least-recently-used eviction, entries expire ``ttl`` cycles after
  the fill.  Expired entries count as misses (and are dropped on
  touch), so a TTL storm converts directly into backend load.
* **Invalidation storms** (:meth:`ObjectCacheTier.invalidate_shard`):
  the fleet simulator reuses the PR-1 fault-schedule machinery to
  flush shards at deterministic times, modeling the "cache stampede"
  failure mode where a wave of invalidations un-shields the backends.

All state transitions are synchronous and deterministic; time comes in
from the event loop, never from a clock.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass

from repro.common.stats import StatRegistry


def stable_hash64(text: str) -> int:
    """Process-stable 64-bit hash (Python's ``hash`` is salted)."""
    digest = hashlib.blake2b(
        text.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def jittered_ttl(key: str, ttl: float | None, jitter: float) -> float | None:
    """Per-key deterministic TTL spread (the stampede smear).

    A pure function of the key: ``stable_hash64`` maps it into
    ``[0, 1)`` and the lifetime shrinks by up to ``jitter`` of itself,
    so a batch of same-instant fills expires smeared instead of
    synchronized without spending any rng draws.  Shared by the
    event-driven :class:`ObjectCacheTier` (cycles) and the wall-clock
    rendered-fragment cache in :mod:`repro.serve.httpd` (seconds) —
    the unit is whatever ``ttl`` is in.
    """
    if ttl is None or jitter == 0.0:
        return ttl
    u = (stable_hash64(f"ttl#{key}") & 0xFFFF_FFFF) / 2.0 ** 32
    return ttl * (1.0 - jitter * u)


@dataclass(frozen=True)
class CacheTierConfig:
    """Shape and timing of the object-cache tier.

    Durations are in multiples of the fleet's mean backend service
    time (resolved to cycles by the simulator), mirroring the
    convention of :mod:`repro.resilience`: one config means the same
    thing across workloads whose requests differ by orders of
    magnitude in cycle cost.
    """

    shards: int = 4
    #: entries one shard can hold before LRU eviction
    shard_capacity: int = 512
    #: cycles a cache hit costs the client, × mean backend service
    hit_services: float = 0.05
    #: entry lifetime, × mean backend service (None → never expires)
    ttl_services: float | None = 200.0
    #: virtual points per shard on the consistent-hash ring
    virtual_nodes: int = 64
    #: stampede defense: per-key deterministic TTL spread as a
    #: fraction of the TTL (0.0 → every same-batch fill expires at
    #: the same instant, the mass-expiry trigger; 0.2 → expiries
    #: smear over the trailing 20% of the TTL)
    ttl_jitter: float = 0.0
    #: stale-while-revalidate window, × mean backend service: an
    #: expired entry stays servable as "stale" this long while one
    #: refresh renders in the background (None → stale == miss)
    stale_services: float | None = None
    #: stampede defense: coalesce concurrent misses for one key into
    #: a single backend render (enforced by the overload simulator;
    #: the tier only advertises the policy)
    single_flight: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        if self.shard_capacity < 1:
            raise ValueError(
                f"shard_capacity must be >= 1, got {self.shard_capacity}"
            )
        if self.hit_services <= 0:
            raise ValueError("hit_services must be positive")
        if self.ttl_services is not None and self.ttl_services <= 0:
            raise ValueError("ttl_services must be positive when set")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        if not 0.0 <= self.ttl_jitter < 1.0:
            raise ValueError(
                f"ttl_jitter must be in [0, 1), got {self.ttl_jitter}"
            )
        if self.stale_services is not None and self.stale_services <= 0:
            raise ValueError("stale_services must be positive when set")


class ShardRing:
    """Consistent-hash ring mapping string keys onto shard indices."""

    def __init__(self, shards: int, virtual_nodes: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._points: list[tuple[int, int]] = []
        self._shards: set[int] = set()
        for shard in range(shards):
            self.add_shard(shard)

    @property
    def shards(self) -> list[int]:
        return sorted(self._shards)

    def add_shard(self, shard: int) -> None:
        """Place ``virtual_nodes`` points for ``shard`` on the ring."""
        if shard in self._shards:
            raise ValueError(f"shard {shard} already on the ring")
        self._shards.add(shard)
        for v in range(self.virtual_nodes):
            self._points.append(
                (stable_hash64(f"shard-{shard}#{v}"), shard)
            )
        self._points.sort()

    def remove_shard(self, shard: int) -> None:
        """Take ``shard`` off the ring (its keys spill to neighbours)."""
        if shard not in self._shards:
            raise ValueError(f"shard {shard} not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.discard(shard)
        self._points = [p for p in self._points if p[1] != shard]

    def lookup(self, key: str) -> int:
        """The shard owning ``key``: first ring point at or after it."""
        h = stable_hash64(key)
        i = bisect_right(self._points, (h, -1))
        if i == len(self._points):
            i = 0  # wrap around the ring
        return self._points[i][1]


class CacheShard:
    """One shard: bounded LRU of key → expiry-time entries.

    The fleet simulator only tracks *presence* (a hit skips the
    backend render; no bytes exist in event-driven time), but the live
    server's rendered-fragment cache (:mod:`repro.serve.httpd`) needs
    the same LRU/TTL/stale state machine *and* the rendered bytes, so
    ``put`` optionally carries a value that lives and dies with its
    entry (evicted, expired, and flushed together).
    """

    def __init__(self, capacity: int, stats: StatRegistry) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = stats
        #: key → expiry cycle (inf when no TTL); order = LRU order
        self._entries: OrderedDict[str, float] = OrderedDict()
        #: key → cached payload, only for entries filled with a value
        self._values: dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str, now: float) -> bool:
        """True on a live hit; expired entries drop and miss."""
        expiry = self._entries.get(key)
        if expiry is None:
            return False
        if expiry <= now:
            del self._entries[key]
            self._values.pop(key, None)
            self.stats.bump("cache.expirations")
            return False
        self._entries.move_to_end(key)
        return True

    def probe(
        self, key: str, now: float, stale_cycles: float | None
    ) -> str:
        """Three-way lookup: ``"hit"``, ``"stale"``, or ``"miss"``.

        A ``"stale"`` entry has expired but sits inside the
        stale-while-revalidate window: it is still servable while one
        background refresh renders.  Entries beyond the window drop
        exactly as :meth:`get` drops them.
        """
        expiry = self._entries.get(key)
        if expiry is None:
            return "miss"
        if expiry > now:
            self._entries.move_to_end(key)
            return "hit"
        if stale_cycles is not None and now < expiry + stale_cycles:
            self._entries.move_to_end(key)
            return "stale"
        del self._entries[key]
        self._values.pop(key, None)
        self.stats.bump("cache.expirations")
        return "miss"

    def put(
        self, key: str, now: float, ttl: float | None,
        value: object | None = None,
    ) -> None:
        """Fill ``key``; evicts the LRU entry when at capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._values.pop(evicted, None)
            self.stats.bump("cache.evictions")
        self._entries[key] = now + ttl if ttl is not None else float("inf")
        if value is not None:
            self._values[key] = value

    def value_of(self, key: str) -> object | None:
        """The payload stored with ``key`` (None when presence-only)."""
        return self._values.get(key)

    def expire_all(self, now: float) -> int:
        """Mass expiry: every entry's TTL ends *now*.

        Unlike :meth:`flush` the entries stay resident, so a
        stale-while-revalidate window can still serve them — this is
        the "deploy invalidates every page at once" trigger, distinct
        from losing a shard outright.  Returns entries touched.
        """
        touched = 0
        for key, expiry in self._entries.items():
            if expiry > now:
                self._entries[key] = now
                touched += 1
        return touched

    def flush(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self._values.clear()
        return dropped


class ObjectCacheTier:
    """The full tier: ring + shards + hit/miss/storm accounting.

    The invariant the tests pin down: every :meth:`lookup` is exactly
    one hit or one miss (``cache.hits + cache.misses ==
    cache.lookups``), and the hit ratio never counts warmup traffic
    twice — the simulator decides what to record, this class only
    counts what it is asked.
    """

    def __init__(
        self, config: CacheTierConfig, mean_service_cycles: float
    ) -> None:
        if mean_service_cycles <= 0:
            raise ValueError("mean_service_cycles must be positive")
        self.config = config
        self.hit_cycles = config.hit_services * mean_service_cycles
        self.ttl_cycles = (
            config.ttl_services * mean_service_cycles
            if config.ttl_services is not None else None
        )
        self.stale_cycles = (
            config.stale_services * mean_service_cycles
            if config.stale_services is not None else None
        )
        self.stats = StatRegistry("cache")
        self.ring = ShardRing(config.shards, config.virtual_nodes)
        self.shards = [
            CacheShard(config.shard_capacity, self.stats)
            for _ in range(config.shards)
        ]

    def lookup(self, key: str, now: float) -> bool:
        """Route ``key`` to its shard; True on a live hit."""
        shard = self.ring.lookup(key)
        self.stats.bump("cache.lookups")
        if self.shards[shard].get(key, now):
            self.stats.bump("cache.hits")
            return True
        self.stats.bump("cache.misses")
        return False

    def probe(self, key: str, now: float) -> str:
        """Three-way lookup: ``"hit"``, ``"stale"``, or ``"miss"``.

        The overload simulator's entry point: a stale answer is
        servable (stale-while-revalidate) but signals that exactly one
        background refresh should render.  Stats mirror
        :meth:`lookup`: a stale serve counts as a hit (the client got
        a page without a synchronous render) plus ``cache.stale_hits``.
        """
        shard = self.ring.lookup(key)
        self.stats.bump("cache.lookups")
        state = self.shards[shard].probe(key, now, self.stale_cycles)
        if state == "hit":
            self.stats.bump("cache.hits")
        elif state == "stale":
            self.stats.bump("cache.hits")
            self.stats.bump("cache.stale_hits")
        else:
            self.stats.bump("cache.misses")
        return state

    def effective_ttl(self, key: str) -> float | None:
        """The TTL ``fill`` will grant ``key`` (jitter applied).

        Jitter is a pure function of the key — ``stable_hash64`` maps
        it into ``[0, 1)`` and the lifetime shrinks by up to
        ``ttl_jitter`` of itself — so a batch of same-instant fills
        expires smeared instead of synchronized, without spending any
        rng draws (determinism is free).
        """
        return jittered_ttl(key, self.ttl_cycles, self.config.ttl_jitter)

    def fill(self, key: str, now: float) -> None:
        """Backend render finished: store the page for ``key``."""
        shard = self.ring.lookup(key)
        self.shards[shard].put(key, now, self.effective_ttl(key))
        self.stats.bump("cache.fills")

    def invalidate_shard(self, shard: int) -> int:
        """Storm: flush one shard; returns entries invalidated."""
        dropped = self.shards[shard % len(self.shards)].flush()
        self.stats.bump("cache.storms")
        self.stats.bump("cache.storm_invalidations", dropped)
        return dropped

    def expire_all(self, now: float) -> int:
        """Mass expiry across every shard (the deploy-flush trigger)."""
        touched = sum(s.expire_all(now) for s in self.shards)
        self.stats.bump("cache.mass_expiries")
        self.stats.bump("cache.mass_expired_entries", touched)
        return touched

    @property
    def hit_ratio(self) -> float:
        return self.stats.ratio("cache.hits", "cache.lookups")
