"""Overload dynamics: flash crowds, retry storms, metastable failure.

The steady-state fleet simulator (:mod:`repro.fleet.simulator`) asks
"how much traffic can N boxes serve?"; this module asks the question
that actually sizes production fleets: *what happens at the edge?*  A
flash crowd pushes queueing delay past the client timeout, timed-out
clients retry, and the retry traffic keeps the fleet saturated after
the original trigger has long ended — the **metastable failure**
pattern (Bronson et al., HotOS'21) where the overloaded state is
self-sustaining because servers burn capacity rendering pages for
clients that already hung up ("zombie" work).

The closed loop simulated here:

* **Non-stationary arrivals** — a base Poisson rate modulated by a
  diurnal sine, a flash-crowd multiplier over a trigger window, and
  the retry feedback loop itself (synchronized fixed backoff vs the
  PR-1 decorrelated-jitter recurrence).
* **Client behavior** — per-attempt deadline; a timed-out or shed
  attempt retries up to ``max_retries`` times, optionally gated by an
  SRE-style :class:`~repro.resilience.policies.RetryBudget` (tokens
  earned by successes, spent by retries) that caps the fleet-wide
  amplification factor.
* **Node defenses** — bounded queues (fast-fail shed at admission),
  :class:`~repro.resilience.policies.AdaptiveConcurrencyLimit` (AIMD
  on observed latency), and deadline-aware shedding: expired work is
  dropped at *dequeue* time, which is the mechanism that stops zombie
  renders from sustaining the loop.
* **Cache stampede protection** — the
  :class:`~repro.fleet.cache_tier.ObjectCacheTier` knobs: per-key TTL
  jitter, stale-while-revalidate (a stale page is served immediately
  while one background refresh renders), and single-flight coalescing
  (concurrent misses for one key wait on the in-flight render instead
  of each dispatching their own).  Mass-expiry and shard-failure
  triggers exercise them.

Every run produces an :class:`OverloadReport` with per-bucket time
series (first-attempt arrivals, goodput, queue depth, shed/timeout/
retry counts) and a **metastability verdict**: goodput is *recovered*
when its per-bucket fraction of first-attempt arrivals returns to
``recovery_slo`` × the pre-trigger level and stays there; the run is
*metastable* when that takes longer than ``metastable_factor`` × the
trigger duration (or never happens inside the horizon).

Determinism contract matches the rest of the repo: one event heap of
``(time, seq, kind, payload)`` with a monotonic tie-breaking ``seq``,
all randomness from named :class:`~repro.common.rng.DeterministicRng`
forks, arrivals pre-drawn by thinning — same seed, byte-identical
report, across ``--jobs`` fan-out too.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field, replace

from repro.common.rng import DeterministicRng
from repro.common.stats import StatRegistry
from repro.fleet.balancer import make_balancer
from repro.fleet.cache_tier import CacheTierConfig, ObjectCacheTier
from repro.fleet.topology import FleetTopology, homogeneous_fleet
from repro.resilience.faults import FaultInjector, FaultScenario
from repro.resilience.policies import (
    AdaptiveConcurrencyLimit,
    AdaptiveConcurrencyPolicy,
    RetryBudget,
    RetryBudgetPolicy,
    RetryPolicy,
)


@dataclass(frozen=True)
class OverloadConfig:
    """One overload scenario: trigger shape + client/node/cache knobs.

    Durations are in multiples of the topology's mean service time
    ("services"), resolved to cycles at run time; rates are fractions
    of aggregate backend capacity unless ``arrival_rate`` pins an
    absolute rate (needed when comparing different node counts against
    the *same* storm, as :func:`min_nodes_to_survive` does).
    """

    # -- arrival process ---------------------------------------------------
    horizon_services: float = 600.0
    base_load: float = 0.7
    #: absolute first-attempt rate (requests/cycle); overrides base_load
    arrival_rate: float | None = None
    flash_multiplier: float = 3.0
    flash_start_services: float = 150.0
    flash_duration_services: float = 50.0
    #: diurnal modulation: rate × (1 + amplitude·sin(2πt/period))
    diurnal_amplitude: float = 0.0
    diurnal_period_services: float = 400.0
    # -- client behavior ---------------------------------------------------
    timeout_services: float = 8.0
    max_retries: int = 3
    #: decorrelated-jitter backoff (PR-1 machinery); None → every
    #: client retries after the same fixed backoff (synchronized storm)
    retry_jitter: RetryPolicy | None = None
    sync_backoff_services: float = 0.5
    retry_budget: RetryBudgetPolicy | None = None
    # -- node defenses -----------------------------------------------------
    max_queue: int | None = None
    deadline_shedding: bool = False
    adaptive: AdaptiveConcurrencyPolicy | None = None
    balancer: str = "p2c"
    # -- workload / cache --------------------------------------------------
    key_population: int = 512
    key_zipf_s: float = 1.1
    #: the object-cache tier for this scenario (None → no cache);
    #: deliberately part of the *scenario*, not the topology, so
    #: defended/undefended runs differ only in this config object
    cache: CacheTierConfig | None = None
    #: expire every cache entry the instant the flash crowd starts
    #: (the "deploy flushed the cache" compound trigger)
    mass_expiry_at_flash: bool = False
    #: PR-1 fault windows become shard flushes (cache storms)
    shard_failure_scenario: FaultScenario | None = None
    # -- verdict -----------------------------------------------------------
    bucket_services: float = 10.0
    #: goodput fraction counts as recovered at this × pre-trigger level
    recovery_slo: float = 0.95
    #: metastable when recovery takes > this × trigger duration
    metastable_factor: float = 5.0

    def __post_init__(self) -> None:
        if self.horizon_services <= 0:
            raise ValueError("horizon_services must be positive")
        if self.base_load <= 0:
            raise ValueError("base_load must be positive")
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive when set")
        if self.flash_multiplier < 1.0:
            raise ValueError("flash_multiplier must be >= 1")
        if self.flash_start_services < 0:
            raise ValueError("flash_start_services cannot be negative")
        if self.flash_duration_services <= 0:
            raise ValueError("flash_duration_services must be positive")
        if (
            self.flash_start_services + self.flash_duration_services
            >= self.horizon_services
        ):
            raise ValueError(
                "the flash crowd must end before the horizon so the "
                "recovery window is observable"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period_services <= 0:
            raise ValueError("diurnal_period_services must be positive")
        if self.timeout_services <= 0:
            raise ValueError("timeout_services must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.sync_backoff_services <= 0:
            raise ValueError("sync_backoff_services must be positive")
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.key_population < 1:
            raise ValueError("key_population must be >= 1")
        if self.key_zipf_s <= 0:
            raise ValueError("key_zipf_s must be positive")
        if self.bucket_services <= 0:
            raise ValueError("bucket_services must be positive")
        if not 0.0 < self.recovery_slo <= 1.0:
            raise ValueError("recovery_slo must be in (0, 1]")
        if self.metastable_factor < 1.0:
            raise ValueError("metastable_factor must be >= 1")

    @property
    def flash_end_services(self) -> float:
        return self.flash_start_services + self.flash_duration_services


@dataclass
class OverloadReport:
    """Time-series + verdict of one overload run.

    All counters are attempt-accurate; the per-bucket series index
    time in ``bucket_services``-wide windows from t=0.  ``None``
    entries never appear in the series — buckets without first-attempt
    arrivals are simply skipped by the verdict scan.
    """

    scenario: str
    fleet: str
    nodes: int
    workers: int
    bucket_services: float
    flash_start_services: float
    flash_end_services: float
    # -- scalar counters ---------------------------------------------------
    arrivals: int = 0          #: first attempts offered
    attempts: int = 0          #: all attempts (first + retries)
    goodput: int = 0           #: completions inside the attempt deadline
    failures: int = 0          #: clients that exhausted retries / budget
    shed: int = 0              #: fast-fail sheds at admission
    shed_expired: int = 0      #: deadline sheds at dequeue
    timeouts: int = 0          #: attempts the client abandoned
    retries_sent: int = 0
    retries_denied: int = 0    #: retries the budget refused
    zombies: int = 0           #: renders finished after the client left
    cache_hits: int = 0
    stale_served: int = 0      #: stale-while-revalidate serves
    coalesced: int = 0         #: waiters joined to an in-flight render
    refreshes: int = 0         #: background SWR refresh renders
    mass_expiries: int = 0
    storms: int = 0
    # -- per-bucket series -------------------------------------------------
    arrival_series: list[int] = field(default_factory=list)
    goodput_series: list[int] = field(default_factory=list)
    shed_series: list[int] = field(default_factory=list)
    timeout_series: list[int] = field(default_factory=list)
    retry_series: list[int] = field(default_factory=list)
    #: total outstanding backend work sampled at each bucket start
    queue_series: list[int] = field(default_factory=list)
    # -- verdict -----------------------------------------------------------
    pre_trigger_goodput: float = 0.0
    #: services after the flash end until goodput sustains at
    #: ``recovery_slo`` × pre-trigger (None → never inside the horizon)
    recovery_services: float | None = None
    #: same scan at the 50%-of-pre-trigger level (the "still drowned"
    #: clock the metastability acceptance criterion is written against)
    half_recovery_services: float | None = None
    metastable: bool = False

    def goodput_fractions(self) -> list[float | None]:
        """Per-bucket goodput ÷ first-attempt arrivals (None = idle)."""
        return [
            (g / a if a else None)
            for g, a in zip(self.goodput_series, self.arrival_series)
        ]

    @property
    def recovered(self) -> bool:
        return not self.metastable

    @property
    def goodput_ratio(self) -> float:
        """Overall goodput ÷ first attempts (an availability number)."""
        return self.goodput / self.arrivals if self.arrivals else 0.0

    @property
    def amplification(self) -> float:
        """Attempts per first attempt — the retry-storm load factor."""
        return self.attempts / self.arrivals if self.arrivals else 0.0


class _Client:
    """One logical request: the retry loop's client-side state."""

    __slots__ = ("rid", "key", "retries_used", "prev_backoff", "done")

    def __init__(self, rid: int, key: str) -> None:
        self.rid = rid
        self.key = key
        self.retries_used = 0
        self.prev_backoff = 0.0
        self.done = False


class _Attempt:
    """One client attempt (or a client-less SWR refresh)."""

    __slots__ = ("client", "key", "start", "deadline", "leader", "refresh",
                 "done")

    def __init__(
        self,
        client: _Client | None,
        key: str,
        start: float,
        deadline: float,
        refresh: bool = False,
    ) -> None:
        self.client = client
        self.key = key
        self.start = start
        self.deadline = deadline
        self.leader = False
        self.refresh = refresh
        self.done = False


class _Node:
    """Backend runtime state (queue + AIMD limiter)."""

    __slots__ = ("spec", "free", "queue", "rng", "limiter")

    def __init__(self, spec, rng, limiter) -> None:
        self.spec = spec
        self.free = spec.workers
        self.queue: deque[_Attempt] = deque()
        self.rng = rng
        self.limiter = limiter

    @property
    def outstanding(self) -> int:
        return len(self.queue) + (self.spec.workers - self.free)


class OverloadSimulator:
    """The closed loop: arrivals → queues → timeouts → retries."""

    def __init__(
        self,
        topology: FleetTopology,
        config: OverloadConfig | None = None,
        rng: DeterministicRng | None = None,
        scenario: str = "overload",
    ) -> None:
        self.topology = topology
        self.config = config or OverloadConfig()
        self.scenario = scenario
        rng = rng or DeterministicRng(17)
        self._arrival_rng = rng.fork("arrivals")
        self._key_rng = rng.fork("keys")
        self._balancer_rng = rng.fork("balancer")
        self._retry_rng = rng.fork("retries")
        self._storm_rng = rng.fork("storms")
        self._node_rngs = [
            rng.fork(f"service/{n.name}") for n in topology.nodes
        ]
        self.stats = StatRegistry("overload")

    # -- arrival process ----------------------------------------------------

    def _base_rate(self) -> float:
        cfg = self.config
        if cfg.arrival_rate is not None:
            return cfg.arrival_rate
        return cfg.base_load * self.topology.capacity_rps

    def _rate_at(self, t: float, mean: float) -> float:
        """λ(t) in requests/cycle (t in cycles)."""
        cfg = self.config
        rate = self._base_rate()
        if cfg.diurnal_amplitude:
            period = cfg.diurnal_period_services * mean
            rate *= 1.0 + cfg.diurnal_amplitude * math.sin(
                2.0 * math.pi * t / period
            )
        start = cfg.flash_start_services * mean
        end = cfg.flash_end_services * mean
        if start <= t < end:
            rate *= cfg.flash_multiplier
        return rate

    def _draw_arrivals(self, mean: float) -> list[float]:
        """Thinning: draw at the peak rate, accept with λ(t)/λ_max."""
        cfg = self.config
        horizon = cfg.horizon_services * mean
        lam_max = (
            self._base_rate()
            * (1.0 + cfg.diurnal_amplitude)
            * cfg.flash_multiplier
        )
        out: list[float] = []
        t = 0.0
        while True:
            t += -math.log(
                max(self._arrival_rng.random(), 1e-12)
            ) / lam_max
            if t >= horizon:
                return out
            if self._arrival_rng.random() * lam_max <= self._rate_at(t, mean):
                out.append(t)

    # -- the run ------------------------------------------------------------

    def run(self) -> OverloadReport:
        cfg = self.config
        topo = self.topology
        mean = topo.mean_service
        timeout = cfg.timeout_services * mean
        bucket_w = cfg.bucket_services * mean
        flash_end = cfg.flash_end_services * mean

        arrivals = self._draw_arrivals(mean)
        keys = [
            f"k{self._key_rng.zipf(cfg.key_population, cfg.key_zipf_s)}"
            for _ in arrivals
        ]

        cache = (
            ObjectCacheTier(cfg.cache, mean)
            if cfg.cache is not None else None
        )
        balancer = make_balancer(cfg.balancer)
        nodes = [
            _Node(
                spec,
                self._node_rngs[i],
                AdaptiveConcurrencyLimit(cfg.adaptive, mean)
                if cfg.adaptive is not None else None,
            )
            for i, spec in enumerate(topo.nodes)
        ]
        budget = (
            RetryBudget(cfg.retry_budget)
            if cfg.retry_budget is not None else None
        )

        report = OverloadReport(
            scenario=self.scenario, fleet=topo.name,
            nodes=len(topo.nodes),
            workers=sum(n.workers for n in topo.nodes),
            bucket_services=cfg.bucket_services,
            flash_start_services=cfg.flash_start_services,
            flash_end_services=cfg.flash_end_services,
        )

        series = (
            report.arrival_series, report.goodput_series,
            report.shed_series, report.timeout_series,
            report.retry_series, report.queue_series,
        )

        def bucket(at: float) -> int:
            i = int(at / bucket_w)
            while len(report.arrival_series) <= i:
                for s in series:
                    s.append(0)
            return i

        events: list[tuple[float, int, str, object]] = []
        seq = 0

        def push(time: float, kind: str, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (time, seq, kind, payload))
            seq += 1

        for i, t in enumerate(arrivals):
            push(t, "attempt", _Client(i, keys[i]))
        n_buckets = int(
            math.ceil(cfg.horizon_services / cfg.bucket_services)
        )
        for k in range(n_buckets):
            push(k * bucket_w, "sample", k)
        if cache is not None and cfg.mass_expiry_at_flash:
            push(cfg.flash_start_services * mean, "mass_expiry", None)
        if cache is not None and cfg.shard_failure_scenario is not None:
            injector = FaultInjector(
                cfg.shard_failure_scenario, self._storm_rng, mean
            )
            schedule = injector.schedule(
                cfg.horizon_services * mean, max(len(nodes), 1)
            )
            for i, window in enumerate(schedule.windows):
                push(window.start, "storm", i % len(cache.shards))

        #: single-flight: key → waiters attached to the in-flight render
        flights: dict[str, list[_Attempt]] = {}
        #: keys with a stale-while-revalidate refresh already rendering
        refreshing: set[str] = set()

        def complete(client: _Client, at: float) -> None:
            """A client got its page inside the deadline: goodput."""
            client.done = True
            report.goodput += 1
            report.goodput_series[bucket(at)] += 1
            if budget is not None:
                budget.record_success()

        def retry(client: _Client, at: float) -> None:
            """Attempt failed (shed or timed out): client-side policy."""
            if client.done:
                return
            if client.retries_used >= cfg.max_retries:
                client.done = True
                report.failures += 1
                return
            if budget is not None and not budget.try_spend():
                client.done = True
                report.failures += 1
                report.retries_denied += 1
                return
            if cfg.retry_jitter is not None:
                backoff = cfg.retry_jitter.next_backoff(
                    client.prev_backoff, self._retry_rng
                )
            else:
                backoff = cfg.sync_backoff_services
            client.prev_backoff = backoff
            client.retries_used += 1
            report.retries_sent += 1
            report.retry_series[bucket(at)] += 1
            push(at + backoff * mean, "attempt", client)

        def enqueue(attempt: _Attempt, at: float) -> bool:
            """Admission control; False → shed (fast-fail)."""
            i = balancer.pick(nodes, self._balancer_rng)
            node = nodes[i]
            if (
                cfg.max_queue is not None
                and node.outstanding >= cfg.max_queue
            ) or (
                node.limiter is not None
                and not node.limiter.admit(node.outstanding)
            ):
                report.shed += 1
                report.shed_series[bucket(at)] += 1
                return False
            node.queue.append(attempt)
            dispatch(node, at)
            return True

        def dispatch(node: _Node, at: float) -> None:
            while node.free and node.queue:
                attempt = node.queue.popleft()
                if cfg.deadline_shedding and at >= attempt.deadline:
                    # The client is gone (or will be before we could
                    # finish): drop at dequeue, keep the worker for
                    # work that can still become goodput.
                    report.shed_expired += 1
                    report.shed_series[bucket(at)] += 1
                    if node.limiter is not None:
                        node.limiter.record(at - attempt.start)
                    if attempt.leader:
                        flights.pop(attempt.key, None)
                    if attempt.refresh:
                        refreshing.discard(attempt.key)
                    continue
                node.free -= 1
                service = node.rng.choice(node.spec.service_times)
                push(at + service, "finish", (node, attempt, service))

        while events:
            at, _, kind, payload = heapq.heappop(events)

            if kind == "attempt":
                client = payload
                if client.done:
                    continue
                b = bucket(at)
                report.attempts += 1
                if client.retries_used == 0:
                    report.arrivals += 1
                    report.arrival_series[b] += 1
                attempt = _Attempt(
                    client, client.key, at, at + timeout
                )
                if cache is not None:
                    state = cache.probe(client.key, at)
                    if state == "hit":
                        report.cache_hits += 1
                        complete(client, at + cache.hit_cycles)
                        continue
                    if state == "stale":
                        # Serve the stale page now; exactly one
                        # background refresh re-renders it.
                        report.stale_served += 1
                        complete(client, at + cache.hit_cycles)
                        if client.key not in refreshing:
                            refreshing.add(client.key)
                            report.refreshes += 1
                            ghost = _Attempt(
                                None, client.key, at, math.inf,
                                refresh=True,
                            )
                            if not enqueue(ghost, at):
                                refreshing.discard(client.key)
                        continue
                    if cfg.cache.single_flight and client.key in flights:
                        # Coalesce: ride the in-flight render.
                        report.coalesced += 1
                        flights[client.key].append(attempt)
                        push(attempt.deadline, "deadline", attempt)
                        continue
                if not enqueue(attempt, at):
                    retry(client, at)
                    continue
                if (
                    cache is not None and cfg.cache.single_flight
                ):
                    attempt.leader = True
                    flights[client.key] = []
                push(attempt.deadline, "deadline", attempt)

            elif kind == "deadline":
                attempt = payload
                if attempt.done:
                    continue
                # Client gives up on this attempt; any render still in
                # the queue or on a worker is now zombie work.
                attempt.done = True
                report.timeouts += 1
                report.timeout_series[bucket(at)] += 1
                retry(attempt.client, at)

            elif kind == "finish":
                node, attempt, service = payload
                node.free += 1
                if node.limiter is not None:
                    node.limiter.record(at - attempt.start)
                if attempt.refresh:
                    refreshing.discard(attempt.key)
                    if cache is not None:
                        cache.fill(attempt.key, at)
                    dispatch(node, at)
                    continue
                waiters = (
                    flights.pop(attempt.key, [])
                    if attempt.leader else []
                )
                if attempt.done:
                    # The client left before the render finished: the
                    # page is dead work — no goodput, and no fill (the
                    # worker was torn down with the connection).  This
                    # is the waste that sustains metastability.
                    report.zombies += 1
                    dispatch(node, at)
                    continue
                attempt.done = True
                complete(attempt.client, at)
                if cache is not None:
                    cache.fill(attempt.key, at)
                for waiter in waiters:
                    if not waiter.done and at <= waiter.deadline:
                        waiter.done = True
                        complete(waiter.client, at)
                dispatch(node, at)

            elif kind == "sample":
                report.queue_series[bucket(at)] = sum(
                    n.outstanding for n in nodes
                )

            elif kind == "mass_expiry":
                report.mass_expiries += 1
                cache.expire_all(at)

            elif kind == "storm":
                cache.invalidate_shard(payload)
                report.storms += 1

        self._verdict(report)
        if cache is not None:
            self.stats.merge(cache.stats)
        return report

    # -- verdict ------------------------------------------------------------

    def _verdict(self, report: OverloadReport) -> None:
        """Goodput-fraction recovery scan over trailing windows.

        Per-bucket fractions carry Poisson noise (~±10% at typical
        bucket populations) and boundary effects (a request arriving
        at a bucket's edge completes in the next one), so the verdict
        smooths over a trailing window one trigger-duration wide —
        the same clock the metastability definition is written in.
        """
        cfg = self.config
        window = max(
            1,
            int(round(
                cfg.flash_duration_services / cfg.bucket_services
            )),
        )
        fractions = self._windowed_fractions(report, window)
        pre = [
            f for i, f in enumerate(fractions)
            if f is not None
            and (i + 1) * cfg.bucket_services <= cfg.flash_start_services
        ]
        report.pre_trigger_goodput = (
            sum(pre) / len(pre) if pre else 1.0
        )
        first_post = int(
            math.ceil(cfg.flash_end_services / cfg.bucket_services)
        )
        report.recovery_services = self._sustained(
            fractions, first_post,
            cfg.recovery_slo * report.pre_trigger_goodput,
        )
        report.half_recovery_services = self._sustained(
            fractions, first_post, 0.5 * report.pre_trigger_goodput
        )
        report.metastable = (
            report.recovery_services is None
            or report.recovery_services
            > cfg.metastable_factor * cfg.flash_duration_services
        )

    @staticmethod
    def _windowed_fractions(
        report: OverloadReport, window: int
    ) -> list[float | None]:
        """Goodput ÷ arrivals over the trailing ``window`` buckets."""
        out: list[float | None] = []
        for i in range(len(report.arrival_series)):
            lo = max(0, i - window + 1)
            arrived = sum(report.arrival_series[lo:i + 1])
            good = sum(report.goodput_series[lo:i + 1])
            out.append(good / arrived if arrived else None)
        return out

    def _sustained(
        self,
        fractions: list[float | None],
        first_post: int,
        target: float,
    ) -> float | None:
        """Services from flash end until goodput stays ≥ ``target``."""
        cfg = self.config
        candidate: int | None = None
        for i in range(first_post, len(fractions)):
            f = fractions[i]
            if f is None:
                continue
            if f >= target:
                if candidate is None:
                    candidate = i
            else:
                candidate = None
        if candidate is None:
            return None
        return (
            (candidate + 1) * cfg.bucket_services
            - cfg.flash_end_services
        )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_overload(
    topology: FleetTopology,
    config: OverloadConfig | None = None,
    seed: int = 17,
    scenario: str = "overload",
) -> OverloadReport:
    """One independent overload run with its own forked rng stream."""
    cfg = config or OverloadConfig()
    rng = DeterministicRng(seed).fork(
        f"overload/{topology.name}/{scenario}"
    )
    return OverloadSimulator(topology, cfg, rng, scenario).run()


def _run_overload_cell(
    cell: tuple[str, FleetTopology, OverloadConfig, int]
) -> OverloadReport:
    """Picklable scenario cell for the process pool."""
    scenario, topology, cfg, seed = cell
    return run_overload(topology, cfg, seed, scenario)


def run_overload_matrix(
    topology: FleetTopology,
    scenarios: list[tuple[str, OverloadConfig]],
    seed: int = 17,
    jobs: int | None = None,
) -> list[OverloadReport]:
    """Run named scenarios independently (optionally over a pool).

    Each cell forks its rng stream from ``seed`` keyed by topology and
    scenario name, so the defended run never perturbs the undefended
    one — the same isolation (and cache-keying) contract as
    :func:`repro.fleet.simulator.run_fleet_matrix`.
    """
    from repro.core.expcache import EXPERIMENT_CACHE
    from repro.core.parallel import map_cells

    cells = [
        (name, topology, cfg, seed) for name, cfg in scenarios
    ]
    return map_cells(
        _run_overload_cell,
        cells,
        jobs=jobs,
        cache=EXPERIMENT_CACHE,
        key_parts=lambda cell: cell,
        label="overload-matrix",
    )


def overload_topology(
    nodes: int = 2, workers: int = 4
) -> FleetTopology:
    """The demo fleet: accelerated boxes, mean service 1.0 cycles."""
    return homogeneous_fleet(
        "overload-fleet", (0.8, 0.9, 1.0, 1.1, 1.2),
        nodes=nodes, workers=workers,
    )


def _demo_shape(smoke: bool) -> dict:
    """Trigger geometry + workload shared by every headline scenario.

    The key popularity is deliberately flatter than the steady-state
    fleet demo (zipf 0.8 over 2048 keys): a cache that absorbs 80% of
    a flash crowd hides the queueing dynamics this module exists to
    show.  With ~40% hit ratio the flash pushes backend load past
    capacity, queueing delay past the client timeout, and the retry
    loop closes.
    """
    shape = dict(key_population=2_048, key_zipf_s=0.8)
    if smoke:
        shape.update(
            horizon_services=300.0, flash_start_services=80.0,
            flash_duration_services=40.0, bucket_services=10.0,
        )
    else:
        shape.update(
            horizon_services=600.0, flash_start_services=150.0,
            flash_duration_services=50.0, bucket_services=10.0,
        )
    return shape


def undefended_config(smoke: bool = False) -> OverloadConfig:
    """The storm with every defense off: synchronized retries, no
    budget, unbounded queues, naive cache (no jitter/SWR/coalescing),
    mass expiry at the flash — the metastable baseline."""
    return OverloadConfig(
        cache=CacheTierConfig(shards=4, shard_capacity=128),
        mass_expiry_at_flash=True,
        **_demo_shape(smoke),
    )


def defended_config(smoke: bool = False) -> OverloadConfig:
    """Same storm, defenses on: retry budget + decorrelated jitter,
    bounded queue + deadline shedding + AIMD, stampede-proof cache."""
    return OverloadConfig(
        retry_jitter=RetryPolicy(
            base_backoff_services=0.5, max_backoff_services=20.0
        ),
        retry_budget=RetryBudgetPolicy(ratio=0.1, burst=10.0),
        max_queue=32,
        deadline_shedding=True,
        adaptive=AdaptiveConcurrencyPolicy(
            target_latency_services=6.0, max_limit=64.0
        ),
        cache=CacheTierConfig(
            shards=4, shard_capacity=128,
            ttl_jitter=0.3, stale_services=100.0, single_flight=True,
        ),
        mass_expiry_at_flash=True,
        **_demo_shape(smoke),
    )


def headline_scenarios(
    smoke: bool = False,
) -> list[tuple[str, OverloadConfig]]:
    """The demo axis the CLI and benchmark sweep."""
    undef = undefended_config(smoke)
    return [
        ("undefended", undef),
        ("retry-budget-only", replace(
            undef,
            retry_jitter=RetryPolicy(
                base_backoff_services=0.5, max_backoff_services=20.0
            ),
            retry_budget=RetryBudgetPolicy(ratio=0.1, burst=10.0),
        )),
        ("defended", defended_config(smoke)),
    ]


def min_nodes_to_survive(
    make_topology,
    config: OverloadConfig,
    seed: int = 17,
    max_nodes: int = 8,
    slo_goodput: float = 0.9,
) -> int | None:
    """Smallest node count that rides out the storm without going
    metastable.

    ``config.arrival_rate`` must be set (an absolute storm): scaling
    the fleet must not scale the traffic, otherwise every size faces a
    different storm and the comparison is meaningless.  Survival is
    two conditions: the fleet was actually serving before the trigger
    (pre-trigger goodput fraction ≥ ``slo_goodput`` — recovery back
    to a drowned baseline is not survival), and the verdict is
    *recovered*.  This is
    :func:`repro.fleet.simulator.min_nodes_for_slo` run against the
    transient instead of the steady state — the node-count price of
    skipping the defenses.
    """
    if config.arrival_rate is None:
        raise ValueError(
            "min_nodes_to_survive needs an absolute arrival_rate"
        )
    if max_nodes < 1:
        raise ValueError(f"max_nodes must be >= 1, got {max_nodes}")
    if not 0.0 < slo_goodput <= 1.0:
        raise ValueError("slo_goodput must be in (0, 1]")
    for n in range(1, max_nodes + 1):
        report = run_overload(
            make_topology(n), config, seed, scenario=f"sizing-{n}"
        )
        if report.recovered and report.pre_trigger_goodput >= slo_goodput:
            return n
    return None
