"""Load-balancing policies for the fleet simulator.

Three classics, all deterministic given the simulator's forked RNG
stream:

* **round-robin** — rotate through nodes regardless of state; the
  baseline every real balancer gets compared against.  Blind to node
  speed, so a heterogeneous (mixed accelerated/software) fleet ends
  up with the slow boxes saturated while fast ones idle.
* **least-outstanding** — send to the node with the fewest in-flight
  requests (queue + busy workers), ties to the lowest index.  The
  global-knowledge ideal; expensive to maintain at real scale.
* **power-of-two-choices (p2c)** — sample two distinct nodes, pick
  the less loaded.  The Mitzenmacher result: two random choices get
  exponentially close to the global-knowledge balance at O(1) cost,
  which is why production balancers use it.  ``tests/test_fleet.py``
  asserts it never balances worse than round-robin on a heterogeneous
  fleet.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.common.rng import DeterministicRng


class NodeLoadView(Protocol):
    """What a balancer may observe about one node."""

    @property
    def outstanding(self) -> int:
        """Requests in flight on the node (queued + in service)."""
        ...


class BalancerPolicy:
    """Base class: pick a node index for the next request."""

    name = "balancer"

    def pick(
        self, nodes: Sequence[NodeLoadView], rng: DeterministicRng
    ) -> int:
        raise NotImplementedError


class RoundRobin(BalancerPolicy):
    """Rotate through nodes in order, ignoring their load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def pick(
        self, nodes: Sequence[NodeLoadView], rng: DeterministicRng
    ) -> int:
        i = self._cursor % len(nodes)
        self._cursor += 1
        return i


class LeastOutstanding(BalancerPolicy):
    """Global knowledge: fewest in-flight requests wins."""

    name = "least-outstanding"

    def pick(
        self, nodes: Sequence[NodeLoadView], rng: DeterministicRng
    ) -> int:
        best = 0
        best_load = nodes[0].outstanding
        for i in range(1, len(nodes)):
            load = nodes[i].outstanding
            if load < best_load:
                best, best_load = i, load
        return best


class PowerOfTwoChoices(BalancerPolicy):
    """Two uniform samples, less-loaded wins (ties → first sample)."""

    name = "p2c"

    def pick(
        self, nodes: Sequence[NodeLoadView], rng: DeterministicRng
    ) -> int:
        n = len(nodes)
        if n == 1:
            return 0
        a = rng.randint(0, n - 1)
        b = rng.randint(0, n - 2)
        if b >= a:
            b += 1  # second draw over the remaining n-1 nodes
        return b if nodes[b].outstanding < nodes[a].outstanding else a


#: Policy registry keyed by CLI-friendly name.
BALANCERS = {
    cls.name: cls
    for cls in (RoundRobin, LeastOutstanding, PowerOfTwoChoices)
}


def make_balancer(name: str) -> BalancerPolicy:
    """Fresh policy instance for ``name`` (policies carry state)."""
    try:
        return BALANCERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown balancer {name!r}; choose from "
            f"{sorted(BALANCERS)}"
        ) from None
