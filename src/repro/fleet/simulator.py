"""Event-driven multi-node cluster simulator.

Composes the pieces the paper's fleet-economics argument needs in one
timeline: Poisson arrivals carrying Zipf-popular content keys hit the
**object-cache tier** first (consistent-hash shard, LRU, TTL — a hit
costs a round trip and never touches a backend), misses go through a
pluggable **load balancer** to one of N per-node M/G/c backends (each
with its own empirical service-time distribution, so fleets can mix
accelerated and software-only boxes), and completed renders **fill**
the cache.  A PR-1 :class:`~repro.resilience.faults.FaultScenario`
can drive deterministic **invalidation storms** that flush shards
mid-run and let the miss wave hammer the backends.

One global event heap with ``(time, seq, kind, payload)`` tuples — the
monotonic ``seq`` breaks equal-time ties in insertion order so pop
order is a function of the seed alone.  Same seed → byte-identical
:class:`~repro.fleet.report.FleetReport`.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, replace

from repro.common.rng import DeterministicRng
from repro.common.stats import StatRegistry, summarize_latencies
from repro.fleet.balancer import make_balancer
from repro.fleet.cache_tier import ObjectCacheTier
from repro.fleet.report import FleetReport, NodeUtilization
from repro.fleet.topology import FleetTopology
from repro.resilience.faults import FaultInjector, FaultScenario


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one fleet-simulation run."""

    #: measured requests (after warmup)
    requests: int = 4_000
    #: leading requests excluded from every report statistic (they
    #: still warm the cache, as production warmup traffic would)
    warmup_requests: int = 0
    #: arrival rate as a fraction of aggregate *backend* capacity; a
    #: cached fleet can sustain > 1.0 because hits bypass backends
    offered_load: float = 0.7
    #: absolute arrival rate (requests/cycle); overrides offered_load
    arrival_rate: float | None = None
    balancer: str = "p2c"
    #: distinct content keys; popularity is Zipf over this population
    key_population: int = 2_048
    key_zipf_s: float = 1.1
    #: per-node admission bound on outstanding requests (None → ∞)
    max_queue: int | None = None
    #: PR-1 fault scenario whose degradation windows become cache
    #: invalidation storms (None → no storms)
    storm_scenario: FaultScenario | None = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(
                f"need at least one measured request, got {self.requests}"
            )
        if self.warmup_requests < 0:
            raise ValueError(
                f"warmup_requests cannot be negative, got "
                f"{self.warmup_requests}"
            )
        if self.offered_load <= 0.0:
            raise ValueError(
                f"offered load must be positive, got {self.offered_load}"
            )
        if self.arrival_rate is not None and self.arrival_rate <= 0.0:
            raise ValueError(
                f"arrival_rate must be positive, got {self.arrival_rate}"
            )
        if self.key_population < 1:
            raise ValueError("key_population must be >= 1")
        if self.key_zipf_s <= 0:
            raise ValueError("key_zipf_s must be positive")
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")


@dataclass
class _FleetRequest:
    rid: int
    arrival: float
    key: str
    is_warmup: bool


class _NodeState:
    """Runtime state of one backend (the balancer's load view)."""

    __slots__ = (
        "spec", "free", "queue", "busy_cycles", "completed", "rng",
    )

    def __init__(self, spec, rng: DeterministicRng) -> None:
        self.spec = spec
        self.free = spec.workers
        self.queue: deque[_FleetRequest] = deque()
        self.busy_cycles = 0.0
        self.completed = 0
        self.rng = rng

    @property
    def outstanding(self) -> int:
        return len(self.queue) + (self.spec.workers - self.free)


class FleetSimulator:
    """N backends + balancer + sharded cache, deterministically."""

    def __init__(
        self,
        topology: FleetTopology,
        config: FleetConfig | None = None,
        rng: DeterministicRng | None = None,
    ) -> None:
        self.topology = topology
        self.config = config or FleetConfig()
        rng = rng or DeterministicRng(17)
        self._arrival_rng = rng.fork("arrivals")
        self._key_rng = rng.fork("keys")
        self._balancer_rng = rng.fork("balancer")
        self._storm_rng = rng.fork("storms")
        self._node_rngs = [
            rng.fork(f"service/{n.name}") for n in topology.nodes
        ]
        self.stats = StatRegistry("fleet")

    def arrival_rate(self) -> float:
        cfg = self.config
        if cfg.arrival_rate is not None:
            return cfg.arrival_rate
        return cfg.offered_load * self.topology.capacity_rps

    def run(self) -> FleetReport:
        cfg = self.config
        topo = self.topology
        mean_gap = 1.0 / self.arrival_rate()
        total = cfg.warmup_requests + cfg.requests

        # Pre-draw arrivals and keys so storms, shedding, and balancer
        # choices never shift the offered stream.
        arrivals: list[float] = []
        keys: list[str] = []
        now = 0.0
        for _ in range(total):
            now += -mean_gap * math.log(
                max(self._arrival_rng.random(), 1e-12)
            )
            arrivals.append(now)
            keys.append(
                f"k{self._key_rng.zipf(cfg.key_population, cfg.key_zipf_s)}"
            )

        cache = (
            ObjectCacheTier(topo.cache, topo.mean_service)
            if topo.cache is not None else None
        )
        balancer = make_balancer(cfg.balancer)
        nodes = [
            _NodeState(spec, self._node_rngs[i])
            for i, spec in enumerate(topo.nodes)
        ]

        # Event heap: (time, seq, kind, payload); seq breaks ties.
        events: list[tuple[float, int, str, object]] = []
        seq = 0

        def push(time: float, kind: str, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (time, seq, kind, payload))
            seq += 1

        for i, t in enumerate(arrivals):
            push(t, "arrival", _FleetRequest(
                rid=i, arrival=t, key=keys[i],
                is_warmup=i < cfg.warmup_requests,
            ))

        # Invalidation storms: reuse the PR-1 fault-window machinery —
        # each degradation window's start flushes one shard, cycling.
        if cache is not None and cfg.storm_scenario is not None:
            injector = FaultInjector(
                cfg.storm_scenario, self._storm_rng, topo.mean_service
            )
            horizon = arrivals[-1] + 20.0 * topo.mean_service
            schedule = injector.schedule(horizon, max(len(nodes), 1))
            for i, window in enumerate(schedule.windows):
                push(window.start, "storm", i % len(cache.shards))

        report = FleetReport(
            fleet=topo.name, balancer=balancer.name,
            cache_shards=len(cache.shards) if cache else 0,
            offered=cfg.requests,
        )
        #: keys with a backend render in flight: a second miss on one
        #: of these is a duplicate of work already under way (a storm
        #: artifact), so it is accounted as coalesced, not as another
        #: first-cause miss.  Scheduling is untouched — the duplicate
        #: still renders — only the attribution changes.
        inflight: set[str] = set()
        latencies: list[float] = []
        first_measured_arrival = (
            arrivals[cfg.warmup_requests]
            if cfg.warmup_requests < len(arrivals) else arrivals[-1]
        )
        last_completion = first_measured_arrival

        def dispatch(node: _NodeState, at: float) -> None:
            while node.free and node.queue:
                request = node.queue.popleft()
                node.free -= 1
                service = node.rng.choice(node.spec.service_times)
                push(at + service, "finish", (node, request, service))

        while events:
            at, _, kind, payload = heapq.heappop(events)

            if kind == "arrival":
                request = payload
                measured = not request.is_warmup
                if cache is not None:
                    hit = cache.lookup(request.key, at)
                    if measured:
                        if hit:
                            report.cache_hits += 1
                        elif request.key in inflight:
                            report.cache_coalesced += 1
                        else:
                            report.cache_misses += 1
                    if hit:
                        done = at + cache.hit_cycles
                        if measured:
                            report.completed += 1
                            latencies.append(cache.hit_cycles)
                            last_completion = max(last_completion, done)
                        self.stats.bump("fleet.cache_served")
                        continue
                i = balancer.pick(nodes, self._balancer_rng)
                node = nodes[i]
                if (
                    cfg.max_queue is not None
                    and node.outstanding >= cfg.max_queue
                ):
                    if measured:
                        report.shed += 1
                    self.stats.bump("fleet.shed")
                    continue
                node.queue.append(request)
                inflight.add(request.key)
                self.stats.bump("fleet.dispatched")
                dispatch(node, at)

            elif kind == "finish":
                node, request, service = payload
                node.free += 1
                node.completed += not request.is_warmup
                inflight.discard(request.key)
                if cache is not None:
                    cache.fill(request.key, at)
                if not request.is_warmup:
                    node.busy_cycles += service
                    report.completed += 1
                    latencies.append(at - request.arrival)
                    last_completion = max(last_completion, at)
                self.stats.bump("fleet.rendered")
                dispatch(node, at)

            elif kind == "storm":
                if cache is not None:
                    dropped = cache.invalidate_shard(payload)
                    report.storms += 1
                    report.storm_invalidations += dropped

        # -- summarize --------------------------------------------------------
        report.latency = summarize_latencies(latencies)
        report.span_cycles = max(
            last_completion - first_measured_arrival, 1.0
        )
        report.goodput_per_kcycle = (
            1000.0 * report.completed / report.span_cycles
        )
        report.per_node = [
            NodeUtilization(
                name=n.spec.name, kind=n.spec.kind, completed=n.completed,
                utilization=min(
                    n.busy_cycles / (n.spec.workers * report.span_cycles),
                    1.0,
                ),
            )
            for n in nodes
        ]
        if cache is not None:
            self.stats.merge(cache.stats)
        return report


def run_fleet(
    topology: FleetTopology,
    config: FleetConfig | None = None,
    seed: int = 17,
) -> FleetReport:
    """One independent fleet run with its own forked rng stream."""
    cfg = config or FleetConfig()
    rng = DeterministicRng(seed).fork(
        f"fleet/{topology.name}/{cfg.balancer}"
    )
    return FleetSimulator(topology, cfg, rng).run()


def _run_fleet_cell(
    cell: tuple[FleetTopology, FleetConfig, int]
) -> FleetReport:
    """Picklable (topology × balancer) grid cell for the process pool."""
    topology, cfg, seed = cell
    return run_fleet(topology, cfg, seed)


def run_fleet_matrix(
    topologies: list[FleetTopology],
    balancers: list[str],
    config: FleetConfig | None = None,
    seed: int = 17,
    jobs: int | None = None,
) -> list[FleetReport]:
    """Sweep topologies × balancer policies, one independent run each.

    Every cell forks its own rng stream from ``seed`` (keyed by fleet
    and balancer name), so adding a topology or policy never perturbs
    the other cells' results — which also makes the grid trivially
    parallel: ``jobs`` fans the cells over a process pool with results
    in grid order, and repeated cells are served from the experiment
    cache (topology/config are frozen dataclasses, so their reprs are
    stable cache-key inputs).
    """
    from repro.core.expcache import EXPERIMENT_CACHE
    from repro.core.parallel import map_cells

    cfg = config or FleetConfig()
    cells = [
        (topo, replace(cfg, balancer=name), seed)
        for topo in topologies
        for name in balancers
    ]
    return map_cells(
        _run_fleet_cell,
        cells,
        jobs=jobs,
        cache=EXPERIMENT_CACHE,
        key_parts=lambda cell: cell,
        label="fleet-matrix",
    )


def fleet_slo_capacity(
    topology: FleetTopology,
    slo_latency: float,
    config: FleetConfig | None = None,
    seed: int = 17,
    resolution: float = 0.05,
    max_load: float = 1.6,
) -> float:
    """Highest offered load whose p99 stays under ``slo_latency``.

    The fleet-level analogue of
    :func:`repro.workloads.server.slo_capacity`: load is a fraction of
    aggregate *backend* capacity, so a fleet whose cache absorbs part
    of the traffic can clear 1.0.  Stops after two consecutive SLO
    misses (sampling noise can produce one).
    """
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution}")
    if max_load <= 0:
        raise ValueError(f"max_load must be positive, got {max_load}")
    cfg = config or FleetConfig()
    best = 0.0
    load = resolution
    consecutive_misses = 0
    while load < max_load:
        report = run_fleet(
            topology,
            replace(cfg, offered_load=load, arrival_rate=None),
            seed,
        )
        if (
            report.latency.p99 <= slo_latency
            and report.shed == 0
            and report.completed == report.offered
        ):
            best = load
            consecutive_misses = 0
        else:
            consecutive_misses += 1
            if consecutive_misses >= 2:
                break
        load += resolution
    return best


def min_nodes_for_slo(
    make_topology,
    arrival_rate: float,
    slo_latency: float,
    config: FleetConfig | None = None,
    seed: int = 17,
    max_nodes: int = 16,
) -> int | None:
    """Smallest node count that serves ``arrival_rate`` within SLO.

    ``make_topology(n)`` builds the n-node candidate fleet.  This is
    the paper's TCO question run backwards: fix the traffic and the
    SLO, ask how much hardware each configuration needs — accelerated
    nodes should need fewer boxes than software-only ones for the same
    answer.  Returns None when even ``max_nodes`` misses the SLO.
    """
    if max_nodes < 1:
        raise ValueError(f"max_nodes must be >= 1, got {max_nodes}")
    cfg = config or FleetConfig()
    for n in range(1, max_nodes + 1):
        topo = make_topology(n)
        report = run_fleet(
            topo, replace(cfg, arrival_rate=arrival_rate), seed
        )
        if (
            report.latency.p99 <= slo_latency
            and report.shed == 0
            and report.completed == report.offered
        ):
            return n
    return None
