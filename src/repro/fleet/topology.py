"""Fleet topology: which nodes exist and what each one costs.

The paper's economic argument is fleet-scale — "even small
improvements in performance or utilization will translate into immense
cost savings" — so the unit of configuration here is a *fleet*: a list
of :class:`NodeSpec` (each a per-node M/G/c server with its own
service-time distribution, i.e. an accelerated or software-only box)
plus an optional sharded object-cache tier in front of them.

Everything in this module is declarative; the event-driven composition
lives in :mod:`repro.fleet.simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fleet.cache_tier import CacheTierConfig

#: Node kinds a topology may mix; ``accelerated`` nodes carry the
#: Section-4 accelerator complex, ``software`` nodes are plain cores.
NODE_KINDS = ("accelerated", "software")


@dataclass(frozen=True)
class NodeSpec:
    """One backend server in the fleet.

    ``service_times`` is the node's empirical per-request cycle
    distribution (measured on the MiniPHP templates by
    :func:`repro.core.latency.request_latency_report`); a fleet mixing
    accelerated and software distributions is exactly the paper's
    partial-deployment scenario.
    """

    name: str
    service_times: tuple[float, ...]
    workers: int = 4
    kind: str = "accelerated"

    def __post_init__(self) -> None:
        if not self.service_times:
            raise ValueError(f"node {self.name}: need a service-time sample")
        if any(s <= 0 for s in self.service_times):
            raise ValueError(
                f"node {self.name}: service times must be positive"
            )
        if self.workers < 1:
            raise ValueError(
                f"node {self.name}: need at least one worker, got "
                f"{self.workers}"
            )
        if self.kind not in NODE_KINDS:
            raise ValueError(
                f"node {self.name}: kind must be one of {NODE_KINDS}, "
                f"got {self.kind!r}"
            )

    @property
    def mean_service(self) -> float:
        return sum(self.service_times) / len(self.service_times)

    @property
    def capacity_rps(self) -> float:
        """Saturation throughput of this node (requests per cycle)."""
        return self.workers / self.mean_service


@dataclass(frozen=True)
class FleetTopology:
    """A named fleet: backend nodes + optional object-cache tier."""

    name: str
    nodes: tuple[NodeSpec, ...]
    cache: CacheTierConfig | None = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError(f"fleet {self.name}: need at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(
                f"fleet {self.name}: node names must be unique, got {names}"
            )

    @property
    def total_workers(self) -> int:
        return sum(n.workers for n in self.nodes)

    @property
    def capacity_rps(self) -> float:
        """Aggregate backend saturation throughput (no cache credit)."""
        return sum(n.capacity_rps for n in self.nodes)

    @property
    def mean_service(self) -> float:
        """Worker-weighted mean backend service time."""
        total = sum(n.workers * n.mean_service for n in self.nodes)
        return total / self.total_workers

    def without_cache(self) -> FleetTopology:
        """The same backends with the cache tier removed."""
        return replace(self, name=f"{self.name}-nocache", cache=None)


def homogeneous_fleet(
    name: str,
    service_times: list[float] | tuple[float, ...],
    nodes: int,
    workers: int = 4,
    kind: str = "accelerated",
    cache: CacheTierConfig | None = None,
) -> FleetTopology:
    """``nodes`` identical backends (the common scale-out shape)."""
    if nodes < 1:
        raise ValueError(f"need at least one node, got {nodes}")
    sample = tuple(service_times)
    return FleetTopology(
        name=name,
        nodes=tuple(
            NodeSpec(
                name=f"{kind[:2]}{i}", service_times=sample,
                workers=workers, kind=kind,
            )
            for i in range(nodes)
        ),
        cache=cache,
    )


def mixed_fleet(
    name: str,
    accelerated_service_times: list[float] | tuple[float, ...],
    software_service_times: list[float] | tuple[float, ...],
    accelerated_nodes: int,
    software_nodes: int,
    workers: int = 4,
    cache: CacheTierConfig | None = None,
) -> FleetTopology:
    """A partial deployment: some accelerated boxes, some plain ones."""
    if accelerated_nodes < 0 or software_nodes < 0:
        raise ValueError("node counts cannot be negative")
    if accelerated_nodes + software_nodes < 1:
        raise ValueError("need at least one node in the fleet")
    nodes: list[NodeSpec] = []
    accel = tuple(accelerated_service_times)
    soft = tuple(software_service_times)
    for i in range(accelerated_nodes):
        nodes.append(NodeSpec(
            name=f"ac{i}", service_times=accel, workers=workers,
            kind="accelerated",
        ))
    for i in range(software_nodes):
        nodes.append(NodeSpec(
            name=f"so{i}", service_times=soft, workers=workers,
            kind="software",
        ))
    return FleetTopology(name=name, nodes=tuple(nodes), cache=cache)
