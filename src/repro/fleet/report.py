"""Fleet-level metrics: goodput, balance, cache shielding, tails.

:class:`FleetReport` is the per-run summary the fleet simulator emits;
:func:`repro.core.report.fleet_report` renders lists of them in the
repo's fixed-width table layout.  Like the resilience report, this
module imports nothing from :mod:`repro.core` so the reporting layer
can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.stats import LatencySummary


@dataclass(frozen=True)
class NodeUtilization:
    """One backend's share of the run."""

    name: str
    kind: str
    #: requests this node finished rendering (measured only)
    completed: int
    #: busy worker-cycles / (workers × measured span)
    utilization: float


@dataclass
class FleetReport:
    """Summary of one fleet run (all counts exclude warmup traffic)."""

    fleet: str
    balancer: str
    #: shards in the cache tier (0 → no cache tier configured)
    cache_shards: int = 0
    #: measured requests offered (arrivals after warmup)
    offered: int = 0
    #: measured requests completed (cache hits + backend renders)
    completed: int = 0
    #: completed straight from the object cache
    cache_hits: int = 0
    #: cache lookups that missed and went to a backend
    cache_misses: int = 0
    #: lookups that missed while a render for the same key was already
    #: in flight — counted separately so a storm's duplicate misses
    #: cannot double-dip the hit ratio (they are neither hits nor
    #: first-cause misses)
    cache_coalesced: int = 0
    #: measured requests shed by full backend queues
    shed: int = 0
    #: shard flushes the storm schedule triggered
    storms: int = 0
    #: entries dropped by storm flushes
    storm_invalidations: int = 0
    #: client-observed latency summary over completed requests
    latency: LatencySummary = field(default_factory=LatencySummary)
    #: first measured arrival → last measured completion, cycles
    span_cycles: float = 0.0
    #: completed measured requests per kilocycle
    goodput_per_kcycle: float = 0.0
    per_node: list[NodeUtilization] = field(default_factory=list)

    @property
    def cache_hit_ratio(self) -> float:
        """Hits over first-cause lookups (0 with no cache tier).

        Coalesced lookups (a render for the key already in flight)
        are excluded from the denominator: an invalidation storm
        sends a burst of same-key misses to the backends, but only
        the first of each burst is a genuine miss of the cache —
        counting the rest would understate the tier's shielding.
        """
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    @property
    def availability(self) -> float:
        """Fraction of measured offered requests that completed."""
        return self.completed / self.offered if self.offered else 0.0

    @property
    def mean_utilization(self) -> float:
        if not self.per_node:
            return 0.0
        return sum(n.utilization for n in self.per_node) / len(self.per_node)

    @property
    def utilization_imbalance(self) -> float:
        """Coefficient of variation of per-node utilization.

        0 = perfectly even; higher means some boxes run hot while
        others idle — the utilization slack the paper's TCO argument
        says a fleet cannot afford to waste.
        """
        if len(self.per_node) < 2:
            return 0.0
        mean = self.mean_utilization
        if mean == 0.0:
            return 0.0
        var = sum(
            (n.utilization - mean) ** 2 for n in self.per_node
        ) / len(self.per_node)
        return var ** 0.5 / mean
