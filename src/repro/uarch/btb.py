"""Branch target buffer.

Section 2: "We simulate a BTB that resembles the BTB found in modern
Intel server cores with 4K entries and 2-way set associativity ...
Around 12% of all dynamic instructions are branches in the SPEC
CPU2006 workloads, whereas in the PHP applications about 22% of all
instructions are branches, thus adding more pressure on BTB ... even
with 64K entries, the PHP application obtains a modest BTB hit rate of
95.85%."

A plain set-associative structure with true-LRU replacement; target
mispredictions (indirect branches whose cached target is stale) are
counted separately from capacity/conflict misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import StatRegistry
from repro.uarch.trace import BranchRecord


@dataclass
class _BtbEntry:
    tag: int
    target: int
    lru: int


class Btb:
    """Set-associative branch target buffer.

    Parameters
    ----------
    entries:
        Total entry count (must be divisible by ``ways``).
    ways:
        Set associativity (Intel-like default: 2).
    """

    def __init__(self, entries: int = 4096, ways: int = 2) -> None:
        if entries % ways != 0:
            raise ValueError("entries must be divisible by ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        if self.sets & (self.sets - 1):
            raise ValueError("set count must be a power of two")
        self._table: list[list[_BtbEntry]] = [[] for _ in range(self.sets)]
        self._clock = 0
        self.stats = StatRegistry("btb")

    def _locate(self, pc: int) -> tuple[int, int]:
        index = (pc >> 2) & (self.sets - 1)
        tag = pc >> 2
        return index, tag

    def lookup(self, branch: BranchRecord) -> bool:
        """Probe-and-update for one dynamic branch.

        Returns True on a useful hit (entry present and, for taken
        branches, target correct).  Not-taken conditional branches do
        not need a BTB entry to be fetched correctly, but Intel-style
        BTBs still allocate on first sight; we allocate only for taken
        branches, matching how misses were counted in the paper's
        "taken branch needs a target" model.
        """
        self._clock += 1
        self.stats.bump("btb.lookups")
        index, tag = self._locate(branch.pc)
        bucket = self._table[index]
        for entry in bucket:
            if entry.tag == tag:
                entry.lru = self._clock
                if branch.taken and entry.target != branch.target:
                    # Indirect branch whose target changed: update in place.
                    entry.target = branch.target
                    self.stats.bump("btb.target_mispredicts")
                    return False
                self.stats.bump("btb.hits")
                return True
        if branch.taken:
            self.stats.bump("btb.misses")
            self._insert(index, tag, branch.target)
            return False
        # Not-taken and absent: fetch proceeds sequentially; no penalty.
        self.stats.bump("btb.hits")
        return True

    def _insert(self, index: int, tag: int, target: int) -> None:
        bucket = self._table[index]
        if len(bucket) < self.ways:
            bucket.append(_BtbEntry(tag, target, self._clock))
            return
        victim = min(bucket, key=lambda e: e.lru)
        victim.tag = tag
        victim.target = target
        victim.lru = self._clock
        self.stats.bump("btb.evictions")

    # -- derived metrics ----------------------------------------------------------------

    def hit_rate(self) -> float:
        lookups = self.stats.get("btb.lookups")
        if not lookups:
            return 0.0
        useful = self.stats.get("btb.hits")
        return useful / lookups

    def miss_count(self) -> int:
        return (
            self.stats.get("btb.misses")
            + self.stats.get("btb.target_mispredicts")
        )
