"""TAGE branch predictor (Seznec, MICRO-44 [63]).

Section 2: "We experimented with the state-of-the-art TAGE branch
predictor with 32KB storage budget.  The branch mispredictions per
kilo-instructions (MPKI) for the three PHP applications considered in
this work are 17.26, 14.48, and 15.14."

This is a faithful TAGE implementation: a bimodal base predictor plus
several partially-tagged tables indexed with geometrically increasing
global-history lengths via folded (circular-shifted) histories, with
usefulness counters steering allocation on mispredictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.rng import DeterministicRng
from repro.common.stats import StatRegistry


class FoldedHistory:
    """Circular-shift compression of a long history into few bits.

    Maintains ``compressed`` = the geometry-``orig_len`` history folded
    onto ``comp_len`` bits, updated incrementally in O(1) per branch as
    in Seznec's reference implementation.
    """

    def __init__(self, orig_len: int, comp_len: int) -> None:
        self.orig_len = orig_len
        self.comp_len = comp_len
        self.compressed = 0
        self._outpoint = orig_len % comp_len

    def update(self, new_bit: int, dropped_bit: int) -> None:
        self.compressed = (self.compressed << 1) | new_bit
        self.compressed ^= dropped_bit << self._outpoint
        self.compressed ^= self.compressed >> self.comp_len
        self.compressed &= (1 << self.comp_len) - 1


@dataclass
class _TaggedEntry:
    tag: int = 0
    ctr: int = 0      # signed 3-bit: -4..3, >=0 predicts taken
    useful: int = 0   # 2-bit usefulness


@dataclass
class TageConfig:
    """Geometry of the predictor; defaults total ≈ 32 KB of state."""

    bimodal_bits: int = 15           # 32K 2-bit counters = 8 KB
    num_tables: int = 6
    table_bits: int = 11             # 2K entries per tagged table
    tag_bits: int = 11
    min_history: int = 5
    max_history: int = 130
    use_alt_threshold: int = 8       # dynamic useAltOnNA counter midpoint

    def history_lengths(self) -> list[int]:
        """Geometric series from min to max history, one per table."""
        if self.num_tables == 1:
            return [self.min_history]
        ratio = (self.max_history / self.min_history) ** (1 / (self.num_tables - 1))
        lengths = []
        for i in range(self.num_tables):
            lengths.append(int(round(self.min_history * ratio ** i)))
        return lengths

    def storage_bits(self) -> int:
        """Total predictor state, for checking the 32 KB budget."""
        bimodal = (1 << self.bimodal_bits) * 2
        per_entry = 3 + 2 + self.tag_bits  # ctr + useful + tag
        tagged = self.num_tables * (1 << self.table_bits) * per_entry
        return bimodal + tagged


class Tage:
    """TAGE predictor with per-branch predict/update interface."""

    def __init__(
        self,
        config: TageConfig | None = None,
        rng: DeterministicRng | None = None,
    ) -> None:
        self.config = config or TageConfig()
        self.rng = rng or DeterministicRng(7)
        self.stats = StatRegistry("tage")
        cfg = self.config

        self._bimodal = [1] * (1 << cfg.bimodal_bits)  # 2-bit, weakly not-taken
        self._tables: list[list[_TaggedEntry]] = [
            [_TaggedEntry() for _ in range(1 << cfg.table_bits)]
            for _ in range(cfg.num_tables)
        ]
        self._hist_lengths = cfg.history_lengths()
        self._ghist: list[int] = []  # newest first
        self._index_fold = [
            FoldedHistory(hl, cfg.table_bits) for hl in self._hist_lengths
        ]
        self._tag_fold_a = [
            FoldedHistory(hl, cfg.tag_bits) for hl in self._hist_lengths
        ]
        self._tag_fold_b = [
            FoldedHistory(hl, max(1, cfg.tag_bits - 1)) for hl in self._hist_lengths
        ]
        self._use_alt_on_na = cfg.use_alt_threshold  # 4-bit counter

    # -- hashing ----------------------------------------------------------------------

    def _bimodal_index(self, pc: int) -> int:
        return (pc >> 2) & ((1 << self.config.bimodal_bits) - 1)

    def _table_index(self, pc: int, t: int) -> int:
        mask = (1 << self.config.table_bits) - 1
        folded = self._index_fold[t].compressed
        return ((pc >> 2) ^ (pc >> (self.config.table_bits + t + 1)) ^ folded) & mask

    def _table_tag(self, pc: int, t: int) -> int:
        mask = (1 << self.config.tag_bits) - 1
        return ((pc >> 2) ^ self._tag_fold_a[t].compressed
                ^ (self._tag_fold_b[t].compressed << 1)) & mask

    # -- predict / update ----------------------------------------------------------------

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        provider, alt = self._lookup(pc)
        pred, _, _ = self._resolve(pc, provider, alt)
        return pred

    def _lookup(self, pc: int):
        provider = None  # (table, index, entry)
        alt = None
        for t in range(self.config.num_tables - 1, -1, -1):
            idx = self._table_index(pc, t)
            entry = self._tables[t][idx]
            if entry.tag == self._table_tag(pc, t):
                if provider is None:
                    provider = (t, idx, entry)
                elif alt is None:
                    alt = (t, idx, entry)
                    break
        return provider, alt

    def _resolve(self, pc: int, provider, alt):
        """Choose between provider, altpred, and bimodal."""
        bimodal_pred = self._bimodal[self._bimodal_index(pc)] >= 2
        if provider is None:
            return bimodal_pred, bimodal_pred, "bimodal"
        _, _, entry = provider
        provider_pred = entry.ctr >= 0
        alt_pred = (alt[2].ctr >= 0) if alt is not None else bimodal_pred
        newly_allocated = entry.ctr in (-1, 0) and entry.useful == 0
        if newly_allocated and self._use_alt_on_na >= self.config.use_alt_threshold:
            return alt_pred, provider_pred, "alt"
        return provider_pred, alt_pred, "provider"

    def train(self, pc: int, taken: bool) -> bool:
        """Predict, update all state, and return prediction correctness."""
        provider, alt = self._lookup(pc)
        pred, alt_pred, source = self._resolve(pc, provider, alt)
        correct = pred == taken

        self.stats.bump("tage.lookups")
        if not correct:
            self.stats.bump("tage.mispredicts")

        # useAltOnNA adaptation.
        if provider is not None:
            entry = provider[2]
            if entry.ctr in (-1, 0) and entry.useful == 0:
                provider_pred = entry.ctr >= 0
                if provider_pred != alt_pred:
                    if alt_pred == taken:
                        self._use_alt_on_na = min(15, self._use_alt_on_na + 1)
                    else:
                        self._use_alt_on_na = max(0, self._use_alt_on_na - 1)

        # Update provider (or bimodal when no provider).
        if provider is not None:
            t, idx, entry = provider
            entry.ctr = self._bump_signed(entry.ctr, taken)
            provider_pred = entry.ctr >= 0
            if provider_pred != alt_pred:
                if (entry.ctr >= 0) == taken:
                    entry.useful = min(3, entry.useful + 1)
                elif not correct:
                    entry.useful = max(0, entry.useful - 1)
        bidx = self._bimodal_index(pc)
        if provider is None:
            self._bimodal[bidx] = self._bump_unsigned(self._bimodal[bidx], taken)

        # Allocate on misprediction into a longer-history table.
        if not correct:
            start = (provider[0] + 1) if provider is not None else 0
            self._allocate(pc, taken, start)

        self._push_history(pc, taken)
        return correct

    def _allocate(self, pc: int, taken: bool, start_table: int) -> None:
        cfg = self.config
        candidates = []
        for t in range(start_table, cfg.num_tables):
            idx = self._table_index(pc, t)
            if self._tables[t][idx].useful == 0:
                candidates.append((t, idx))
        if not candidates:
            # Decay usefulness to eventually free entries (graceful aging).
            for t in range(start_table, cfg.num_tables):
                idx = self._table_index(pc, t)
                entry = self._tables[t][idx]
                entry.useful = max(0, entry.useful - 1)
            self.stats.bump("tage.alloc_failures")
            return
        # Prefer the shortest eligible history, with slight randomization
        # (Seznec allocates 1-2 entries with geometric preference).
        pick = candidates[0]
        if len(candidates) > 1 and self.rng.random() < 0.33:
            pick = candidates[1]
        t, idx = pick
        entry = self._tables[t][idx]
        entry.tag = self._table_tag(pc, t)
        entry.ctr = 0 if taken else -1
        entry.useful = 0
        self.stats.bump("tage.allocations")

    def _push_history(self, pc: int, taken: bool) -> None:
        bit = 1 if taken else 0
        self._ghist.insert(0, bit)
        max_hist = self._hist_lengths[-1] + 1
        if len(self._ghist) > max_hist:
            self._ghist.pop()
        for t, hl in enumerate(self._hist_lengths):
            dropped = self._ghist[hl] if len(self._ghist) > hl else 0
            self._index_fold[t].update(bit, dropped)
            self._tag_fold_a[t].update(bit, dropped)
            self._tag_fold_b[t].update(bit, dropped)

    @staticmethod
    def _bump_signed(ctr: int, taken: bool) -> int:
        if taken:
            return min(3, ctr + 1)
        return max(-4, ctr - 1)

    @staticmethod
    def _bump_unsigned(ctr: int, taken: bool) -> int:
        if taken:
            return min(3, ctr + 1)
        return max(0, ctr - 1)

    # -- derived metrics -------------------------------------------------------------------

    def mpki(self, instructions: int) -> float:
        """Mispredictions per kilo-instruction over ``instructions``."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.stats.get("tage.mispredicts") / instructions

    @property
    def storage_bits(self) -> int:
        return self.config.storage_bits()
