"""Cache hierarchy with prefetchers.

Section 2's cache analysis (Figure 2b): "L1 instruction and data cache
behavior are more typical of SPEC CPU-like workloads ... The L2 cache
has very low MPKI, as the L1 filters out most of the cache references.
Note that we simulate an aggressive memory system with prefetchers at
every cache level."

This module provides a set-associative cache with true-LRU
replacement, a stream (next-line run) prefetcher attachable per cache,
and a small hierarchy wrapper that walks L1 → L2 → memory and keeps
per-level hit/miss statistics for the MPKI plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.common.stats import StatRegistry

LINE_BYTES = 64


@dataclass
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int  # cycles, load-to-use
    prefetch: bool = True
    prefetch_degree: int = 2
    #: victim selection: 'lru' (default), 'fifo', or 'random'
    replacement: str = "lru"

    @property
    def sets(self) -> int:
        sets = self.size_bytes // (LINE_BYTES * self.ways)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(f"{self.name}: set count must be a power of two")
        return sets


class StreamPrefetcher:
    """Detects ascending line streams and prefetches ahead.

    A 16-entry stream table tracks recent miss lines; two consecutive
    misses to adjacent lines arm a stream that prefetches
    ``degree`` lines ahead on each subsequent access in the stream.
    """

    TABLE_SIZE = 16

    def __init__(self, degree: int) -> None:
        self.degree = degree
        self._streams: list[int] = []  # last line seen per stream, MRU first

    def observe_miss(self, line: int) -> list[int]:
        """Report a miss; returns lines to prefetch.

        On a stream match the training point advances to the farthest
        prefetched line, so the stream keeps running even though the
        prefetched lines themselves will hit (and never re-train it).
        """
        for i, last in enumerate(self._streams):
            if last - self.degree <= line <= last + 1:
                self._streams.pop(i)
                self._streams.insert(0, line + self.degree)
                return [line + d for d in range(1, self.degree + 1)]
        self._streams.insert(0, line)
        del self._streams[self.TABLE_SIZE:]
        return []


class Cache:
    """One set-associative, true-LRU cache level."""

    def __init__(self, config: CacheConfig) -> None:
        if config.replacement not in ("lru", "fifo", "random"):
            raise ValueError(f"unknown replacement {config.replacement!r}")
        self.config = config
        self.stats = StatRegistry(config.name)
        self._sets: list[dict[int, int]] = [dict() for _ in range(config.sets)]
        self._clock = 0
        self._rand_state = 0x9E3779B9  # xorshift for 'random' victims
        self._prefetcher = (
            StreamPrefetcher(config.prefetch_degree) if config.prefetch else None
        )
        # Hot-path shortcuts: the counter objects survive stats.reset()
        # (reset zeroes values in place), and geometry is immutable.
        self._nsets = config.sets
        self._is_lru = config.replacement == "lru"
        self._c_accesses = self.stats.counter("cache.accesses")
        self._c_hits = self.stats.counter("cache.hits")
        self._c_misses = self.stats.counter("cache.misses")

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // LINE_BYTES
        return line % self._nsets, line

    def access(self, addr: int, is_prefetch: bool = False) -> bool:
        """Look up ``addr``; allocate on miss.  Returns hit?"""
        self._clock += 1
        line = addr // LINE_BYTES
        index = line % self._nsets
        bucket = self._sets[index]
        if line in bucket:
            if self._is_lru:
                bucket[line] = self._clock  # fifo/random keep insert time
            if not is_prefetch:
                self._c_accesses.value += 1
                self._c_hits.value += 1
            return True
        if not is_prefetch:
            self._c_accesses.value += 1
            self._c_misses.value += 1
        self._fill(index, line)
        return False

    def _fill(self, index: int, line: int) -> None:
        bucket = self._sets[index]
        if len(bucket) >= self.config.ways:
            if self.config.replacement == "random":
                self._rand_state ^= (self._rand_state << 13) & 0xFFFFFFFF
                self._rand_state ^= self._rand_state >> 17
                self._rand_state ^= (self._rand_state << 5) & 0xFFFFFFFF
                keys = list(bucket)
                victim = keys[self._rand_state % len(keys)]
            else:
                # lru: oldest access time; fifo: oldest insert time —
                # both are the min of the stored stamps.
                victim = min(bucket, key=bucket.__getitem__)
            del bucket[victim]
            self.stats.bump("cache.evictions")
        bucket[line] = self._clock

    def prefetch_lines_for_miss(self, addr: int) -> list[int]:
        if self._prefetcher is None:
            return []
        _, line = self._locate(addr)
        return self._prefetcher.observe_miss(line)

    # -- derived metrics ----------------------------------------------------------------

    def miss_count(self) -> int:
        return self.stats.get("cache.misses")

    def mpki(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.miss_count() / instructions


@dataclass
class HierarchyConfig:
    """An L1I/L1D/shared-L2 hierarchy (the paper's simulated server)."""

    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    memory_latency: int = 200

    @staticmethod
    def xeon_like(
        l1i_kb: int = 32, l1d_kb: int = 32, l2_kb: int = 2048
    ) -> "HierarchyConfig":
        """Geometry similar to the paper's Intel Xeon baseline."""
        return HierarchyConfig(
            l1i=CacheConfig("l1i", l1i_kb * 1024, ways=8, latency=3),
            l1d=CacheConfig("l1d", l1d_kb * 1024, ways=8, latency=4),
            l2=CacheConfig("l2", l2_kb * 1024, ways=16, latency=14),
        )


class CacheHierarchy:
    """Two-level hierarchy walker with per-level stats."""

    def __init__(self, config: HierarchyConfig) -> None:
        self.config = config
        self.l1i = Cache(config.l1i)
        self.l1d = Cache(config.l1d)
        self.l2 = Cache(config.l2)
        self.stats = StatRegistry("hierarchy")

    def fetch(self, addr: int) -> int:
        """Instruction fetch; returns access latency in cycles."""
        return self._walk(self.l1i, addr)

    def load_store(self, addr: int, is_write: bool) -> int:
        """Data access; returns access latency in cycles."""
        if is_write:
            self.stats.bump("hierarchy.writes")
        return self._walk(self.l1d, addr)

    def _walk(self, l1: Cache, addr: int) -> int:
        if l1.access(addr):
            return l1.config.latency
        for line in l1.prefetch_lines_for_miss(addr):
            pf_addr = line * LINE_BYTES
            l1.access(pf_addr, is_prefetch=True)
            self.l2.access(pf_addr, is_prefetch=True)
        if self.l2.access(addr):
            return l1.config.latency + self.l2.config.latency
        for line in self.l2.prefetch_lines_for_miss(addr):
            self.l2.access(line * LINE_BYTES, is_prefetch=True)
        self.stats.bump("hierarchy.memory_accesses")
        return (
            l1.config.latency
            + self.l2.config.latency
            + self.config.memory_latency
        )
