"""Baseline branch predictors: bimodal and gshare.

The paper evaluates with TAGE (noting its accuracy matches Intel
server parts — footnote 1).  These simpler predictors exist to place
that choice in context: the PHP applications' data-dependent branches
are hard for *any* history-based predictor, and the gap between
bimodal → gshare → TAGE quantifies how much history helps before the
data-dependence wall (prior work [35] on data-dependent branches is
the paper's suggested next step).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import StatRegistry


class BranchPredictor:
    """Interface shared with :class:`repro.uarch.tage.Tage`."""

    stats: StatRegistry

    def train(self, pc: int, taken: bool) -> bool:
        raise NotImplementedError

    def mpki(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.stats.get("pred.mispredicts") / instructions


class Bimodal(BranchPredictor):
    """A table of 2-bit saturating counters indexed by PC."""

    def __init__(self, index_bits: int = 14) -> None:
        self.index_bits = index_bits
        self._table = [1] * (1 << index_bits)  # weakly not-taken
        self.stats = StatRegistry("bimodal")

    def _index(self, pc: int) -> int:
        return (pc >> 2) & ((1 << self.index_bits) - 1)

    def train(self, pc: int, taken: bool) -> bool:
        idx = self._index(pc)
        counter = self._table[idx]
        prediction = counter >= 2
        correct = prediction == taken
        self.stats.bump("pred.lookups")
        if not correct:
            self.stats.bump("pred.mispredicts")
        if taken:
            self._table[idx] = min(3, counter + 1)
        else:
            self._table[idx] = max(0, counter - 1)
        return correct

    def storage_bits(self) -> int:
        return (1 << self.index_bits) * 2


class GShare(BranchPredictor):
    """Global-history XOR-indexed 2-bit counter table (McFarling)."""

    def __init__(self, index_bits: int = 16, history_bits: int = 14) -> None:
        self.index_bits = index_bits
        self.history_bits = min(history_bits, index_bits)
        self._table = [1] * (1 << index_bits)
        self._history = 0
        self.stats = StatRegistry("gshare")

    def _index(self, pc: int) -> int:
        mask = (1 << self.index_bits) - 1
        hist = self._history & ((1 << self.history_bits) - 1)
        return ((pc >> 2) ^ hist) & mask

    def train(self, pc: int, taken: bool) -> bool:
        idx = self._index(pc)
        counter = self._table[idx]
        prediction = counter >= 2
        correct = prediction == taken
        self.stats.bump("pred.lookups")
        if not correct:
            self.stats.bump("pred.mispredicts")
        if taken:
            self._table[idx] = min(3, counter + 1)
        else:
            self._table[idx] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & (
            (1 << self.history_bits) - 1
        )
        return correct

    def storage_bits(self) -> int:
        return (1 << self.index_bits) * 2


def compare_predictors(
    profile,
    rng,
    predictors: dict[str, BranchPredictor] | None = None,
) -> dict[str, float]:
    """Run one branch trace through several predictors; returns MPKI.

    TAGE is included by default; extra predictors may be supplied.
    Each sees the identical dynamic branch stream (one warmup pass plus
    one measured pass), so the comparison is apples to apples.
    """
    from repro.uarch.tage import Tage
    from repro.uarch.trace import TraceGenerator

    if predictors is None:
        predictors = {
            "bimodal-4KB": Bimodal(index_bits=14),
            "gshare-16KB": GShare(index_bits=16),
            "tage-32KB": Tage(rng=rng.fork("tage")),
        }

    gen = TraceGenerator(profile, rng.fork("trace"))
    warmup = [
        b for b in gen.branch_stream(0) if b.is_conditional
    ]
    measured = [
        b for b in gen.branch_stream(1) if b.is_conditional
    ]

    results: dict[str, float] = {}
    for name, predictor in predictors.items():
        for branch in warmup:
            predictor.train(branch.pc, branch.taken)
        if hasattr(predictor, "stats"):
            predictor.stats.reset()
        mispredicts = 0
        for branch in measured:
            if not predictor.train(branch.pc, branch.taken):
                mispredicts += 1
        results[name] = 1000.0 * mispredicts / profile.instructions
    return results
