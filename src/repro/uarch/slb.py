"""Store-Load-Branch (SLB) predictor for data-dependent branches.

Section 2: "The poor predictor performance is primarily due to the
presence of large number of data-dependent branches in the PHP
applications ... Prior work on predicting data-dependent branches [35]
may improve the MPKI of the PHP applications."

Farooq, Khubaib & John (HPCA'13) observe that a data-dependent
branch's outcome is often *computed* long before the branch executes:
a store writes the deciding value, a later load reads it, and the
branch tests it.  With compiler assistance, the predictor tracks the
store queue: when the store retires, the branch outcome is known and
enqueued; the front end consumes it instead of guessing.

The model: each data-dependent branch site is (with probability
``chain_coverage``) a compiler-identified store-load-branch chain.
When its outcome was produced early enough to be queued (``lead_ok``),
the prediction is exact; otherwise — and for non-covered sites — the
backing predictor (TAGE) guesses.  This reproduces the paper's
suggested MPKI headroom as a measurable number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import DeterministicRng
from repro.common.stats import StatRegistry
from repro.uarch.tage import Tage, TageConfig
from repro.uarch.trace import TraceGenerator, TraceProfile


@dataclass
class SlbConfig:
    """Effectiveness parameters of the SLB mechanism."""

    #: fraction of data-dependent sites the compiler marks as SLB chains
    chain_coverage: float = 0.75
    #: probability the deciding store retires early enough to help
    lead_time_hit: float = 0.85
    #: outcome-queue entries (chains in flight); overflow falls back
    queue_entries: int = 32


class SlbAssistedPredictor:
    """TAGE plus an SLB outcome queue for data-dependent branches."""

    def __init__(
        self,
        config: SlbConfig | None = None,
        rng: DeterministicRng | None = None,
        tage_config: TageConfig | None = None,
    ) -> None:
        self.config = config or SlbConfig()
        self.rng = rng or DeterministicRng(11)
        self.tage = Tage(tage_config, self.rng.fork("tage"))
        self.stats = StatRegistry("slb")
        #: compiler-marked chain sites (decided lazily per PC)
        self._chain_sites: dict[int, bool] = {}
        self._in_flight = 0

    def _is_chain(self, pc: int) -> bool:
        marked = self._chain_sites.get(pc)
        if marked is None:
            marked = self.rng.random() < self.config.chain_coverage
            self._chain_sites[pc] = marked
        return marked

    def train(self, pc: int, taken: bool, data_dependent: bool) -> bool:
        """Predict + update; returns correctness.

        ``data_dependent`` marks branches whose outcome TAGE cannot
        learn (the trace generator knows which sites those are).
        """
        self.stats.bump("slb.lookups")
        if data_dependent and self._is_chain(pc):
            if self._in_flight < self.config.queue_entries and \
                    self.rng.random() < self.config.lead_time_hit:
                # Outcome was queued by the retired store: exact.
                self.stats.bump("slb.queue_hits")
                self.tage.train(pc, taken)  # keep TAGE state warm
                return True
            self.stats.bump("slb.queue_misses")
        correct = self.tage.train(pc, taken)
        if not correct:
            self.stats.bump("slb.mispredicts")
        return correct

    def mpki(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.stats.get("slb.mispredicts") / instructions


def measure_slb_headroom(
    profile: TraceProfile | None = None,
    seed: int = 11,
    config: SlbConfig | None = None,
) -> dict[str, float]:
    """Quantify the §2 'prior work [35] may improve the MPKI' remark.

    Runs the identical branch stream through plain TAGE and through
    the SLB-assisted predictor (one warmup pass each); returns both
    MPKIs and the improvement.
    """
    profile = profile or TraceProfile(instructions=200_000)
    rng = DeterministicRng(seed)
    gen = TraceGenerator(profile, rng.fork("trace"))

    # Identify data-dependent sites from the generator's ground truth.
    data_pcs = {
        site.pc for site in gen._branches if site.kind == "data"
    }

    plain = Tage(rng=rng.fork("plain"))
    assisted = SlbAssistedPredictor(config, rng.fork("slb"))

    for pass_index in (0, 1):
        measuring = pass_index == 1
        if measuring:
            plain.stats.reset()
            assisted.stats.reset()
            assisted.tage.stats.reset()
        for branch in gen.branch_stream(pass_index):
            if not branch.is_conditional:
                continue
            plain.train(branch.pc, branch.taken)
            assisted.train(
                branch.pc, branch.taken, branch.pc in data_pcs
            )

    n = profile.instructions
    tage_mpki = plain.mpki(n)
    slb_mpki = assisted.mpki(n)
    return {
        "tage_mpki": tage_mpki,
        "slb_mpki": slb_mpki,
        "improvement": (
            (tage_mpki - slb_mpki) / tage_mpki if tage_mpki else 0.0
        ),
        "queue_hit_rate": assisted.stats.ratio(
            "slb.queue_hits", "slb.lookups"
        ),
    }
