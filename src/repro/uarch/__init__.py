"""Trace-driven microarchitecture models (the gem5 stand-in).

Provides the Section 2 characterization pipeline: synthetic trace
generation (:mod:`repro.uarch.trace`), a faithful TAGE predictor
(:mod:`repro.uarch.tage`), a set-associative BTB
(:mod:`repro.uarch.btb`), a prefetching cache hierarchy
(:mod:`repro.uarch.caches`), and analytic core timing models
(:mod:`repro.uarch.core`).
"""

from repro.uarch.btb import Btb
from repro.uarch.caches import (
    Cache,
    CacheConfig,
    CacheHierarchy,
    HierarchyConfig,
    LINE_BYTES,
    StreamPrefetcher,
)
from repro.uarch.core import (
    CharacterizationRun,
    CoreConfig,
    TraceCounts,
    effective_issue_width,
    estimate_cycles,
    sweep_btb_and_icache,
    sweep_cores,
)
from repro.uarch.predictors import Bimodal, GShare, compare_predictors
from repro.uarch.slb import SlbAssistedPredictor, SlbConfig, measure_slb_headroom
from repro.uarch.tage import FoldedHistory, Tage, TageConfig
from repro.uarch.trace import (
    BranchRecord,
    FetchRecord,
    MemRecord,
    SPEC_LIKE_PROFILE,
    TraceGenerator,
    TraceProfile,
)

__all__ = [
    "Btb",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "HierarchyConfig",
    "StreamPrefetcher",
    "LINE_BYTES",
    "CharacterizationRun",
    "CoreConfig",
    "TraceCounts",
    "effective_issue_width",
    "estimate_cycles",
    "sweep_btb_and_icache",
    "sweep_cores",
    "Tage",
    "TageConfig",
    "Bimodal",
    "GShare",
    "compare_predictors",
    "SlbAssistedPredictor",
    "SlbConfig",
    "measure_slb_headroom",
    "FoldedHistory",
    "BranchRecord",
    "FetchRecord",
    "MemRecord",
    "TraceGenerator",
    "TraceProfile",
    "SPEC_LIKE_PROFILE",
]
